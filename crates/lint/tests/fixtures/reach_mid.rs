// Fixture (crate `vdsms-b` of the reachability trio): a pass-through
// helper with no panic of its own. Calls into crate `vdsms-c`.
pub fn relay(x: Option<u32>) -> u32 {
    danger(x)
}
