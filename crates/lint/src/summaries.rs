//! Per-function analysis summaries — the unit of incremental caching.
//!
//! [`summarize`] distils one parsed file into a [`FileSummary`]: every
//! fact the link phase ([`crate::flow`]) needs, and nothing that
//! depends on *other* files or on the active rule configuration. That
//! independence is the whole design: a summary is a pure function of
//! one file's bytes, so the on-disk cache ([`crate::cache`]) can key it
//! by content hash alone and re-linking after an edit only re-parses
//! the files that changed. Rule switches, suppressions and
//! cross-function resolution are all applied later, at link time.
//!
//! The extraction walkers here are ports of what used to be the local
//! halves of the flow analyses (panic/alloc sites, lock acquisition
//! events, local arithmetic taint, float comparisons) plus the local
//! halves of the v3 rules: the untrusted-byte taint walker
//! (`taint-unchecked-flow`), the loop cursor scanner (`loop-progress`)
//! and the discarded-`Result` scanner (`no-swallowed-error`).
//!
//! Serialization is hand-rolled over [`vdsms_json`] (compact arrays,
//! short keys); [`FileSummary::from_json`] returns `None` on any shape
//! mismatch, which the cache treats as a miss — a stale or corrupt
//! cache file can never break a lint run, only slow it down.

use crate::ast::{walk_fns, walk_stmts, AstFile, BinOp, Expr, ExprKind, Pos, Stmt};
use crate::lexer::{Comment, LexedFile};
use crate::SourceFile;
use std::collections::BTreeMap;
use vdsms_json::Json;

/// Bumped whenever the summary shape or extraction semantics change;
/// part of the cache key, so old cache files simply stop matching.
pub const SUMMARY_VERSION: u64 = 3;

/// A flagged position with a short description (`what` is the panic
/// site kind, the allocation kind, the arithmetic operator, or the
/// loop keyword, depending on which list it sits in).
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Where.
    pub pos: Pos,
    /// What, pre-rendered for the diagnostic message.
    pub what: String,
}

/// One unresolved call site, in body walk order. Every `Call` /
/// `MethodCall` expression gets an entry (even ones that will never
/// resolve), so the taint and discard records can refer to call sites
/// by index.
#[derive(Debug, Clone, PartialEq)]
pub enum CallRef {
    /// `a::b::f(…)` — `segs` is empty when the callee was not a plain
    /// path (resolves to nothing, kept for index stability).
    Path {
        /// Callee path segments.
        segs: Vec<String>,
        /// Call position.
        pos: Pos,
    },
    /// `recv.method(…)`.
    Method {
        /// Whether the receiver is the literal `self`.
        recv_self: bool,
        /// Method name.
        name: String,
        /// Position of the method name.
        pos: Pos,
    },
}

impl CallRef {
    /// The call's source position.
    pub fn pos(&self) -> Pos {
        match self {
            CallRef::Path { pos, .. } | CallRef::Method { pos, .. } => *pos,
        }
    }
}

/// One event on the lock-acquisition walk, in statement order. The
/// link phase replays these to build the workspace lock graph with the
/// same first-witness-wins semantics the interleaved walk had.
#[derive(Debug, Clone, PartialEq)]
pub enum LockEvent {
    /// A direct `.lock()`/`.read()`/`.write()` acquisition while
    /// `held` guards were live. Only recorded when `held` is
    /// non-empty (an unordered acquisition creates no edges).
    Direct {
        /// Guards held at the acquisition (outer `let` guards plus
        /// earlier acquisitions in the same statement).
        held: Vec<String>,
        /// Lock identity acquired.
        acquired: String,
        /// Acquisition site.
        pos: Pos,
        /// Witness note (`direct `.lock()` acquisition`).
        note: String,
    },
    /// A call made while `held` guards were live; the link phase adds
    /// edges to everything the callee transitively acquires. Only
    /// recorded when `held` is non-empty.
    Call {
        /// Call site (matched against [`FnSummary::calls`] positions).
        pos: Pos,
        /// Guards held across the call.
        held: Vec<String>,
    },
}

/// A `let _ = …;` or statement-level `.ok()` that throws a value away.
#[derive(Debug, Clone, PartialEq)]
pub struct Discard {
    /// Call-site index of the discarded call, when the discarded value
    /// came from one (`None` for channel sends/receives, which are
    /// flagged unconditionally — their `Result` is always load-bearing).
    pub call: Option<usize>,
    /// Discard site.
    pub pos: Pos,
    /// Pre-rendered description of what was discarded.
    pub what: String,
}

/// A taint source description or a call whose return may carry taint.
#[derive(Debug, Clone, PartialEq)]
pub enum TaintSrc {
    /// Directly from a source expression (e.g. `` `.read_u32()` ``).
    Direct(String),
    /// From the return value of call site `calls[i]` — tainted iff the
    /// resolved callee's return is tainted (link-time fixpoint).
    FromCall(usize),
}

/// A sink fed directly by a local taint source.
#[derive(Debug, Clone, PartialEq)]
pub struct TaintLocal {
    /// Sink site.
    pub pos: Pos,
    /// Sink description.
    pub sink: String,
    /// Source description.
    pub src: String,
}

/// A sink fed by the return value of a call site.
#[derive(Debug, Clone, PartialEq)]
pub struct TaintCallFlow {
    /// Call-site index whose return feeds the sink.
    pub call: usize,
    /// Sink site.
    pub pos: Pos,
    /// Sink description.
    pub sink: String,
}

/// A sink fed (unsanitized) by one of this function's own parameters —
/// the building block of interprocedural flows.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSink {
    /// Parameter index (into the declared parameter list, `self`
    /// included for methods).
    pub param: usize,
    /// Sink site.
    pub pos: Pos,
    /// Sink description.
    pub sink: String,
}

/// A parameter passed on, still unsanitized, as a callee argument:
/// `param` reaches `calls[call]`'s argument `callee_param` (0-based,
/// not counting a method receiver).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSinkCall {
    /// Caller parameter index.
    pub param: usize,
    /// Call-site index.
    pub call: usize,
    /// Argument position at the call.
    pub callee_param: usize,
}

/// A tainted value passed as a call argument.
#[derive(Debug, Clone, PartialEq)]
pub struct TaintedArg {
    /// Call-site index.
    pub call: usize,
    /// Argument position (0-based, not counting a method receiver).
    pub arg: usize,
    /// Argument site.
    pub pos: Pos,
    /// Where the taint came from.
    pub src: TaintSrc,
}

/// How a shared-ownership value created in a function body is
/// protected — the classification `shared-state-discipline` judges when
/// the value crosses a spawn boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedKind {
    /// `Arc<Mutex<_>>` — synchronized, fine to capture.
    ArcMutex,
    /// `Arc<RwLock<_>>` — synchronized, fine to capture.
    ArcRwLock,
    /// `Arc<Atomic*>` — synchronized, fine to capture.
    ArcAtomic,
    /// `Arc<RefCell<_>>` / `Arc<Cell<_>>` / `Arc<UnsafeCell<_>>` —
    /// unsynchronized interior mutability behind a shared handle, the
    /// shape the rule exists to flag.
    ArcCell,
    /// `Arc<T>` with no recognized interior wrapper (shared immutable
    /// data — fine).
    ArcPlain,
    /// `Rc<_>` — single-threaded sharing; crossing a spawn is a bug
    /// shape regardless of what rustc would say about macro-expanded
    /// code it cannot see.
    Rc,
}

impl SharedKind {
    /// Compact cache-format code.
    pub fn code(self) -> usize {
        match self {
            SharedKind::ArcMutex => 0,
            SharedKind::ArcRwLock => 1,
            SharedKind::ArcAtomic => 2,
            SharedKind::ArcCell => 3,
            SharedKind::ArcPlain => 4,
            SharedKind::Rc => 5,
        }
    }

    fn from_code(code: usize) -> Option<SharedKind> {
        Some(match code {
            0 => SharedKind::ArcMutex,
            1 => SharedKind::ArcRwLock,
            2 => SharedKind::ArcAtomic,
            3 => SharedKind::ArcCell,
            4 => SharedKind::ArcPlain,
            5 => SharedKind::Rc,
            _ => return None,
        })
    }

    /// Human rendering for witness messages (`Arc<RefCell<…>>`).
    pub fn describe(self) -> &'static str {
        match self {
            SharedKind::ArcMutex => "Arc<Mutex<…>>",
            SharedKind::ArcRwLock => "Arc<RwLock<…>>",
            SharedKind::ArcAtomic => "Arc<Atomic…>",
            SharedKind::ArcCell => "Arc<RefCell/Cell<…>>",
            SharedKind::ArcPlain => "Arc<…>",
            SharedKind::Rc => "Rc<…>",
        }
    }

    /// Whether capture by a spawned closure is a discipline violation.
    pub fn is_spawn_hazard(self) -> bool {
        matches!(self, SharedKind::ArcCell | SharedKind::Rc)
    }
}

/// A shared-ownership value bound by `let` in a function body: the
/// binding name, how it is protected, and where it was created (or
/// cloned — clones inherit the original's classification).
#[derive(Debug, Clone, PartialEq)]
pub struct SharedVal {
    /// Binding name.
    pub name: String,
    /// Protection classification.
    pub kind: SharedKind,
    /// Creation / clone site.
    pub pos: Pos,
}

/// A name referenced inside a spawned closure but bound outside it —
/// a capture candidate, matched against [`SharedVal`]s and channel
/// endpoints by name at link time.
#[derive(Debug, Clone, PartialEq)]
pub struct Capture {
    /// Captured name.
    pub name: String,
    /// First use inside the closure (the witness position).
    pub pos: Pos,
}

/// A thread-spawn site (`thread::spawn(…)`, `builder.spawn(…)`) whose
/// argument is a closure.
#[derive(Debug, Clone, PartialEq)]
pub struct SpawnSite {
    /// Spawn call site.
    pub pos: Pos,
    /// Capture candidates, in first-use order.
    pub captures: Vec<Capture>,
}

/// A channel pair bound by a tuple `let`:
/// `let (tx, rx) = mpsc::channel();` / `sync_channel(n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelBind {
    /// `sync_channel` (bounded, blocking send) vs `channel`.
    pub sync: bool,
    /// The literal bound of a `sync_channel(n)`, when it was a literal.
    pub cap: Option<u64>,
    /// Sender binding name.
    pub tx: String,
    /// Receiver binding name.
    pub rx: String,
    /// Binding site.
    pub pos: Pos,
}

/// What a [`ChanOp`] does to its endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanOpKind {
    /// `send` / `try_send`.
    Send,
    /// `recv` / `try_recv` / `recv_timeout`.
    Recv,
    /// `drop(endpoint)`.
    Drop,
}

impl ChanOpKind {
    /// Compact cache-format code.
    pub fn code(self) -> usize {
        match self {
            ChanOpKind::Send => 0,
            ChanOpKind::Recv => 1,
            ChanOpKind::Drop => 2,
        }
    }

    fn from_code(code: usize) -> Option<ChanOpKind> {
        Some(match code {
            0 => ChanOpKind::Send,
            1 => ChanOpKind::Recv,
            2 => ChanOpKind::Drop,
            _ => return None,
        })
    }
}

/// One channel-endpoint operation, in body walk order — the sequence
/// `channel-protocol` replays against the binds of the same function.
#[derive(Debug, Clone, PartialEq)]
pub struct ChanOp {
    /// Endpoint name (receiver-chain tail, same identity scheme as
    /// locks).
    pub name: String,
    /// Operation.
    pub op: ChanOpKind,
    /// Operation site.
    pub pos: Pos,
    /// Whether the operation sits inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
    /// Whether a `send` result was thrown away in statement position
    /// (`tx.send(v);` with no binding — distinct from the `let _ =`
    /// shape `no-swallowed-error` covers).
    pub discarded: bool,
}

/// One function's summary — everything the link phase knows about it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` self type, if associated.
    pub self_ty: Option<String>,
    /// Position of the `fn` keyword.
    pub pos: Pos,
    /// Whether the function is test-only code.
    pub is_test: bool,
    /// Entry marker (`None` = not an entry; `Some([])` = bare `entry`;
    /// `Some(rules)` = scoped `entry(rule, …)`).
    pub entry: Option<Vec<String>>,
    /// Whether the declared return type is a `Result`.
    pub returns_result: bool,
    /// Number of declared parameters (`self` included).
    pub param_count: usize,
    /// Whether the first parameter is `self`.
    pub has_self_param: bool,
    /// Every call site, in body walk order.
    pub calls: Vec<CallRef>,
    /// Panic sites (`what` = site description).
    pub panic_sites: Vec<Site>,
    /// Heap-allocation sites.
    pub alloc_sites: Vec<Site>,
    /// Unchecked-arithmetic sites on locally tainted operands
    /// (`what` = operator text).
    pub arith_sites: Vec<Site>,
    /// `partial_cmp` sites.
    pub float_sites: Vec<Pos>,
    /// Lock identities this function acquires directly (sorted,
    /// deduplicated) — the base set for transitive lock summaries.
    pub direct_locks: Vec<String>,
    /// Ordered lock-acquisition events (see [`LockEvent`]).
    pub lock_events: Vec<LockEvent>,
    /// `while`/`loop` loops with no progress witness in their body
    /// (`what` = the loop keyword).
    pub stalled_loops: Vec<Site>,
    /// Whether the function returns a directly tainted value.
    pub returns_taint: bool,
    /// Call sites whose return value this function returns — its own
    /// return is tainted iff any of them resolves to a tainted callee.
    pub taint_return_calls: Vec<usize>,
    /// Source-to-sink flows entirely inside this function.
    pub taint_locals: Vec<TaintLocal>,
    /// Call-return-to-sink flows (conditional on the callee).
    pub taint_call_flows: Vec<TaintCallFlow>,
    /// Parameter-to-sink flows (make this fn a sink for callers).
    pub param_sinks: Vec<ParamSink>,
    /// Parameter-to-callee-argument forwarding edges.
    pub param_sink_calls: Vec<ParamSinkCall>,
    /// Tainted values passed as call arguments.
    pub tainted_args: Vec<TaintedArg>,
    /// Discarded `Result`s (see [`Discard`]).
    pub discards: Vec<Discard>,
    /// Thread-spawn sites with their closures' capture candidates.
    pub spawns: Vec<SpawnSite>,
    /// Shared-ownership values (`Arc`/`Rc` creations and clones),
    /// classified by protection.
    pub shared_vals: Vec<SharedVal>,
    /// Channel pairs bound by tuple `let`s.
    pub channels: Vec<ChannelBind>,
    /// Channel-endpoint operations, in body walk order.
    pub chan_ops: Vec<ChanOp>,
    /// Directly-blocking operations (`.recv()`, zero-arg `.join()`,
    /// `send` on a local `sync_channel` sender) — the seeds of the
    /// transitive blocking set `guard-across-blocking` computes.
    pub blocking: Vec<Site>,
}

impl FnSummary {
    /// Whether any entry marker annotates this function.
    pub fn is_entry(&self) -> bool {
        self.entry.is_some()
    }

    /// Whether this function seeds the hot set of `rule` (bare `entry`,
    /// or a scoped form naming `rule`).
    pub fn entry_covers(&self, rule: &str) -> bool {
        match &self.entry {
            Some(rules) => rules.is_empty() || rules.iter().any(|r| r == rule),
            None => false,
        }
    }
}

/// One file's complete summary: comments (for suppressions), token-rule
/// findings (pre-computed for **all** rules; filtered at link time) and
/// per-function summaries in definition order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FileSummary {
    /// Directive (`vdsms-lint:`) comments, for the suppression pass.
    pub comments: Vec<Comment>,
    /// Token-rule findings, unconditional (every rule evaluated).
    pub token_findings: Vec<crate::rules::TokenFinding>,
    /// Function summaries in [`walk_fns`] order.
    pub fns: Vec<FnSummary>,
}

// ---------------------------------------------------------------------
// JSON serialization (compact arrays, short keys)
// ---------------------------------------------------------------------

fn jn(v: usize) -> Json {
    Json::num(v)
}

fn jline(p: Pos) -> Json {
    jn(p.line as usize)
}

fn jcol(p: Pos) -> Json {
    jn(p.col as usize)
}

fn jpos(p: Pos) -> Json {
    Json::Arr(vec![jline(p), jcol(p)])
}

fn jbool(b: bool) -> Json {
    Json::Bool(b)
}

fn rd_u32(v: &Json) -> Option<u32> {
    v.as_usize().and_then(|n| u32::try_from(n).ok())
}

fn rd_pos(l: &Json, c: &Json) -> Option<Pos> {
    Some(Pos::new(rd_u32(l)?, rd_u32(c)?))
}

fn rd_str(v: &Json) -> Option<String> {
    v.as_str().map(str::to_string)
}

fn site_json(s: &Site) -> Json {
    Json::Arr(vec![jline(s.pos), jcol(s.pos), Json::str(&s.what)])
}

fn rd_site(v: &Json) -> Option<Site> {
    let [l, c, w] = v.as_arr()? else { return None };
    Some(Site { pos: rd_pos(l, c)?, what: rd_str(w)? })
}

fn callref_json(c: &CallRef) -> Json {
    match c {
        CallRef::Path { segs, pos } => {
            let mut a = vec![Json::str("p"), jline(*pos), jcol(*pos)];
            a.extend(segs.iter().map(Json::str));
            Json::Arr(a)
        }
        CallRef::Method { recv_self, name, pos } => Json::Arr(vec![
            Json::str("m"),
            jline(*pos),
            jcol(*pos),
            jbool(*recv_self),
            Json::str(name),
        ]),
    }
}

fn rd_callref(v: &Json) -> Option<CallRef> {
    let a = v.as_arr()?;
    match a {
        [tag, l, c, rest @ ..] if tag.as_str() == Some("p") => Some(CallRef::Path {
            segs: rest.iter().map(rd_str).collect::<Option<Vec<_>>>()?,
            pos: rd_pos(l, c)?,
        }),
        [tag, l, c, rs, name] if tag.as_str() == Some("m") => Some(CallRef::Method {
            recv_self: rs.as_bool()?,
            name: rd_str(name)?,
            pos: rd_pos(l, c)?,
        }),
        _ => None,
    }
}

fn lock_event_json(e: &LockEvent) -> Json {
    match e {
        LockEvent::Direct { held, acquired, pos, note } => {
            let mut a = vec![
                Json::str("d"),
                jline(*pos),
                jcol(*pos),
                Json::str(acquired),
                Json::str(note),
            ];
            a.extend(held.iter().map(Json::str));
            Json::Arr(a)
        }
        LockEvent::Call { pos, held } => {
            let mut a = vec![Json::str("c"), jline(*pos), jcol(*pos)];
            a.extend(held.iter().map(Json::str));
            Json::Arr(a)
        }
    }
}

fn rd_lock_event(v: &Json) -> Option<LockEvent> {
    let a = v.as_arr()?;
    match a {
        [tag, l, c, acq, note, held @ ..] if tag.as_str() == Some("d") => Some(LockEvent::Direct {
            held: held.iter().map(rd_str).collect::<Option<Vec<_>>>()?,
            acquired: rd_str(acq)?,
            pos: rd_pos(l, c)?,
            note: rd_str(note)?,
        }),
        [tag, l, c, held @ ..] if tag.as_str() == Some("c") => Some(LockEvent::Call {
            pos: rd_pos(l, c)?,
            held: held.iter().map(rd_str).collect::<Option<Vec<_>>>()?,
        }),
        _ => None,
    }
}

fn discard_json(d: &Discard) -> Json {
    let call = match d.call {
        Some(i) => jn(i),
        None => Json::Null,
    };
    Json::Arr(vec![jline(d.pos), jcol(d.pos), Json::str(&d.what), call])
}

fn rd_discard(v: &Json) -> Option<Discard> {
    let [l, c, w, call] = v.as_arr()? else { return None };
    let call = match call {
        Json::Null => None,
        other => Some(other.as_usize()?),
    };
    Some(Discard { call, pos: rd_pos(l, c)?, what: rd_str(w)? })
}

fn tainted_arg_json(t: &TaintedArg) -> Json {
    let (kind, src) = match &t.src {
        TaintSrc::Direct(s) => (jn(0), Json::str(s)),
        TaintSrc::FromCall(i) => (jn(1), jn(*i)),
    };
    Json::Arr(vec![jn(t.call), jn(t.arg), jline(t.pos), jcol(t.pos), kind, src])
}

fn rd_tainted_arg(v: &Json) -> Option<TaintedArg> {
    let [call, arg, l, c, kind, src] = v.as_arr()? else { return None };
    let src = match kind.as_usize()? {
        0 => TaintSrc::Direct(rd_str(src)?),
        1 => TaintSrc::FromCall(src.as_usize()?),
        _ => return None,
    };
    Some(TaintedArg { call: call.as_usize()?, arg: arg.as_usize()?, pos: rd_pos(l, c)?, src })
}

fn spawn_json(sp: &SpawnSite) -> Json {
    let mut a = vec![jline(sp.pos), jcol(sp.pos)];
    a.extend(
        sp.captures
            .iter()
            .map(|c| Json::Arr(vec![jline(c.pos), jcol(c.pos), Json::str(&c.name)])),
    );
    Json::Arr(a)
}

fn rd_spawn(v: &Json) -> Option<SpawnSite> {
    let [l, c, rest @ ..] = v.as_arr()? else { return None };
    Some(SpawnSite {
        pos: rd_pos(l, c)?,
        captures: rest
            .iter()
            .map(|x| {
                let [l, c, n] = x.as_arr()? else { return None };
                Some(Capture { name: rd_str(n)?, pos: rd_pos(l, c)? })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

fn shared_val_json(sv: &SharedVal) -> Json {
    Json::Arr(vec![jn(sv.kind.code()), jline(sv.pos), jcol(sv.pos), Json::str(&sv.name)])
}

fn rd_shared_val(v: &Json) -> Option<SharedVal> {
    let [k, l, c, n] = v.as_arr()? else { return None };
    Some(SharedVal {
        name: rd_str(n)?,
        kind: SharedKind::from_code(k.as_usize()?)?,
        pos: rd_pos(l, c)?,
    })
}

fn channel_json(cb: &ChannelBind) -> Json {
    let cap = match cb.cap {
        Some(n) => jn(n as usize),
        None => Json::Null,
    };
    Json::Arr(vec![
        jbool(cb.sync),
        cap,
        jline(cb.pos),
        jcol(cb.pos),
        Json::str(&cb.tx),
        Json::str(&cb.rx),
    ])
}

fn rd_channel(v: &Json) -> Option<ChannelBind> {
    let [sync, cap, l, c, tx, rx] = v.as_arr()? else { return None };
    let cap = match cap {
        Json::Null => None,
        other => Some(other.as_usize()? as u64),
    };
    Some(ChannelBind {
        sync: sync.as_bool()?,
        cap,
        tx: rd_str(tx)?,
        rx: rd_str(rx)?,
        pos: rd_pos(l, c)?,
    })
}

fn chan_op_json(co: &ChanOp) -> Json {
    Json::Arr(vec![
        jn(co.op.code()),
        jline(co.pos),
        jcol(co.pos),
        jbool(co.in_loop),
        jbool(co.discarded),
        Json::str(&co.name),
    ])
}

fn rd_chan_op(v: &Json) -> Option<ChanOp> {
    let [op, l, c, il, di, n] = v.as_arr()? else { return None };
    Some(ChanOp {
        name: rd_str(n)?,
        op: ChanOpKind::from_code(op.as_usize()?)?,
        pos: rd_pos(l, c)?,
        in_loop: il.as_bool()?,
        discarded: di.as_bool()?,
    })
}

fn vec_json<T>(items: &[T], f: impl Fn(&T) -> Json) -> Json {
    Json::Arr(items.iter().map(f).collect())
}

fn rd_vec<T>(v: &Json, f: impl Fn(&Json) -> Option<T>) -> Option<Vec<T>> {
    v.as_arr()?.iter().map(f).collect()
}

fn fn_json(f: &FnSummary) -> Json {
    let mut o: Vec<(String, Json)> = Vec::new();
    let mut put = |k: &str, v: Json| o.push((k.to_string(), v));
    put("n", Json::str(&f.name));
    if let Some(t) = &f.self_ty {
        put("t", Json::str(t));
    }
    put("p", jpos(f.pos));
    put("x", jbool(f.is_test));
    if let Some(rules) = &f.entry {
        put("e", Json::Arr(rules.iter().map(Json::str).collect()));
    }
    put("r", jbool(f.returns_result));
    put("pc", jn(f.param_count));
    put("sf", jbool(f.has_self_param));
    put("c", vec_json(&f.calls, callref_json));
    put("pa", vec_json(&f.panic_sites, site_json));
    put("al", vec_json(&f.alloc_sites, site_json));
    put("ar", vec_json(&f.arith_sites, site_json));
    put("fl", vec_json(&f.float_sites, |p| jpos(*p)));
    put("dl", Json::Arr(f.direct_locks.iter().map(Json::str).collect()));
    put("le", vec_json(&f.lock_events, lock_event_json));
    put("sl", vec_json(&f.stalled_loops, site_json));
    put("rt", jbool(f.returns_taint));
    put("rc", Json::Arr(f.taint_return_calls.iter().map(|&i| jn(i)).collect()));
    put(
        "tl",
        vec_json(&f.taint_locals, |t| {
            Json::Arr(vec![jline(t.pos), jcol(t.pos), Json::str(&t.sink), Json::str(&t.src)])
        }),
    );
    put(
        "tc",
        vec_json(&f.taint_call_flows, |t| {
            Json::Arr(vec![jn(t.call), jline(t.pos), jcol(t.pos), Json::str(&t.sink)])
        }),
    );
    put(
        "ps",
        vec_json(&f.param_sinks, |t| {
            Json::Arr(vec![jn(t.param), jline(t.pos), jcol(t.pos), Json::str(&t.sink)])
        }),
    );
    put(
        "pk",
        vec_json(&f.param_sink_calls, |t| {
            Json::Arr(vec![jn(t.param), jn(t.call), jn(t.callee_param)])
        }),
    );
    put("ta", vec_json(&f.tainted_args, tainted_arg_json));
    put("di", vec_json(&f.discards, discard_json));
    put("sp", vec_json(&f.spawns, spawn_json));
    put("sv", vec_json(&f.shared_vals, shared_val_json));
    put("cb", vec_json(&f.channels, channel_json));
    put("cp", vec_json(&f.chan_ops, chan_op_json));
    put("bk", vec_json(&f.blocking, site_json));
    Json::Obj(o)
}

fn rd_fn(v: &Json) -> Option<FnSummary> {
    let pos = {
        let [l, c] = v.get("p")?.as_arr()? else { return None };
        rd_pos(l, c)?
    };
    let entry = match v.get("e") {
        Some(e) => Some(rd_vec(e, rd_str)?),
        None => None,
    };
    Some(FnSummary {
        name: rd_str(v.get("n")?)?,
        self_ty: match v.get("t") {
            Some(t) => Some(rd_str(t)?),
            None => None,
        },
        pos,
        is_test: v.get("x")?.as_bool()?,
        entry,
        returns_result: v.get("r")?.as_bool()?,
        param_count: v.get("pc")?.as_usize()?,
        has_self_param: v.get("sf")?.as_bool()?,
        calls: rd_vec(v.get("c")?, rd_callref)?,
        panic_sites: rd_vec(v.get("pa")?, rd_site)?,
        alloc_sites: rd_vec(v.get("al")?, rd_site)?,
        arith_sites: rd_vec(v.get("ar")?, rd_site)?,
        float_sites: rd_vec(v.get("fl")?, |p| {
            let [l, c] = p.as_arr()? else { return None };
            rd_pos(l, c)
        })?,
        direct_locks: rd_vec(v.get("dl")?, rd_str)?,
        lock_events: rd_vec(v.get("le")?, rd_lock_event)?,
        stalled_loops: rd_vec(v.get("sl")?, rd_site)?,
        returns_taint: v.get("rt")?.as_bool()?,
        taint_return_calls: rd_vec(v.get("rc")?, Json::as_usize)?,
        taint_locals: rd_vec(v.get("tl")?, |t| {
            let [l, c, sink, src] = t.as_arr()? else { return None };
            Some(TaintLocal { pos: rd_pos(l, c)?, sink: rd_str(sink)?, src: rd_str(src)? })
        })?,
        taint_call_flows: rd_vec(v.get("tc")?, |t| {
            let [call, l, c, sink] = t.as_arr()? else { return None };
            Some(TaintCallFlow { call: call.as_usize()?, pos: rd_pos(l, c)?, sink: rd_str(sink)? })
        })?,
        param_sinks: rd_vec(v.get("ps")?, |t| {
            let [p, l, c, sink] = t.as_arr()? else { return None };
            Some(ParamSink { param: p.as_usize()?, pos: rd_pos(l, c)?, sink: rd_str(sink)? })
        })?,
        param_sink_calls: rd_vec(v.get("pk")?, |t| {
            let [p, call, cp] = t.as_arr()? else { return None };
            Some(ParamSinkCall {
                param: p.as_usize()?,
                call: call.as_usize()?,
                callee_param: cp.as_usize()?,
            })
        })?,
        tainted_args: rd_vec(v.get("ta")?, rd_tainted_arg)?,
        discards: rd_vec(v.get("di")?, rd_discard)?,
        spawns: rd_vec(v.get("sp")?, rd_spawn)?,
        shared_vals: rd_vec(v.get("sv")?, rd_shared_val)?,
        channels: rd_vec(v.get("cb")?, rd_channel)?,
        chan_ops: rd_vec(v.get("cp")?, rd_chan_op)?,
        blocking: rd_vec(v.get("bk")?, rd_site)?,
    })
}

impl FileSummary {
    /// Serialize to the compact cache format.
    pub fn to_json(&self) -> String {
        let comments = vec_json(&self.comments, |c| {
            Json::Arr(vec![
                jn(c.line as usize),
                jn(c.end_line as usize),
                Json::str(&c.text),
            ])
        });
        let findings = vec_json(&self.token_findings, |t| {
            Json::Arr(vec![
                Json::str(&t.rule),
                jn(t.line as usize),
                jn(t.col as usize),
                Json::str(&t.message),
                jbool(t.root_forbid),
            ])
        });
        Json::Obj(vec![
            ("v".to_string(), jn(SUMMARY_VERSION as usize)),
            ("cm".to_string(), comments),
            ("tf".to_string(), findings),
            ("fn".to_string(), vec_json(&self.fns, fn_json)),
        ])
        .to_compact()
    }

    /// Parse the cache format; `None` on any mismatch (treated as a
    /// cache miss by the caller).
    ///
    /// The hot path is a strict [`Scan`] over the exact byte layout
    /// [`FileSummary::to_json`] writes — no intermediate value tree, so
    /// a warm cache load is dominated by string allocation rather than
    /// parsing. Anything the scanner does not recognize (reordered
    /// keys, pretty-printing, hand edits) falls back to the lenient
    /// tree parser before being declared a miss.
    pub fn from_json(text: &str) -> Option<FileSummary> {
        fast_from_json(text).or_else(|| Self::from_json_tree(text))
    }

    fn from_json_tree(text: &str) -> Option<FileSummary> {
        let v = Json::parse(text).ok()?;
        if v.get("v")?.as_usize()? != SUMMARY_VERSION as usize {
            return None;
        }
        Some(FileSummary {
            comments: rd_vec(v.get("cm")?, |c| {
                let [line, end_line, text] = c.as_arr()? else { return None };
                Some(Comment {
                    text: rd_str(text)?,
                    line: rd_u32(line)?,
                    end_line: rd_u32(end_line)?,
                })
            })?,
            token_findings: rd_vec(v.get("tf")?, |t| {
                let [rule, l, c, message, rf] = t.as_arr()? else { return None };
                Some(crate::rules::TokenFinding {
                    rule: rd_str(rule)?,
                    line: rd_u32(l)?,
                    col: rd_u32(c)?,
                    message: rd_str(message)?,
                    root_forbid: rf.as_bool()?,
                })
            })?,
            fns: rd_vec(v.get("fn")?, rd_fn)?,
        })
    }
}

// ---------------------------------------------------------------------
// Fast cache-format reader
// ---------------------------------------------------------------------
//
// A strict [`Scan`] mirror of `to_json`'s exact byte layout. Every
// helper here must stay in lockstep with its `*_json` counterpart
// above; `roundtrip` tests and the tree-parser fallback both guard the
// pairing.

use vdsms_json::Scan;

fn sc_u32(s: &mut Scan) -> Option<u32> {
    u32::try_from(s.usize_()?).ok()
}

fn sc_pos(s: &mut Scan) -> Option<Pos> {
    let line = sc_u32(s)?;
    s.lit(",")?;
    Some(Pos::new(line, sc_u32(s)?))
}

/// `[item,item,...]` with `f` reading each item.
fn sc_arr<T>(s: &mut Scan, f: impl Fn(&mut Scan) -> Option<T>) -> Option<Vec<T>> {
    s.lit("[")?;
    let mut out = Vec::new();
    if s.lit("]").is_some() {
        return Some(out);
    }
    loop {
        out.push(f(s)?);
        if s.lit(",").is_some() {
            continue;
        }
        s.lit("]")?;
        return Some(out);
    }
}

/// The trailing `,"str",...]` tail of an already-open array.
fn sc_str_tail(s: &mut Scan) -> Option<Vec<String>> {
    let mut out = Vec::new();
    loop {
        if s.lit("]").is_some() {
            return Some(out);
        }
        s.lit(",")?;
        out.push(s.string()?);
    }
}

fn sc_site(s: &mut Scan) -> Option<Site> {
    s.lit("[")?;
    let pos = sc_pos(s)?;
    s.lit(",")?;
    let what = s.string()?;
    s.lit("]")?;
    Some(Site { pos, what })
}

fn sc_callref(s: &mut Scan) -> Option<CallRef> {
    if s.lit("[\"p\",").is_some() {
        let pos = sc_pos(s)?;
        Some(CallRef::Path { segs: sc_str_tail(s)?, pos })
    } else {
        s.lit("[\"m\",")?;
        let pos = sc_pos(s)?;
        s.lit(",")?;
        let recv_self = s.bool_()?;
        s.lit(",")?;
        let name = s.string()?;
        s.lit("]")?;
        Some(CallRef::Method { recv_self, name, pos })
    }
}

fn sc_lock_event(s: &mut Scan) -> Option<LockEvent> {
    if s.lit("[\"d\",").is_some() {
        let pos = sc_pos(s)?;
        s.lit(",")?;
        let acquired = s.string()?;
        s.lit(",")?;
        let note = s.string()?;
        Some(LockEvent::Direct { held: sc_str_tail(s)?, acquired, pos, note })
    } else {
        s.lit("[\"c\",")?;
        let pos = sc_pos(s)?;
        Some(LockEvent::Call { pos, held: sc_str_tail(s)? })
    }
}

fn sc_discard(s: &mut Scan) -> Option<Discard> {
    s.lit("[")?;
    let pos = sc_pos(s)?;
    s.lit(",")?;
    let what = s.string()?;
    s.lit(",")?;
    let call = if s.lit("null").is_some() { None } else { Some(s.usize_()?) };
    s.lit("]")?;
    Some(Discard { call, pos, what })
}

fn sc_tainted_arg(s: &mut Scan) -> Option<TaintedArg> {
    s.lit("[")?;
    let call = s.usize_()?;
    s.lit(",")?;
    let arg = s.usize_()?;
    s.lit(",")?;
    let pos = sc_pos(s)?;
    s.lit(",")?;
    let src = match s.usize_()? {
        0 => {
            s.lit(",")?;
            TaintSrc::Direct(s.string()?)
        }
        1 => {
            s.lit(",")?;
            TaintSrc::FromCall(s.usize_()?)
        }
        _ => return None,
    };
    s.lit("]")?;
    Some(TaintedArg { call, arg, pos, src })
}

fn sc_spawn(s: &mut Scan) -> Option<SpawnSite> {
    s.lit("[")?;
    let pos = sc_pos(s)?;
    let mut captures = Vec::new();
    loop {
        if s.lit("]").is_some() {
            return Some(SpawnSite { pos, captures });
        }
        s.lit(",[")?;
        let pos = sc_pos(s)?;
        s.lit(",")?;
        let name = s.string()?;
        s.lit("]")?;
        captures.push(Capture { name, pos });
    }
}

fn sc_shared_val(s: &mut Scan) -> Option<SharedVal> {
    s.lit("[")?;
    let kind = SharedKind::from_code(s.usize_()?)?;
    s.lit(",")?;
    let pos = sc_pos(s)?;
    s.lit(",")?;
    let name = s.string()?;
    s.lit("]")?;
    Some(SharedVal { name, kind, pos })
}

fn sc_channel(s: &mut Scan) -> Option<ChannelBind> {
    s.lit("[")?;
    let sync = s.bool_()?;
    s.lit(",")?;
    let cap = if s.lit("null").is_some() { None } else { Some(s.usize_()? as u64) };
    s.lit(",")?;
    let pos = sc_pos(s)?;
    s.lit(",")?;
    let tx = s.string()?;
    s.lit(",")?;
    let rx = s.string()?;
    s.lit("]")?;
    Some(ChannelBind { sync, cap, tx, rx, pos })
}

fn sc_chan_op(s: &mut Scan) -> Option<ChanOp> {
    s.lit("[")?;
    let op = ChanOpKind::from_code(s.usize_()?)?;
    s.lit(",")?;
    let pos = sc_pos(s)?;
    s.lit(",")?;
    let in_loop = s.bool_()?;
    s.lit(",")?;
    let discarded = s.bool_()?;
    s.lit(",")?;
    let name = s.string()?;
    s.lit("]")?;
    Some(ChanOp { name, op, pos, in_loop, discarded })
}

fn sc_fn(s: &mut Scan) -> Option<FnSummary> {
    s.lit("{\"n\":")?;
    let name = s.string()?;
    let self_ty = if s.lit(",\"t\":").is_some() { Some(s.string()?) } else { None };
    s.lit(",\"p\":[")?;
    let pos = sc_pos(s)?;
    s.lit("],\"x\":")?;
    let is_test = s.bool_()?;
    let entry = if s.lit(",\"e\":[").is_some() {
        let mut rules = Vec::new();
        if s.lit("]").is_none() {
            loop {
                rules.push(s.string()?);
                if s.lit(",").is_some() {
                    continue;
                }
                s.lit("]")?;
                break;
            }
        }
        Some(rules)
    } else {
        None
    };
    s.lit(",\"r\":")?;
    let returns_result = s.bool_()?;
    s.lit(",\"pc\":")?;
    let param_count = s.usize_()?;
    s.lit(",\"sf\":")?;
    let has_self_param = s.bool_()?;
    s.lit(",\"c\":")?;
    let calls = sc_arr(s, sc_callref)?;
    s.lit(",\"pa\":")?;
    let panic_sites = sc_arr(s, sc_site)?;
    s.lit(",\"al\":")?;
    let alloc_sites = sc_arr(s, sc_site)?;
    s.lit(",\"ar\":")?;
    let arith_sites = sc_arr(s, sc_site)?;
    s.lit(",\"fl\":")?;
    let float_sites = sc_arr(s, |s| {
        s.lit("[")?;
        let p = sc_pos(s)?;
        s.lit("]")?;
        Some(p)
    })?;
    s.lit(",\"dl\":")?;
    let direct_locks = sc_arr(s, |s| s.string())?;
    s.lit(",\"le\":")?;
    let lock_events = sc_arr(s, sc_lock_event)?;
    s.lit(",\"sl\":")?;
    let stalled_loops = sc_arr(s, sc_site)?;
    s.lit(",\"rt\":")?;
    let returns_taint = s.bool_()?;
    s.lit(",\"rc\":")?;
    let taint_return_calls = sc_arr(s, |s| s.usize_())?;
    s.lit(",\"tl\":")?;
    let taint_locals = sc_arr(s, |s| {
        s.lit("[")?;
        let pos = sc_pos(s)?;
        s.lit(",")?;
        let sink = s.string()?;
        s.lit(",")?;
        let src = s.string()?;
        s.lit("]")?;
        Some(TaintLocal { pos, sink, src })
    })?;
    s.lit(",\"tc\":")?;
    let taint_call_flows = sc_arr(s, |s| {
        s.lit("[")?;
        let call = s.usize_()?;
        s.lit(",")?;
        let pos = sc_pos(s)?;
        s.lit(",")?;
        let sink = s.string()?;
        s.lit("]")?;
        Some(TaintCallFlow { call, pos, sink })
    })?;
    s.lit(",\"ps\":")?;
    let param_sinks = sc_arr(s, |s| {
        s.lit("[")?;
        let param = s.usize_()?;
        s.lit(",")?;
        let pos = sc_pos(s)?;
        s.lit(",")?;
        let sink = s.string()?;
        s.lit("]")?;
        Some(ParamSink { param, pos, sink })
    })?;
    s.lit(",\"pk\":")?;
    let param_sink_calls = sc_arr(s, |s| {
        s.lit("[")?;
        let param = s.usize_()?;
        s.lit(",")?;
        let call = s.usize_()?;
        s.lit(",")?;
        let callee_param = s.usize_()?;
        s.lit("]")?;
        Some(ParamSinkCall { param, call, callee_param })
    })?;
    s.lit(",\"ta\":")?;
    let tainted_args = sc_arr(s, sc_tainted_arg)?;
    s.lit(",\"di\":")?;
    let discards = sc_arr(s, sc_discard)?;
    s.lit(",\"sp\":")?;
    let spawns = sc_arr(s, sc_spawn)?;
    s.lit(",\"sv\":")?;
    let shared_vals = sc_arr(s, sc_shared_val)?;
    s.lit(",\"cb\":")?;
    let channels = sc_arr(s, sc_channel)?;
    s.lit(",\"cp\":")?;
    let chan_ops = sc_arr(s, sc_chan_op)?;
    s.lit(",\"bk\":")?;
    let blocking = sc_arr(s, sc_site)?;
    s.lit("}")?;
    Some(FnSummary {
        name,
        self_ty,
        pos,
        is_test,
        entry,
        returns_result,
        param_count,
        has_self_param,
        calls,
        panic_sites,
        alloc_sites,
        arith_sites,
        float_sites,
        direct_locks,
        lock_events,
        stalled_loops,
        returns_taint,
        taint_return_calls,
        taint_locals,
        taint_call_flows,
        param_sinks,
        param_sink_calls,
        tainted_args,
        discards,
        spawns,
        shared_vals,
        channels,
        chan_ops,
        blocking,
    })
}

fn fast_from_json(text: &str) -> Option<FileSummary> {
    let mut s = Scan::new(text);
    s.lit("{\"v\":")?;
    if s.usize_()? != SUMMARY_VERSION as usize {
        return None;
    }
    s.lit(",\"cm\":")?;
    let comments = sc_arr(&mut s, |s| {
        s.lit("[")?;
        let line = sc_u32(s)?;
        s.lit(",")?;
        let end_line = sc_u32(s)?;
        s.lit(",")?;
        let text = s.string()?;
        s.lit("]")?;
        Some(Comment { text, line, end_line })
    })?;
    s.lit(",\"tf\":")?;
    let token_findings = sc_arr(&mut s, |s| {
        s.lit("[")?;
        let rule = s.string()?;
        s.lit(",")?;
        let line = sc_u32(s)?;
        s.lit(",")?;
        let col = sc_u32(s)?;
        s.lit(",")?;
        let message = s.string()?;
        s.lit(",")?;
        let root_forbid = s.bool_()?;
        s.lit("]")?;
        Some(crate::rules::TokenFinding { rule, line, col, message, root_forbid })
    })?;
    s.lit(",\"fn\":")?;
    let fns = sc_arr(&mut s, sc_fn)?;
    s.lit("}")?;
    if !s.at_end() {
        return None;
    }
    Some(FileSummary { comments, token_findings, fns })
}

// ---------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------

/// Growth methods that (re)allocate on the receiver.
const ALLOC_METHODS: &[&str] = &[
    "append", "clone", "collect", "extend", "insert", "push", "push_back", "push_front",
    "reserve", "resize", "to_owned", "to_string", "to_vec",
];

/// `Type::ctor` associated calls that allocate.
const ALLOC_CTORS: &[(&str, &str)] =
    &[("Box", "new"), ("String", "from"), ("Vec", "from"), ("Vec", "with_capacity")];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Methods whose result advances a cursor or drains a source — progress
/// witnesses for `loop-progress`.
const DRAIN_METHODS: &[&str] = &[
    "advance", "bump", "next", "next_back", "pop", "pop_back", "pop_front", "recv",
    "recv_timeout", "seek", "skip", "try_recv",
];

/// Channel operations whose `Result` is always load-bearing: a
/// discarded send/recv error silently drops data, resolvable or not.
const CHANNEL_METHODS: &[&str] = &["recv", "send", "try_recv", "try_send"];

/// Methods that sanitize a tainted value for `taint-unchecked-flow`
/// (clamping, checked conversion, checked arithmetic).
fn is_sanitizer_method(method: &str) -> bool {
    matches!(method, "min" | "clamp" | "try_into") || method.starts_with("checked_")
}

/// Summarize one parsed file. Pure function of the file's bytes: no
/// configuration, no other files.
pub fn summarize(file: &SourceFile, lexed: &LexedFile, ast: &AstFile) -> FileSummary {
    let mut fns = Vec::new();
    walk_fns(&ast.items, &mut |self_ty, def| {
        fns.push(summarize_fn(self_ty, def));
    });
    FileSummary {
        // Only directive comments feed the link phase (suppressions and
        // their validation); doc comments would bloat every cache entry
        // for nothing.
        comments: lexed
            .comments
            .iter()
            .filter(|c| c.text.trim().starts_with("vdsms-lint:"))
            .cloned()
            .collect(),
        token_findings: crate::rules::token_findings(file, lexed),
        fns,
    }
}

fn summarize_fn(self_ty: Option<&str>, def: &crate::ast::FnDef) -> FnSummary {
    let mut f = FnSummary {
        name: def.name.clone(),
        self_ty: self_ty.map(str::to_string),
        pos: def.pos,
        is_test: def.is_test,
        entry: def.entry.clone(),
        returns_result: def.returns_result,
        param_count: def.params.len(),
        has_self_param: def.params.first().is_some_and(|p| p == "self"),
        ..FnSummary::default()
    };
    let Some(body) = &def.body else { return f };

    // Call sites, in walk order — the index space every cross-reference
    // below uses.
    walk_stmts(body, &mut |e: &Expr| match &e.kind {
        ExprKind::Call { callee, .. } => f.calls.push(CallRef::Path {
            segs: callee.as_path().map(<[String]>::to_vec).unwrap_or_default(),
            pos: e.pos,
        }),
        ExprKind::MethodCall { recv, method, .. } => f.calls.push(CallRef::Method {
            recv_self: matches!(recv.as_path(), Some([seg]) if seg == "self"),
            name: method.clone(),
            pos: e.pos,
        }),
        _ => {}
    });
    let mut call_at: BTreeMap<(u32, u32), usize> = BTreeMap::new();
    for (i, c) in f.calls.iter().enumerate() {
        let p = c.pos();
        call_at.entry((p.line, p.col)).or_insert(i);
    }

    // Panic / alloc / float sites and direct lock acquisitions.
    let mut direct_locks: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    walk_stmts(body, &mut |e: &Expr| {
        if let Some(what) = panic_site(e) {
            f.panic_sites.push(Site { pos: e.pos, what });
        }
        if let Some(what) = alloc_site(e) {
            f.alloc_sites.push(Site { pos: e.pos, what });
        }
        if let ExprKind::MethodCall { method, .. } = &e.kind {
            if method == "partial_cmp" {
                f.float_sites.push(e.pos);
            }
        }
        if let Some(name) = acquisition(e) {
            direct_locks.insert(name.to_string());
        }
    });
    f.direct_locks = direct_locks.into_iter().collect();

    // Local arithmetic taint (`no-unchecked-arith`).
    {
        let mut tainted: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut sites: Vec<(Pos, BinOp)> = Vec::new();
        check_arith_stmts(body, &mut tainted, &mut sites);
        f.arith_sites = sites
            .into_iter()
            .map(|(pos, op)| Site { pos, what: op.as_str().to_string() })
            .collect();
    }

    // Lock-acquisition events, statement-ordered.
    {
        let mut held: Held = Vec::new();
        lock_stmts(body, &mut held, &mut f.lock_events);
    }

    // Loops without a progress witness (`loop-progress`).
    walk_stmts(body, &mut |e: &Expr| {
        let (what, cond, loop_body) = match &e.kind {
            ExprKind::While { cond, body } => ("while", Some(cond.as_ref()), body),
            ExprKind::Loop { body } => ("loop", None, body),
            _ => return,
        };
        let mut progress = cond.is_some_and(has_progress_expr);
        if !progress {
            walk_stmts(loop_body, &mut |inner: &Expr| {
                if is_progress_witness(inner) {
                    progress = true;
                }
            });
        }
        if !progress {
            f.stalled_loops.push(Site { pos: e.pos, what: what.to_string() });
        }
    });

    // Thread/sync model: spawns + captures, shared-ownership values,
    // channel binds and endpoint operations, direct blocking sites.
    {
        let mut cw = ConcWalker {
            env: BTreeMap::new(),
            sync_txs: std::collections::BTreeSet::new(),
            loop_depth: 0,
            out: &mut f,
        };
        cw.scan_stmts(body);
    }

    // Untrusted-byte taint walk + discarded-`Result` scan.
    {
        let mut tw = TaintWalker { call_at: &call_at, env: BTreeMap::new(), out: &mut f };
        for (i, p) in def.params.iter().enumerate() {
            if p != "self" && p != "_" {
                tw.env.insert(p.clone(), Origin::Param(i));
            }
        }
        tw.scan_stmts(body, true);
    }
    f
}

/// Classify a panic site; returns the description.
fn panic_site(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { recv, method, .. } => match method.as_str() {
            "unwrap" | "expect" => Some(format!("`.{method}()`")),
            "clone" if matches!(recv.kind, ExprKind::Index { .. }) => {
                Some("indexing followed by `.clone()`".to_string())
            }
            _ => None,
        },
        ExprKind::MacroCall { name, .. }
            if matches!(name.as_str(), "panic" | "todo" | "unimplemented") =>
        {
            Some(format!("`{name}!`"))
        }
        _ => None,
    }
}

/// Classify a heap-allocation site; returns the description.
fn alloc_site(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { method, .. } if ALLOC_METHODS.contains(&method.as_str()) => {
            Some(format!("`.{method}(…)`"))
        }
        ExprKind::Call { callee, .. } => {
            let segs = callee.as_path()?;
            let [.., ty, ctor] = segs else { return None };
            ALLOC_CTORS
                .iter()
                .any(|(t, c)| t == ty && c == ctor)
                .then(|| format!("`{ty}::{ctor}(…)`"))
        }
        ExprKind::MacroCall { name, .. } if ALLOC_MACROS.contains(&name.as_str()) => {
            Some(format!("`{name}!`"))
        }
        _ => None,
    }
}

/// A lock acquisition: `recv.lock()` / `.read()` / `.write()` with no
/// arguments. Returns the lock identity (last name of the receiver
/// chain).
fn acquisition(e: &Expr) -> Option<&str> {
    let ExprKind::MethodCall { recv, method, args } = &e.kind else {
        return None;
    };
    if !matches!(method.as_str(), "lock" | "read" | "write") || !args.is_empty() {
        return None;
    }
    recv.chain_name()
}

fn method_of(e: &Expr) -> &str {
    match &e.kind {
        ExprKind::MethodCall { method, .. } => method,
        _ => "?",
    }
}

// ----- lock-event walk (mirrors the old interleaved flow walk) -------

/// The held-guard stack: lock identity plus the `let` binding that
/// owns the guard (`None` for guards live only within one statement),
/// so an explicit `drop(binding)` statement can release it.
type Held = Vec<(String, Option<String>)>;

fn lock_stmts(stmts: &[Stmt], held: &mut Held, events: &mut Vec<LockEvent>) {
    for stmt in stmts {
        match stmt {
            Stmt::Let { name, init: Some(e), .. } => {
                lock_expr_events(e, held, events);
                lock_nested(e, held, events);
                // Guards bound by `let` stay held for the rest of the
                // enclosing block (straight-line acquisitions only),
                // tagged with the binding name so `drop(g)` releases
                // them.
                let mut acquired: Vec<String> = Vec::new();
                straight_line_acquisitions(e, &mut acquired);
                for a in acquired {
                    held.push((a, name.clone()));
                }
            }
            Stmt::Let { .. } | Stmt::Item(_) => continue,
            Stmt::Expr(e, _) => {
                lock_expr_events(e, held, events);
                lock_nested(e, held, events);
                // `drop(g);` ends g's guards for the rest of the block.
                // Path-insensitive like the rest of the walk: a drop in
                // a conditional branch counts as a release, trading a
                // missed exotic bug for zero false fire on the common
                // `lock → work → drop → block` sequence.
                if let Some(owner) = dropped_binding(e) {
                    held.retain(|(_, o)| o.as_deref() != Some(owner));
                }
            }
        }
    }
}

/// `drop(x)` in statement position: the binding whose guards die.
fn dropped_binding(e: &Expr) -> Option<&str> {
    let ExprKind::Call { callee, args } = &e.kind else { return None };
    let [.., last] = callee.as_path()? else { return None };
    if last != "drop" {
        return None;
    }
    let [arg] = args.as_slice() else { return None };
    let ExprKind::Path(p) = &arg.kind else { return None };
    let [name] = p.as_slice() else { return None };
    Some(name)
}

fn lock_expr_events(e: &Expr, held: &Held, events: &mut Vec<LockEvent>) {
    let mut stmt_locks: Vec<String> = Vec::new();
    lock_straight(e, held, &mut stmt_locks, events);
}

fn lock_straight(
    e: &Expr,
    held: &Held,
    stmt_locks: &mut Vec<String>,
    events: &mut Vec<LockEvent>,
) {
    // Control-flow boundary: only the eagerly-evaluated head expression
    // belongs to this statement's straight line.
    let head: Option<&Expr> = match &e.kind {
        ExprKind::Block(_) | ExprKind::Loop { .. } | ExprKind::Closure(_) => return,
        ExprKind::If { cond, .. } | ExprKind::While { cond, .. } => Some(cond),
        ExprKind::For { iter, .. } => Some(iter),
        ExprKind::Match { scrutinee, .. } => Some(scrutinee),
        _ => None,
    };
    if let Some(head) = head {
        lock_straight(head, held, stmt_locks, events);
        return;
    }
    if let Some(name) = acquisition(e) {
        let snapshot: Vec<String> =
            held.iter().map(|(l, _)| l.clone()).chain(stmt_locks.iter().cloned()).collect();
        if !snapshot.is_empty() {
            events.push(LockEvent::Direct {
                held: snapshot,
                acquired: name.to_string(),
                pos: e.pos,
                note: format!("direct `.{}()` acquisition", method_of(e)),
            });
        }
        stmt_locks.push(name.to_string());
    }
    if matches!(&e.kind, ExprKind::Call { .. } | ExprKind::MethodCall { .. }) {
        let snapshot: Vec<String> =
            held.iter().map(|(l, _)| l.clone()).chain(stmt_locks.iter().cloned()).collect();
        if !snapshot.is_empty() {
            events.push(LockEvent::Call { pos: e.pos, held: snapshot });
        }
    }
    let mut children: Vec<&Expr> = Vec::new();
    collect_children(e, &mut children);
    for c in children {
        lock_straight(c, held, stmt_locks, events);
    }
}

/// Append the lock names acquired on `e`'s straight line — the guards a
/// `let` binding keeps alive for the rest of its block.
fn straight_line_acquisitions(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Block(_)
        | ExprKind::Loop { .. }
        | ExprKind::Closure(_)
        | ExprKind::If { .. }
        | ExprKind::While { .. }
        | ExprKind::For { .. }
        | ExprKind::Match { .. } => return,
        _ => {}
    }
    if let Some(name) = acquisition(e) {
        out.push(name.to_string());
    }
    let mut children: Vec<&Expr> = Vec::new();
    collect_children(e, &mut children);
    for c in children {
        straight_line_acquisitions(c, out);
    }
}

/// Recurse into block-bearing sub-expressions with held-stack
/// save/restore, so `let` guards bound inside a nested block or branch
/// do not leak out.
fn lock_nested(e: &Expr, held: &mut Held, events: &mut Vec<LockEvent>) {
    let mut recurse = |stmts: &[Stmt], held: &mut Held| {
        let depth = held.len();
        lock_stmts(stmts, held, events);
        held.truncate(depth);
    };
    match &e.kind {
        ExprKind::Block(stmts) | ExprKind::Loop { body: stmts } => recurse(stmts, held),
        ExprKind::If { then, alt, .. } => {
            recurse(then, held);
            if let Some(a) = alt {
                lock_nested(a, held, events);
            }
        }
        ExprKind::While { body, .. } | ExprKind::For { body, .. } => recurse(body, held),
        ExprKind::Match { arms, .. } => {
            for arm in arms {
                let depth = held.len();
                lock_expr_events(arm, held, events);
                lock_nested(arm, held, events);
                held.truncate(depth);
            }
        }
        ExprKind::Closure(body) => {
            let depth = held.len();
            lock_expr_events(body, held, events);
            lock_nested(body, held, events);
            held.truncate(depth);
        }
        _ => {}
    }
}

/// Direct sub-expressions of `e` (one level).
fn collect_children<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match &e.kind {
        ExprKind::Unary(x) | ExprKind::Ref(x) | ExprKind::Try(x) | ExprKind::Closure(x) => {
            out.push(x)
        }
        ExprKind::Call { callee, args } => {
            out.push(callee);
            out.extend(args.iter());
        }
        ExprKind::MethodCall { recv, args, .. } => {
            out.push(recv);
            out.extend(args.iter());
        }
        ExprKind::MacroCall { args, .. } => out.extend(args.iter()),
        ExprKind::Field { base, .. } => out.push(base),
        ExprKind::Index { base, index } => {
            out.push(base);
            out.push(index);
        }
        ExprKind::Cast { expr, .. } => out.push(expr),
        ExprKind::Struct { fields, .. } => out.extend(fields.iter()),
        ExprKind::Tuple(xs) => out.extend(xs.iter()),
        ExprKind::Range { lo, hi } => {
            out.extend(lo.as_deref());
            out.extend(hi.as_deref());
        }
        ExprKind::Return(x) | ExprKind::Jump(x) => out.extend(x.as_deref()),
        _ => {}
    }
}

// ----- local arithmetic taint (unchanged semantics from flow v2) -----

fn check_arith_stmts(
    stmts: &[Stmt],
    tainted: &mut std::collections::BTreeSet<String>,
    sites: &mut Vec<(Pos, BinOp)>,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Let { name, init, .. } => {
                if let Some(e) = init {
                    check_arith_expr(e, tainted, sites);
                    if let Some(n) = name {
                        if expr_tainted(e, tainted) {
                            tainted.insert(n.clone());
                        }
                    }
                }
            }
            Stmt::Expr(e, _) => check_arith_expr(e, tainted, sites),
            Stmt::Item(_) => {}
        }
    }
}

fn check_arith_expr(
    e: &Expr,
    tainted: &mut std::collections::BTreeSet<String>,
    sites: &mut Vec<(Pos, BinOp)>,
) {
    match &e.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            if op.can_overflow()
                && (operand_unsanitized(lhs, tainted) || operand_unsanitized(rhs, tainted))
            {
                sites.push((e.pos, *op));
            }
            check_arith_expr(lhs, tainted, sites);
            check_arith_expr(rhs, tainted, sites);
        }
        ExprKind::Assign { target, op, value } => {
            check_arith_expr(value, tainted, sites);
            if let Some(op) = op {
                if op.can_overflow() && operand_unsanitized(value, tainted) {
                    sites.push((e.pos, *op));
                }
            }
            if let ExprKind::Path(p) = &target.kind {
                if let [name] = p.as_slice() {
                    if expr_tainted(value, tainted) || (op.is_some() && tainted.contains(name)) {
                        tainted.insert(name.clone());
                    } else {
                        tainted.remove(name);
                    }
                }
            }
        }
        ExprKind::Block(stmts) | ExprKind::Loop { body: stmts } => {
            check_arith_stmts(stmts, tainted, sites)
        }
        ExprKind::If { cond, then, alt } => {
            check_arith_expr(cond, tainted, sites);
            check_arith_stmts(then, tainted, sites);
            if let Some(a) = alt {
                check_arith_expr(a, tainted, sites);
            }
        }
        ExprKind::While { cond, body } => {
            check_arith_expr(cond, tainted, sites);
            check_arith_stmts(body, tainted, sites);
        }
        ExprKind::For { iter, body } => {
            check_arith_expr(iter, tainted, sites);
            check_arith_stmts(body, tainted, sites);
        }
        ExprKind::Match { scrutinee, arms } => {
            check_arith_expr(scrutinee, tainted, sites);
            for a in arms {
                check_arith_expr(a, tainted, sites);
            }
        }
        _ => {
            let mut children: Vec<&Expr> = Vec::new();
            collect_children(e, &mut children);
            for c in children {
                check_arith_expr(c, tainted, sites);
            }
        }
    }
}

/// Taint source: a `get_*` / `read_*` method call (stream-byte reads).
fn is_taint_source(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::MethodCall { method, .. } => {
            method.starts_with("get_") || method.starts_with("read_")
        }
        ExprKind::Try(inner) => is_taint_source(inner),
        _ => false,
    }
}

fn expr_tainted(e: &Expr, tainted: &std::collections::BTreeSet<String>) -> bool {
    if is_taint_source(e) {
        return true;
    }
    match &e.kind {
        ExprKind::Path(p) => matches!(p.as_slice(), [name] if tainted.contains(name)),
        ExprKind::Try(x) | ExprKind::Unary(x) | ExprKind::Ref(x) => expr_tainted(x, tainted),
        ExprKind::Index { base, .. } => expr_tainted(base, tainted),
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_tainted(lhs, tainted) || expr_tainted(rhs, tainted)
        }
        ExprKind::Cast { expr, .. } => expr_tainted(expr, tainted),
        _ => false,
    }
}

fn operand_unsanitized(e: &Expr, tainted: &std::collections::BTreeSet<String>) -> bool {
    match &e.kind {
        ExprKind::Cast { .. } => false,
        ExprKind::Ref(x) | ExprKind::Try(x) => operand_unsanitized(x, tainted),
        _ => expr_tainted(e, tainted),
    }
}

// ----- loop-progress witnesses ---------------------------------------

/// Whether one expression (anywhere in a loop body) witnesses forward
/// progress: a non-zero `+=`/`-=`, a re-assignment derived from the
/// target itself (`i = i + 1`), or a cursor-advancing method call.
fn is_progress_witness(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Assign { op: Some(BinOp::Add | BinOp::Sub), value, .. } => {
            value.int_value() != Some(0)
        }
        ExprKind::Assign { target, op: None, value } => {
            let Some(t) = target.chain_name() else { return false };
            let mut derived = false;
            crate::ast::walk_expr(value, &mut |inner: &Expr| {
                if let ExprKind::Binary { op: BinOp::Add | BinOp::Sub, lhs, rhs } = &inner.kind {
                    if lhs.chain_name() == Some(t) || rhs.chain_name() == Some(t) {
                        derived = true;
                    }
                }
            });
            derived
        }
        ExprKind::MethodCall { method, .. } => {
            DRAIN_METHODS.contains(&method.as_str())
                || method.starts_with("get_")
                || method.starts_with("read_")
                || method.starts_with("next_")
        }
        _ => false,
    }
}

/// Whether a `while` condition itself witnesses progress (e.g.
/// `while let Some(x) = iter.next()`).
fn has_progress_expr(cond: &Expr) -> bool {
    let mut progress = false;
    crate::ast::walk_expr(cond, &mut |e: &Expr| {
        if is_progress_witness(e) {
            progress = true;
        }
    });
    progress
}

// ----- thread/sync model walk ----------------------------------------

/// Channel send/recv method → op kind, gated on the expected arity so
/// unrelated methods sharing a name (`str::join`-style) don't count.
fn chan_op_kind(method: &str, argc: usize) -> Option<ChanOpKind> {
    match (method, argc) {
        ("send", 1) | ("try_send", 1) => Some(ChanOpKind::Send),
        ("recv", 0) | ("try_recv", 0) | ("recv_timeout", 1) => Some(ChanOpKind::Recv),
        _ => None,
    }
}

/// `channel()` / `sync_channel(n)` constructor call → (sync, literal
/// bound). Matched by trailing path segment, so `mpsc::channel`,
/// `sync::channel` and a bare `channel` all count.
fn channel_ctor(e: &Expr) -> Option<(bool, Option<u64>)> {
    let ExprKind::Call { callee, args } = &e.kind else { return None };
    let [.., last] = callee.as_path()? else { return None };
    match last.as_str() {
        "channel" if args.is_empty() => Some((false, None)),
        "sync_channel" if args.len() == 1 => Some((true, args[0].int_value())),
        _ => None,
    }
}

/// Classification of an `Arc::new(inner)` payload.
fn arc_payload_kind(args: &[Expr]) -> SharedKind {
    let Some(inner) = args.first() else { return SharedKind::ArcPlain };
    let ExprKind::Call { callee, .. } = &inner.kind else { return SharedKind::ArcPlain };
    let Some([.., ty, ctor]) = callee.as_path() else { return SharedKind::ArcPlain };
    if ctor != "new" && ctor != "default" {
        return SharedKind::ArcPlain;
    }
    match ty.as_str() {
        "Mutex" => SharedKind::ArcMutex,
        "RwLock" => SharedKind::ArcRwLock,
        "RefCell" | "Cell" | "UnsafeCell" => SharedKind::ArcCell,
        t if t.starts_with("Atomic") => SharedKind::ArcAtomic,
        _ => SharedKind::ArcPlain,
    }
}

/// Every `let`-bound name under a statement list (closure-local
/// bindings shadow would-be captures).
fn let_names_stmts(stmts: &[Stmt], out: &mut std::collections::BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::Let { name, tuple, init, .. } => {
                if let Some(n) = name {
                    out.insert(n.clone());
                }
                out.extend(tuple.iter().cloned());
                if let Some(e) = init {
                    let_names_expr(e, out);
                }
            }
            Stmt::Expr(e, _) => let_names_expr(e, out),
            Stmt::Item(_) => {}
        }
    }
}

fn let_names_expr(e: &Expr, out: &mut std::collections::BTreeSet<String>) {
    match &e.kind {
        ExprKind::Block(stmts) | ExprKind::Loop { body: stmts } => let_names_stmts(stmts, out),
        ExprKind::If { cond, then, alt } => {
            let_names_expr(cond, out);
            let_names_stmts(then, out);
            if let Some(a) = alt {
                let_names_expr(a, out);
            }
        }
        ExprKind::While { cond, body } => {
            let_names_expr(cond, out);
            let_names_stmts(body, out);
        }
        ExprKind::For { iter, body } => {
            let_names_expr(iter, out);
            let_names_stmts(body, out);
        }
        ExprKind::Match { scrutinee, arms } => {
            let_names_expr(scrutinee, out);
            for a in arms {
                let_names_expr(a, out);
            }
        }
        _ => {
            let mut children: Vec<&Expr> = Vec::new();
            collect_children(e, &mut children);
            for c in children {
                let_names_expr(c, out);
            }
        }
    }
}

struct ConcWalker<'a> {
    /// Shared-ownership bindings seen so far (flat scope — shadowing is
    /// tolerated, consistent with the lock-identity scheme).
    env: BTreeMap<String, SharedKind>,
    /// Senders of locally-bound `sync_channel`s: their `send` blocks.
    sync_txs: std::collections::BTreeSet<String>,
    loop_depth: u32,
    out: &'a mut FnSummary,
}

impl ConcWalker<'_> {
    fn scan_stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Let { name, tuple, init: Some(e), .. } => {
                    if let Some(n) = name {
                        if let Some(kind) = self.classify_shared(e) {
                            self.out.shared_vals.push(SharedVal {
                                name: n.clone(),
                                kind,
                                pos: e.pos,
                            });
                            self.env.insert(n.clone(), kind);
                        }
                    }
                    if let [tx, rx] = tuple.as_slice() {
                        if let Some((sync, cap)) = channel_ctor(e) {
                            if sync {
                                self.sync_txs.insert(tx.clone());
                            }
                            self.out.channels.push(ChannelBind {
                                sync,
                                cap,
                                tx: tx.clone(),
                                rx: rx.clone(),
                                pos: e.pos,
                            });
                        }
                    }
                    self.scan_expr(e, false);
                }
                Stmt::Let { .. } | Stmt::Item(_) => {}
                // A semicolon-less tail is the block's value, not a
                // discarded statement — the wrapper-delegation idiom
                // (`fn send(…) -> … { self.0.send(v) }`) returns the
                // `Result` instead of dropping it.
                Stmt::Expr(e, semi) => self.scan_expr(e, *semi),
            }
        }
    }

    /// The shared-ownership classification of a `let` initializer, if
    /// it creates or clones an `Arc`/`Rc`.
    fn classify_shared(&self, e: &Expr) -> Option<SharedKind> {
        match &e.kind {
            ExprKind::Call { callee, args } => match callee.as_path()? {
                [.., ty, ctor] if ty == "Arc" && ctor == "new" => Some(arc_payload_kind(args)),
                [.., ty, ctor] if ty == "Rc" && ctor == "new" => Some(SharedKind::Rc),
                // `Arc::clone(&x)` inherits `x`'s classification.
                [.., ty, ctor] if (ty == "Arc" || ty == "Rc") && ctor == "clone" => {
                    self.env.get(args.first()?.chain_name()?).copied()
                }
                _ => None,
            },
            // `x.clone()` on a known shared value inherits too.
            ExprKind::MethodCall { recv, method, args }
                if method == "clone" && args.is_empty() =>
            {
                self.env.get(recv.chain_name()?).copied()
            }
            _ => None,
        }
    }

    fn scan_expr(&mut self, e: &Expr, stmt_root: bool) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                if let Some([.., last]) = callee.as_path() {
                    if last == "drop" {
                        if let [arg] = args.as_slice() {
                            if let Some(name) = arg.chain_name() {
                                self.out.chan_ops.push(ChanOp {
                                    name: name.to_string(),
                                    op: ChanOpKind::Drop,
                                    pos: e.pos,
                                    in_loop: self.loop_depth > 0,
                                    discarded: false,
                                });
                            }
                        }
                    }
                    if last == "spawn" {
                        self.record_spawn(e.pos, args);
                    }
                }
                self.scan_expr(callee, false);
                for a in args {
                    self.scan_expr(a, false);
                }
            }
            ExprKind::MethodCall { recv, method, args } => {
                if method == "spawn" {
                    self.record_spawn(e.pos, args);
                }
                if let Some(op) = chan_op_kind(method, args.len()) {
                    if let Some(name) = recv.chain_name() {
                        self.out.chan_ops.push(ChanOp {
                            name: name.to_string(),
                            op,
                            pos: e.pos,
                            in_loop: self.loop_depth > 0,
                            discarded: stmt_root && op == ChanOpKind::Send,
                        });
                        if let Some(what) = self.blocking_desc(name, method) {
                            self.out.blocking.push(Site { pos: e.pos, what });
                        }
                    }
                }
                // Thread-handle join. The zero-arg gate keeps
                // `slice::join(sep)` and friends out.
                if method == "join" && args.is_empty() {
                    self.out.blocking.push(Site { pos: e.pos, what: "`.join()`".to_string() });
                }
                self.scan_expr(recv, false);
                for a in args {
                    self.scan_expr(a, false);
                }
            }
            ExprKind::Block(stmts) => self.scan_stmts(stmts),
            ExprKind::Loop { body } => {
                self.loop_depth += 1;
                self.scan_stmts(body);
                self.loop_depth -= 1;
            }
            // A `while` head re-evaluates every iteration
            // (`while let Ok(v) = rx.recv()`), a `for` head once.
            ExprKind::While { cond, body } => {
                self.loop_depth += 1;
                self.scan_expr(cond, false);
                self.scan_stmts(body);
                self.loop_depth -= 1;
            }
            ExprKind::For { iter, body } => {
                self.scan_expr(iter, false);
                self.loop_depth += 1;
                self.scan_stmts(body);
                self.loop_depth -= 1;
            }
            ExprKind::If { cond, then, alt } => {
                self.scan_expr(cond, false);
                self.scan_stmts(then);
                if let Some(a) = alt {
                    self.scan_expr(a, false);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.scan_expr(scrutinee, false);
                for a in arms {
                    self.scan_expr(a, false);
                }
            }
            _ => {
                let mut children: Vec<&Expr> = Vec::new();
                collect_children(e, &mut children);
                for c in children {
                    self.scan_expr(c, false);
                }
            }
        }
    }

    /// Whether a channel op blocks: every `recv`/`recv_timeout`, and
    /// `send` on a locally-bound `sync_channel` sender. `Condvar::wait`
    /// is deliberately absent — waiting is the one blocking call that
    /// must hold its guard.
    fn blocking_desc(&self, name: &str, method: &str) -> Option<String> {
        match method {
            "recv" | "recv_timeout" => Some(format!("`.{method}()`")),
            "send" if self.sync_txs.contains(name) => {
                Some("`.send(…)` on a bounded channel".to_string())
            }
            _ => None,
        }
    }

    /// Record a spawn site whose argument list contains a closure,
    /// collecting capture candidates: lowercase single-ident names used
    /// in the closure body and not `let`-bound inside it. Matching
    /// against the spawning scope's bindings happens at link time, so
    /// stray names (free functions, enum variants) simply never match.
    fn record_spawn(&mut self, pos: Pos, args: &[Expr]) {
        let Some(body) = args.iter().find_map(|a| match &a.kind {
            ExprKind::Closure(b) => Some(b.as_ref()),
            _ => None,
        }) else {
            return;
        };
        let mut local: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let_names_expr(body, &mut local);
        let mut captures: Vec<Capture> = Vec::new();
        crate::ast::walk_expr(body, &mut |x: &Expr| {
            let ExprKind::Path(p) = &x.kind else { return };
            let [name] = p.as_slice() else { return };
            if name == "self"
                || name == "_"
                || name.starts_with(|c: char| c.is_ascii_uppercase())
                || local.contains(name)
                || captures.iter().any(|c| &c.name == name)
            {
                return;
            }
            captures.push(Capture { name: name.clone(), pos: x.pos });
        });
        self.out.spawns.push(SpawnSite { pos, captures });
    }
}

// ----- untrusted-byte taint walker -----------------------------------

/// Where a value's taint (if any) came from.
#[derive(Debug, Clone, PartialEq)]
enum Origin {
    /// Directly from a source expression.
    Source(String),
    /// From the return of call site `calls[i]`.
    Call(usize),
    /// From parameter `i` of the enclosing function.
    Param(usize),
}

struct TaintWalker<'a> {
    call_at: &'a BTreeMap<(u32, u32), usize>,
    env: BTreeMap<String, Origin>,
    out: &'a mut FnSummary,
}

impl TaintWalker<'_> {
    fn call_idx(&self, pos: Pos) -> Option<usize> {
        self.call_at.get(&(pos.line, pos.col)).copied()
    }

    fn scan_stmts(&mut self, stmts: &[Stmt], is_fn_tail: bool) {
        for (i, stmt) in stmts.iter().enumerate() {
            let last = i + 1 == stmts.len();
            match stmt {
                Stmt::Let { name, init, .. } => {
                    if let Some(e) = init {
                        self.scan_expr(e);
                        if name.as_deref() == Some("_") {
                            self.record_let_discard(e);
                        } else if let Some(n) = name {
                            match self.expr_origin(e) {
                                Some(o) => {
                                    self.env.insert(n.clone(), o);
                                }
                                None => {
                                    self.env.remove(n);
                                }
                            }
                        }
                    }
                }
                Stmt::Expr(e, _) => {
                    self.scan_expr(e);
                    if !last {
                        self.record_ok_discard(e);
                    }
                    if last && is_fn_tail {
                        self.record_return_taint(e);
                    }
                }
                Stmt::Item(_) => {}
            }
        }
    }

    /// Walk one expression: record sinks and tainted call arguments
    /// (pre-order, against the current environment), recurse with
    /// control-flow awareness, then apply comparison/membership clears
    /// (post-order, so a sink *inside* a comparison still fires).
    fn scan_expr(&mut self, e: &Expr) {
        self.record_sinks(e);
        self.record_call_args(e);
        match &e.kind {
            ExprKind::Block(stmts) => self.scan_stmts(stmts, false),
            ExprKind::Loop { body } => self.scan_stmts(body, false),
            ExprKind::If { cond, then, alt } => {
                self.scan_expr(cond);
                self.scan_stmts(then, false);
                if let Some(a) = alt {
                    self.scan_expr(a);
                }
            }
            ExprKind::While { cond, body } => {
                self.scan_expr(cond);
                self.scan_stmts(body, false);
            }
            ExprKind::For { iter, body } => {
                self.scan_expr(iter);
                self.scan_stmts(body, false);
            }
            ExprKind::Match { scrutinee, arms } => {
                self.scan_expr(scrutinee);
                for a in arms {
                    self.scan_expr(a);
                }
            }
            ExprKind::Assign { target, op, value } => {
                self.scan_expr(value);
                if let ExprKind::Path(p) = &target.kind {
                    if let [name] = p.as_slice() {
                        match (self.expr_origin(value), op) {
                            (Some(o), _) => {
                                self.env.insert(name.clone(), o);
                            }
                            (None, None) => {
                                self.env.remove(name);
                            }
                            (None, Some(_)) => {} // compound op keeps prior origin
                        }
                    }
                }
            }
            ExprKind::Return(x) => {
                if let Some(x) = x {
                    self.scan_expr(x);
                    self.record_return_taint(x);
                }
            }
            _ => {
                let mut children: Vec<&Expr> = Vec::new();
                collect_children(e, &mut children);
                for c in children {
                    self.scan_expr(c);
                }
            }
        }
        // Post-order clears: a comparison or membership test is the
        // bounds check the rule is looking for.
        match &e.kind {
            ExprKind::Binary { op: BinOp::Cmp, lhs, rhs } => {
                for side in [lhs, rhs] {
                    if let Some(n) = side.chain_name() {
                        self.env.remove(n);
                    }
                }
            }
            ExprKind::MethodCall { method, args, .. }
                if matches!(method.as_str(), "contains" | "contains_key") =>
            {
                for a in args {
                    if let Some(n) = a.chain_name() {
                        self.env.remove(n);
                    }
                }
            }
            _ => {}
        }
    }

    /// The taint origin of a value expression, if any.
    fn expr_origin(&self, e: &Expr) -> Option<Origin> {
        match &e.kind {
            ExprKind::MethodCall { method, .. } => {
                if method.starts_with("get_") || method.starts_with("read_") {
                    return Some(Origin::Source(format!("`.{method}()`")));
                }
                if is_sanitizer_method(method) {
                    return None;
                }
                self.call_idx(e.pos).map(Origin::Call)
            }
            ExprKind::Call { callee, args } => {
                // `Ok(x)` / `Some(x)` wrap without laundering.
                if let Some([name]) = callee.as_path() {
                    if matches!(name.as_str(), "Ok" | "Some") && args.len() == 1 {
                        return self.expr_origin(&args[0]);
                    }
                }
                self.call_idx(e.pos).map(Origin::Call)
            }
            ExprKind::Path(p) => match p.as_slice() {
                [name] => self.env.get(name).cloned(),
                _ => None,
            },
            ExprKind::Field { base, name } => {
                if name.ends_with("_len") || name.ends_with("_count") {
                    return Some(Origin::Source(format!("`.{name}` field")));
                }
                self.expr_origin(base)
            }
            ExprKind::Try(x) | ExprKind::Unary(x) | ExprKind::Ref(x) => self.expr_origin(x),
            // Casts do NOT sanitize here: `len as usize` still carries
            // an attacker-chosen magnitude into a capacity or index.
            ExprKind::Cast { expr, .. } => self.expr_origin(expr),
            ExprKind::Binary { op, lhs, rhs } => match op {
                // Comparison yields a bool; `%`, `&&`, `||` bound or
                // consume the value.
                BinOp::Cmp | BinOp::And | BinOp::Or | BinOp::Rem => None,
                _ => self.expr_origin(lhs).or_else(|| self.expr_origin(rhs)),
            },
            ExprKind::Index { base, .. } => self.expr_origin(base),
            ExprKind::Struct { fields, .. } => {
                fields.iter().find_map(|f| self.expr_origin(f))
            }
            _ => None,
        }
    }

    fn record_sink(&mut self, origin: Origin, pos: Pos, sink: &str) {
        match origin {
            Origin::Source(src) => {
                self.out.taint_locals.push(TaintLocal { pos, sink: sink.to_string(), src })
            }
            Origin::Call(call) => {
                self.out.taint_call_flows.push(TaintCallFlow { call, pos, sink: sink.to_string() })
            }
            Origin::Param(param) => {
                self.out.param_sinks.push(ParamSink { param, pos, sink: sink.to_string() })
            }
        }
    }

    fn record_sinks(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Index { index, .. } => {
                if let Some(o) = self.expr_origin(index) {
                    self.record_sink(o, e.pos, "slice indexing");
                }
            }
            ExprKind::MethodCall { method, args, .. }
                if matches!(
                    method.as_str(),
                    "reserve" | "reserve_exact" | "resize" | "with_capacity"
                ) =>
            {
                if let Some(arg0) = args.first() {
                    if let Some(o) = self.expr_origin(arg0) {
                        let sink = format!("`.{method}(…)`");
                        self.record_sink(o, e.pos, &sink);
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                if let Some([.., ty, ctor]) = callee.as_path() {
                    if ctor == "with_capacity" {
                        if let Some(arg0) = args.first() {
                            if let Some(o) = self.expr_origin(arg0) {
                                let sink = format!("`{ty}::with_capacity(…)`");
                                self.record_sink(o, e.pos, &sink);
                            }
                        }
                    }
                }
            }
            ExprKind::MacroCall { name, args } if name == "vec" && args.len() == 2 => {
                if let Some(o) = self.expr_origin(&args[1]) {
                    self.record_sink(o, e.pos, "`vec![…; n]` length");
                }
            }
            ExprKind::For { iter, .. } => {
                if let ExprKind::Range { hi: Some(h), .. } = &iter.kind {
                    if let Some(o) = self.expr_origin(h) {
                        self.record_sink(o, h.pos, "loop upper bound");
                    }
                }
            }
            _ => {}
        }
    }

    fn record_call_args(&mut self, e: &Expr) {
        let args = match &e.kind {
            ExprKind::Call { args, .. } | ExprKind::MethodCall { args, .. } => args,
            _ => return,
        };
        let Some(call) = self.call_idx(e.pos) else { return };
        for (i, a) in args.iter().enumerate() {
            match self.expr_origin(a) {
                Some(Origin::Source(src)) => self.out.tainted_args.push(TaintedArg {
                    call,
                    arg: i,
                    pos: a.pos,
                    src: TaintSrc::Direct(src),
                }),
                Some(Origin::Call(j)) => self.out.tainted_args.push(TaintedArg {
                    call,
                    arg: i,
                    pos: a.pos,
                    src: TaintSrc::FromCall(j),
                }),
                Some(Origin::Param(p)) => self.out.param_sink_calls.push(ParamSinkCall {
                    param: p,
                    call,
                    callee_param: i,
                }),
                None => {}
            }
        }
    }

    fn record_return_taint(&mut self, e: &Expr) {
        match self.expr_origin(e) {
            Some(Origin::Source(_)) => self.out.returns_taint = true,
            Some(Origin::Call(i)) => self.out.taint_return_calls.push(i),
            _ => {}
        }
    }

    /// `let _ = e;` — a discarded value. `?` and macros are exempt;
    /// channel operations are flagged unconditionally; other calls are
    /// recorded and judged at link time (flagged iff the resolved
    /// callee returns a `Result`).
    fn record_let_discard(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Try(_) | ExprKind::MacroCall { .. } => {}
            ExprKind::MethodCall { method, .. }
                if CHANNEL_METHODS.contains(&method.as_str()) =>
            {
                self.out.discards.push(Discard {
                    call: None,
                    pos: e.pos,
                    what: format!("`.{method}(…)`"),
                });
            }
            ExprKind::MethodCall { method, .. } => {
                if let Some(call) = self.call_idx(e.pos) {
                    self.out.discards.push(Discard {
                        call: Some(call),
                        pos: e.pos,
                        what: format!("`.{method}(…)`"),
                    });
                }
            }
            ExprKind::Call { callee, .. } => {
                if let (Some(call), Some(segs)) = (self.call_idx(e.pos), callee.as_path()) {
                    if let Some(name) = segs.last() {
                        self.out.discards.push(Discard {
                            call: Some(call),
                            pos: e.pos,
                            what: format!("`{name}(…)`"),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    /// A non-tail `foo().ok();` statement — `.ok()` used purely to
    /// swallow a `Result`. Judged at link time on the resolved callee.
    fn record_ok_discard(&mut self, e: &Expr) {
        let ExprKind::MethodCall { recv, method, args } = &e.kind else { return };
        if method != "ok" || !args.is_empty() {
            return;
        }
        let what = match &recv.kind {
            ExprKind::MethodCall { method: m, .. } => format!("`.{m}(…)`"),
            ExprKind::Call { callee, .. } => match callee.as_path().and_then(|s| s.last()) {
                Some(name) => format!("`{name}(…)`"),
                None => return,
            },
            _ => return,
        };
        if let Some(call) = self.call_idx(recv.pos) {
            self.out.discards.push(Discard { call: Some(call), pos: e.pos, what });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn summarize_src(src: &str) -> FileSummary {
        let file = SourceFile {
            crate_name: "t".to_string(),
            path: "crates/t/src/lib.rs".to_string(),
            source: src.to_string(),
            is_crate_root: true,
        };
        let lexed = lex(&file.source);
        let ast = parse_file(&lexed);
        summarize(&file, &lexed, &ast)
    }

    fn only_fn<'s>(s: &'s FileSummary, name: &str) -> &'s FnSummary {
        match s.fns.iter().find(|f| f.name == name) {
            Some(f) => f,
            None => panic!("no fn `{name}` in summary"),
        }
    }

    #[test]
    fn fast_reader_parses_exactly_what_to_json_writes() {
        // A summary that exercises every optional branch of the cache
        // format: methods and paths, lock events, taint, discards,
        // entry markers, comments, token findings.
        let src = "\
            // vdsms-lint: entry\n\
            // vdsms-lint: allow(no-panic) reason=\"seed\"\n\
            pub fn hot(r: &mut R, t: &[u8], tx: &S) -> Result<(), E> {\n\
            \x20   let i = r.read_u8() as usize;\n\
            \x20   let _ = tx.send(t[i]);\n\
            \x20   let g = A.lock();\n\
            \x20   let h = B.lock();\n\
            \x20   helper(i);\n\
            \x20   while i > 0 {}\n\
            \x20   Ok(())\n\
            }\n\
            fn helper(n: usize) -> f32 { 0.1 + 0.2 }\n\
            fn conc() {\n\
            \x20   let shared = Arc::new(RefCell::new(0));\n\
            \x20   let (tx, rx) = mpsc::sync_channel(1);\n\
            \x20   let h = thread::spawn(move || { tx.send(shared); });\n\
            \x20   drop(rx);\n\
            \x20   h.join();\n\
            }\n\
            #[test]\n\
            fn unit() { hot_path().unwrap(); }\n";
        let summary = summarize_src(src);
        let json = summary.to_json();
        let fast = match fast_from_json(&json) {
            Some(s) => s,
            None => panic!("fast reader rejected writer output: {json}"),
        };
        let tree = FileSummary::from_json_tree(&json).expect("tree reader");
        assert_eq!(fast.to_json(), json, "fast reader round-trip drifted");
        assert_eq!(tree.to_json(), json, "tree reader round-trip drifted");
    }

    #[test]
    fn taint_source_to_index_sink_is_recorded() {
        let s = summarize_src(
            "fn f(r: &mut R, buf: &[u8]) -> u8 {\n\
             \x20   let i = r.read_u8();\n\
             \x20   buf[i as usize]\n\
             }\n",
        );
        let f = only_fn(&s, "f");
        assert_eq!(f.taint_locals.len(), 1, "taint_locals: {:?}", f.taint_locals);
        assert_eq!(f.taint_locals[0].sink, "slice indexing");
        assert_eq!(f.taint_locals[0].src, "`.read_u8()`");
        assert_eq!(f.taint_locals[0].pos.line, 3);
    }

    #[test]
    fn comparison_clears_taint_before_the_sink() {
        let s = summarize_src(
            "fn f(r: &mut R, buf: &[u8]) -> u8 {\n\
             \x20   let i = r.read_u8() as usize;\n\
             \x20   if i < buf.len() { return buf[i]; }\n\
             \x20   0\n\
             }\n",
        );
        let f = only_fn(&s, "f");
        assert!(f.taint_locals.is_empty(), "cleared by bounds check: {:?}", f.taint_locals);
    }

    #[test]
    fn param_to_capacity_sink_and_forwarding_are_recorded() {
        let s = summarize_src(
            "fn alloc_for(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n\
             fn outer(m: usize) { helper(m); }\n",
        );
        let f = only_fn(&s, "alloc_for");
        assert_eq!(f.param_sinks.len(), 1);
        assert_eq!(f.param_sinks[0].param, 0);
        assert_eq!(f.param_sinks[0].sink, "`Vec::with_capacity(…)`");
        let outer = only_fn(&s, "outer");
        assert_eq!(outer.param_sink_calls.len(), 1);
        assert_eq!(outer.param_sink_calls[0].callee_param, 0);
    }

    #[test]
    fn stalled_and_progressing_loops_are_classified() {
        let s = summarize_src(
            "fn stalls(q: &Q) { while q.is_ready() { q.peek(); } }\n\
             fn advances(q: &mut Q) { while q.is_ready() { q.pop(); } }\n\
             fn counts(n: usize) { let mut i = 0; while i < n { i += 1; } }\n",
        );
        assert_eq!(only_fn(&s, "stalls").stalled_loops.len(), 1);
        assert_eq!(only_fn(&s, "stalls").stalled_loops[0].what, "while");
        assert!(only_fn(&s, "advances").stalled_loops.is_empty());
        assert!(only_fn(&s, "counts").stalled_loops.is_empty());
    }

    #[test]
    fn discards_distinguish_channel_and_resolvable_calls() {
        let s = summarize_src(
            "fn f(tx: &Sender<u32>, s: &S) {\n\
             \x20   let _ = tx.send(1);\n\
             \x20   let _ = s.persist();\n\
             \x20   let _ = flush_all();\n\
             \x20   let _ = compute()?;\n\
             }\n",
        );
        let f = only_fn(&s, "f");
        assert_eq!(f.discards.len(), 3, "discards: {:?}", f.discards);
        assert_eq!(f.discards[0].call, None, "channel send is unconditional");
        assert!(f.discards[1].call.is_some());
        assert!(f.discards[2].call.is_some());
    }

    #[test]
    fn lock_events_keep_statement_order_and_held_snapshots() {
        let s = summarize_src(
            "impl S { fn f(&self) {\n\
             \x20   let a = self.alpha.lock();\n\
             \x20   let b = self.beta.lock();\n\
             } }\n",
        );
        let f = only_fn(&s, "f");
        // `.lock()` sites also appear as Call events (they are method
        // calls, and a resolvable callee's transitive locks order after
        // the guard just taken) — mirror of the old interleaved walk.
        let directs: Vec<_> = f
            .lock_events
            .iter()
            .filter_map(|e| match e {
                LockEvent::Direct { held, acquired, .. } => Some((held.clone(), acquired.clone())),
                LockEvent::Call { .. } => None,
            })
            .collect();
        assert_eq!(directs, vec![(vec!["alpha".to_string()], "beta".to_string())]);
        assert_eq!(f.direct_locks, vec!["alpha".to_string(), "beta".to_string()]);
    }

    #[test]
    fn explicit_drop_releases_let_bound_guards() {
        let s = summarize_src(
            "fn f(m: &M, rx: &R) {\n\
             \x20   let g = m.lock();\n\
             \x20   rx.recv();\n\
             \x20   drop(g);\n\
             \x20   rx.try_recv();\n\
             }\n",
        );
        let f = only_fn(&s, "f");
        let call_lines: Vec<u32> = f
            .lock_events
            .iter()
            .filter_map(|e| match e {
                LockEvent::Call { pos, .. } => Some(pos.line),
                LockEvent::Direct { .. } => None,
            })
            .collect();
        // The `.lock()` itself, the `recv` under the guard, and the
        // `drop` call; the `try_recv` after `drop(g)` runs guard-free.
        assert_eq!(call_lines, vec![2, 3, 4], "events: {:?}", f.lock_events);
    }

    #[test]
    fn spawn_captures_and_shared_kinds_are_recorded() {
        let s = summarize_src(
            "fn f() {\n\
             \x20   let state = Arc::new(Mutex::new(0));\n\
             \x20   let cell = Arc::new(RefCell::new(0));\n\
             \x20   let worker = Arc::clone(&state);\n\
             \x20   let leak = cell.clone();\n\
             \x20   thread::spawn(move || {\n\
             \x20       let mine = 1;\n\
             \x20       worker.lock();\n\
             \x20       leak.borrow_mut();\n\
             \x20       mine + 1;\n\
             \x20   });\n\
             }\n",
        );
        let f = only_fn(&s, "f");
        let kinds: Vec<(&str, SharedKind)> =
            f.shared_vals.iter().map(|v| (v.name.as_str(), v.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("state", SharedKind::ArcMutex),
                ("cell", SharedKind::ArcCell),
                ("worker", SharedKind::ArcMutex),
                ("leak", SharedKind::ArcCell),
            ]
        );
        assert_eq!(f.spawns.len(), 1, "spawns: {:?}", f.spawns);
        let names: Vec<&str> = f.spawns[0].captures.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["worker", "leak"], "closure-local `mine` must not count");
    }

    #[test]
    fn channel_binds_ops_and_blocking_sites_are_recorded() {
        let s = summarize_src(
            "fn f(m: &M) {\n\
             \x20   let (tx, rx) = mpsc::sync_channel(1);\n\
             \x20   let (etx, erx) = mpsc::channel();\n\
             \x20   tx.send(1);\n\
             \x20   let g = m.lock();\n\
             \x20   while let Ok(v) = rx.recv() { etx.send(v); }\n\
             \x20   drop(erx);\n\
             }\n",
        );
        let f = only_fn(&s, "f");
        assert_eq!(f.channels.len(), 2, "channels: {:?}", f.channels);
        assert!(f.channels[0].sync && f.channels[0].cap == Some(1));
        assert_eq!((f.channels[0].tx.as_str(), f.channels[0].rx.as_str()), ("tx", "rx"));
        assert!(!f.channels[1].sync);
        let ops: Vec<(&str, ChanOpKind, bool, bool)> = f
            .chan_ops
            .iter()
            .map(|o| (o.name.as_str(), o.op, o.in_loop, o.discarded))
            .collect();
        assert_eq!(
            ops,
            vec![
                ("tx", ChanOpKind::Send, false, true),
                ("rx", ChanOpKind::Recv, true, false),
                ("etx", ChanOpKind::Send, true, true),
                ("erx", ChanOpKind::Drop, false, false),
            ],
            "ops: {:?}",
            f.chan_ops
        );
        // Blocking: the bounded send and the recv (join has its own
        // test below); `etx.send` is unbounded and does not block.
        let what: Vec<&str> = f.blocking.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(what, vec!["`.send(…)` on a bounded channel", "`.recv()`"]);
    }

    #[test]
    fn zero_arg_join_blocks_but_separator_join_does_not() {
        let s = summarize_src(
            "fn f(h: H, parts: &[String]) -> String {\n\
             \x20   h.join();\n\
             \x20   parts.join(\"-\")\n\
             }\n",
        );
        let f = only_fn(&s, "f");
        let what: Vec<&str> = f.blocking.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(what, vec!["`.join()`"]);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = summarize_src(
            "// vdsms-lint: entry\n\
             fn hot(r: &mut R) -> Result<(), E> {\n\
             \x20   let n = r.read_u32()? as usize;\n\
             \x20   let mut v = Vec::with_capacity(n);\n\
             \x20   let g = self_lock.lock();\n\
             \x20   v.push(n);\n\
             \x20   let _ = save(n);\n\
             \x20   loop { }\n\
             }\n\
             fn save(n: usize) -> Result<(), E> { Ok(()) }\n",
        );
        let json = s.to_json();
        let back = match FileSummary::from_json(&json) {
            Some(b) => b,
            None => panic!("round-trip parse failed: {json}"),
        };
        assert_eq!(s, back);
        // Version mismatch is a miss, not an error.
        let stale = json.replacen(&format!("{{\"v\":{SUMMARY_VERSION}"), "{\"v\":999", 1);
        assert!(FileSummary::from_json(&stale).is_none());
        assert!(FileSummary::from_json("not json").is_none());
        assert!(FileSummary::from_json("{}").is_none());
    }
}
