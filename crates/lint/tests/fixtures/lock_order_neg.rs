// Fixture: the same two locks used safely — every function acquires in
// the same global order (sink before stats), or scopes the first guard
// so the acquisitions never overlap. Expected: zero findings.
fn publish(s: &Shared) {
    let sink = s.sink.lock();
    let stats = s.stats.lock();
    sink.merge_into(stats);
}

fn snapshot(s: &Shared) {
    let item = {
        let sink = s.sink.lock();
        sink.pop()
    };
    let stats = s.stats.lock();
    stats.push_item(item);
}
