// Fixture: deterministic orderings — total_cmp on floats, Ord::cmp on
// integer keys, and a partial_cmp confined to test code. Expected: zero
// findings.
fn rank(scores: &mut Vec<(f32, u32)>) {
    scores.sort_by(|a, b| a.0.total_cmp(&b.0));
}

fn by_key(xs: &mut Vec<(u64, u32)>) {
    xs.sort_by(|a, b| a.0.cmp(&b.0));
}

#[cfg(test)]
mod tests {
    #[test]
    fn partial_cmp_is_fine_in_tests() {
        assert!(0.1f32.partial_cmp(&0.2).is_some());
    }
}
