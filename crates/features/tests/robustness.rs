//! End-to-end fingerprint robustness: the property Table II measures.
//!
//! For each tamper operation of the paper's VS2 suite, the cell-id *set*
//! of an edited clip must stay close (Jaccard) to the original's — and
//! for unrelated clips it must stay far. These are the invariants all
//! detection quality rests on.

use std::collections::HashSet;
use vdsms_codec::{Encoder, EncoderConfig, PartialDecoder};
use vdsms_features::{FeatureConfig, FeatureExtractor};
use vdsms_video::source::{ClipGenerator, SourceSpec};
use vdsms_video::{Clip, Edit, EditPipeline, Fps};

fn clip(seed: u64, secs: f64) -> Clip {
    let spec = SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    };
    ClipGenerator::new(spec).clip(secs)
}

fn ids(c: &Clip, quality: u8) -> HashSet<u64> {
    let bytes = Encoder::encode_clip(c, EncoderConfig { gop: 5, quality, motion_search: true });
    let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
    FeatureExtractor::new(FeatureConfig::default())
        .fingerprint_sequence(&dcs)
        .into_iter()
        .collect()
}

fn jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    let i = a.intersection(b).count();
    i as f64 / (a.len() + b.len() - i) as f64
}

/// Average Jaccard between originals and their edited copies over several
/// seeds.
fn avg_jaccard<F: Fn(&Clip) -> Clip>(edit: F) -> f64 {
    let seeds = [0u64, 1, 2, 3, 4, 5];
    let mut total = 0.0;
    for &s in &seeds {
        let c = clip(s, 30.0);
        let a = ids(&c, 80);
        let b = ids(&edit(&c), 80);
        total += jaccard(&a, &b);
    }
    total / seeds.len() as f64
}

#[test]
fn survives_brightness_and_contrast() {
    let j = avg_jaccard(|c| Edit::GainOffset { gain: 1.12, offset: 10.0 }.apply(c));
    assert!(j > 0.7, "brighten: {j}");
    let j = avg_jaccard(|c| Edit::GainOffset { gain: 0.65, offset: -8.0 }.apply(c));
    assert!(j > 0.7, "darken 35%: {j}");
}

#[test]
fn survives_noise() {
    let j = avg_jaccard(|c| Edit::Noise { sigma: 2.5, seed: 1 }.apply(c));
    assert!(j > 0.7, "noise: {j}");
}

#[test]
fn survives_resolution_change() {
    let j = avg_jaccard(|c| {
        Edit::Resize { width: c.width(), height: (c.height() as f64 * 1.2) as u32 }.apply(c)
    });
    assert!(j > 0.7, "resize: {j}");
}

#[test]
fn survives_frame_rate_conversion() {
    let j = avg_jaccard(|c| {
        Edit::ResampleFps { target: EditPipeline::pal_equivalent(c.fps()) }.apply(c)
    });
    assert!(j > 0.7, "fps conversion: {j}");
}

#[test]
fn survives_segment_reordering_exactly() {
    // Re-ordering permutes frames without changing them: the cell-id SET
    // is identical (this is the entire point of set similarity).
    let c = clip(9, 30.0);
    // Reorder at a segment boundary multiple of the GOP so the key-frame
    // phase is preserved; real re-orders shift phase, covered below.
    let segs = c.split_segments(6);
    let reordered = Clip::concat(vec![
        segs[3].clone(),
        segs[0].clone(),
        segs[5].clone(),
        segs[1].clone(),
        segs[4].clone(),
        segs[2].clone(),
    ]);
    let j = jaccard(&ids(&c, 80), &ids(&reordered, 80));
    assert!(j > 0.75, "reorder: {j}");
}

#[test]
fn survives_recompression() {
    let seeds = [0u64, 1, 2, 3];
    for &s in &seeds {
        let c = clip(s, 30.0);
        let j = jaccard(&ids(&c, 85), &ids(&c, 55));
        assert!(j > 0.6, "recompression at seed {s}: {j}");
    }
}

#[test]
fn survives_full_vs2_suite() {
    let mut total = 0.0;
    let seeds = [10u64, 11, 12, 13, 14, 15];
    for &s in &seeds {
        let c = clip(s, 30.0);
        let pipe = EditPipeline::vs2_standard(s ^ 77, c.width(), c.height(), c.fps(), 5);
        let edited = pipe.apply(&c);
        // Letterbox back to the original geometry like a broadcaster.
        let edited = Clip::new(
            edited.frames().iter().map(|f| f.resize(c.width(), c.height())).collect(),
            edited.fps(),
        );
        total += jaccard(&ids(&c, 80), &ids(&edited, 80));
    }
    let avg = total / seeds.len() as f64;
    assert!(avg > 0.65, "full VS2 suite average Jaccard: {avg}");
}

#[test]
fn unrelated_clips_stay_far_apart() {
    let mut max = 0.0f64;
    for s in 0..6u64 {
        let a = ids(&clip(100 + s, 20.0), 80);
        let b = ids(&clip(200 + s, 20.0), 80);
        max = max.max(jaccard(&a, &b));
    }
    assert!(max < 0.3, "unrelated clips too similar: {max}");
}
