//! Encoder: DCT → quantize → zigzag/RLE entropy coding, GOP structure.
//!
//! The encoder reconstructs each frame exactly as the decoder will (coding
//! P-frame residuals against the *reconstructed* previous frame, not the
//! pristine one) so prediction never drifts.

use crate::bitio::ByteWriter;
use crate::bitstream::{FrameType, StreamHeader};
use crate::block::{
    block_sad, extract_block, extract_diff_block, store_block, store_diff_block, BlockGrid,
};
use crate::dct;
use crate::quant::Quantizer;
use crate::zigzag::encode_block;
use vdsms_video::{Clip, Fps, Frame};

/// Encoder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// GOP length: one I-frame every `gop` frames. The paper extracts
    /// features from key frames only, so `gop` sets the key-frame rate
    /// (NTSC at gop 15 ⇒ ~2 key frames per second).
    pub gop: u32,
    /// Quantizer quality in `[1, 100]`.
    pub quality: u8,
    /// Whether P-frames search for per-block motion vectors (±7 px
    /// diamond search). Off degenerates to zero-motion differencing.
    pub motion_search: bool,
}

impl Default for EncoderConfig {
    fn default() -> EncoderConfig {
        EncoderConfig { gop: 15, quality: 75, motion_search: true }
    }
}

/// Motion-search bound in pixels (fits the bitstream's i8 MV fields).
const MV_RANGE: i8 = 7;

/// SAD below which the zero vector is accepted without searching (one
/// grey level per pixel on average — cheaper to code the residual than
/// to search).
const ZERO_MV_EARLY_EXIT: u32 = 64;

/// Diamond search for the best motion vector of block `(bx, by)`.
fn search_motion(cur: &Frame, reference: &Frame, bx: u32, by: u32) -> (i8, i8) {
    let mut best = (0i8, 0i8);
    let mut best_sad = block_sad(cur, reference, bx, by, best);
    if best_sad <= ZERO_MV_EARLY_EXIT {
        return best;
    }
    for step in [4i8, 2, 1] {
        loop {
            let mut improved = false;
            for (dx, dy) in [(step, 0), (-step, 0), (0, step), (0, -step)] {
                let cand = (
                    best.0.saturating_add(dx).clamp(-MV_RANGE, MV_RANGE),
                    best.1.saturating_add(dy).clamp(-MV_RANGE, MV_RANGE),
                );
                if cand == best {
                    continue;
                }
                let sad = block_sad(cur, reference, bx, by, cand);
                if sad < best_sad {
                    best_sad = sad;
                    best = cand;
                    improved = true;
                }
            }
            if !improved || best_sad <= ZERO_MV_EARLY_EXIT {
                break;
            }
        }
    }
    best
}

/// Streaming encoder.
#[derive(Debug)]
pub struct Encoder {
    header: StreamHeader,
    quantizer: Quantizer,
    grid: BlockGrid,
    writer: ByteWriter,
    /// Previous *reconstructed* frame (prediction reference).
    reference: Option<Frame>,
    frames_encoded: u64,
    motion_search: bool,
}

impl Encoder {
    /// Create an encoder for frames of the given geometry.
    pub fn new(width: u32, height: u32, fps: Fps, config: EncoderConfig) -> Encoder {
        assert!(config.gop >= 1, "gop must be >= 1");
        let header = StreamHeader { width, height, fps, gop: config.gop };
        let mut writer = ByteWriter::new();
        header.write(&mut writer);
        Encoder {
            header,
            quantizer: Quantizer::new(config.quality),
            grid: BlockGrid::for_dims(width, height),
            writer,
            reference: None,
            frames_encoded: 0,
            motion_search: config.motion_search,
        }
    }

    /// The stream header being produced.
    pub fn header(&self) -> &StreamHeader {
        &self.header
    }

    /// Number of frames pushed so far.
    pub fn frames_encoded(&self) -> u64 {
        self.frames_encoded
    }

    /// Encode one frame.
    ///
    /// # Panics
    /// Panics if the frame geometry does not match the encoder's.
    pub fn push(&mut self, frame: &Frame) {
        assert_eq!(frame.width(), self.header.width, "frame width mismatch");
        assert_eq!(frame.height(), self.header.height, "frame height mismatch");
        let is_intra =
            self.reference.is_none() || self.frames_encoded.is_multiple_of(u64::from(self.header.gop));
        let frame_type = if is_intra { FrameType::Intra } else { FrameType::Predicted };

        self.writer.put_u8(frame_type.to_byte());
        self.writer.put_u8(self.quantizer.quality());
        let len_pos = self.writer.len();
        self.writer.put_u32_le(0); // patched below
        let payload_start = self.writer.len();

        let mut recon = Frame::filled(self.header.width, self.header.height, 0);
        let mut prev_dc = 0i32;
        for by in 0..self.grid.blocks_h {
            for bx in 0..self.grid.blocks_w {
                let mut mv = (0i8, 0i8);
                let levels = match frame_type {
                    FrameType::Intra => {
                        let samples = extract_block(frame, bx, by);
                        self.quantizer.quantize(&dct::forward(&samples))
                    }
                    FrameType::Predicted => {
                        let reference = self.reference.as_ref().expect("P-frame without reference");
                        if self.motion_search {
                            mv = search_motion(frame, reference, bx, by);
                        }
                        // Motion vector precedes the block's coefficients.
                        self.writer.put_signed(i64::from(mv.0));
                        self.writer.put_signed(i64::from(mv.1));
                        let diff = extract_diff_block(frame, reference, bx, by, mv);
                        self.quantizer.quantize(&dct::forward(&diff))
                    }
                };
                prev_dc = encode_block(&mut self.writer, &levels, prev_dc);

                // Decoder-side reconstruction for the prediction chain.
                let deq = self.quantizer.dequantize(&levels);
                let samples = dct::inverse(&deq);
                match frame_type {
                    FrameType::Intra => store_block(&mut recon, bx, by, &samples),
                    FrameType::Predicted => {
                        let reference = self.reference.as_ref().expect("P-frame without reference");
                        store_diff_block(&mut recon, reference, bx, by, mv, &samples);
                    }
                }
            }
        }

        let payload_len = (self.writer.len() - payload_start) as u32;
        self.writer.patch_u32_le(len_pos, payload_len);
        self.reference = Some(recon);
        self.frames_encoded += 1;
    }

    /// Finish encoding, returning the bitstream bytes.
    pub fn finish(self) -> Vec<u8> {
        self.writer.into_bytes()
    }

    /// Convenience: encode an entire clip into a bitstream.
    pub fn encode_clip(clip: &Clip, config: EncoderConfig) -> Vec<u8> {
        let mut enc = Encoder::new(clip.width(), clip.height(), clip.fps(), config);
        for f in clip.frames() {
            enc.push(f);
        }
        enc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_video::source::{ClipGenerator, SourceSpec};

    fn test_clip() -> Clip {
        let spec = SourceSpec {
            width: 48,
            height: 32,
            fps: Fps::integer(10),
            seed: 5,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        };
        ClipGenerator::new(spec).clip(2.0)
    }

    #[test]
    fn bitstream_starts_with_header() {
        let clip = test_clip();
        let bytes = Encoder::encode_clip(&clip, EncoderConfig::default());
        assert_eq!(&bytes[..4], b"VDSM");
    }

    #[test]
    fn encoding_is_deterministic() {
        let clip = test_clip();
        let a = Encoder::encode_clip(&clip, EncoderConfig::default());
        let b = Encoder::encode_clip(&clip, EncoderConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn p_frames_shrink_the_stream() {
        // Temporal prediction must actually help on smooth synthetic video.
        let clip = test_clip();
        let all_intra = Encoder::encode_clip(&clip, EncoderConfig { gop: 1, quality: 75, motion_search: true });
        let with_p = Encoder::encode_clip(&clip, EncoderConfig { gop: 10, quality: 75, motion_search: true });
        assert!(
            (with_p.len() as f64) < 0.8 * all_intra.len() as f64,
            "P-frames saved too little: {} vs {}",
            with_p.len(),
            all_intra.len()
        );
    }

    #[test]
    fn motion_compensation_shrinks_panning_content() {
        // Panning content is where motion search earns its keep: the
        // zero-MV residual is large, the compensated one tiny.
        let spec = SourceSpec {
            width: 96,
            height: 64,
            fps: Fps::integer(10),
            seed: 31,
            min_scene_s: 4.0,
            max_scene_s: 8.0,
            motifs: None,
        };
        let clip = ClipGenerator::new(spec).clip(4.0);
        let with_mc =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 10, quality: 80, motion_search: true });
        let without =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 10, quality: 80, motion_search: false });
        assert!(
            with_mc.len() <= without.len(),
            "motion search must not inflate the stream: {} vs {}",
            with_mc.len(),
            without.len()
        );
    }

    #[test]
    fn lower_quality_shrinks_the_stream() {
        let clip = test_clip();
        let hi = Encoder::encode_clip(&clip, EncoderConfig { gop: 15, quality: 90, motion_search: true });
        let lo = Encoder::encode_clip(&clip, EncoderConfig { gop: 15, quality: 30, motion_search: true });
        assert!(lo.len() < hi.len());
    }

    #[test]
    fn frame_count_is_tracked() {
        let clip = test_clip();
        let mut enc = Encoder::new(clip.width(), clip.height(), clip.fps(), EncoderConfig::default());
        for f in clip.frames() {
            enc.push(f);
        }
        assert_eq!(enc.frames_encoded(), clip.len() as u64);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn geometry_mismatch_panics() {
        let mut enc = Encoder::new(16, 16, Fps::PAL, EncoderConfig::default());
        enc.push(&Frame::filled(8, 8, 0));
    }
}
