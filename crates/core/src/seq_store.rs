//! Sequential-order candidate store (Section IV-A).
//!
//! The store maintains every *suffix* of the stream up to `⌈λL/w⌉` basic
//! windows: when window `t` arrives, each live candidate `[s, t−1]` is
//! extended to `[s, t]` and re-tested, and a fresh length-1 candidate
//! `[t, t]` is added. A candidate tracks, per related query, either its
//! raw combined sketch (Sketch representation — one shared sketch per
//! candidate) or a 2K-bit signature per query (Bit representation).
//! Entries leave via Lemma-2 pruning or the per-query λL length bound;
//! a candidate with no live entries is dropped.

use crate::bitsig::BitSig;
use crate::config::{DetectorConfig, Representation};
use crate::detection::Detection;
use crate::query::{QueryId, QuerySet};
use crate::stats::Stats;
use crate::window::{sketch_relations, Window, WindowRelations};
use std::collections::VecDeque;
use vdsms_sketch::Sketch;

/// One tracked query within a candidate.
#[derive(Debug, Clone)]
struct Entry {
    qid: QueryId,
    keyframes: usize,
    /// Bit representation only: the OR-combined signature.
    sig: Option<BitSig>,
    /// Whether a detection has already been emitted for this
    /// candidate-query pair.
    reported: bool,
}

/// One suffix candidate.
#[derive(Debug, Clone)]
struct Candidate {
    start_window: u64,
    start_frame: u64,
    /// Sketch representation only: the combined sketch of the suffix.
    sketch: Option<Sketch>,
    entries: Vec<Entry>,
}

/// Retired candidates kept for buffer reuse, capped so a detection burst
/// cannot pin unbounded memory.
const POOL_CAP: usize = 32;

/// The sequential candidate list `C_L`.
#[derive(Debug)]
pub struct SeqStore {
    rep: Representation,
    candidates: VecDeque<Candidate>,
    /// Retired candidates: their entry vectors and sketches keep their
    /// capacity, so steady-state candidate births are allocation-free
    /// (candidates die at the same rate they are born once pruning
    /// reaches equilibrium).
    pool: Vec<Candidate>,
}

impl SeqStore {
    /// New empty store.
    pub fn new(rep: Representation) -> SeqStore {
        SeqStore { rep, candidates: VecDeque::new(), pool: Vec::new() }
    }

    /// Return a dead candidate's buffers to the pool.
    fn retire(&mut self, cand: Candidate) {
        if self.pool.len() < POOL_CAP {
            // vdsms-lint: allow(no-alloc-hot-path) reason="pool Vec is capped at POOL_CAP; reaches its high-water mark during warm-up"
            self.pool.push(cand);
        }
    }

    /// Number of live candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Number of live candidate-query pairs (the memory metric of
    /// Fig. 10: each pair is one 2K-bit signature in the Bit
    /// representation).
    pub fn live_signatures(&self) -> usize {
        self.candidates.iter().map(|c| c.entries.len()).sum()
    }

    /// Process one arrived basic window; returns the detections it
    /// triggered.
    pub fn advance(
        &mut self,
        win: &Window,
        rel: &mut WindowRelations,
        cfg: &DetectorConfig,
        queries: &QuerySet,
        stats: &mut Stats,
    ) -> Vec<Detection> {
        let mut out = Vec::new();

        // Extend every existing suffix candidate with the new window.
        let mut idx = 0;
        while idx < self.candidates.len() {
            let cand = &mut self.candidates[idx];
            let len_windows = (win.index - cand.start_window + 1) as usize;

            match self.rep {
                Representation::Sketch => {
                    // Every Sketch-representation candidate is constructed
                    // with a combined sketch; a (never observed) sketch-less
                    // one is dropped via the empty-entries path below.
                    if let Some(sketch) = cand.sketch.as_mut() {
                        sketch.combine(&win.sketch);
                        stats.sketch_combines += 1;
                        let sketch = &*sketch;
                        retain_entries_sketch(
                            &mut cand.entries,
                            sketch,
                            len_windows,
                            cand.start_frame,
                            win,
                            cfg,
                            queries,
                            stats,
                            &mut out,
                        );
                    } else {
                        cand.entries.clear();
                    }
                }
                Representation::Bit => {
                    let start_frame = cand.start_frame;
                    cand.entries.retain_mut(|e| {
                        if len_windows > cfg.max_windows_for(e.keyframes) {
                            stats.length_expiries += 1;
                            return false;
                        }
                        let Some(wsig) = rel.sig_for(e.qid, &win.sketch, queries, stats) else {
                            return false; // query unsubscribed
                        };
                        // Bit entries always carry a signature by
                        // construction; drop rather than panic otherwise.
                        let Some(sig) = e.sig.as_mut() else {
                            return false;
                        };
                        // Fused merge+count: one pass over the signature
                        // words yields the OR, n_lt and n_eq together.
                        let (n_less, n_eq) = sig.or_with_counts(wsig);
                        stats.sig_ors += 1;
                        stats.sig_compares += 1;
                        if sig.lemma2_from_count(n_less, cfg.pruning_delta()) {
                            stats.lemma2_prunes += 1;
                            return false;
                        }
                        let sim = sig.similarity_from_count(n_eq);
                        if sim + 1e-12 >= cfg.delta && !e.reported {
                            e.reported = true;
                            stats.detections += 1;
                            // vdsms-lint: allow(no-alloc-hot-path) reason="detection events only; the output Vec stays empty (and unallocated) on non-matching windows"
                            out.push(Detection {
                                query_id: e.qid,
                                start_frame,
                                end_frame: win.end_frame,
                                windows: len_windows,
                                similarity: sim,
                            });
                        }
                        true
                    });
                }
            }

            if cand.entries.is_empty() {
                if let Some(dead) = self.candidates.remove(idx) {
                    self.retire(dead);
                }
            } else {
                idx += 1;
            }
        }

        // Add the fresh length-1 candidate born from this window, reusing
        // a retired candidate's buffers when one is pooled.
        let mut cand = self.pool.pop().unwrap_or_else(|| Candidate {
            start_window: 0,
            start_frame: 0,
            sketch: None,
            entries: Vec::new(),
        });
        cand.start_window = win.index;
        cand.start_frame = win.start_frame;
        cand.entries.clear();
        match self.rep {
            Representation::Sketch => match &mut cand.sketch {
                Some(s) => s.copy_from(&win.sketch),
                // vdsms-lint: allow(no-alloc-hot-path) reason="first use of a pool slot only; afterwards copy_from reuses the buffer"
                None => cand.sketch = Some(win.sketch.clone()),
            },
            Representation::Bit => cand.sketch = None,
        }
        for i in 0..rel.related_len() {
            let (qid, keyframes) = rel.related_at(i);
            let sig = match self.rep {
                Representation::Bit => {
                    match rel.sig_for(qid, &win.sketch, queries, stats) {
                        // vdsms-lint: allow(no-alloc-hot-path) reason="one signature per window×related-query relation event — the Bit representation's inherent cost"
                        Some(s) => Some(s.clone()),
                        None => continue,
                    }
                }
                Representation::Sketch => None,
            };
            // vdsms-lint: allow(no-alloc-hot-path) reason="pooled Vec; capacity stabilizes at the related-query high-water mark"
            cand.entries.push(Entry { qid, keyframes, sig, reported: false });
        }
        if !cand.entries.is_empty() {
            // Test the newborn candidate too (a single window can already
            // match a short query).
            match self.rep {
                Representation::Sketch => {
                    // The newborn candidate's sketch is exactly the window's.
                    retain_entries_sketch(
                        &mut cand.entries,
                        &win.sketch,
                        1,
                        cand.start_frame,
                        win,
                        cfg,
                        queries,
                        stats,
                        &mut out,
                    );
                }
                Representation::Bit => {
                    let start_frame = cand.start_frame;
                    cand.entries.retain_mut(|e| {
                        let Some(sig) = e.sig.as_ref() else {
                            return false;
                        };
                        stats.sig_compares += 1;
                        let (n_less, n_eq) = sig.counts();
                        if sig.lemma2_from_count(n_less, cfg.pruning_delta()) {
                            stats.lemma2_prunes += 1;
                            return false;
                        }
                        let sim = sig.similarity_from_count(n_eq);
                        if sim + 1e-12 >= cfg.delta {
                            e.reported = true;
                            stats.detections += 1;
                            // vdsms-lint: allow(no-alloc-hot-path) reason="detection events only; the output Vec stays empty (and unallocated) on non-matching windows"
                            out.push(Detection {
                                query_id: e.qid,
                                start_frame,
                                end_frame: win.end_frame,
                                windows: 1,
                                similarity: sim,
                            });
                        }
                        true
                    });
                }
            }
            if cand.entries.is_empty() {
                self.retire(cand);
            } else {
                // vdsms-lint: allow(no-alloc-hot-path) reason="VecDeque capacity stabilizes at the live-candidate high-water mark; the candidate itself reuses pooled buffers"
                self.candidates.push_back(cand);
            }
        } else {
            self.retire(cand);
        }

        stats.sample_live(self.live_signatures(), self.candidates.len());
        out
    }
}

/// Shared per-entry logic of the Sketch representation: compare the
/// candidate's combined sketch against each tracked query, applying the
/// length bound, Lemma-2 pruning and the δ match test.
#[allow(clippy::too_many_arguments)]
fn retain_entries_sketch(
    entries: &mut Vec<Entry>,
    cand_sketch: &Sketch,
    len_windows: usize,
    start_frame: u64,
    win: &Window,
    cfg: &DetectorConfig,
    queries: &QuerySet,
    stats: &mut Stats,
    out: &mut Vec<Detection>,
) {
    let k = cand_sketch.k() as f64;
    entries.retain_mut(|e| {
        if len_windows > cfg.max_windows_for(e.keyframes) {
            stats.length_expiries += 1;
            return false;
        }
        let Some(q) = queries.get(e.qid) else {
            return false;
        };
        stats.sketch_compares += 1;
        let (n_eq, n_less) = sketch_relations(cand_sketch, &q.sketch);
        if n_less as f64 > k * (1.0 - cfg.pruning_delta()) {
            stats.lemma2_prunes += 1;
            return false;
        }
        let sim = n_eq as f64 / k;
        if sim + 1e-12 >= cfg.delta && !e.reported {
            e.reported = true;
            stats.detections += 1;
            // vdsms-lint: allow(no-alloc-hot-path) reason="detection events only; the output Vec stays empty (and unallocated) on non-matching windows"
            out.push(Detection {
                query_id: e.qid,
                start_frame,
                end_frame: win.end_frame,
                windows: len_windows,
                similarity: sim,
            });
        }
        true
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use vdsms_sketch::MinHashFamily;

    const K: usize = 128;

    fn cfg(rep: Representation) -> DetectorConfig {
        DetectorConfig {
            k: K,
            delta: 0.7,
            lambda: 2.0,
            window_keyframes: 4,
            representation: rep,
            use_index: false,
            ..Default::default()
        }
    }

    fn family() -> MinHashFamily {
        MinHashFamily::new(K, 5)
    }

    fn window(f: &MinHashFamily, index: u64, ids: &[u64]) -> Window {
        Window {
            index,
            start_frame: index * 4,
            end_frame: index * 4 + 3,
            sketch: Sketch::from_ids(f, ids.iter().copied()),
        }
    }

    /// Drive a store over windows whose ids jointly cover the query set —
    /// the candidate spanning them must match even though no single window
    /// does.
    fn run(rep: Representation) -> (Vec<Detection>, Stats) {
        let f = family();
        let query_ids: Vec<u64> = (0..30).collect();
        let queries =
            QuerySet::from_queries(vec![Query::from_cell_ids(1, &f, &query_ids)]);
        let config = cfg(rep);
        let mut store = SeqStore::new(rep);
        let mut stats = Stats::default();
        let mut dets = Vec::new();
        // Three windows, each one third of the query's ids — out of order
        // (set similarity must not care).
        let parts: [&[u64]; 3] = [&query_ids[20..30], &query_ids[0..10], &query_ids[10..20]];
        for (i, part) in parts.iter().enumerate() {
            let w = window(&f, i as u64, part);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            dets.extend(store.advance(&w, &mut rel, &config, &queries, &mut stats));
        }
        (dets, stats)
    }

    #[test]
    fn bit_rep_detects_split_copy() {
        let (dets, stats) = run(Representation::Bit);
        assert!(!dets.is_empty(), "candidate spanning all windows must match");
        // Candidates report at their FIRST δ-crossing, which may happen on
        // a partial prefix — require a confident match, not exactly 1.0.
        let d = dets.iter().max_by(|a, b| a.similarity.total_cmp(&b.similarity)).unwrap();
        assert_eq!(d.query_id, 1);
        assert!(d.similarity >= 0.7, "similarity {}", d.similarity);
        assert_eq!(d.start_frame, 0);
        assert!(stats.sig_ors > 0);
    }

    #[test]
    fn sketch_rep_detects_split_copy() {
        let (dets, stats) = run(Representation::Sketch);
        assert!(!dets.is_empty());
        assert!(dets.iter().map(|d| d.similarity).fold(0.0, f64::max) >= 0.7);
        assert!(stats.sketch_compares > 0);
        assert!(stats.sketch_combines > 0);
    }

    #[test]
    fn both_representations_agree_on_detections() {
        let (bit, _) = run(Representation::Bit);
        let (sketch, _) = run(Representation::Sketch);
        // Same candidate/query pairs, same similarities (the bit encoding
        // is lossless).
        let key = |d: &Detection| (d.query_id, d.start_frame, d.end_frame);
        let mut a: Vec<_> = bit.iter().map(|d| (key(d), d.similarity)).collect();
        let mut b: Vec<_> = sketch.iter().map(|d| (key(d), d.similarity)).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn unrelated_stream_yields_no_detections_and_prunes() {
        let f = family();
        let queries = QuerySet::from_queries(vec![Query::from_cell_ids(
            1,
            &f,
            &(1000u64..1030).collect::<Vec<_>>(),
        )]);
        let config = cfg(Representation::Bit);
        let mut store = SeqStore::new(Representation::Bit);
        let mut stats = Stats::default();
        for i in 0..10u64 {
            let ids: Vec<u64> = (i * 10..i * 10 + 10).collect();
            let w = window(&f, i, &ids);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            let dets = store.advance(&w, &mut rel, &config, &queries, &mut stats);
            assert!(dets.is_empty());
        }
        assert!(stats.lemma2_prunes > 0, "unrelated candidates must be pruned");
        // Pruning keeps the candidate list thin.
        assert!(store.candidate_count() < 10);
    }

    #[test]
    fn length_bound_expires_entries() {
        let f = family();
        // Query of 4 keyframes -> max windows = ceil(2*4/4) = 2.
        let queries =
            QuerySet::from_queries(vec![Query::from_cell_ids(1, &f, &[1, 2, 3, 4])]);
        let config = cfg(Representation::Bit);
        let mut store = SeqStore::new(Representation::Bit);
        let mut stats = Stats::default();
        // Windows that keep the entry alive (share ids with the query).
        for i in 0..5u64 {
            let w = window(&f, i, &[1, 2, 3, 4]);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            store.advance(&w, &mut rel, &config, &queries, &mut stats);
        }
        assert!(stats.length_expiries > 0, "candidates beyond λL must expire");
        // No candidate may exceed the λL bound in windows.
        assert!(store.candidate_count() <= 2 + 1);
    }

    #[test]
    fn detection_reports_once_per_candidate_query() {
        let f = family();
        let queries =
            QuerySet::from_queries(vec![Query::from_cell_ids(1, &f, &[1, 2, 3, 4])]);
        let config = cfg(Representation::Bit);
        let mut store = SeqStore::new(Representation::Bit);
        let mut stats = Stats::default();
        let mut total = 0;
        for i in 0..2u64 {
            let w = window(&f, i, &[1, 2, 3, 4]);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            total += store.advance(&w, &mut rel, &config, &queries, &mut stats).len();
        }
        // Window 0 candidate reports once; window 1's fresh candidate
        // reports once. The extended candidate [0,1] must NOT re-report.
        assert_eq!(total, 2);
    }

    #[test]
    fn live_signature_accounting() {
        let f = family();
        let queries =
            QuerySet::from_queries(vec![Query::from_cell_ids(1, &f, &(0u64..40).collect::<Vec<_>>())]);
        let config = cfg(Representation::Bit);
        let mut store = SeqStore::new(Representation::Bit);
        let mut stats = Stats::default();
        let w = window(&f, 0, &[0, 1, 2, 3]);
        let mut rel = WindowRelations::all_queries(&queries);
        stats.windows += 1;
        store.advance(&w, &mut rel, &config, &queries, &mut stats);
        assert_eq!(store.live_signatures(), 1);
        assert_eq!(stats.live_signature_peak, 1);
    }
}
