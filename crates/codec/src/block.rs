//! Frame ⇄ 8×8 block conversion with edge padding.
//!
//! Frames whose dimensions are not multiples of 8 are padded by edge
//! replication, which keeps padded-block DC values representative of the
//! visible content (zero padding would bias edge blocks dark).

use crate::dct::{BLOCK, BLOCK_AREA};
use vdsms_video::Frame;

/// Block-grid geometry of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGrid {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Blocks per row (`ceil(width / 8)`).
    pub blocks_w: u32,
    /// Block rows (`ceil(height / 8)`).
    pub blocks_h: u32,
}

impl BlockGrid {
    /// Geometry for a `width × height` frame.
    pub fn for_dims(width: u32, height: u32) -> BlockGrid {
        assert!(width > 0 && height > 0);
        BlockGrid {
            width,
            height,
            blocks_w: width.div_ceil(BLOCK as u32),
            blocks_h: height.div_ceil(BLOCK as u32),
        }
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        (self.blocks_w * self.blocks_h) as usize
    }
}

/// Extract block `(bx, by)` of `frame` as level-shifted f32 samples
/// (`pixel - 128`), edge-replicated beyond the frame boundary.
pub fn extract_block(frame: &Frame, bx: u32, by: u32) -> [f32; BLOCK_AREA] {
    let mut out = [0.0f32; BLOCK_AREA];
    let w = frame.width();
    let h = frame.height();
    for dy in 0..BLOCK as u32 {
        let y = (by * BLOCK as u32 + dy).min(h - 1);
        for dx in 0..BLOCK as u32 {
            let x = (bx * BLOCK as u32 + dx).min(w - 1);
            out[(dy as usize) * BLOCK + dx as usize] = f32::from(frame.get(x, y)) - 128.0;
        }
    }
    out
}

/// Write reconstructed block samples (level-shifted f32) back into `frame`,
/// clamping to `[0, 255]` and discarding padding pixels.
pub fn store_block(frame: &mut Frame, bx: u32, by: u32, samples: &[f32; BLOCK_AREA]) {
    let w = frame.width();
    let h = frame.height();
    for dy in 0..BLOCK as u32 {
        let y = by * BLOCK as u32 + dy;
        if y >= h {
            break;
        }
        for dx in 0..BLOCK as u32 {
            let x = bx * BLOCK as u32 + dx;
            if x >= w {
                break;
            }
            let v = samples[(dy as usize) * BLOCK + dx as usize] + 128.0;
            frame.set(x, y, v.round().clamp(0.0, 255.0) as u8);
        }
    }
}

/// Sample the reference frame at `(x + mv_x, y + mv_y)` with edge
/// clamping — the motion-compensated predictor for one pixel.
#[inline]
fn ref_sample(reference: &Frame, x: i64, y: i64) -> u8 {
    let cx = x.clamp(0, i64::from(reference.width()) - 1) as u32;
    let cy = y.clamp(0, i64::from(reference.height()) - 1) as u32;
    reference.get(cx, cy)
}

/// Extract the *motion-compensated difference* block
/// `cur(x, y) − ref(x + mv_x, y + mv_y)` at `(bx, by)`. `(0, 0)` motion
/// degenerates to plain frame differencing. Used for P-frames.
pub fn extract_diff_block(
    cur: &Frame,
    reference: &Frame,
    bx: u32,
    by: u32,
    mv: (i8, i8),
) -> [f32; BLOCK_AREA] {
    let mut out = [0.0f32; BLOCK_AREA];
    let w = cur.width();
    let h = cur.height();
    for dy in 0..BLOCK as u32 {
        let y = (by * BLOCK as u32 + dy).min(h - 1);
        for dx in 0..BLOCK as u32 {
            let x = (bx * BLOCK as u32 + dx).min(w - 1);
            let predictor =
                ref_sample(reference, i64::from(x) + i64::from(mv.0), i64::from(y) + i64::from(mv.1));
            out[(dy as usize) * BLOCK + dx as usize] =
                f32::from(cur.get(x, y)) - f32::from(predictor);
        }
    }
    out
}

/// Sum of absolute differences between the current block and the
/// motion-compensated reference — the motion-search cost function.
pub fn block_sad(cur: &Frame, reference: &Frame, bx: u32, by: u32, mv: (i8, i8)) -> u32 {
    let w = cur.width();
    let h = cur.height();
    let mut sad = 0u32;
    for dy in 0..BLOCK as u32 {
        let y = (by * BLOCK as u32 + dy).min(h - 1);
        for dx in 0..BLOCK as u32 {
            let x = (bx * BLOCK as u32 + dx).min(w - 1);
            let predictor =
                ref_sample(reference, i64::from(x) + i64::from(mv.0), i64::from(y) + i64::from(mv.1));
            sad += u32::from(cur.get(x, y).abs_diff(predictor));
        }
    }
    sad
}

/// Add a reconstructed motion-compensated difference block onto the
/// reference pixels and store into `frame` (P-frame reconstruction).
pub fn store_diff_block(
    frame: &mut Frame,
    reference: &Frame,
    bx: u32,
    by: u32,
    mv: (i8, i8),
    diff: &[f32; BLOCK_AREA],
) {
    let w = frame.width();
    let h = frame.height();
    for dy in 0..BLOCK as u32 {
        let y = by * BLOCK as u32 + dy;
        if y >= h {
            break;
        }
        for dx in 0..BLOCK as u32 {
            let x = bx * BLOCK as u32 + dx;
            if x >= w {
                break;
            }
            let predictor =
                ref_sample(reference, i64::from(x) + i64::from(mv.0), i64::from(y) + i64::from(mv.1));
            let v = f32::from(predictor) + diff[(dy as usize) * BLOCK + dx as usize];
            frame.set(x, y, v.round().clamp(0.0, 255.0) as u8);
        }
    }
}


#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry_rounds_up() {
        let g = BlockGrid::for_dims(17, 8);
        assert_eq!((g.blocks_w, g.blocks_h), (3, 1));
        assert_eq!(g.num_blocks(), 3);
        let g2 = BlockGrid::for_dims(16, 16);
        assert_eq!((g2.blocks_w, g2.blocks_h), (2, 2));
    }

    #[test]
    fn extract_store_round_trip_interior_block() {
        let mut f = Frame::filled(16, 16, 0);
        for y in 0..16 {
            for x in 0..16 {
                f.set(x, y, (x * 16 + y) as u8);
            }
        }
        let blk = extract_block(&f, 1, 1);
        let mut g = Frame::filled(16, 16, 0);
        store_block(&mut g, 1, 1, &blk);
        for y in 8..16 {
            for x in 8..16 {
                assert_eq!(g.get(x, y), f.get(x, y));
            }
        }
    }

    #[test]
    fn padding_replicates_edge() {
        let f = Frame::filled(10, 10, 77); // 2 padded columns/rows on block (1,1)
        let blk = extract_block(&f, 1, 1);
        assert!(blk.iter().all(|&v| (v - (77.0 - 128.0)).abs() < 1e-6));
    }

    #[test]
    fn store_block_ignores_padding_region() {
        let mut f = Frame::filled(10, 10, 0);
        let blk = [50.0f32; BLOCK_AREA];
        store_block(&mut f, 1, 1, &blk); // block covers x,y in [8,16); frame ends at 10
        assert_eq!(f.get(9, 9), 178);
        // No panic and untouched pixels stay 0.
        assert_eq!(f.get(0, 0), 0);
    }

    #[test]
    fn motion_compensated_diff_is_zero_for_pure_shift() {
        // A 2px-right shift of the reference predicted at mv=(2,0) leaves
        // a zero residual in the interior.
        let mut reference = Frame::filled(24, 8, 0);
        for y in 0..8 {
            for x in 0..24 {
                reference.set(x, y, ((x * 10) % 256) as u8);
            }
        }
        let mut cur = Frame::filled(24, 8, 0);
        for y in 0..8 {
            for x in 0..24 {
                let sx = (x + 2).min(23);
                cur.set(x, y, reference.get(sx, y));
            }
        }
        // Interior block (bx=1): fully valid motion window.
        assert_eq!(block_sad(&cur, &reference, 1, 0, (2, 0)), 0);
        assert!(block_sad(&cur, &reference, 1, 0, (0, 0)) > 0);
        let d = extract_diff_block(&cur, &reference, 1, 0, (2, 0));
        assert!(d.iter().all(|&v| v == 0.0));
        let mut rec = Frame::filled(24, 8, 0);
        store_diff_block(&mut rec, &reference, 1, 0, (2, 0), &d);
        for y in 0..8 {
            for x in 8..16 {
                assert_eq!(rec.get(x, y), cur.get(x, y));
            }
        }
    }

    #[test]
    fn motion_vectors_clamp_at_frame_edges() {
        let reference = Frame::filled(8, 8, 50);
        let cur = Frame::filled(8, 8, 50);
        // A wild MV pointing outside the frame must clamp, not panic.
        assert_eq!(block_sad(&cur, &reference, 0, 0, (127, -128)), 0);
        let d = extract_diff_block(&cur, &reference, 0, 0, (-100, 100));
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn diff_block_round_trip() {
        let mut cur = Frame::filled(8, 8, 0);
        let reference = Frame::filled(8, 8, 100);
        for y in 0..8 {
            for x in 0..8 {
                cur.set(x, y, (100 + x as i32 - y as i32) as u8);
            }
        }
        let d = extract_diff_block(&cur, &reference, 0, 0, (0, 0));
        let mut rec = Frame::filled(8, 8, 0);
        store_diff_block(&mut rec, &reference, 0, 0, (0, 0), &d);
        assert_eq!(rec, cur);
    }
}
