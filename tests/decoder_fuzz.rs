//! Decoder fuzz properties: the partial decoder must never panic and
//! never loop forever, for arbitrary byte soup, for valid streams whose
//! tail is replaced with junk, and for real streams put through the
//! seeded fault injector — in strict *and* recovery mode. Recovery mode
//! additionally must never surface an error once the header parsed, and
//! its damage accounting must stay within the byte budget of the input.

use proptest::prelude::*;
use vdsms::codec::{DcFrame, Encoder, EncoderConfig, PartialDecoder};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::Fps;
use vdsms::workload::{inject_faults, FaultSpec};

fn encoded(seed: u64, seconds: f64) -> Vec<u8> {
    let clip = ClipGenerator::new(SourceSpec {
        width: 48,
        height: 32,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 1.0,
        max_scene_s: 2.0,
        motifs: None,
    })
    .clip(seconds);
    Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true })
}

/// Pull the whole stream; returns `(frames, errored)`. Panics if the
/// decoder takes more pulls than the stream has bytes — every successful
/// pull consumes at least one byte, so that would mean a stuck cursor.
fn drain(bytes: &[u8], recover: bool) -> (usize, bool) {
    let Ok(mut decoder) = PartialDecoder::new_with_recovery(bytes, recover) else {
        return (0, true);
    };
    let mut frame = DcFrame::empty();
    let mut frames = 0usize;
    let bound = bytes.len() + 2;
    for _ in 0..bound {
        match decoder.next_dc_frame_into(&mut frame) {
            Ok(true) => frames += 1,
            Ok(false) => {
                let health = decoder.health();
                assert!(
                    health.bytes_skipped as usize <= bytes.len(),
                    "skipped more bytes than the stream holds: {health:?}"
                );
                return (frames, false);
            }
            Err(_) => return (frames, true),
        }
    }
    panic!("decoder did not terminate within {bound} pulls (recover={recover})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pure byte soup: no panic, no hang, in either mode.
    #[test]
    fn arbitrary_bytes_never_panic_or_hang(
        bytes in proptest::collection::vec(any::<u8>(), 0..768),
    ) {
        drain(&bytes, false);
        drain(&bytes, true);
    }

    /// A valid header followed by arbitrary junk: strict mode errors or
    /// ends cleanly; recovery mode always ends cleanly (no error can
    /// escape once the header parsed) and decodes at most one frame per
    /// six bytes (the record-header size).
    #[test]
    fn junk_tail_after_valid_header_is_survivable(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        keep_frac in 0.0f64..1.0,
    ) {
        let bytes = encoded(41, 2.0);
        // Cut anywhere at or after the stream header (magic+version+
        // geometry fit well inside 32 bytes; records start before 64).
        let min_keep = 32.min(bytes.len());
        let keep = min_keep + ((bytes.len() - min_keep) as f64 * keep_frac) as usize;
        let mut mutated = bytes[..keep.min(bytes.len())].to_vec();
        mutated.extend_from_slice(&junk);

        drain(&mutated, false);
        let (frames, errored) = drain(&mutated, true);
        prop_assert!(!errored, "recovery mode must not error after a valid header");
        prop_assert!(frames <= mutated.len() / 6 + 1, "{frames} frames from {} bytes", mutated.len());
    }

    /// Seeded fault injection over a real stream: recovery mode survives
    /// every mix of flips, drops, deletions, insertions and truncation,
    /// and never manufactures more frames than the bytes can frame.
    #[test]
    fn seeded_faults_are_survivable_in_recovery_mode(
        seed in 0u64..1000,
        flip in 0.0f64..0.4,
        drop in 0.0f64..0.25,
        delete in 0.0f64..0.25,
        insert in 0.0f64..0.25,
        truncate in 0.0f64..0.08,
    ) {
        let bytes = encoded(42, 2.0);
        let spec = FaultSpec {
            seed,
            flip_rate: flip,
            drop_rate: drop,
            delete_rate: delete,
            insert_rate: insert,
            truncate_rate: truncate,
        };
        let report = inject_faults(&bytes, &spec);

        drain(&report.bytes, false);
        let (frames, errored) = drain(&report.bytes, true);
        prop_assert!(!errored, "recovery mode must survive injected faults: {spec:?}");
        prop_assert!(frames <= report.bytes.len() / 6 + 1);
        // An untouched stream must round-trip bit-identically through the
        // injector (rates can all round to "no fault" for a given seed).
        if report.records_faulted == 0 && report.dropped_records.is_empty() {
            prop_assert_eq!(&report.bytes, &bytes);
        }
    }
}
