//! Fixture-driven rule tests: every rule has a positive fixture (must
//! fire, with the expected count) and a negative fixture full of
//! look-alikes (must stay silent), plus suppression round-trips.
//!
//! Token rules run per file through [`check_file`]; the v2 workspace
//! analyses (hot-path, lock-order, taint, float ordering) run through
//! [`lint_sources`] with a config enabling exactly the rule under test,
//! so cross-firing between rules cannot mask a miscount.

use std::path::PathBuf;
use vdsms_lint::config::KNOWN_KEYS;
use vdsms_lint::{check_file, lint_sources, parse_config, LintConfig, Report, RuleSet, SourceFile};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn source(crate_name: &str, name: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.to_string(),
        path: name.to_string(),
        source: fixture(name),
        is_crate_root: false,
    }
}

fn check(name: &str) -> vdsms_lint::FileReport {
    check_file(&source("fixture", name), &RuleSet::all_enabled())
}

/// A config with exactly `rule` enabled (and everything else off).
fn config_only(rule: &str) -> LintConfig {
    let mut toml = String::from("[default]\n");
    for key in KNOWN_KEYS {
        if *key == "unsafe-allowed" {
            continue;
        }
        toml.push_str(&format!("{key} = {}\n", *key == rule));
    }
    parse_config(&toml).unwrap()
}

/// Run the workspace analyses over single-crate fixture files with only
/// `rule` enabled.
fn flow_check(names: &[&str], rule: &str) -> Report {
    let files: Vec<SourceFile> = names.iter().map(|n| source("fixture", n)).collect();
    lint_sources(&files, &config_only(rule))
}

fn count_of(diags: &[vdsms_lint::Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn token_positive_fixtures_fire_exactly_the_expected_rule() {
    for (file, rule, expected) in [
        ("det_iter_pos.rs", "deterministic-iteration", 3),
        ("wall_clock_pos.rs", "no-wall-clock", 2),
        ("lock_pos.rs", "lock-discipline", 2),
        ("unsafe_pos.rs", "unsafe-audit", 1),
    ] {
        let rep = check(file);
        assert_eq!(
            count_of(&rep.diagnostics, rule),
            expected,
            "{file}: wrong `{rule}` count: {:#?}",
            rep.diagnostics
        );
        assert_eq!(
            rep.diagnostics.len(),
            expected,
            "{file}: unexpected extra findings: {:#?}",
            rep.diagnostics
        );
    }
}

#[test]
fn flow_positive_fixtures_fire_exactly_the_expected_rule() {
    for (file, rule, expected) in [
        ("no_panic_pos.rs", "no-panic-hot-path", 4),
        ("alloc_pos.rs", "no-alloc-hot-path", 4),
        ("lock_order_pos.rs", "lock-order", 1),
        ("arith_pos.rs", "no-unchecked-arith", 3),
        ("float_pos.rs", "float-determinism", 2),
        ("taint_pos.rs", "taint-unchecked-flow", 5),
        ("loop_progress_pos.rs", "loop-progress", 2),
        ("swallow_pos.rs", "no-swallowed-error", 3),
        ("shared_state_pos.rs", "shared-state-discipline", 3),
        ("guard_blocking_pos.rs", "guard-across-blocking", 4),
        ("channel_protocol_pos.rs", "channel-protocol", 4),
    ] {
        let rep = flow_check(&[file], rule);
        assert_eq!(
            count_of(&rep.diagnostics, rule),
            expected,
            "{file}: wrong `{rule}` count: {:#?}",
            rep.diagnostics
        );
        assert_eq!(
            rep.diagnostics.len(),
            expected,
            "{file}: unexpected extra findings: {:#?}",
            rep.diagnostics
        );
    }
}

#[test]
fn negative_fixtures_are_silent() {
    for file in ["det_iter_neg.rs", "wall_clock_neg.rs", "lock_neg.rs", "unsafe_neg.rs"] {
        let rep = check(file);
        assert!(rep.diagnostics.is_empty(), "{file}: {:#?}", rep.diagnostics);
        assert_eq!(rep.suppressed, 0, "{file}: nothing should need suppression");
    }
    for (file, rule) in [
        ("no_panic_neg.rs", "no-panic-hot-path"),
        ("alloc_neg.rs", "no-alloc-hot-path"),
        ("lock_order_neg.rs", "lock-order"),
        ("arith_neg.rs", "no-unchecked-arith"),
        ("float_neg.rs", "float-determinism"),
        ("taint_neg.rs", "taint-unchecked-flow"),
        ("loop_progress_neg.rs", "loop-progress"),
        ("swallow_neg.rs", "no-swallowed-error"),
        ("shared_state_neg.rs", "shared-state-discipline"),
        ("guard_blocking_neg.rs", "guard-across-blocking"),
        ("channel_protocol_neg.rs", "channel-protocol"),
    ] {
        let rep = flow_check(&[file], rule);
        assert!(rep.diagnostics.is_empty(), "{file}: {:#?}", rep.diagnostics);
        assert_eq!(rep.suppressed, 0, "{file}: nothing should need suppression");
    }
}

#[test]
fn diagnostics_carry_position_rule_snippet_and_chain() {
    let rep = flow_check(&["no_panic_pos.rs"], "no-panic-hot-path");
    let d = &rep.diagnostics[0];
    assert_eq!(d.rule, "no-panic-hot-path");
    assert_eq!(d.file, "no_panic_pos.rs");
    assert_eq!((d.line, d.col), (5, 28), "unwrap call position");
    assert!(d.snippet.contains("unwrap"), "snippet shows the offending line: {d:?}");
    assert!(d.render().contains("no_panic_pos.rs:5:28"), "render is file:line:col");
    assert!(d.message.contains("`lookup`"), "message names the hot chain: {}", d.message);
}

#[test]
fn hot_path_reachability_spans_three_crates() {
    let files = vec![
        source("vdsms-a", "reach_entry.rs"),
        source("vdsms-b", "reach_mid.rs"),
        source("vdsms-c", "reach_deep.rs"),
    ];
    let rep = lint_sources(&files, &config_only("no-panic-hot-path"));
    assert_eq!(rep.diagnostics.len(), 1, "{:#?}", rep.diagnostics);
    let d = &rep.diagnostics[0];
    assert_eq!(d.file, "reach_deep.rs", "finding lands at the panic site");
    assert!(
        d.message.contains("ingest → relay → danger"),
        "message prints the cross-crate chain: {}",
        d.message
    );
    // `cold` has the same unwrap but no path from an entry — no second
    // finding, which is the reachability gate doing its job.
}

#[test]
fn lock_order_cycle_reports_both_witness_chains() {
    let rep = flow_check(&["lock_order_pos.rs"], "lock-order");
    assert_eq!(rep.diagnostics.len(), 1, "{:#?}", rep.diagnostics);
    let d = &rep.diagnostics[0];
    assert!(d.message.contains("`publish`"), "first witness chain: {}", d.message);
    assert!(d.message.contains("`snapshot`"), "counter-witness chain: {}", d.message);
    assert!(
        d.message.contains("lock_order_pos.rs:"),
        "counter-witness carries file:line:col: {}",
        d.message
    );
}

#[test]
fn guard_across_blocking_prints_the_transitive_witness_chain() {
    let rep = flow_check(&["guard_blocking_pos.rs"], "guard-across-blocking");
    let d = rep
        .diagnostics
        .iter()
        .find(|d| d.message.contains("witness:"))
        .expect("one finding flows through a callee");
    assert!(
        d.message.contains("transitive_block → wait_for_ack"),
        "chain names the caller and the blocking callee: {}",
        d.message
    );
    assert!(d.message.contains("`.recv()`"), "names the blocking operation: {}", d.message);
    assert!(d.message.contains("`m`"), "names the held lock: {}", d.message);
}

#[test]
fn shared_state_findings_carry_the_creation_and_use_witness() {
    let rep = flow_check(&["shared_state_pos.rs"], "shared-state-discipline");
    let d = rep
        .diagnostics
        .iter()
        .find(|d| d.message.contains("Rc<…>"))
        .expect("the Rc-across-spawn finding");
    assert!(d.message.contains("`mine`"), "names the captured value: {}", d.message);
    assert!(d.message.contains("created at line"), "creation witness: {}", d.message);
    assert!(d.message.contains("first use at line"), "use witness: {}", d.message);
}

#[test]
fn valid_suppression_silences_and_is_counted() {
    let rep = check("suppression_ok.rs");
    assert!(rep.diagnostics.is_empty(), "{:#?}", rep.diagnostics);
    assert_eq!(rep.suppressed, 1);
}

#[test]
fn suppressions_cover_workspace_analyses_too() {
    let files = vec![SourceFile {
        crate_name: "fixture".to_string(),
        path: "inline.rs".to_string(),
        source: "// vdsms-lint: entry\n\
                 fn hot(x: Option<u32>) -> u32 {\n\
                 \x20   // vdsms-lint: allow(no-panic-hot-path) reason=\"x is Some by construction\"\n\
                 \x20   x.unwrap()\n\
                 }\n"
            .to_string(),
        is_crate_root: false,
    }];
    let rep = lint_sources(&files, &config_only("no-panic-hot-path"));
    assert!(rep.diagnostics.is_empty(), "{:#?}", rep.diagnostics);
    assert_eq!(rep.suppressed, 1);
}

#[test]
fn malformed_suppressions_are_themselves_findings() {
    let rep = check("suppression_bad.rs");
    assert_eq!(count_of(&rep.diagnostics, "invalid-suppression"), 3, "{:#?}", rep.diagnostics);
    assert_eq!(
        count_of(&rep.diagnostics, "no-wall-clock"),
        1,
        "a reason-less directive must not silence the finding it targets"
    );
    assert_eq!(rep.suppressed, 0);
}

#[test]
fn positive_fixtures_are_silent_when_their_rule_is_disabled() {
    // The per-crate config story in miniature: the same source is clean
    // once the rule is switched off.
    let rep = check_file(&source("fixture", "det_iter_pos.rs"), &RuleSet::builtin_default());
    assert!(rep.diagnostics.is_empty(), "{:#?}", rep.diagnostics);
    // And a flow fixture with a different (token) rule enabled instead.
    let rep = flow_check(&["no_panic_pos.rs"], "no-wall-clock");
    assert!(rep.diagnostics.is_empty(), "{:#?}", rep.diagnostics);
}
