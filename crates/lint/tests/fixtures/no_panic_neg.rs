// Fixture: the same logic written panic-free, plus look-alikes that the
// rule must not flag (unwrap_or*, assert!, test-module unwraps), all on
// a marked hot path.
// vdsms-lint: entry
fn lookup(m: &Table, key: u32) -> Option<Entry> {
    let first = m.get(key)?;
    let second = m.get(key + 1).unwrap_or_default();
    debug_assert!(first.id <= second.id, "construction-time check");
    m.rows.get(0).cloned()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = Some(1).unwrap();
        assert_eq!(v, 1);
    }
}
