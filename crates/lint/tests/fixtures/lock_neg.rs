// Fixture: the sanctioned shim, scoped guards, and I/O `.read(buf)`
// look-alikes — all clean.
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::AtomicU64;

fn transfer(a: &Shared, b: &Shared) {
    let item = {
        let mut from = a.inner.lock();
        from.pop()
    };
    let mut to = b.inner.lock();
    to.push(item);
}

fn copy(r: &mut impl std::io::Read, buf: &mut [u8]) {
    let n = r.read(buf);
    let m = r.read(buf);
    let _ = (n, m);
}
