//! 8×8 orthonormal DCT-II and its inverse.
//!
//! The transform is the separable 2-D DCT used by MPEG/JPEG intra coding.
//! With the orthonormal scaling used here, the DC term of a block equals
//! `sum(pixels) / 8`, so `block mean = DC / 8` — the identity the feature
//! layer (and its tests) rely on.

/// Block edge length.
pub const BLOCK: usize = 8;
/// Samples per block.
pub const BLOCK_AREA: usize = BLOCK * BLOCK;

/// Precomputed cosine basis: `COS[k][n] = c(k) * cos((2n+1)kπ/16)` where
/// `c(0) = 1/√8` and `c(k>0) = 1/2`.
fn basis() -> &'static [[f32; BLOCK]; BLOCK] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; BLOCK]; BLOCK]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0.0f32; BLOCK]; BLOCK];
        for (k, row) in b.iter_mut().enumerate() {
            let ck = if k == 0 { (1.0 / (BLOCK as f64)).sqrt() } else { (2.0 / (BLOCK as f64)).sqrt() };
            for (n, v) in row.iter_mut().enumerate() {
                let angle = std::f64::consts::PI * (2.0 * n as f64 + 1.0) * k as f64
                    / (2.0 * BLOCK as f64);
                *v = (ck * angle.cos()) as f32;
            }
        }
        b
    })
}

/// Forward 2-D DCT of an 8×8 block (row-major, any real-valued samples —
/// the encoder passes level-shifted pixels in `[-128, 127]`).
pub fn forward(block: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let b = basis();
    // Rows first.
    let mut tmp = [0.0f32; BLOCK_AREA];
    for y in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0.0f32;
            for n in 0..BLOCK {
                acc += block[y * BLOCK + n] * b[k][n];
            }
            tmp[y * BLOCK + k] = acc;
        }
    }
    // Then columns.
    let mut out = [0.0f32; BLOCK_AREA];
    for x in 0..BLOCK {
        for k in 0..BLOCK {
            let mut acc = 0.0f32;
            for n in 0..BLOCK {
                acc += tmp[n * BLOCK + x] * b[k][n];
            }
            out[k * BLOCK + x] = acc;
        }
    }
    out
}

/// Inverse 2-D DCT of an 8×8 coefficient block.
pub fn inverse(coeffs: &[f32; BLOCK_AREA]) -> [f32; BLOCK_AREA] {
    let b = basis();
    // Columns first (transpose of forward).
    let mut tmp = [0.0f32; BLOCK_AREA];
    for x in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc = 0.0f32;
            for k in 0..BLOCK {
                acc += coeffs[k * BLOCK + x] * b[k][n];
            }
            tmp[n * BLOCK + x] = acc;
        }
    }
    let mut out = [0.0f32; BLOCK_AREA];
    for y in 0..BLOCK {
        for n in 0..BLOCK {
            let mut acc = 0.0f32;
            for k in 0..BLOCK {
                acc += tmp[y * BLOCK + k] * b[k][n];
            }
            out[y * BLOCK + n] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block(seed: u32) -> [f32; BLOCK_AREA] {
        // Simple LCG so the test has no RNG dependency.
        let mut state = seed as u64 * 2654435761 + 1;
        let mut b = [0.0f32; BLOCK_AREA];
        for v in &mut b {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((state >> 33) % 256) as f32 - 128.0;
        }
        b
    }

    #[test]
    fn round_trip_is_near_identity() {
        for seed in 0..16 {
            let b = sample_block(seed);
            let back = inverse(&forward(&b));
            for (a, r) in b.iter().zip(&back) {
                assert!((a - r).abs() < 1e-2, "round trip error {a} vs {r}");
            }
        }
    }

    #[test]
    fn dc_equals_sum_over_eight() {
        let b = sample_block(3);
        let c = forward(&b);
        let sum: f32 = b.iter().sum();
        assert!((c[0] - sum / 8.0).abs() < 1e-2);
    }

    #[test]
    fn constant_block_has_only_dc_energy() {
        let b = [50.0f32; BLOCK_AREA];
        let c = forward(&b);
        assert!((c[0] - 50.0 * 8.0).abs() < 1e-2);
        for &v in &c[1..] {
            assert!(v.abs() < 1e-3, "AC leakage {v}");
        }
    }

    #[test]
    fn transform_is_orthonormal_energy_preserving() {
        // Parseval: sum of squares preserved.
        let b = sample_block(9);
        let c = forward(&b);
        let e0: f32 = b.iter().map(|v| v * v).sum();
        let e1: f32 = c.iter().map(|v| v * v).sum();
        assert!((e0 - e1).abs() / e0 < 1e-4);
    }

    #[test]
    fn horizontal_cosine_maps_to_single_coefficient() {
        // A pure horizontal basis function concentrates in one coefficient.
        let b = basis();
        let mut blk = [0.0f32; BLOCK_AREA];
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                blk[y * BLOCK + x] = b[3][x]; // k=3 horizontal pattern
            }
        }
        let c = forward(&blk);
        // Energy should land at (ky=0, kx=3).
        let target = c[3].abs();
        for (i, &v) in c.iter().enumerate() {
            if i != 3 {
                assert!(v.abs() < target / 100.0 + 1e-4, "coefficient {i} leaked {v}");
            }
        }
    }
}
