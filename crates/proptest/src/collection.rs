//! Collection strategies: `vec` and `hash_set`.

use crate::{Strategy, TestRng};
use rand::Rng as _;
use std::collections::HashSet;
use std::hash::Hash;

/// A collection size specification: an exact size or a half-open /
/// inclusive range, mirroring upstream's `Into<SizeRange>` arguments.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum size (inclusive).
    pub min: usize,
    /// Maximum size (inclusive).
    pub max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generate a `Vec` of `element` values with a size in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy for `HashSet<T>` with sizes drawn from `size`.
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut out = HashSet::with_capacity(n);
        // Bounded retries: a small element domain may not have n distinct
        // values; upstream treats this as an (unlikely) generation failure.
        let mut attempts = 0usize;
        while out.len() < n {
            out.insert(self.element.generate(rng));
            attempts += 1;
            assert!(
                attempts < 100 * (n + 1),
                "hash_set strategy could not reach {n} distinct elements"
            );
        }
        out
    }
}

/// Generate a `HashSet` of `element` values with a size in `size`.
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}
