// channel-protocol negative fixture: protocol-respecting look-alikes.
// Must be silent.

use std::sync::mpsc::{self, Sender};

// A one-shot reply used exactly once.
pub fn single_reply() {
    let (tx, rx) = mpsc::sync_channel(1);
    let _ = tx.send(1);
    let _ = rx.recv();
}

// Two sends are fine when the bound has room for both.
pub fn wide_reply() {
    let (tx, rx) = mpsc::sync_channel(4);
    let _ = tx.send(1);
    let _ = tx.send(2);
    let _ = rx.recv();
    let _ = rx.recv();
}

// Sends complete before the receiver goes away.
pub fn send_then_close() {
    let (tx, rx) = mpsc::channel();
    let _ = tx.send(1);
    let _ = rx.recv();
    drop(rx);
}

// Dropping the *sender* then receiving is the normal drain idiom.
pub fn drain_after_sender_drop() {
    let (tx, rx) = mpsc::channel();
    let _ = tx.send(1);
    drop(tx);
    let _ = rx.recv();
}

// A teardown path may fire-and-forget: the peer being gone is expected.
pub fn shutdown(tx: &Sender<u64>) {
    tx.send(0);
}

// A semicolon-less tail is the function's return value, not a discard —
// the wrapper-delegation idiom.
pub fn delegated_send(tx: &Sender<u64>, v: u64) -> Result<(), mpsc::SendError<u64>> {
    tx.send(v)
}
