//! Golden-snapshot test for the attack-matrix JSON report: the output of
//! a fixed tiny evaluation must match `tests/golden/attack_matrix.json`
//! byte for byte (same convention as `vdsms-lint --json`'s snapshot).
//!
//! The snapshot pins two things at once: the report *format* (key order,
//! float formatting) that `BENCH_robustness.json` tooling parses, and the
//! *determinism* of the whole evaluation pipeline — any drift in codec
//! bits, feature extraction, sketching, or detection shows up here as a
//! changed number. Regenerate after an intentional change with
//! `BLESS=1 cargo test -p vdsms-workload --test attack_matrix_golden`.

use std::path::Path;
use vdsms_core::DetectorVariant;
use vdsms_workload::{evaluate_matrix, AttackSpec, MatrixConfig, WorkloadSpec};

#[test]
fn attack_matrix_json_matches_the_golden_snapshot_byte_for_byte() {
    let config = MatrixConfig {
        spec: WorkloadSpec {
            seed: 42,
            num_clips: 3,
            inserted: 2,
            clip_min_s: 8.0,
            clip_max_s: 12.0,
            base_seconds: 50.0,
            ..Default::default()
        },
        profile: "golden".to_string(),
        attacks: vec![
            AttackSpec::parse("speed-up:medium", 42).unwrap(),
            AttackSpec::parse("clip-in-clip:light", 42).unwrap(),
        ],
        detectors: vec![DetectorVariant::Seq, DetectorVariant::Geo],
        w_seconds: 5.0,
        delta: 0.7,
        k: 400,
    };
    let first = evaluate_matrix(&config).to_json();
    let second = evaluate_matrix(&config).to_json();
    assert_eq!(first, second, "two runs of the same config must serialize identically");

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/attack_matrix.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&golden_path, &first).expect("write golden snapshot");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden snapshot missing — run with BLESS=1 to create it");
    assert_eq!(
        first, golden,
        "attack-matrix JSON drifted from the golden snapshot; if intentional, \
         regenerate with BLESS=1"
    );
}
