//! Seeded synthetic video source.
//!
//! Content model: a video is a succession of *scenes*. Each scene renders a
//! smooth luminance field (a small sum of low-frequency 2-D cosines — i.e.
//! energy exactly where DCT-based codecs expect it) that slowly pans, plus a
//! moving bright/dark "object" blob and a slow brightness drift. Scene cuts
//! replace the whole field.
//!
//! This reproduces the two statistics the paper's pipeline depends on:
//! block-DC values are temporally coherent within a scene (so key frames of
//! a copy land on nearly identical features even after ±1 GOP misalignment)
//! and decorrelated across scenes/clips (so different content maps to
//! different fingerprint cells).

use crate::{Clip, Fps, Frame};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cosine harmonics per scene field.
const HARMONICS: usize = 6;

/// A shared pool of visual *motifs* (spatial patterns scenes are built
/// from).
///
/// Real broadcast content reuses visual statistics heavily — talking
/// heads, stadium grass, studio sets — so distinct videos routinely map
/// some frames to the *same* fingerprint cells. Drawing scene patterns
/// from a finite shared pool reproduces that collision structure: smaller
/// pools mean more cross-clip cell collisions (more false-positive
/// pressure on the detector), `None` means every scene is unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotifPool {
    /// Seed the motif library derives from. Generators sharing
    /// `(seed, count)` share the library.
    pub seed: u64,
    /// Number of motifs in the pool.
    pub count: u32,
}

/// Parameters of a synthetic video source.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frame rate.
    pub fps: Fps,
    /// RNG seed; two sources with the same spec produce identical frames.
    pub seed: u64,
    /// Minimum scene duration in seconds.
    pub min_scene_s: f64,
    /// Maximum scene duration in seconds.
    pub max_scene_s: f64,
    /// Optional shared motif pool (see [`MotifPool`]).
    pub motifs: Option<MotifPool>,
}

impl SourceSpec {
    /// A spec with the paper's NTSC geometry scaled down by `scale` (1 =
    /// full 352×240; 4 = 88×60 — the default for experiments).
    pub fn ntsc_scaled(seed: u64, scale: u32) -> SourceSpec {
        assert!(scale >= 1, "scale must be >= 1");
        SourceSpec {
            width: (352 / scale).max(16),
            height: (240 / scale).max(16),
            fps: Fps::NTSC,
            seed,
            min_scene_s: 2.0,
            max_scene_s: 8.0,
            motifs: None,
        }
    }
}

/// One scene's rendering parameters.
#[derive(Debug, Clone)]
struct Scene {
    /// Mean luma of the scene, in [40, 215].
    mean: f64,
    /// Cosine harmonics: (amplitude, u-freq, v-freq, phase).
    harmonics: [(f64, f64, f64, f64); HARMONICS],
    /// Pan velocity in pixels/frame (x, y).
    pan: (f64, f64),
    /// Brightness drift in luma/frame.
    drift: f64,
    /// Object blob: (start x, start y, velocity x, velocity y, radius, amplitude).
    blob: (f64, f64, f64, f64, f64, f64),
    /// Remaining frames in this scene.
    remaining: usize,
    /// Frames rendered so far in this scene.
    t: usize,
}

/// Streaming generator of synthetic frames.
///
/// Implements [`Iterator`] over [`Frame`]s; infinite (call `.take(n)` or use
/// [`ClipGenerator::clip`]).
#[derive(Debug, Clone)]
pub struct ClipGenerator {
    spec: SourceSpec,
    rng: StdRng,
    scene: Scene,
}

impl ClipGenerator {
    /// Create a generator for the given spec.
    pub fn new(spec: SourceSpec) -> ClipGenerator {
        assert!(spec.min_scene_s > 0.0 && spec.max_scene_s >= spec.min_scene_s);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let scene = Self::new_scene(&spec, &mut rng);
        ClipGenerator { spec, rng, scene }
    }

    /// Generate a clip lasting `seconds` of wall-clock time.
    pub fn clip(&mut self, seconds: f64) -> Clip {
        let n = self.spec.fps.frames_in(seconds).max(1);
        let frames: Vec<Frame> = self.by_ref().take(n).collect();
        Clip::new(frames, self.spec.fps)
    }

    /// The spatial pattern of one motif, deterministic per
    /// `(pool seed, index)`.
    fn motif_harmonics(pool: MotifPool, index: u32) -> [(f64, f64, f64, f64); HARMONICS] {
        let mut rng = StdRng::seed_from_u64(pool.seed ^ (0x0f1f_0000 + u64::from(index)));
        let mut harmonics = [(0.0, 0.0, 0.0, 0.0); HARMONICS];
        for (i, h) in harmonics.iter_mut().enumerate() {
            let amp = rng.gen_range(30.0..60.0) / (i as f64 + 1.0);
            let u = rng.gen_range(0.5..3.5);
            let v = rng.gen_range(0.5..3.5);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            *h = (amp, u, v, phase);
        }
        harmonics
    }

    fn new_scene(spec: &SourceSpec, rng: &mut StdRng) -> Scene {
        let dur_s = rng.gen_range(spec.min_scene_s..=spec.max_scene_s);
        let mut harmonics = match spec.motifs {
            Some(pool) => {
                // Scenes reuse a shared motif, with a small per-scene
                // amplitude variation (different takes of a similar shot).
                let index = rng.gen_range(0..pool.count.max(1));
                let mut h = Self::motif_harmonics(pool, index);
                let jitter = rng.gen_range(0.92..1.08);
                for hk in &mut h {
                    hk.0 *= jitter;
                }
                h
            }
            None => {
                let mut h = [(0.0, 0.0, 0.0, 0.0); HARMONICS];
                for (i, hk) in h.iter_mut().enumerate() {
                    // Lower harmonics carry more energy, like natural
                    // images. The first harmonic is strong so that the 3×3
                    // region averages of the feature layer are well
                    // separated (high spatial contrast keeps normalized
                    // features stable under re-quantization).
                    let amp = rng.gen_range(30.0..60.0) / (i as f64 + 1.0);
                    let u = rng.gen_range(0.5..3.5);
                    let v = rng.gen_range(0.5..3.5);
                    let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                    *hk = (amp, u, v, phase);
                }
                h
            }
        };
        // Mid-range means leave headroom so ±20–50 % brightness edits (the
        // paper's VS2 tamper range) rarely clip, which is also how typical
        // tone-mapped broadcast content behaves.
        let mean: f64 = rng.gen_range(75.0..170.0);
        let mut blob_amp = rng.gen_range(-35.0..35.0f64);
        // Rescale the luma excursion so the rendered scene is guaranteed to
        // stay inside [8, 235]: hard-clipped sources would make copies
        // diverge at the *content* level rather than the edit level.
        let max_drift =
            0.2 * f64::from(spec.width) / 60.0 / spec.fps.as_f64() * spec.fps.frames_in(dur_s) as f64;
        let excursion: f64 =
            harmonics.iter().map(|h| h.0).sum::<f64>() + blob_amp.abs() + max_drift;
        let headroom = (235.0 - mean).min(mean - 8.0);
        if excursion > headroom {
            let scale = headroom / excursion;
            for h in &mut harmonics {
                h.0 *= scale;
            }
            blob_amp *= scale;
        }
        // Motion rates are scaled to the frame rate (pixels per *second*
        // divided by fps) so that a clip and its frame-rate-converted copy
        // traverse the same visual path — and kept slow enough that key
        // frames sampled at slightly different times land on nearly the
        // same features, as they do for real broadcast content.
        let px_per_frame = f64::from(spec.width) / 120.0 / spec.fps.as_f64();
        Scene {
            mean,
            harmonics,
            pan: (
                rng.gen_range(-px_per_frame..px_per_frame),
                rng.gen_range(-0.7 * px_per_frame..0.7 * px_per_frame),
            ),
            drift: rng.gen_range(-0.2 * px_per_frame..0.2 * px_per_frame),
            blob: (
                rng.gen_range(0.0..spec.width as f64),
                rng.gen_range(0.0..spec.height as f64),
                rng.gen_range(-1.5 * px_per_frame..1.5 * px_per_frame),
                rng.gen_range(-px_per_frame..px_per_frame),
                rng.gen_range(spec.width as f64 / 12.0..spec.width as f64 / 5.0),
                blob_amp,
            ),
            remaining: spec.fps.frames_in(dur_s).max(1),
            t: 0,
        }
    }

    fn render(&self) -> Frame {
        let s = &self.scene;
        let w = self.spec.width;
        let h = self.spec.height;
        let t = s.t as f64;
        let (px, py) = (s.pan.0 * t, s.pan.1 * t);
        let base = s.mean + s.drift * t;
        let (bx0, by0, bvx, bvy, br, bamp) = s.blob;
        let bx = bx0 + bvx * t;
        let by = by0 + bvy * t;
        let inv_r2 = 1.0 / (br * br);

        let mut data = Vec::with_capacity((w * h) as usize);
        // Precompute per-column sin/cos of the x phase argument once per
        // frame: the field is a sum of separable-argument cosines
        // cos(a_x + a_y + φ), expanded with the angle-addition identity so
        // the per-pixel work is pure multiply-add (no trig).
        let mut col_sincos = vec![[(0.0f64, 0.0f64); HARMONICS]; w as usize];
        for (x, sc) in col_sincos.iter_mut().enumerate() {
            for (k, &(_, u, _, _)) in s.harmonics.iter().enumerate() {
                let ax = std::f64::consts::TAU * u * (x as f64 + px) / w as f64;
                sc[k] = ax.sin_cos();
            }
        }
        for y in 0..h {
            // Per-row (sin, cos) of the y phase argument, amplitude folded
            // in: val += amp*(cos_ax*cos_ay - sin_ax*sin_ay).
            let mut row_terms = [(0.0f64, 0.0f64); HARMONICS];
            for (k, &(amp, _, v, phase)) in s.harmonics.iter().enumerate() {
                let ay = std::f64::consts::TAU * v * (y as f64 + py) / h as f64 + phase;
                let (sin_ay, cos_ay) = ay.sin_cos();
                row_terms[k] = (amp * sin_ay, amp * cos_ay);
            }
            let dy = y as f64 - by;
            let dy2 = dy * dy;
            for x in 0..w {
                let mut val = base;
                let sc = &col_sincos[x as usize];
                for (k, &(amp_sin_ay, amp_cos_ay)) in row_terms.iter().enumerate() {
                    let (sin_ax, cos_ax) = sc[k];
                    val += cos_ax * amp_cos_ay - sin_ax * amp_sin_ay;
                }
                let dx = x as f64 - bx;
                let d2 = (dx * dx + dy2) * inv_r2;
                if d2 < 9.0 {
                    val += bamp * (-d2).exp();
                }
                data.push(val.round().clamp(0.0, 255.0) as u8);
            }
        }
        Frame::from_raw(w, h, data)
    }
}

impl Iterator for ClipGenerator {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        if self.scene.remaining == 0 {
            self.scene = Self::new_scene(&self.spec, &mut self.rng);
        }
        let frame = self.render();
        self.scene.t += 1;
        self.scene.remaining -= 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> SourceSpec {
        SourceSpec {
            width: 48,
            height: 32,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ClipGenerator::new(small_spec(7)).clip(3.0);
        let b = ClipGenerator::new(small_spec(7)).clip(3.0);
        assert_eq!(a.frames(), b.frames());
    }

    #[test]
    fn different_seeds_differ() {
        let a = ClipGenerator::new(small_spec(1)).clip(1.0);
        let b = ClipGenerator::new(small_spec(2)).clip(1.0);
        assert!(a.frames()[0].mean_abs_diff(&b.frames()[0]) > 1.0);
    }

    #[test]
    fn consecutive_frames_are_temporally_smooth() {
        // Within a scene, adjacent frames must be close; this is the
        // property the key-frame feature pipeline relies on.
        let clip = ClipGenerator::new(small_spec(3)).clip(0.9); // one scene
        let frames = clip.frames();
        for pair in frames.windows(2) {
            assert!(
                pair[0].mean_abs_diff(&pair[1]) < 12.0,
                "adjacent frames too different within a scene"
            );
        }
    }

    #[test]
    fn scene_cuts_occur() {
        // Over 30 seconds with 1-2 s scenes we must see at least one hard
        // cut: a pair of adjacent frames much further apart than the
        // in-scene motion.
        let clip = ClipGenerator::new(small_spec(4)).clip(30.0);
        let frames = clip.frames();
        let max_jump = frames
            .windows(2)
            .map(|p| p[0].mean_abs_diff(&p[1]))
            .fold(0.0f64, f64::max);
        assert!(max_jump > 15.0, "no scene cut observed (max jump {max_jump})");
    }

    #[test]
    fn frames_use_wide_luma_range() {
        let clip = ClipGenerator::new(small_spec(5)).clip(10.0);
        let means: Vec<f64> = clip.frames().iter().map(Frame::mean).collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 20.0, "scenes do not vary enough in brightness");
    }

    #[test]
    fn ntsc_scaled_spec_dimensions() {
        let s = SourceSpec::ntsc_scaled(0, 4);
        assert_eq!((s.width, s.height), (88, 60));
        let s1 = SourceSpec::ntsc_scaled(0, 1);
        assert_eq!((s1.width, s1.height), (352, 240));
    }

    #[test]
    fn clip_has_requested_duration() {
        let c = ClipGenerator::new(small_spec(6)).clip(2.0);
        assert_eq!(c.len(), 20);
    }
}
