//! Cross-crate property tests (proptest): invariants that must hold for
//! arbitrary inputs, spanning codec, sketch and core.

use proptest::prelude::*;
use vdsms::codec::{Decoder, Encoder, EncoderConfig, PartialDecoder};
use vdsms::core::{BitSig, HqIndex, Query, QuerySet};
use vdsms::sketch::{jaccard, MinHashFamily, Sketch};
use vdsms::video::{Clip, Fps, Frame};

/// Arbitrary small frames.
fn arb_frame(w: u32, h: u32) -> impl Strategy<Value = Frame> {
    proptest::collection::vec(any::<u8>(), (w * h) as usize)
        .prop_map(move |data| Frame::from_raw(w, h, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode → decode of arbitrary (even non-smooth) frames stays within
    /// quantizer error, and the partial decoder agrees with the full
    /// decoder on every key frame DC.
    #[test]
    fn codec_round_trip_and_partial_consistency(
        frames in proptest::collection::vec(arb_frame(24, 16), 3..10),
        quality in 30u8..95,
        gop in 1u32..5,
    ) {
        let clip = Clip::new(frames, Fps::integer(10));
        let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop, quality, motion_search: true });
        let decoded = Decoder::new(&bytes).unwrap().decode_all().unwrap();
        prop_assert_eq!(decoded.len(), clip.len());
        // Random noise is the worst case for a DCT codec; bound loosely
        // but meaningfully (quality >= 30).
        for (orig, dec) in clip.frames().iter().zip(&decoded) {
            prop_assert!(orig.mean_abs_diff(dec) < 48.0);
        }
        let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
        prop_assert_eq!(dcs.len(), clip.len().div_ceil(gop as usize));
        for dc in &dcs {
            let full = &decoded[dc.frame_index as usize];
            for by in 0..dc.blocks_h {
                for bx in 0..dc.blocks_w {
                    let mean_full = full.region_mean(bx * 8, by * 8, (bx * 8 + 8).min(24), (by * 8 + 8).min(16));
                    let mean_dc = f64::from(dc.block_mean(bx, by));
                    // DC is pre-IDCT; reconstruction adds rounding only.
                    prop_assert!((mean_full - mean_dc).abs() < 16.0,
                        "block ({},{}) {} vs {}", bx, by, mean_full, mean_dc);
                }
            }
        }
    }

    /// Min-hash similarity estimates track exact Jaccard for arbitrary id
    /// sets, and sketch combination equals the union's sketch.
    #[test]
    fn sketch_estimates_and_union_property(
        a in proptest::collection::hash_set(0u64..5000, 5..200),
        b in proptest::collection::hash_set(0u64..5000, 5..200),
        seed in 0u64..1000,
    ) {
        let family = MinHashFamily::new(512, seed);
        let sa = Sketch::from_ids(&family, a.iter().copied());
        let sb = Sketch::from_ids(&family, b.iter().copied());
        let exact = jaccard(a.iter().copied(), b.iter().copied());
        let est = sa.estimate_similarity(&sb);
        prop_assert!((est - exact).abs() < 0.15, "est {est} vs exact {exact}");

        let mut combined = sa.clone();
        combined.combine(&sb);
        let union = Sketch::from_ids(&family, a.iter().chain(b.iter()).copied());
        prop_assert_eq!(combined, union);
    }

    /// The bit-signature encoding is lossless: OR-combining signatures of
    /// parts equals encoding the combined sketch, and Lemma-1 similarity
    /// equals the sketch-level estimate — for arbitrary sets and K.
    #[test]
    fn bitsig_is_lossless_for_arbitrary_sets(
        q in proptest::collection::hash_set(0u64..2000, 5..100),
        p1 in proptest::collection::hash_set(0u64..2000, 5..100),
        p2 in proptest::collection::hash_set(0u64..2000, 5..100),
        k in 5usize..300,
        seed in 0u64..100,
    ) {
        let family = MinHashFamily::new(k, seed);
        let sq = Sketch::from_ids(&family, q.iter().copied());
        let s1 = Sketch::from_ids(&family, p1.iter().copied());
        let s2 = Sketch::from_ids(&family, p2.iter().copied());

        let mut ored = BitSig::encode(&s1, &sq);
        ored.or_with(&BitSig::encode(&s2, &sq));
        let direct = BitSig::encode(&s1.combined(&s2), &sq);
        prop_assert_eq!(&ored, &direct);
        prop_assert_eq!(ored.count_equal(), s1.combined(&s2).equal_count(&sq));
    }

    /// Lemma 2 never prunes a candidate that currently matches: a
    /// signature with similarity >= δ cannot violate the pruning bound.
    #[test]
    fn lemma2_never_prunes_a_match(
        q in proptest::collection::hash_set(0u64..2000, 10..100),
        p in proptest::collection::hash_set(0u64..2000, 10..100),
        k in 10usize..200,
        delta in 0.5f64..0.95,
    ) {
        let family = MinHashFamily::new(k, 7);
        let sq = Sketch::from_ids(&family, q.iter().copied());
        let sp = Sketch::from_ids(&family, p.iter().copied());
        let sig = BitSig::encode(&sp, &sq);
        if sig.similarity() >= delta {
            prop_assert!(!sig.violates_lemma2(delta));
        }
    }

    /// The HQ index probe returns exactly the brute-force related-query
    /// set, for arbitrary query libraries and window sketches.
    #[test]
    fn hq_probe_equals_bruteforce(
        queries in proptest::collection::vec(
            proptest::collection::hash_set(0u64..500, 3..40), 1..20),
        window in proptest::collection::hash_set(0u64..500, 3..40),
        delta in 0.5f64..0.9,
    ) {
        let k = 64;
        let family = MinHashFamily::new(k, 3);
        let qs = QuerySet::from_queries(
            queries.iter().enumerate().map(|(i, ids)| {
                let v: Vec<u64> = ids.iter().copied().collect();
                Query::from_cell_ids(i as u32, &family, &v)
            }).collect());
        let ix = HqIndex::build(k, &qs);
        let sk = Sketch::from_ids(&family, window.iter().copied());
        let mut got: Vec<u32> = ix.probe(&sk, delta).hits.into_iter().map(|h| h.query_id).collect();
        let mut want: Vec<u32> = ix.probe_bruteforce(&sk, delta, &qs).into_iter().map(|h| h.query_id).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
