//! Workspace symbol table: every function summary, indexed for the
//! name-based call resolution in [`crate::callgraph`].
//!
//! There is no type inference here — resolution is by name (optionally
//! qualified by the `impl` self type), which is what a lint-grade
//! analysis can honestly support. The consequences are documented where
//! they matter: [`crate::callgraph`] refuses to resolve method names
//! that collide with ubiquitous std methods, so the hot set is an
//! *under*-approximation (missed edges degrade coverage, never produce
//! false positives).
//!
//! Since lint v3 the table indexes [`FnSummary`] records rather than raw
//! AST nodes: summaries are what the incremental cache stores, so the
//! whole link phase — symbols, call graph, interprocedural rules — runs
//! identically whether a file was freshly parsed or loaded from cache.

use crate::summaries::{FileSummary, FnSummary};
use crate::SourceFile;
use std::collections::HashMap;

/// One function symbol.
#[derive(Debug)]
pub struct FnSym<'a> {
    /// Dense id (index into [`SymbolTable::fns`]).
    pub id: usize,
    /// Index of the defining file in the driver's file list.
    pub file: usize,
    /// Package name of the defining crate.
    pub crate_name: &'a str,
    /// Workspace-relative path label of the defining file.
    pub path: &'a str,
    /// `impl`/`trait` self type, if this is an associated function.
    pub self_ty: Option<&'a str>,
    /// The function's summary (sites, calls, flags).
    pub def: &'a FnSummary,
}

impl FnSym<'_> {
    /// Human-readable qualified name: `Detector::push_keyframe` or
    /// `free_fn`.
    pub fn qual_name(&self) -> String {
        match self.self_ty {
            Some(ty) => format!("{ty}::{}", self.def.name),
            None => self.def.name.clone(),
        }
    }
}

/// All function symbols of a workspace, with lookup maps.
#[derive(Debug, Default)]
pub struct SymbolTable<'a> {
    /// Every function, id-indexed.
    pub fns: Vec<FnSym<'a>>,
    free_by_name: HashMap<&'a str, Vec<usize>>,
    methods_by_name: HashMap<&'a str, Vec<usize>>,
    by_qual: HashMap<&'a str, HashMap<&'a str, Vec<usize>>>,
}

impl<'a> SymbolTable<'a> {
    /// Build the table from file summaries. `files[i]` must correspond
    /// to `summaries[i]`.
    pub fn build(files: &'a [SourceFile], summaries: &'a [FileSummary]) -> SymbolTable<'a> {
        let mut table = SymbolTable::default();
        for (fi, (file, summary)) in files.iter().zip(summaries).enumerate() {
            for def in &summary.fns {
                let id = table.fns.len();
                let self_ty = def.self_ty.as_deref();
                table.fns.push(FnSym {
                    id,
                    file: fi,
                    crate_name: &file.crate_name,
                    path: &file.path,
                    self_ty,
                    def,
                });
                let name: &'a str = &def.name;
                match self_ty {
                    Some(ty) => {
                        table.methods_by_name.entry(name).or_default().push(id);
                        table.by_qual.entry(ty).or_default().entry(name).or_default().push(id);
                    }
                    None => table.free_by_name.entry(name).or_default().push(id),
                }
            }
        }
        table
    }

    /// Free functions with this name, workspace-wide.
    pub fn free_fns(&self, name: &str) -> &[usize] {
        self.free_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Associated functions with this name, on any type.
    pub fn methods(&self, name: &str) -> &[usize] {
        self.methods_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Associated functions `ty::name`.
    pub fn qualified(&self, ty: &str, name: &str) -> &[usize] {
        self.by_qual
            .get(ty)
            .and_then(|m| m.get(name))
            .map_or(&[], Vec::as_slice)
    }

    /// Entry-point functions (`// vdsms-lint: entry`, scoped or not,
    /// non-test).
    pub fn entries(&self) -> impl Iterator<Item = &FnSym<'a>> {
        self.fns.iter().filter(|f| f.def.is_entry() && !f.def.is_test)
    }

    /// Entry-point functions that seed the hot set of `rule`: bare
    /// `entry` markers plus `entry(…)` markers naming the rule.
    pub fn entries_for<'s>(&'s self, rule: &'s str) -> impl Iterator<Item = &'s FnSym<'a>> {
        self.fns.iter().filter(move |f| f.def.entry_covers(rule) && !f.def.is_test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::summaries::summarize;

    fn source(name: &str, src: &str) -> SourceFile {
        SourceFile {
            crate_name: name.to_string(),
            path: format!("{name}/src/lib.rs"),
            source: src.to_string(),
            is_crate_root: true,
        }
    }

    #[test]
    fn table_indexes_free_fns_methods_and_entries() {
        let files = vec![
            source(
                "a",
                "// vdsms-lint: entry\npub fn start() {}\npub fn helper() {}\n\
                 impl Det { pub fn probe(&self) {} }",
            ),
            source("b", "impl Det { pub fn probe(&self) {} }\nimpl Other { fn probe(&self) {} }"),
        ];
        let summaries: Vec<_> = files
            .iter()
            .map(|f| {
                let lexed = lex(&f.source);
                summarize(f, &lexed, &parse_file(&lexed))
            })
            .collect();
        let table = SymbolTable::build(&files, &summaries);
        assert_eq!(table.free_fns("start").len(), 1);
        assert_eq!(table.free_fns("helper").len(), 1);
        assert_eq!(table.methods("probe").len(), 3);
        assert_eq!(table.qualified("Det", "probe").len(), 2);
        assert_eq!(table.qualified("Other", "probe").len(), 1);
        let entries: Vec<_> = table.entries().map(FnSym::qual_name).collect();
        assert_eq!(entries, vec!["start"]);
    }
}
