//! Tolerant recursive-descent parser over [`crate::lexer`] tokens.
//!
//! Produces the lint-grade AST of [`crate::ast`]. Design rules:
//!
//! - **Never panic, always terminate.** Every loop consumes at least one
//!   token or breaks; a global fuel counter (decremented on every token
//!   bump) aborts the whole parse if something slips through, and a
//!   recursion-depth cap degrades pathological nesting to
//!   [`ExprKind::Unknown`].
//! - **Degrade, don't fail.** Constructs the grammar subset does not
//!   cover (patterns, types, generics, macros with non-expression input)
//!   are *skipped* with bracket-depth tracking; the surrounding structure
//!   still parses. Unrecognized tokens become `Unknown` expressions.
//! - **Positions are the diagnostic currency.** Method calls carry the
//!   method name's position, everything else its first token's.
//!
//! Multi-character operators (`->`, `=>`, `<<`, `==`, `..`, …) are not
//! lexed as units; the parser pairs adjacent single-character punctuation
//! tokens (same line, consecutive columns).

use crate::ast::{AstFile, BinOp, Expr, ExprKind, FnDef, Item, Pos, Stmt};
use crate::lexer::{LexedFile, Token, TokenKind};

/// Parse one lexed file into an AST. Infallible: unparsable regions
/// degrade to [`Item::Other`] / [`ExprKind::Unknown`].
pub fn parse_file(lexed: &LexedFile) -> AstFile {
    let entry_lines: Vec<(u32, Vec<String>)> = lexed
        .comments
        .iter()
        .filter_map(|c| {
            let rest = c.text.trim().strip_prefix("vdsms-lint:")?.trim();
            parse_entry_directive(rest).map(|rules| (c.end_line, rules))
        })
        .collect();
    let fuel = 16 * lexed.tokens.len() as u64 + 1024;
    let mut p = Parser { lexed, entry_lines, i: 0, fuel, depth: 0 };
    let items = p.items_until(None);
    AstFile { items }
}

/// Parse the payload of a `// vdsms-lint: …` comment as an entry
/// directive. `entry` seeds every hot-path rule (empty list);
/// `entry(rule-a, rule-b)` seeds only the named rules. Anything else —
/// including an `entry()` with no rules — is not an entry directive.
fn parse_entry_directive(rest: &str) -> Option<Vec<String>> {
    if rest == "entry" {
        return Some(Vec::new());
    }
    let inner = rest.strip_prefix("entry(")?.strip_suffix(')')?;
    let rules: Vec<String> =
        inner.split(',').map(str::trim).filter(|r| !r.is_empty()).map(str::to_string).collect();
    (!rules.is_empty()).then_some(rules)
}

/// How many lines above an item's first token a `// vdsms-lint: entry`
/// marker may sit (allows a couple of attributes in between).
const ENTRY_MARKER_REACH: u32 = 3;

/// Recursion cap for expression nesting; beyond it expressions degrade
/// to `Unknown`.
const MAX_DEPTH: u32 = 200;

struct Parser<'a> {
    lexed: &'a LexedFile,
    entry_lines: Vec<(u32, Vec<String>)>,
    i: usize,
    fuel: u64,
    depth: u32,
}

impl<'a> Parser<'a> {
    // ---- token-stream primitives -------------------------------------

    fn tok(&self, i: usize) -> Option<&'a Token> {
        self.lexed.tokens.get(i)
    }

    fn cur(&self) -> Option<&'a Token> {
        self.tok(self.i)
    }

    fn at_end(&self) -> bool {
        self.i >= self.lexed.tokens.len()
    }

    fn pos(&self) -> Pos {
        match self.cur() {
            Some(t) => Pos::new(t.line, t.col),
            None => Pos::new(0, 0),
        }
    }

    fn bump(&mut self) {
        if self.fuel == 0 {
            // Out of fuel: abort the parse by jumping to the end.
            self.i = self.lexed.tokens.len();
            return;
        }
        self.fuel -= 1;
        self.i += 1;
    }

    fn is_punct(&self, c: char) -> bool {
        self.cur().is_some_and(|t| t.is_punct(c))
    }

    fn is_ident(&self, name: &str) -> bool {
        self.cur().is_some_and(|t| t.is_ident(name))
    }

    fn is_path_sep(&self) -> bool {
        self.cur().is_some_and(|t| t.kind == TokenKind::PathSep)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.is_punct(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.is_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Two adjacent punctuation tokens forming a multi-char operator at
    /// offset `off` from the cursor.
    fn pair_at(&self, off: usize, a: char, b: char) -> bool {
        let (Some(t1), Some(t2)) = (self.tok(self.i + off), self.tok(self.i + off + 1)) else {
            return false;
        };
        t1.is_punct(a) && t2.is_punct(b) && t2.line == t1.line && t2.col == t1.col + 1
    }

    fn pair(&self, a: char, b: char) -> bool {
        self.pair_at(0, a, b)
    }

    /// Three adjacent punctuation tokens (`..=`, `<<=`, `>>=`).
    fn triple(&self, a: char, b: char, c: char) -> bool {
        self.pair(a, b) && {
            let (Some(t2), Some(t3)) = (self.tok(self.i + 1), self.tok(self.i + 2)) else {
                return false;
            };
            t3.is_punct(c) && t3.line == t2.line && t3.col == t2.col + 1
        }
    }

    // ---- skipping helpers --------------------------------------------

    /// Skip one `#[…]` / `#![…]` attribute if the cursor is on `#`.
    fn skip_attr(&mut self) -> bool {
        if !self.is_punct('#') {
            return false;
        }
        let bracket = if self.tok(self.i + 1).is_some_and(|t| t.is_punct('!')) { 2 } else { 1 };
        if !self.tok(self.i + bracket).is_some_and(|t| t.is_punct('[')) {
            return false;
        }
        for _ in 0..=bracket {
            self.bump();
        }
        let mut depth = 1i32;
        while !self.at_end() && depth > 0 {
            if self.is_punct('[') {
                depth += 1;
            } else if self.is_punct(']') {
                depth -= 1;
            }
            self.bump();
        }
        true
    }

    fn skip_attrs(&mut self) {
        while self.skip_attr() {}
    }

    /// Skip a balanced `<…>` group starting at `<`. Handles `->` inside
    /// (`Fn(A) -> B` bounds) and bails at `;` as a runaway guard.
    fn skip_angles(&mut self) {
        if !self.is_punct('<') {
            return;
        }
        self.bump();
        let mut depth = 1i32;
        while !self.at_end() && depth > 0 {
            if self.pair('-', '>') {
                self.bump();
                self.bump();
                continue;
            }
            if self.is_punct('<') {
                depth += 1;
            } else if self.is_punct('>') {
                depth -= 1;
            } else if self.is_punct(';') {
                return; // unbalanced; bail out
            }
            self.bump();
        }
    }

    /// Skip tokens until one of `stops` appears at bracket depth 0
    /// (tracking `(`/`[`/`{` nesting). The stop token is *not* consumed.
    /// Returns the stop character, if found.
    fn skip_until(&mut self, stops: &[char]) -> Option<char> {
        let mut paren = 0i32;
        while let Some(t) = self.cur() {
            if let TokenKind::Punct(c) = t.kind {
                if paren == 0 && stops.contains(&c) {
                    return Some(c);
                }
                match c {
                    '(' | '[' | '{' => paren += 1,
                    ')' | ']' | '}' => {
                        if paren == 0 {
                            return None; // closing an outer group
                        }
                        paren -= 1;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
        None
    }

    /// Skip the rest of an item whose head keyword was consumed: to the
    /// first brace group at depth 0 (consumed), or to a `;` at depth 0
    /// (consumed).
    fn skip_item_rest(&mut self) {
        let mut paren = 0i32;
        while let Some(t) = self.cur() {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
                TokenKind::Punct('{') if paren == 0 => {
                    self.skip_brace_group();
                    return;
                }
                TokenKind::Punct('}') if paren == 0 => return, // outer close
                TokenKind::Punct(';') if paren == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Consume a balanced `{…}` group starting at `{`.
    fn skip_brace_group(&mut self) {
        if !self.is_punct('{') {
            return;
        }
        self.bump();
        let mut depth = 1i32;
        while !self.at_end() && depth > 0 {
            if self.is_punct('{') {
                depth += 1;
            } else if self.is_punct('}') {
                depth -= 1;
            }
            self.bump();
        }
    }

    // ---- items -------------------------------------------------------

    /// Parse items until the closing brace (`Some('}')`) or end of file
    /// (`None`). Consumes the closing brace.
    fn items_until(&mut self, close: Option<char>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.at_end() {
                break;
            }
            if let Some(c) = close {
                if self.is_punct(c) {
                    self.bump();
                    break;
                }
            }
            if self.eat_punct(';') {
                continue;
            }
            items.push(self.parse_item());
        }
        items
    }

    fn parse_item(&mut self) -> Item {
        let start_line = self.cur().map_or(0, |t| t.line);
        self.skip_attrs();
        // Visibility.
        if self.eat_ident("pub") && self.is_punct('(') {
            self.skip_paren_group();
        }
        // Modifiers before `fn`.
        loop {
            if (self.is_ident("const") && self.tok(self.i + 1).is_some_and(|t| t.is_ident("fn")))
                || (self.is_ident("unsafe")
                    && self.tok(self.i + 1).is_some_and(|t| {
                        t.is_ident("fn")
                            || t.is_ident("extern")
                            || t.is_ident("impl")
                            || t.is_ident("trait")
                    }))
                || self.is_ident("async")
            {
                self.bump();
            } else if self.is_ident("extern")
                && self.tok(self.i + 1).is_some_and(|t| matches!(t.kind, TokenKind::Literal(_)))
                && self.tok(self.i + 2).is_some_and(|t| t.is_ident("fn"))
            {
                self.bump();
                self.bump();
            } else {
                break;
            }
        }
        if self.is_ident("fn") {
            return self.parse_fn(start_line);
        }
        if self.eat_ident("impl") {
            return self.parse_impl();
        }
        if self.is_ident("mod") && self.tok(self.i + 1).is_some_and(|t| t.ident().is_some()) {
            self.bump();
            let name = self.cur().and_then(Token::ident).unwrap_or("?").to_string();
            self.bump();
            if self.is_punct('{') {
                self.bump();
                let items = self.items_until(Some('}'));
                return Item::Mod { name, items };
            }
            self.eat_punct(';');
            return Item::Mod { name, items: Vec::new() };
        }
        if self.is_ident("trait") && self.tok(self.i + 1).is_some_and(|t| t.ident().is_some()) {
            self.bump();
            let name = self.cur().and_then(Token::ident).unwrap_or("?").to_string();
            self.bump();
            if self.is_punct('<') {
                self.skip_angles();
            }
            if self.skip_until(&['{', ';']) == Some('{') {
                self.bump();
                let items = self.items_until(Some('}'));
                return Item::Trait { name, items };
            }
            self.eat_punct(';');
            return Item::Trait { name, items: Vec::new() };
        }
        // Everything else: struct, enum, union, use, const, static, type,
        // macro_rules!, extern crate / extern blocks, stray tokens.
        if self.cur().is_some_and(|t| t.ident().is_some()) {
            self.bump();
            self.skip_item_rest();
        } else {
            // Unknown leading token; consume it to guarantee progress.
            self.bump();
        }
        Item::Other
    }

    fn skip_paren_group(&mut self) {
        if !self.is_punct('(') {
            return;
        }
        self.bump();
        let mut depth = 1i32;
        while !self.at_end() && depth > 0 {
            if self.is_punct('(') {
                depth += 1;
            } else if self.is_punct(')') {
                depth -= 1;
            }
            self.bump();
        }
    }

    fn parse_fn(&mut self, start_line: u32) -> Item {
        let fn_idx = self.i;
        let pos = self.pos();
        self.bump(); // `fn`
        let name = self.cur().and_then(Token::ident).unwrap_or("?").to_string();
        if self.cur().is_some_and(|t| t.ident().is_some()) {
            self.bump();
        }
        if self.is_punct('<') {
            self.skip_angles();
        }
        let params = if self.is_punct('(') { self.parse_params() } else { Vec::new() };
        let returns_result = self.return_type_is_result();
        // Return type + where clause: skip to the body or the semicolon.
        let body = match self.skip_until(&['{', ';']) {
            Some('{') => Some(self.parse_block_stmts()),
            Some(_) => {
                self.bump(); // `;` — bodyless declaration
                None
            }
            None => None,
        };
        let is_test = self.lexed.is_test(fn_idx);
        // A marker blesses exactly one function: the first one parsed
        // (source order) whose signature starts within reach below it.
        // Claiming prevents one marker from leaking onto the next item.
        let entry = self
            .entry_lines
            .iter()
            .position(|(m, _)| *m <= start_line && start_line - m <= ENTRY_MARKER_REACH)
            .map(|idx| self.entry_lines.remove(idx).1);
        Item::Fn(FnDef { name, pos, is_test, entry, params, body, returns_result })
    }

    /// Non-consuming lookahead over the return type: scan from the cursor
    /// to the body's `{` (or the `;` of a bodyless declaration) at
    /// depth 0 and report whether the declared type mentions `Result` (or
    /// an alias ending in `Result`, e.g. `io::Result`, `DecodeResult`).
    /// A `where` clause ends the scan — bounds like `T: Into<Result<…>>`
    /// are not return types.
    fn return_type_is_result(&self) -> bool {
        let mut depth = 0i32;
        let mut j = self.i;
        while let Some(t) = self.tok(j) {
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') | TokenKind::Punct(';') if depth <= 0 => return false,
                TokenKind::Ident(s) if depth <= 0 => {
                    if s == "where" {
                        return false;
                    }
                    if s == "Result" || s.ends_with("Result") {
                        return true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        false
    }

    /// Parse `(…)` parameter list, collecting identifier-pattern names.
    fn parse_params(&mut self) -> Vec<String> {
        self.bump(); // `(`
        let mut names = Vec::new();
        let mut depth = 1i32; // paren/bracket/brace depth
        let mut angle = 0i32;
        let mut at_param_start = true;
        while let Some(t) = self.cur() {
            if self.pair('-', '>') {
                self.bump();
                self.bump();
                continue;
            }
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    self.bump();
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Punct('<') => {
                    angle += 1;
                    self.bump();
                }
                TokenKind::Punct('>') => {
                    angle = (angle - 1).max(0);
                    self.bump();
                }
                TokenKind::Punct(',') if depth == 1 && angle == 0 => {
                    at_param_start = true;
                    self.bump();
                }
                TokenKind::Ident(s) if at_param_start => {
                    if s == "mut" || s == "ref" {
                        self.bump(); // still at pattern start
                    } else if s == "self" {
                        names.push("self".to_string());
                        at_param_start = false;
                        self.bump();
                    } else if self.tok(self.i + 1).is_some_and(|t2| t2.is_punct(':'))
                        && !self.pair_at(1, ':', ':')
                        && self.tok(self.i + 1).is_some_and(|t2| t2.kind != TokenKind::PathSep)
                    {
                        names.push(s.clone());
                        at_param_start = false;
                        self.bump();
                    } else {
                        at_param_start = false;
                        self.bump();
                    }
                }
                TokenKind::Punct('&') | TokenKind::Lifetime if at_param_start => {
                    self.bump(); // `&self`, `&'a self`
                }
                _ => {
                    at_param_start = false;
                    self.bump();
                }
            }
        }
        names
    }

    fn parse_impl(&mut self) -> Item {
        if self.is_punct('<') {
            self.skip_angles();
        }
        // First path (trait or self type).
        let first = self.parse_type_path();
        let self_ty = if self.eat_ident("for") {
            let second = self.parse_type_path();
            if second.is_empty() { first } else { second }
        } else {
            first
        };
        if self.skip_until(&['{', ';']) == Some('{') {
            self.bump();
            let items = self.items_until(Some('}'));
            Item::Impl { self_ty, items }
        } else {
            self.eat_punct(';');
            Item::Impl { self_ty, items: Vec::new() }
        }
    }

    /// Read a type path (`a::b::C<T>`, `&mut C`, …), returning the last
    /// plain segment name (`C`). Empty string if none found.
    fn parse_type_path(&mut self) -> String {
        let mut last = String::new();
        loop {
            if self.is_punct('&') || self.is_punct('*') {
                self.bump();
                continue;
            }
            if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                self.bump();
                continue;
            }
            if self.is_ident("mut") || self.is_ident("const") || self.is_ident("dyn") {
                self.bump();
                continue;
            }
            match self.cur().map(|t| &t.kind) {
                Some(TokenKind::Ident(s)) => {
                    last = s.clone();
                    self.bump();
                    if self.is_punct('<') {
                        self.skip_angles();
                    }
                    if self.is_path_sep() {
                        self.bump();
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        last
    }

    // ---- statements --------------------------------------------------

    /// Parse `{ stmts }`; the cursor is on `{`.
    fn parse_block_stmts(&mut self) -> Vec<Stmt> {
        self.bump(); // `{`
        let mut stmts = Vec::new();
        loop {
            if self.at_end() {
                break;
            }
            if self.eat_punct('}') {
                break;
            }
            if self.eat_punct(';') {
                continue;
            }
            if self.is_punct('#') {
                self.skip_attrs();
                continue;
            }
            if self.is_ident("let") {
                self.parse_let(&mut stmts);
                continue;
            }
            if self.stmt_is_item() {
                let item = self.parse_item();
                stmts.push(Stmt::Item(Box::new(item)));
                continue;
            }
            let e = self.expr(false);
            let semi = self.eat_punct(';');
            stmts.push(Stmt::Expr(e, semi));
        }
        stmts
    }

    /// Whether the statement at the cursor starts a nested item.
    fn stmt_is_item(&self) -> bool {
        let Some(head) = self.cur().and_then(Token::ident) else {
            return false;
        };
        match head {
            "fn" | "struct" | "enum" | "impl" | "mod" | "use" | "trait" | "static" | "pub"
            | "macro_rules" => true,
            "type" | "union" => self.tok(self.i + 1).is_some_and(|t| t.ident().is_some()),
            "const" => self
                .tok(self.i + 1)
                .is_some_and(|t| t.ident().is_some() || t.is_ident("_")),
            "unsafe" => self.tok(self.i + 1).is_some_and(|t| t.is_ident("fn")),
            "extern" => true,
            _ => false,
        }
    }

    fn parse_let(&mut self, stmts: &mut Vec<Stmt>) {
        let pos = self.pos();
        self.bump(); // `let`
        while self.eat_ident("mut") || self.eat_ident("ref") {}
        // Plain-identifier pattern?
        let mut name = None;
        if let Some(id) = self.cur().and_then(Token::ident) {
            let next_ok = match self.tok(self.i + 1).map(|t| &t.kind) {
                Some(TokenKind::Punct(':')) | Some(TokenKind::Punct('=')) | Some(TokenKind::Punct(';')) => true,
                Some(TokenKind::Ident(s)) => s == "else",
                None => true,
                _ => false,
            };
            if next_ok && !self.pair_at(1, '=', '=') && id != "else" {
                name = Some(id.to_string());
                self.bump();
            }
        }
        let mut tuple: Vec<String> = Vec::new();
        if name.is_none() {
            // Flat tuple-of-idents pattern: `(tx, rx)` (with `mut`/`ref`/
            // `_` tolerated per element). Anything fancier falls through
            // to the generic pattern skip below.
            if self.is_punct('(') {
                tuple = self.try_tuple_pattern();
            }
            if tuple.is_empty() {
                // Skip a complex pattern to `=` / `;` (or `else` for
                // let-else without initializer — not legal Rust, but
                // tolerate).
                self.skip_pattern_to_eq();
            }
        }
        if self.is_punct(':') && !self.is_path_sep() {
            self.bump();
            self.skip_type_to_eq();
        }
        let mut init = None;
        if self.is_punct('=') && !self.pair('=', '=') {
            self.bump();
            init = Some(self.expr(false));
        }
        stmts.push(Stmt::Let { name, tuple, init, pos });
        // let-else diverging block: parse it as a trailing statement so
        // panic/alloc sites inside stay visible.
        if self.eat_ident("else") && self.is_punct('{') {
            let body = self.parse_block_stmts();
            stmts.push(Stmt::Expr(Expr { kind: ExprKind::Block(body), pos }, true));
        }
        self.eat_punct(';');
    }

    /// Skip a pattern until `=` (not `==`) or `;` at depth 0. Stops
    /// before the terminator.
    fn skip_pattern_to_eq(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::Punct('=') if depth == 0 => {
                    if self.pair('=', '=') {
                        self.bump(); // `==` inside a pattern: literal eq? skip both
                        self.bump();
                        continue;
                    }
                    return;
                }
                TokenKind::Punct(';') if depth == 0 => return,
                TokenKind::Ident(ref s) if depth == 0 && s == "else" => return,
                _ => {}
            }
            self.bump();
        }
    }

    /// Parse a flat tuple-of-idents pattern `(a, mut b, _)` and return
    /// the element names. On any non-ident element (nested patterns,
    /// struct destructuring, rest `..`) nothing is consumed and the
    /// caller falls back to [`Self::skip_pattern_to_eq`].
    fn try_tuple_pattern(&mut self) -> Vec<String> {
        let start = self.i;
        self.bump(); // `(`
        let mut names = Vec::new();
        loop {
            if self.eat_punct(')') {
                return names;
            }
            while self.eat_ident("mut") || self.eat_ident("ref") {}
            let Some(id) = self.cur().and_then(Token::ident) else {
                self.i = start;
                return Vec::new();
            };
            names.push(id.to_string());
            self.bump();
            if self.eat_punct(',') {
                continue;
            }
            if self.eat_punct(')') {
                return names;
            }
            self.i = start;
            return Vec::new();
        }
    }

    /// Skip a type annotation until `=` or `;` at depth 0 (angle-aware,
    /// `->` tolerated).
    fn skip_type_to_eq(&mut self) {
        let mut depth = 0i32;
        let mut angle = 0i32;
        while !self.at_end() {
            if self.pair('-', '>') {
                self.bump();
                self.bump();
                continue;
            }
            let Some(t) = self.cur() else { return };
            match t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => angle = (angle - 1).max(0),
                TokenKind::Punct('=') if depth == 0 && angle == 0 => return,
                TokenKind::Punct(';') if depth == 0 => return,
                _ => {}
            }
            self.bump();
        }
    }

    // ---- expressions -------------------------------------------------

    /// Parse one expression. `no_struct` disallows struct literals at the
    /// top level (condition / scrutinee position).
    fn expr(&mut self, no_struct: bool) -> Expr {
        self.expr_bp(0, no_struct)
    }

    fn expr_bp(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            let pos = self.pos();
            self.bump();
            return Expr { kind: ExprKind::Unknown, pos };
        }
        self.depth += 1;
        let mut lhs = self.prefix_expr(no_struct);
        loop {
            // Assignment (lowest precedence, right-associative).
            if min_bp <= 1 {
                if let Some((op, ntok)) = self.peek_assign_op() {
                    let pos = self.pos();
                    for _ in 0..ntok {
                        self.bump();
                    }
                    let value = self.expr_bp(1, no_struct);
                    lhs = Expr {
                        kind: ExprKind::Assign { target: Box::new(lhs), op, value: Box::new(value) },
                        pos,
                    };
                    continue;
                }
            }
            // Range.
            if min_bp <= 3 && self.is_punct('.') && self.pair('.', '.') {
                let pos = self.pos();
                self.bump();
                self.bump();
                if self.is_punct('=') {
                    self.bump(); // `..=`
                }
                let hi = if self.can_start_expr() {
                    Some(Box::new(self.expr_bp(4, no_struct)))
                } else {
                    None
                };
                lhs = Expr { kind: ExprKind::Range { lo: Some(Box::new(lhs)), hi }, pos };
                continue;
            }
            let Some((op, l_bp, r_bp, ntok)) = self.peek_bin_op() else {
                break;
            };
            if l_bp < min_bp {
                break;
            }
            let pos = self.pos();
            for _ in 0..ntok {
                self.bump();
            }
            let rhs = self.expr_bp(r_bp, no_struct);
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                pos,
            };
        }
        self.depth -= 1;
        lhs
    }

    /// Assignment operator at the cursor: `=`, `+=`, `<<=`, … Returns the
    /// compound op (None for plain `=`) and its token count.
    fn peek_assign_op(&self) -> Option<(Option<BinOp>, usize)> {
        if self.triple('<', '<', '=') {
            return Some((Some(BinOp::Shl), 3));
        }
        if self.triple('>', '>', '=') {
            return Some((Some(BinOp::Shr), 3));
        }
        let compound = [
            ('+', BinOp::Add),
            ('-', BinOp::Sub),
            ('*', BinOp::Mul),
            ('/', BinOp::Div),
            ('%', BinOp::Rem),
            ('&', BinOp::BitAnd),
            ('|', BinOp::BitOr),
            ('^', BinOp::BitXor),
        ];
        for (c, op) in compound {
            if self.pair(c, '=') && !self.pair_at(1, '=', '=') {
                return Some((Some(op), 2));
            }
        }
        if self.is_punct('=') && !self.pair('=', '=') && !self.pair('=', '>') {
            return Some((None, 1));
        }
        None
    }

    /// Binary operator at the cursor: (op, left bp, right bp, tokens).
    fn peek_bin_op(&self) -> Option<(BinOp, u8, u8, usize)> {
        // Two-token operators first (adjacency-paired).
        if self.pair('&', '&') {
            return Some((BinOp::And, 7, 8, 2));
        }
        if self.pair('|', '|') {
            return Some((BinOp::Or, 5, 6, 2));
        }
        if self.pair('=', '=') || self.pair('!', '=') {
            return Some((BinOp::Cmp, 9, 10, 2));
        }
        if self.pair('<', '=') || self.pair('>', '=') {
            return Some((BinOp::Cmp, 9, 10, 2));
        }
        if self.pair('<', '<') {
            return Some((BinOp::Shl, 17, 18, 2));
        }
        if self.pair('>', '>') {
            return Some((BinOp::Shr, 17, 18, 2));
        }
        if self.pair('-', '>') || self.pair('=', '>') {
            return None; // arrow: not an operator in expression position
        }
        let t = self.cur()?;
        let (op, l, r) = match t.kind {
            TokenKind::Punct('<') | TokenKind::Punct('>') => (BinOp::Cmp, 9, 10),
            TokenKind::Punct('|') => (BinOp::BitOr, 11, 12),
            TokenKind::Punct('^') => (BinOp::BitXor, 13, 14),
            TokenKind::Punct('&') => (BinOp::BitAnd, 15, 16),
            TokenKind::Punct('+') => (BinOp::Add, 19, 20),
            TokenKind::Punct('-') => (BinOp::Sub, 19, 20),
            TokenKind::Punct('*') => (BinOp::Mul, 21, 22),
            TokenKind::Punct('/') => (BinOp::Div, 21, 22),
            TokenKind::Punct('%') => (BinOp::Rem, 21, 22),
            _ => return None,
        };
        Some((op, l, r, 1))
    }

    /// Whether the cursor can start an expression (used for optional
    /// `return` / `break` / range operands).
    fn can_start_expr(&self) -> bool {
        match self.cur().map(|t| &t.kind) {
            None => false,
            Some(TokenKind::Punct(c)) => !matches!(c, ',' | ')' | ']' | '}' | ';' | '=' | '>' | '<'),
            _ => true,
        }
    }

    fn prefix_expr(&mut self, no_struct: bool) -> Expr {
        let pos = self.pos();
        let Some(t) = self.cur() else {
            return Expr { kind: ExprKind::Unknown, pos };
        };
        match &t.kind {
            TokenKind::Literal(text) => {
                let text = text.clone();
                self.bump();
                self.postfix(Expr { kind: ExprKind::Lit(text), pos }, no_struct)
            }
            TokenKind::Lifetime => {
                // Loop label: `'a: loop { … }`.
                self.bump();
                self.eat_punct(':');
                self.prefix_expr(no_struct)
            }
            TokenKind::PathSep => {
                let e = self.parse_path_expr(no_struct);
                self.postfix(e, no_struct)
            }
            TokenKind::Ident(name) => {
                let name = name.as_str();
                match name {
                    "if" => self.if_expr(),
                    "while" => self.while_expr(),
                    "loop" => {
                        self.bump();
                        let body =
                            if self.is_punct('{') { self.parse_block_stmts() } else { Vec::new() };
                        Expr { kind: ExprKind::Loop { body }, pos }
                    }
                    "for" => self.for_expr(),
                    "match" => self.match_expr(),
                    "return" => {
                        self.bump();
                        let v = if self.can_start_expr() {
                            Some(Box::new(self.expr_bp(2, no_struct)))
                        } else {
                            None
                        };
                        Expr { kind: ExprKind::Return(v), pos }
                    }
                    "break" => {
                        self.bump();
                        if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                            self.bump();
                        }
                        let v = if self.can_start_expr() {
                            Some(Box::new(self.expr_bp(2, no_struct)))
                        } else {
                            None
                        };
                        Expr { kind: ExprKind::Jump(v), pos }
                    }
                    "continue" => {
                        self.bump();
                        if self.cur().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                            self.bump();
                        }
                        Expr { kind: ExprKind::Jump(None), pos }
                    }
                    "unsafe" => {
                        self.bump();
                        if self.is_punct('{') {
                            let body = self.parse_block_stmts();
                            self.postfix(Expr { kind: ExprKind::Block(body), pos }, no_struct)
                        } else {
                            Expr { kind: ExprKind::Unknown, pos }
                        }
                    }
                    "move" => {
                        self.bump();
                        if self.is_punct('|') || self.pair('|', '|') {
                            self.closure_expr(pos)
                        } else {
                            Expr { kind: ExprKind::Unknown, pos }
                        }
                    }
                    "let" => {
                        // let-in-condition (`if let`-chains). Skip the
                        // pattern, parse the bound expression.
                        self.bump();
                        self.skip_pattern_to_eq();
                        if self.is_punct('=') {
                            self.bump();
                            self.expr_bp(4, true)
                        } else {
                            Expr { kind: ExprKind::Unknown, pos }
                        }
                    }
                    _ => {
                        let e = self.parse_path_expr(no_struct);
                        self.postfix(e, no_struct)
                    }
                }
            }
            TokenKind::Punct(c) => match c {
                '(' => {
                    self.bump();
                    let mut elems = Vec::new();
                    let mut trailing_comma = false;
                    while !self.at_end() && !self.is_punct(')') {
                        elems.push(self.expr(false));
                        trailing_comma = self.eat_punct(',');
                    }
                    self.eat_punct(')');
                    let e = match elems.pop() {
                        Some(only) if elems.is_empty() && !trailing_comma => only,
                        popped => {
                            elems.extend(popped);
                            Expr { kind: ExprKind::Tuple(elems), pos }
                        }
                    };
                    self.postfix(e, no_struct)
                }
                '[' => {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.at_end() && !self.is_punct(']') {
                        elems.push(self.expr(false));
                        if !self.eat_punct(',') && !self.eat_punct(';') && !self.is_punct(']') {
                            break;
                        }
                    }
                    self.eat_punct(']');
                    self.postfix(Expr { kind: ExprKind::Tuple(elems), pos }, no_struct)
                }
                '{' => {
                    let body = self.parse_block_stmts();
                    self.postfix(Expr { kind: ExprKind::Block(body), pos }, no_struct)
                }
                '&' => {
                    self.bump();
                    self.eat_ident("mut");
                    let inner = self.unary_operand(no_struct);
                    Expr { kind: ExprKind::Ref(Box::new(inner)), pos }
                }
                '*' | '-' | '!' => {
                    self.bump();
                    let inner = self.unary_operand(no_struct);
                    Expr { kind: ExprKind::Unary(Box::new(inner)), pos }
                }
                '|' => self.closure_expr(pos),
                '.' if self.pair('.', '.') => {
                    self.bump();
                    self.bump();
                    if self.is_punct('=') {
                        self.bump();
                    }
                    let hi = if self.can_start_expr() {
                        Some(Box::new(self.expr_bp(4, no_struct)))
                    } else {
                        None
                    };
                    Expr { kind: ExprKind::Range { lo: None, hi }, pos }
                }
                '#' => {
                    self.skip_attrs();
                    self.prefix_expr(no_struct)
                }
                '<' => {
                    // Qualified path `<T as Trait>::method(…)`.
                    self.skip_angles();
                    let e = if self.is_path_sep() {
                        self.parse_path_expr(no_struct)
                    } else {
                        Expr { kind: ExprKind::Unknown, pos }
                    };
                    self.postfix(e, no_struct)
                }
                _ => {
                    self.bump();
                    Expr { kind: ExprKind::Unknown, pos }
                }
            },
        }
    }

    /// Parse the operand of a unary operator: prefix + postfix, but no
    /// binary operators (they bind looser).
    fn unary_operand(&mut self, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            let pos = self.pos();
            self.bump();
            return Expr { kind: ExprKind::Unknown, pos };
        }
        self.depth += 1;
        let e = self.prefix_expr(no_struct);
        self.depth -= 1;
        e
    }

    /// Parse a path expression (cursor on its first ident or leading
    /// `::`), then decide among macro call, struct literal, or plain
    /// path.
    fn parse_path_expr(&mut self, no_struct: bool) -> Expr {
        let pos = self.pos();
        let mut segs: Vec<String> = Vec::new();
        if self.is_path_sep() {
            self.bump();
        }
        while let Some(TokenKind::Ident(s)) = self.cur().map(|t| &t.kind) {
            segs.push(s.clone());
            self.bump();
            if self.is_path_sep() {
                self.bump();
                if self.is_punct('<') {
                    // Turbofish `::<…>`; may be followed by `::more`.
                    self.skip_angles();
                    if self.is_path_sep() {
                        self.bump();
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.bump();
            return Expr { kind: ExprKind::Unknown, pos };
        }
        // Macro call: `name!(…)` / `name![…]` / `name!{…}`.
        if self.is_punct('!')
            && self
                .tok(self.i + 1)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            self.bump(); // `!`
            let close = match self.cur().map(|t| &t.kind) {
                Some(TokenKind::Punct('(')) => ')',
                Some(TokenKind::Punct('[')) => ']',
                _ => '}',
            };
            self.bump(); // open delimiter
            let mut args = Vec::new();
            while !self.at_end() && !self.is_punct(close) {
                args.push(self.expr(false));
                if !self.eat_punct(',') && !self.eat_punct(';') && !self.is_punct(close) {
                    // Non-expression macro input (patterns, token trees):
                    // skip to the next separator or the end.
                    if self.skip_until(&[',', ';', close]).is_none() {
                        break;
                    }
                    if !self.is_punct(close) {
                        self.bump();
                    }
                }
            }
            self.eat_punct(close);
            let name = segs.pop().unwrap_or_default();
            return Expr { kind: ExprKind::MacroCall { name, args }, pos };
        }
        // Struct literal: `Path { … }`.
        if !no_struct && self.is_punct('{') {
            self.bump();
            let mut fields = Vec::new();
            while !self.at_end() && !self.is_punct('}') {
                self.skip_attrs();
                if self.pair('.', '.') {
                    self.bump();
                    self.bump();
                    if !self.is_punct('}') {
                        fields.push(self.expr(false));
                    }
                    break;
                }
                if self.cur().is_some_and(|t| t.ident().is_some())
                    && self.tok(self.i + 1).is_some_and(|t| t.is_punct(':'))
                    && self.tok(self.i + 1).is_some_and(|t| t.kind != TokenKind::PathSep)
                {
                    self.bump(); // field name
                    self.bump(); // `:`
                }
                fields.push(self.expr(false));
                if !self.eat_punct(',') && !self.is_punct('}') {
                    break;
                }
            }
            self.eat_punct('}');
            return Expr { kind: ExprKind::Struct { path: segs, fields }, pos };
        }
        Expr { kind: ExprKind::Path(segs), pos }
    }

    /// Postfix loop: `.method(…)`, `.field`, `[…]`, `(…)`, `?`, `as T`.
    fn postfix(&mut self, mut e: Expr, no_struct: bool) -> Expr {
        loop {
            if self.eat_punct('?') {
                let pos = e.pos;
                e = Expr { kind: ExprKind::Try(Box::new(e)), pos };
                continue;
            }
            if self.is_punct('.') && !self.pair('.', '.') {
                self.bump();
                let t = self.cur();
                match t.map(|t| &t.kind) {
                    Some(TokenKind::Ident(name)) => {
                        let name = name.clone();
                        let mpos = self.pos();
                        self.bump();
                        // Turbofish: `.collect::<Vec<_>>()`.
                        if self.is_path_sep() {
                            self.bump();
                            self.skip_angles();
                        }
                        if self.is_punct('(') {
                            let args = self.call_args();
                            e = Expr {
                                kind: ExprKind::MethodCall { recv: Box::new(e), method: name, args },
                                pos: mpos,
                            };
                        } else {
                            e = Expr {
                                kind: ExprKind::Field { base: Box::new(e), name },
                                pos: mpos,
                            };
                        }
                    }
                    Some(TokenKind::Literal(_)) => {
                        // Tuple index: `x.0`.
                        let mpos = self.pos();
                        self.bump();
                        e = Expr {
                            kind: ExprKind::Field { base: Box::new(e), name: "#tuple".to_string() },
                            pos: mpos,
                        };
                    }
                    _ => break,
                }
                continue;
            }
            if self.is_punct('(') {
                let pos = e.pos;
                let args = self.call_args();
                e = Expr { kind: ExprKind::Call { callee: Box::new(e), args }, pos };
                continue;
            }
            if self.is_punct('[') {
                let pos = e.pos;
                self.bump();
                let index = self.expr(false);
                self.eat_punct(']');
                e = Expr {
                    kind: ExprKind::Index { base: Box::new(e), index: Box::new(index) },
                    pos,
                };
                continue;
            }
            if self.is_ident("as") {
                let pos = self.pos();
                self.bump();
                let ty = self.cast_type();
                e = Expr { kind: ExprKind::Cast { expr: Box::new(e), ty }, pos };
                continue;
            }
            let _ = no_struct;
            break;
        }
        e
    }

    /// Parse `(arg, …)`; cursor on `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        self.bump(); // `(`
        let mut args = Vec::new();
        while !self.at_end() && !self.is_punct(')') {
            args.push(self.expr(false));
            if !self.eat_punct(',') && !self.is_punct(')') {
                break;
            }
        }
        self.eat_punct(')');
        args
    }

    /// Consume a cast target type, returning its text (path segments
    /// joined; `*const u8` → `u8`). Casts are to primitive or simple
    /// path types, so `<` after the type is comparison, not generics.
    fn cast_type(&mut self) -> String {
        let mut last = String::new();
        loop {
            if self.is_punct('*')
                && self
                    .tok(self.i + 1)
                    .is_some_and(|t| t.is_ident("const") || t.is_ident("mut"))
            {
                self.bump();
                self.bump();
                continue;
            }
            if self.is_ident("dyn") || self.is_punct('&') {
                self.bump();
                continue;
            }
            match self.cur().map(|t| &t.kind) {
                Some(TokenKind::Ident(s)) => {
                    last = s.clone();
                    self.bump();
                    if self.is_path_sep() {
                        self.bump();
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }
        last
    }

    // ---- control flow ------------------------------------------------

    fn if_expr(&mut self) -> Expr {
        let pos = self.pos();
        self.bump(); // `if`
        let cond = self.if_condition();
        let then = if self.is_punct('{') { self.parse_block_stmts() } else { Vec::new() };
        let alt = if self.eat_ident("else") {
            if self.is_ident("if") {
                Some(Box::new(self.if_expr()))
            } else if self.is_punct('{') {
                let bpos = self.pos();
                let body = self.parse_block_stmts();
                Some(Box::new(Expr { kind: ExprKind::Block(body), pos: bpos }))
            } else {
                None
            }
        } else {
            None
        };
        Expr { kind: ExprKind::If { cond: Box::new(cond), then, alt }, pos }
    }

    fn if_condition(&mut self) -> Expr {
        if self.is_ident("let") {
            let pos = self.pos();
            self.bump();
            self.skip_pattern_to_eq();
            if self.is_punct('=') {
                self.bump();
                return self.expr(true);
            }
            return Expr { kind: ExprKind::Unknown, pos };
        }
        self.expr(true)
    }

    fn while_expr(&mut self) -> Expr {
        let pos = self.pos();
        self.bump(); // `while`
        let cond = self.if_condition();
        let body = if self.is_punct('{') { self.parse_block_stmts() } else { Vec::new() };
        Expr { kind: ExprKind::While { cond: Box::new(cond), body }, pos }
    }

    fn for_expr(&mut self) -> Expr {
        let pos = self.pos();
        self.bump(); // `for`
        // Skip the loop pattern up to `in` at depth 0.
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            match &t.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
                TokenKind::Ident(s) if depth == 0 && s == "in" => break,
                _ => {}
            }
            self.bump();
        }
        self.eat_ident("in");
        let iter = self.expr(true);
        let body = if self.is_punct('{') { self.parse_block_stmts() } else { Vec::new() };
        Expr { kind: ExprKind::For { iter: Box::new(iter), body }, pos }
    }

    fn match_expr(&mut self) -> Expr {
        let pos = self.pos();
        self.bump(); // `match`
        let scrutinee = self.expr(true);
        let mut arms = Vec::new();
        if self.is_punct('{') {
            self.bump();
            loop {
                if self.at_end() || self.eat_punct('}') {
                    break;
                }
                self.skip_attrs();
                self.eat_punct('|'); // leading or-pattern pipe
                // Skip the arm pattern to `=>` at depth 0, parsing a
                // guard expression if `if` appears.
                let mut guard = None;
                let mut depth = 0i32;
                while let Some(t) = self.cur() {
                    if depth == 0 && self.pair('=', '>') {
                        self.bump();
                        self.bump();
                        break;
                    }
                    match &t.kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                            depth += 1
                        }
                        TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                        TokenKind::Punct('}') => {
                            if depth == 0 {
                                // End of match body (tolerate missing arm).
                                self.bump();
                                return Expr {
                                    kind: ExprKind::Match { scrutinee: Box::new(scrutinee), arms },
                                    pos,
                                };
                            }
                            depth -= 1;
                        }
                        TokenKind::Ident(s) if depth == 0 && s == "if" => {
                            self.bump();
                            guard = Some(self.expr(true));
                            continue;
                        }
                        _ => {}
                    }
                    self.bump();
                }
                if let Some(g) = guard {
                    arms.push(g);
                }
                if self.at_end() {
                    break;
                }
                arms.push(self.expr(false));
                self.eat_punct(',');
            }
        }
        Expr { kind: ExprKind::Match { scrutinee: Box::new(scrutinee), arms }, pos }
    }

    fn closure_expr(&mut self, pos: Pos) -> Expr {
        // Cursor on the first `|` (or the `||` pair).
        if self.pair('|', '|') {
            self.bump();
            self.bump();
        } else {
            self.bump(); // opening `|`
            let mut depth = 0i32;
            let mut angle = 0i32;
            while let Some(t) = self.cur() {
                match t.kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        depth -= 1
                    }
                    TokenKind::Punct('<') => angle += 1,
                    TokenKind::Punct('>') => angle = (angle - 1).max(0),
                    TokenKind::Punct('|') if depth == 0 && angle == 0 => {
                        self.bump();
                        break;
                    }
                    _ => {}
                }
                self.bump();
            }
        }
        // Optional return type: `-> T { … }`.
        if self.pair('-', '>') {
            self.skip_until(&['{']);
        }
        let body = self.expr(false);
        Expr { kind: ExprKind::Closure(Box::new(body)), pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{walk_fns, walk_stmts};
    use crate::lexer::lex;

    fn parse(src: &str) -> AstFile {
        parse_file(&lex(src))
    }

    /// All (self_ty, fn name) pairs in the file.
    fn fns(ast: &AstFile) -> Vec<(Option<String>, String)> {
        let mut out = Vec::new();
        walk_fns(&ast.items, &mut |ty, def| {
            out.push((ty.map(str::to_string), def.name.clone()));
        });
        out
    }

    /// All method names called anywhere in the file.
    fn methods(ast: &AstFile) -> Vec<String> {
        let mut out = Vec::new();
        walk_fns(&ast.items, &mut |_, def| {
            if let Some(body) = &def.body {
                walk_stmts(body, &mut |e| {
                    if let ExprKind::MethodCall { method, .. } = &e.kind {
                        out.push(method.clone());
                    }
                });
            }
        });
        out
    }

    #[test]
    fn items_and_impls() {
        let ast = parse(
            "pub struct S { a: u8 }\n\
             impl S {\n  pub fn new() -> S { S { a: 0 } }\n  fn helper(&self, x: u64) {}\n}\n\
             impl std::fmt::Display for S {\n  fn fmt(&self) {}\n}\n\
             mod inner { pub fn free() {} }\n\
             trait T { fn default_method(&self) { self.hook(); } fn hook(&self); }",
        );
        let fs = fns(&ast);
        assert!(fs.contains(&(Some("S".into()), "new".into())));
        assert!(fs.contains(&(Some("S".into()), "helper".into())));
        assert!(fs.contains(&(Some("S".into()), "fmt".into())));
        assert!(fs.contains(&(None, "free".into())));
        assert!(fs.contains(&(Some("T".into()), "default_method".into())));
    }

    #[test]
    fn method_calls_and_positions() {
        let ast = parse("fn f(v: Vec<u64>) {\n    let x = v.iter().map(|a| a + 1).collect::<Vec<_>>();\n    x.first().unwrap();\n}");
        let ms = methods(&ast);
        // walk_expr is pre-order: the outermost call of each chain first.
        assert_eq!(ms, vec!["collect", "map", "iter", "unwrap", "first"]);
        // The unwrap's diagnostic position is the method name itself.
        let mut unwrap_pos = None;
        walk_fns(&ast.items, &mut |_, def| {
            if let Some(b) = &def.body {
                walk_stmts(b, &mut |e| {
                    if let ExprKind::MethodCall { method, .. } = &e.kind {
                        if method == "unwrap" {
                            unwrap_pos = Some(e.pos);
                        }
                    }
                });
            }
        });
        let p = unwrap_pos.expect("unwrap found");
        assert_eq!(p.line, 3);
        assert_eq!(p.col, 15);
    }

    #[test]
    fn control_flow_bodies_are_walked() {
        let ast = parse(
            "fn f(o: Option<u8>) {\n\
               if let Some(x) = o { a.lock(); } else { b.lock(); }\n\
               while cond() { c.push(1); }\n\
               for i in 0..10 { d.insert(i); }\n\
               match o { Some(_) => e.clone(), None => f.to_vec() };\n\
               loop { break g.unwrap(); }\n\
             }",
        );
        let ms = methods(&ast);
        for m in ["lock", "push", "insert", "clone", "to_vec", "unwrap"] {
            assert!(ms.contains(&m.to_string()), "missing {m}: {ms:?}");
        }
        assert_eq!(ms.iter().filter(|m| *m == "lock").count(), 2);
    }

    #[test]
    fn struct_literal_vs_block_ambiguity() {
        // `match x {` must not parse `x {` as a struct literal.
        let ast = parse("fn f(x: E) -> u8 { match x { E::A => 1, E::B => 2 } }");
        let mut matches = 0;
        walk_fns(&ast.items, &mut |_, def| {
            if let Some(b) = &def.body {
                walk_stmts(b, &mut |e| {
                    if matches!(e.kind, ExprKind::Match { .. }) {
                        matches += 1;
                    }
                });
            }
        });
        assert_eq!(matches, 1);
        // …while a genuine struct literal in value position still parses.
        let ast2 = parse("fn g() -> P { P { x: 1, y: 2 } }");
        let mut structs = 0;
        walk_fns(&ast2.items, &mut |_, def| {
            if let Some(b) = &def.body {
                walk_stmts(b, &mut |e| {
                    if matches!(e.kind, ExprKind::Struct { .. }) {
                        structs += 1;
                    }
                });
            }
        });
        assert_eq!(structs, 1);
    }

    #[test]
    fn entry_marker_and_test_flags() {
        let ast = parse(
            "// vdsms-lint: entry\n\
             pub fn hot() {}\n\
             pub fn cold() {}\n\
             #[cfg(test)]\n\
             mod tests {\n  fn t() {}\n}",
        );
        let mut seen = Vec::new();
        walk_fns(&ast.items, &mut |_, def| {
            seen.push((def.name.clone(), def.is_entry(), def.is_test));
        });
        assert!(seen.contains(&("hot".into(), true, false)));
        assert!(seen.contains(&("cold".into(), false, false)));
        assert!(seen.contains(&("t".into(), false, true)));
    }

    #[test]
    fn scoped_entry_marker_carries_its_rule_list() {
        let ast = parse(
            "// vdsms-lint: entry(no-panic-hot-path)\n\
             pub fn panic_only() {}\n\
             // vdsms-lint: entry(no-panic-hot-path, no-alloc-hot-path)\n\
             pub fn both() {}\n\
             // vdsms-lint: entry\n\
             pub fn all_rules() {}\n\
             // vdsms-lint: entry()\n\
             pub fn empty_scope_is_not_an_entry() {}",
        );
        let mut seen = std::collections::BTreeMap::new();
        walk_fns(&ast.items, &mut |_, def| {
            seen.insert(def.name.clone(), def.entry.clone());
        });
        assert_eq!(seen["panic_only"], Some(vec!["no-panic-hot-path".to_string()]));
        assert_eq!(
            seen["both"],
            Some(vec!["no-panic-hot-path".to_string(), "no-alloc-hot-path".to_string()])
        );
        assert_eq!(seen["all_rules"], Some(Vec::new()));
        assert_eq!(seen["empty_scope_is_not_an_entry"], None);
    }

    #[test]
    fn binary_ops_and_casts() {
        let ast = parse("fn f(a: u8, b: u8) -> u64 { (a as u64) << 8 | u64::from(b) + a as u64 * 2 }");
        let mut shls = 0;
        let mut casts = Vec::new();
        walk_fns(&ast.items, &mut |_, def| {
            if let Some(body) = &def.body {
                walk_stmts(body, &mut |e| match &e.kind {
                    ExprKind::Binary { op: BinOp::Shl, .. } => shls += 1,
                    ExprKind::Cast { ty, .. } => casts.push(ty.clone()),
                    _ => {}
                });
            }
        });
        assert_eq!(shls, 1);
        assert_eq!(casts, vec!["u64", "u64"]);
    }

    #[test]
    fn macro_calls_keep_expression_args() {
        let ast = parse("fn f() { assert_eq!(a.len(), 3); let v = vec![0u8; n]; format!(\"{}\", x.clone()); }");
        let ms = methods(&ast);
        assert!(ms.contains(&"len".to_string()));
        assert!(ms.contains(&"clone".to_string()));
        let mut macros = Vec::new();
        walk_fns(&ast.items, &mut |_, def| {
            if let Some(b) = &def.body {
                walk_stmts(b, &mut |e| {
                    if let ExprKind::MacroCall { name, .. } = &e.kind {
                        macros.push(name.clone());
                    }
                });
            }
        });
        assert_eq!(macros, vec!["assert_eq", "vec", "format"]);
    }

    #[test]
    fn params_collected() {
        let ast = parse("impl S { fn m(&self, bytes: &[u8], map: BTreeMap<K, V>, n: usize) {} }");
        let mut params = Vec::new();
        walk_fns(&ast.items, &mut |_, def| params.extend(def.params.clone()));
        assert_eq!(params, vec!["self", "bytes", "map", "n"]);
    }

    #[test]
    fn pathological_input_terminates() {
        // Unbalanced garbage must not hang or panic.
        let srcs = [
            "fn f( {{{{ ((( }} )) fn g",
            "impl impl impl",
            "fn f() { match { { { ",
            "let < < < > :: :: ..",
            "fn f() { a.b.c.(((( }",
        ];
        for s in srcs {
            let _ = parse(s);
        }
        // Deep nesting degrades but terminates.
        let mut deep = String::from("fn f() { ");
        for _ in 0..500 {
            deep.push('(');
        }
        deep.push('1');
        for _ in 0..500 {
            deep.push(')');
        }
        deep.push_str("; }");
        let _ = parse(&deep);
    }

    #[test]
    fn let_else_body_is_visible() {
        let ast = parse("fn f(o: Option<u8>) { let Some(x) = o else { panic!(\"boom\") }; }");
        let mut macros = Vec::new();
        walk_fns(&ast.items, &mut |_, def| {
            if let Some(b) = &def.body {
                walk_stmts(b, &mut |e| {
                    if let ExprKind::MacroCall { name, .. } = &e.kind {
                        macros.push(name.clone());
                    }
                });
            }
        });
        assert_eq!(macros, vec!["panic"]);
    }
}
