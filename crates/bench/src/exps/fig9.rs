//! Figure 9 — CPU time vs the number of continuous queries `m`, for
//! Sketch/Bit with and without the HQ index, under both orders, on VS1.
//!
//! Expected shape: the NoIndex variants grow (near-)linearly with m, the
//! indexed variants stay nearly flat; with Geometric order, even
//! SketchIndex overtakes BitNoIndex once m is large enough (the paper
//! observes the crossover past m ≈ 100).

use crate::table::f3;
use crate::{Ctx, Scale, Table};
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_workload::StreamKind;

/// Run the sweep.
pub fn run(ctx: &mut Ctx, scale: Scale) -> Table {
    let w_kf = ctx.spec().window_keyframes(5.0);
    let decode = ctx.decode_seconds(StreamKind::Vs1);

    let mut table = Table::new(
        "Figure 9 — CPU time (s) vs number of queries m (VS1)",
        &[
            "m",
            "Seq Bit+Ix",
            "Seq Bit",
            "Seq Sk+Ix",
            "Seq Sk",
            "Geo Bit+Ix",
            "Geo Bit",
            "Geo Sk+Ix",
            "Geo Sk",
        ],
    );
    table.note(format!(
        "K = 800, w = 5 s, δ = 0.7; +Ix = with HQ index; times include {decode:.2} s of partial decoding"
    ));

    for m in scale.m_sweep(ctx.library().len()) {
        let mut row = vec![m.to_string()];
        for order in [Order::Sequential, Order::Geometric] {
            for (rep, use_index) in [
                (Representation::Bit, true),
                (Representation::Bit, false),
                (Representation::Sketch, true),
                (Representation::Sketch, false),
            ] {
                let cfg = DetectorConfig {
                    window_keyframes: w_kf,
                    order,
                    representation: rep,
                    use_index,
                    ..Default::default()
                };
                let res = ctx.run_engine(StreamKind::Vs1, cfg, m);
                row.push(f3(res.engine_seconds + decode));
            }
        }
        table.push(row);
    }
    table
}
