//! End-to-end ingestion throughput: compressed bitstream bytes →
//! detections, through the whole front-end (partial decode → feature
//! extraction → fingerprint) and the detector fleet behind it.
//!
//! Two front-end variants are measured over the identical byte streams:
//!
//! * `legacy` — the materializing pipeline: `PartialDecoder::decode_all`
//!   into a `Vec<DcFrame>`, then `FeatureExtractor::fingerprint_sequence`,
//!   then batch feeding. One heap-allocated DC buffer per key frame plus
//!   per-frame region-overlap recomputation.
//! * `fused` — the streaming pipeline: `FingerprintStream` yields
//!   `(frame_index, cell_id)` straight from the bytes with pooled
//!   buffers and a memoized `RegionPlan` (steady-state allocation-free).
//!
//! Both run serial (`Fleet`) and sharded (`ParallelFleet`, 4 shards,
//! pipelined ingestion). Fleets persist across iterations with shifted
//! frame indices, so numbers are steady-state streaming throughput in
//! key frames per second. Two streams periodically re-air catalogue
//! clips, so real detections (and their event allocations) are part of
//! the measured work.
//!
//! `BENCH_ingest.json` records the before/after numbers for the fused
//! front-end PR.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use vdsms_codec::{Encoder, EncoderConfig, PartialDecoder};
use vdsms_core::{AnyFleet, Detector, DetectorConfig, Query, StreamId};
use vdsms_features::{FeatureConfig, FeatureExtractor, FingerprintStream};
use vdsms_video::source::{ClipGenerator, SourceSpec};
use vdsms_video::Fps;

const STREAMS: u64 = 8;
const STREAM_SECONDS: f64 = 60.0;
const QUERIES: u32 = 8;
const QUERY_SECONDS: f64 = 12.0;

const ENC: EncoderConfig = EncoderConfig { gop: 5, quality: 80, motion_search: true };

fn cfg(shards: usize) -> DetectorConfig {
    DetectorConfig { window_keyframes: 8, shards, ..Default::default() }
}

fn spec(seed: u64) -> SourceSpec {
    SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    }
}

/// Encode the query catalogue and the broadcast streams. Streams 3 and 6
/// carry a planted query clip mid-broadcast (a detection per airing).
fn encode_workload() -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let queries: Vec<_> =
        (0..QUERIES).map(|q| ClipGenerator::new(spec(500 + u64::from(q))).clip(QUERY_SECONDS)).collect();
    let streams: Vec<Vec<u8>> = (0..STREAMS)
        .map(|s| {
            let planted = match s {
                3 => Some(&queries[1]),
                6 => Some(&queries[5]),
                _ => None,
            };
            let mut clip = ClipGenerator::new(spec(900 + s)).clip(STREAM_SECONDS / 2.0);
            if let Some(q) = planted {
                clip.append(q.clone());
            }
            clip.append(
                ClipGenerator::new(spec(950 + s))
                    .clip(STREAM_SECONDS / 2.0 - planted.map_or(0.0, |_| QUERY_SECONDS)),
            );
            Encoder::encode_clip(&clip, ENC)
        })
        .collect();
    let query_bytes: Vec<Vec<u8>> = queries.iter().map(|c| Encoder::encode_clip(c, ENC)).collect();
    (query_bytes, streams)
}

fn catalogue(cfg: &DetectorConfig, extractor: &FeatureExtractor, query_bytes: &[Vec<u8>]) -> Vec<Query> {
    let family = Detector::family_for(cfg);
    query_bytes
        .iter()
        .enumerate()
        .map(|(id, bytes)| {
            let dcs = PartialDecoder::new(bytes).unwrap().decode_all().unwrap();
            let cells = extractor.fingerprint_sequence(&dcs);
            Query::from_cell_ids(id as u32, &family, &cells)
        })
        .collect()
}

fn fleet_for(cfg: DetectorConfig, queries: &[Query]) -> AnyFleet {
    let mut fleet = AnyFleet::new(cfg);
    for s in 0..STREAMS {
        fleet.add_stream(s as StreamId).unwrap();
    }
    for q in queries {
        fleet.subscribe(q.clone()).unwrap();
    }
    fleet
}

/// Keyframes per stream (streams are encoded identically long).
fn keyframes_per_stream(bytes: &[u8]) -> u64 {
    let mut n = 0;
    let mut dec = PartialDecoder::new(bytes).unwrap();
    while dec.next_dc_frame().unwrap().is_some() {
        n += 1;
    }
    n
}

/// The pre-PR front-end: materialize every DC frame, fingerprint the
/// sequence, then interleave round-robin (the CLI `monitor` shape).
fn run_legacy(
    streams: &[Vec<u8>],
    extractor: &FeatureExtractor,
    fleet: &mut AnyFleet,
    frame_offset: u64,
    batch: &mut Vec<(StreamId, u64, u64)>,
) -> usize {
    let mut detections = 0;
    let per_stream: Vec<Vec<(u64, u64)>> = streams
        .iter()
        .map(|bytes| {
            let dcs = PartialDecoder::new(bytes).unwrap().decode_all().unwrap();
            let cells = extractor.fingerprint_sequence(&dcs);
            dcs.iter().zip(cells).map(|(d, c)| (d.frame_index, c)).collect()
        })
        .collect();
    let rounds = per_stream.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..rounds {
        batch.clear();
        for (i, cells) in per_stream.iter().enumerate() {
            if let Some(&(frame_index, cell)) = cells.get(round) {
                batch.push((i as StreamId, frame_offset + frame_index, cell));
            }
        }
        detections += fleet.push_batch(batch).unwrap().len();
    }
    detections
}

/// The fused front-end: each stream's bytes flow through a persistent
/// `FingerprintStream` (pooled DC frame, memoized region plan); batches
/// are built by pulling one key frame per stream per round. Identical
/// batch ordering to [`run_legacy`], so detections are bit-identical.
fn run_fused(
    ingests: &mut [FingerprintStream<'_>],
    fleet: &mut AnyFleet,
    frame_offset: u64,
    batch: &mut Vec<(StreamId, u64, u64)>,
) -> usize {
    let mut detections = 0;
    loop {
        batch.clear();
        for (i, ingest) in ingests.iter_mut().enumerate() {
            if let Some((frame_index, cell)) = ingest.next_fingerprint().unwrap() {
                batch.push((i as StreamId, frame_offset + frame_index, cell));
            }
        }
        if batch.is_empty() {
            break;
        }
        detections += fleet.push_batch(batch).unwrap().len();
    }
    detections
}

fn bench_ingest(c: &mut Criterion) {
    let (query_bytes, streams) = encode_workload();
    let extractor = FeatureExtractor::new(FeatureConfig::default());
    let kf_per_iter: u64 = streams.iter().map(|b| keyframes_per_stream(b)).sum();
    // Frame indices keep growing across iterations so persistent fleets
    // see one endless broadcast; streams are `STREAM_SECONDS` at 10 fps.
    let frames_per_epoch = (STREAM_SECONDS * 10.0) as u64;

    let mut g = c.benchmark_group("ingest_end_to_end");
    g.sample_size(10);
    g.throughput(Throughput::Elements(kf_per_iter));

    for (name, shards) in [("legacy_serial", 1usize), ("legacy_sharded4", 4)] {
        let cfg = cfg(shards);
        let queries = catalogue(&cfg, &extractor, &query_bytes);
        let mut fleet = fleet_for(cfg, &queries);
        let mut batch = Vec::with_capacity(STREAMS as usize);
        let mut epoch = 0u64;
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let dets = run_legacy(
                    &streams,
                    &extractor,
                    &mut fleet,
                    epoch * frames_per_epoch,
                    &mut batch,
                );
                epoch += 1;
                black_box(dets)
            });
        });
    }

    // Front-end only: decode → fingerprint with no fleet behind it. The
    // gap between this and `fused_serial` is the detector-side cost
    // (window sketching, index probe, candidate stores).
    {
        let mut ingests: Vec<FingerprintStream<'_>> = streams
            .iter()
            .map(|b| FingerprintStream::new(b, extractor.clone()).unwrap())
            .collect();
        g.bench_function("fused_frontend_only", |bench| {
            bench.iter(|| {
                let mut acc = 0u64;
                for (ingest, bytes) in ingests.iter_mut().zip(&streams) {
                    ingest.reopen(bytes).unwrap();
                    while let Some((_, cell)) = ingest.next_fingerprint().unwrap() {
                        acc = acc.wrapping_add(cell);
                    }
                }
                black_box(acc)
            });
        });
    }

    for (name, shards) in [("fused_serial", 1usize), ("fused_sharded4", 4)] {
        let cfg = cfg(shards);
        let queries = catalogue(&cfg, &extractor, &query_bytes);
        let mut fleet = fleet_for(cfg, &queries);
        // Persistent ingestion front-ends: `reopen` per iteration keeps
        // every pooled buffer warm, so this measures the steady state.
        let mut ingests: Vec<FingerprintStream<'_>> = streams
            .iter()
            .map(|b| FingerprintStream::new(b, extractor.clone()).unwrap())
            .collect();
        let mut batch = Vec::with_capacity(STREAMS as usize);
        let mut epoch = 0u64;
        g.bench_function(name, |bench| {
            bench.iter(|| {
                for (ingest, bytes) in ingests.iter_mut().zip(&streams) {
                    ingest.reopen(bytes).unwrap();
                }
                let dets =
                    run_fused(&mut ingests, &mut fleet, epoch * frames_per_epoch, &mut batch);
                epoch += 1;
                black_box(dets)
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
