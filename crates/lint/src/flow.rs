//! The workspace-level (interprocedural + dataflow) analyses:
//!
//! - **`no-panic-hot-path` (v2)** — panic sites (`unwrap` / `expect` /
//!   `panic!` / `todo!` / `unimplemented!` / index-then-`clone`) flagged
//!   only in functions reachable from a `// vdsms-lint: entry` function;
//!   every diagnostic names the call chain from the entry point.
//! - **`no-alloc-hot-path`** — heap-allocating operations on the same
//!   hot set: growth methods (`push`, `insert`, `extend`, `collect`,
//!   `to_vec`, `clone`, …), allocating constructors
//!   (`Vec::with_capacity`, `Box::new`, `String::from`) and macros
//!   (`vec!`, `format!`). Capacity-zero constructors (`Vec::new`,
//!   `String::new`, `BTreeMap::new`) are exempt — they are
//!   allocation-free by std's documented guarantee, so flagging them
//!   would only breed no-op `allow`s; the growth calls that actually
//!   allocate are where the rule bites.
//! - **`lock-order`** — a static lock-acquisition graph: an edge A → B
//!   is recorded whenever lock B is acquired (directly or via a callee,
//!   by transitive summary) while a guard on A is held. Any cycle is a
//!   deadlock hazard; the diagnostic prints both witness chains.
//! - **`no-unchecked-arith`** — local taint: values from `get_*` /
//!   `read_*` method calls (untrusted stream bytes) flow through
//!   let-bindings; `+ - * <<` on a tainted operand is flagged unless the
//!   operand passed through an explicit cast or a call boundary
//!   (`u64::from(b)` widens; `wrapping_*` / `checked_*` /
//!   `saturating_*` are method calls, not bare operators, so they pass).
//! - **`float-determinism`** — `partial_cmp` in production code: its
//!   `Option` forces `unwrap`-or-fallback on NaN and its NaN behaviour
//!   is order-unstable; detection scoring must use `total_cmp` or
//!   integer keys.

use crate::ast::{walk_stmts, BinOp, Expr, ExprKind, Pos, Stmt};
use crate::callgraph::{transitive_union, CallGraph, Reachability};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules::{FLOAT_DET, LOCK_ORDER, NO_ALLOC, NO_PANIC, NO_UNCHECKED_ARITH};
use crate::symbols::{FnSym, SymbolTable};
use crate::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// Growth methods that (re)allocate on the receiver.
const ALLOC_METHODS: &[&str] = &[
    "append", "clone", "collect", "extend", "insert", "push", "push_back", "push_front",
    "reserve", "resize", "to_owned", "to_string", "to_vec",
];

/// `Type::ctor` associated calls that allocate.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("String", "from"),
    ("Vec", "from"),
    ("Vec", "with_capacity"),
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Run every workspace analysis. `files[i]`, `asts[i]` correspond;
/// diagnostics are raw (suppressions are applied by the driver).
pub fn analyze(
    files: &[SourceFile],
    asts: &[crate::ast::AstFile],
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let symbols = SymbolTable::build(files, asts);
    let graph = CallGraph::build(&symbols);
    // Each hot-path rule gets its own hot set: bare `entry` markers seed
    // both, `entry(rule)` markers only the named rule (batch-evaluation
    // entries are panic-checked without dragging their working-set
    // allocations into `no-alloc-hot-path`).
    let reach_panic = Reachability::from_entries_for(&symbols, &graph, NO_PANIC);
    let reach_alloc = Reachability::from_entries_for(&symbols, &graph, NO_ALLOC);
    let rules_per_file: Vec<crate::config::RuleSet> =
        files.iter().map(|f| config.rules_for(&f.crate_name)).collect();

    let mut diags = Vec::new();
    let mut ctx = Ctx { files, symbols: &symbols, rules: &rules_per_file, diags: &mut diags };

    hot_path_rules(&mut ctx, &reach_panic, &reach_alloc);
    lock_order(&mut ctx, &graph);
    unchecked_arith(&mut ctx);
    float_determinism(&mut ctx);
    diags
}

struct Ctx<'a> {
    files: &'a [SourceFile],
    symbols: &'a SymbolTable<'a>,
    rules: &'a [crate::config::RuleSet],
    diags: &'a mut Vec<Diagnostic>,
}

impl Ctx<'_> {
    fn enabled(&self, file: usize, rule: &str) -> bool {
        self.rules[file].enabled(rule)
    }

    fn emit(&mut self, rule: &str, file: usize, pos: Pos, message: String) {
        let f = &self.files[file];
        let snippet = f
            .source
            .lines()
            .nth(pos.line.saturating_sub(1) as usize)
            .map(|s| s.trim().to_string())
            .unwrap_or_default();
        self.diags.push(Diagnostic {
            rule: rule.to_string(),
            file: f.path.clone(),
            line: pos.line,
            col: pos.col,
            message,
            snippet,
        });
    }
}

// ---------------------------------------------------------------------
// no-panic-hot-path / no-alloc-hot-path
// ---------------------------------------------------------------------

fn hot_path_rules(ctx: &mut Ctx<'_>, reach_panic: &Reachability, reach_alloc: &Reachability) {
    for f in &ctx.symbols.fns {
        if f.def.is_test {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let check_panic = reach_panic.hot[f.id] && ctx.enabled(f.file, NO_PANIC);
        let check_alloc = reach_alloc.hot[f.id] && ctx.enabled(f.file, NO_ALLOC);
        if !check_panic && !check_alloc {
            continue;
        }
        let mut sites: Vec<(&str, Pos, String)> = Vec::new();
        walk_stmts(body, &mut |e: &Expr| {
            if check_panic {
                if let Some(what) = panic_site(e) {
                    sites.push((NO_PANIC, e.pos, what));
                }
            }
            if check_alloc {
                if let Some(what) = alloc_site(e) {
                    sites.push((NO_ALLOC, e.pos, what));
                }
            }
        });
        for (rule, pos, what) in sites {
            let (verb, reach) = if rule == NO_PANIC {
                ("can panic", reach_panic)
            } else {
                ("allocates", reach_alloc)
            };
            let chain = reach.chain_names(ctx.symbols, f.id);
            ctx.emit(
                rule,
                f.file,
                pos,
                format!("{what} {verb} on the steady-state hot path `{chain}`"),
            );
        }
    }
}

/// Classify a panic site; returns the description.
fn panic_site(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { recv, method, .. } => match method.as_str() {
            "unwrap" | "expect" => Some(format!("`.{method}()`")),
            "clone" if matches!(recv.kind, ExprKind::Index { .. }) => {
                Some("indexing followed by `.clone()`".to_string())
            }
            _ => None,
        },
        ExprKind::MacroCall { name, .. }
            if matches!(name.as_str(), "panic" | "todo" | "unimplemented") =>
        {
            Some(format!("`{name}!`"))
        }
        _ => None,
    }
}

/// Classify a heap-allocation site; returns the description.
fn alloc_site(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { method, .. } if ALLOC_METHODS.contains(&method.as_str()) => {
            Some(format!("`.{method}(…)`"))
        }
        ExprKind::Call { callee, .. } => {
            let segs = callee.as_path()?;
            let [.., ty, ctor] = segs else { return None };
            ALLOC_CTORS
                .iter()
                .any(|(t, c)| t == ty && c == ctor)
                .then(|| format!("`{ty}::{ctor}(…)`"))
        }
        ExprKind::MacroCall { name, .. } if ALLOC_MACROS.contains(&name.as_str()) => {
            Some(format!("`{name}!`"))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

/// One acquisition edge witness: where lock `to` was acquired while
/// `from` was held.
#[derive(Debug, Clone)]
struct EdgeWitness {
    file: usize,
    pos: Pos,
    fn_name: String,
    note: String,
}

fn lock_order(ctx: &mut Ctx<'_>, graph: &CallGraph) {
    // Per-function direct acquisitions (for transitive summaries) and
    // ordered edges with witnesses.
    let n = ctx.symbols.fns.len();
    let mut direct: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, LOCK_ORDER) {
            continue;
        }
        if let Some(body) = &f.def.body {
            walk_stmts(body, &mut |e: &Expr| {
                if let Some(name) = acquisition(e) {
                    direct[f.id].insert(name.to_string());
                }
            });
        }
    }
    let trans = transitive_union(graph, &direct);

    // Edge map: (held, acquired) -> first witness.
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, LOCK_ORDER) {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let mut held: Vec<String> = Vec::new();
        collect_lock_edges(ctx, f, body, graph, &trans, &mut held, &mut edges);
    }

    // Cycle detection over the lock graph.
    let adj: BTreeMap<&str, Vec<&str>> = {
        let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            m.entry(from).or_default().push(to);
        }
        m
    };
    let reachable = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen.insert(x) {
                if let Some(next) = adj.get(x) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    let keys: Vec<(String, String)> = edges.keys().cloned().collect();
    for (a, b) in keys {
        if a == b {
            continue; // self-edge: re-acquisition, not an order cycle
        }
        if !reachable(&b, &a) {
            continue;
        }
        let pair = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        if !reported.insert(pair) {
            continue;
        }
        let w_ab = &edges[&(a.clone(), b.clone())];
        let back = edges
            .get(&(b.clone(), a.clone()))
            .cloned()
            .or_else(|| {
                // Longer cycle: find the first edge out of `b` on a path
                // back to `a` for the counter-witness.
                edges
                    .iter()
                    .find(|((from, to), _)| from == &b && reachable(to, &a))
                    .map(|(_, w)| w.clone())
            });
        let counter = match &back {
            Some(w) => format!(
                "counter-witness: `{}` acquires `{}` while holding `{}` at {}:{}:{}",
                w.fn_name,
                a,
                b,
                ctx.files[w.file].path,
                w.pos.line,
                w.pos.col
            ),
            None => "counter-witness chain spans multiple functions".to_string(),
        };
        let msg = format!(
            "lock-order cycle between `{a}` and `{b}`: `{}` acquires `{b}` while holding `{a}` ({}); {counter} — a concurrent interleaving deadlocks",
            w_ab.fn_name, w_ab.note,
        );
        let (file, pos) = (w_ab.file, w_ab.pos);
        ctx.emit(LOCK_ORDER, file, pos, msg);
    }
}

/// A lock acquisition: `recv.lock()` / `.read()` / `.write()` with no
/// arguments. Returns the lock identity (last name of the receiver
/// chain).
fn acquisition(e: &Expr) -> Option<&str> {
    let ExprKind::MethodCall { recv, method, args } = &e.kind else {
        return None;
    };
    if !matches!(method.as_str(), "lock" | "read" | "write") || !args.is_empty() {
        return None;
    }
    recv.chain_name()
}

/// Walk `stmts` tracking held guards; record edges held → acquired, and
/// held → (transitive acquisitions of callees).
fn collect_lock_edges(
    ctx: &Ctx<'_>,
    f: &FnSym<'_>,
    stmts: &[Stmt],
    graph: &CallGraph,
    trans: &[BTreeSet<String>],
    held: &mut Vec<String>,
    edges: &mut BTreeMap<(String, String), EdgeWitness>,
) {
    let witness = |note: String, pos: Pos| EdgeWitness {
        file: f.file,
        pos,
        fn_name: f.qual_name(),
        note,
    };
    for stmt in stmts {
        match stmt {
            Stmt::Let { init: Some(e), .. } => {
                // Direct + callee acquisitions inside the initializer.
                record_expr_edges(ctx, f, e, graph, trans, held, edges, &witness);
                nested_blocks(ctx, f, e, graph, trans, held, edges);
                // Guards bound by `let` stay held for the rest of the
                // enclosing block. Only straight-line acquisitions count:
                // a guard taken inside a nested block or branch died in
                // there.
                straight_line_acquisitions(e, held);
            }
            Stmt::Let { .. } | Stmt::Item(_) => continue,
            Stmt::Expr(e) => {
                record_expr_edges(ctx, f, e, graph, trans, held, edges, &witness);
                // Statement temporaries die at the `;` — nothing stays
                // held.
                nested_blocks(ctx, f, e, graph, trans, held, edges);
            }
        }
    }
}

/// Record edges for one expression's **straight-line** part: held → each
/// acquisition (acquisitions within the statement also order among
/// themselves), and held → transitive locks of resolved callees. Stops
/// at control-flow boundaries (blocks, branch bodies, match arms,
/// closures): code on one branch does not hold another branch's locks —
/// those regions are walked by [`nested_blocks`] with their own scope.
#[allow(clippy::too_many_arguments)]
fn record_expr_edges(
    ctx: &Ctx<'_>,
    f: &FnSym<'_>,
    e: &Expr,
    graph: &CallGraph,
    trans: &[BTreeSet<String>],
    held: &[String],
    edges: &mut BTreeMap<(String, String), EdgeWitness>,
    witness: &impl Fn(String, Pos) -> EdgeWitness,
) {
    let mut stmt_locks: Vec<String> = Vec::new();
    record_straight_line(ctx, f, e, graph, trans, held, &mut stmt_locks, edges, witness);
}

#[allow(clippy::too_many_arguments)]
fn record_straight_line(
    ctx: &Ctx<'_>,
    f: &FnSym<'_>,
    e: &Expr,
    graph: &CallGraph,
    trans: &[BTreeSet<String>],
    held: &[String],
    stmt_locks: &mut Vec<String>,
    edges: &mut BTreeMap<(String, String), EdgeWitness>,
    witness: &impl Fn(String, Pos) -> EdgeWitness,
) {
    // Control-flow boundary: only the eagerly-evaluated head expression
    // belongs to this statement's straight line.
    let head: Option<&Expr> = match &e.kind {
        ExprKind::Block(_) | ExprKind::Loop { .. } | ExprKind::Closure(_) => return,
        ExprKind::If { cond, .. } | ExprKind::While { cond, .. } => Some(cond),
        ExprKind::For { iter, .. } => Some(iter),
        ExprKind::Match { scrutinee, .. } => Some(scrutinee),
        _ => None,
    };
    if let Some(head) = head {
        record_straight_line(ctx, f, head, graph, trans, held, stmt_locks, edges, witness);
        return;
    }
    if let Some(name) = acquisition(e) {
        for h in held.iter().chain(stmt_locks.iter()) {
            if h != name {
                edges.entry((h.clone(), name.to_string())).or_insert_with(|| {
                    witness(format!("direct `.{}()` acquisition", method_of(e)), e.pos)
                });
            }
        }
        stmt_locks.push(name.to_string());
    }
    // Call sites: everything the callee may acquire is acquired while
    // our guards are held.
    if matches!(&e.kind, ExprKind::Call { .. } | ExprKind::MethodCall { .. }) {
        for site in &graph.edges[f.id] {
            if site.pos == e.pos {
                let callee = &ctx.symbols.fns[site.callee];
                for lock in &trans[site.callee] {
                    for h in held.iter().chain(stmt_locks.iter()) {
                        if h != lock {
                            edges.entry((h.clone(), lock.clone())).or_insert_with(|| {
                                witness(
                                    format!(
                                        "via call to `{}` which acquires `{lock}`",
                                        callee.qual_name()
                                    ),
                                    e.pos,
                                )
                            });
                        }
                    }
                }
            }
        }
    }
    let mut children: Vec<&Expr> = Vec::new();
    collect_children(e, &mut children);
    for c in children {
        record_straight_line(ctx, f, c, graph, trans, held, stmt_locks, edges, witness);
    }
}

/// Append the lock names acquired on `e`'s straight line (same
/// boundaries as [`record_straight_line`]) — these are the guards a
/// `let` binding keeps alive for the rest of its block.
fn straight_line_acquisitions(e: &Expr, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Block(_)
        | ExprKind::Loop { .. }
        | ExprKind::Closure(_)
        | ExprKind::If { .. }
        | ExprKind::While { .. }
        | ExprKind::For { .. }
        | ExprKind::Match { .. } => return,
        _ => {}
    }
    if let Some(name) = acquisition(e) {
        out.push(name.to_string());
    }
    let mut children: Vec<&Expr> = Vec::new();
    collect_children(e, &mut children);
    for c in children {
        straight_line_acquisitions(c, out);
    }
}

fn method_of(e: &Expr) -> &str {
    match &e.kind {
        ExprKind::MethodCall { method, .. } => method,
        _ => "?",
    }
}

/// Recurse into block-bearing sub-expressions with held-stack
/// save/restore, so `let` guards bound inside a nested block or branch
/// do not leak out, and locks on sibling branches never appear
/// concurrently held.
fn nested_blocks(
    ctx: &Ctx<'_>,
    f: &FnSym<'_>,
    e: &Expr,
    graph: &CallGraph,
    trans: &[BTreeSet<String>],
    held: &mut Vec<String>,
    edges: &mut BTreeMap<(String, String), EdgeWitness>,
) {
    let mut recurse = |stmts: &[Stmt], held: &mut Vec<String>| {
        let depth = held.len();
        collect_lock_edges(ctx, f, stmts, graph, trans, held, edges);
        held.truncate(depth);
    };
    match &e.kind {
        ExprKind::Block(stmts) | ExprKind::Loop { body: stmts } => recurse(stmts, held),
        ExprKind::If { then, alt, .. } => {
            recurse(then, held);
            if let Some(a) = alt {
                nested_blocks(ctx, f, a, graph, trans, held, edges);
            }
        }
        ExprKind::While { body, .. } | ExprKind::For { body, .. } => recurse(body, held),
        ExprKind::Match { arms, .. } => {
            // Each arm is its own control-flow path.
            for arm in arms {
                let depth = held.len();
                let witness = |note: String, pos: Pos| EdgeWitness {
                    file: f.file,
                    pos,
                    fn_name: f.qual_name(),
                    note,
                };
                record_expr_edges(ctx, f, arm, graph, trans, held, edges, &witness);
                nested_blocks(ctx, f, arm, graph, trans, held, edges);
                held.truncate(depth);
            }
        }
        ExprKind::Closure(body) => {
            let depth = held.len();
            let witness = |note: String, pos: Pos| EdgeWitness {
                file: f.file,
                pos,
                fn_name: f.qual_name(),
                note,
            };
            record_expr_edges(ctx, f, body, graph, trans, held, edges, &witness);
            nested_blocks(ctx, f, body, graph, trans, held, edges);
            held.truncate(depth);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// no-unchecked-arith
// ---------------------------------------------------------------------

fn unchecked_arith(ctx: &mut Ctx<'_>) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, NO_UNCHECKED_ARITH) {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        let mut sites: Vec<(Pos, BinOp)> = Vec::new();
        check_arith_stmts(body, &mut tainted, &mut sites);
        for (pos, op) in sites {
            ctx.emit(
                NO_UNCHECKED_ARITH,
                f.file,
                pos,
                format!(
                    "unchecked `{}` on a value derived from untrusted stream bytes in `{}`; use `wrapping_*`/`checked_*`/`saturating_*` or widen first (`u64::from(…)` / `as u64`)",
                    op.as_str(),
                    f.qual_name()
                ),
            );
        }
    }
}

fn check_arith_stmts(stmts: &[Stmt], tainted: &mut BTreeSet<String>, sites: &mut Vec<(Pos, BinOp)>) {
    for stmt in stmts {
        match stmt {
            Stmt::Let { name, init, .. } => {
                if let Some(e) = init {
                    check_arith_expr(e, tainted, sites);
                    if let Some(n) = name {
                        if expr_tainted(e, tainted) {
                            tainted.insert(n.clone());
                        }
                    }
                }
            }
            Stmt::Expr(e) => check_arith_expr(e, tainted, sites),
            Stmt::Item(_) => {}
        }
    }
}

fn check_arith_expr(e: &Expr, tainted: &mut BTreeSet<String>, sites: &mut Vec<(Pos, BinOp)>) {
    match &e.kind {
        ExprKind::Binary { op, lhs, rhs } => {
            if op.can_overflow()
                && (operand_unsanitized(lhs, tainted) || operand_unsanitized(rhs, tainted))
            {
                sites.push((e.pos, *op));
            }
            check_arith_expr(lhs, tainted, sites);
            check_arith_expr(rhs, tainted, sites);
        }
        ExprKind::Assign { target, op, value } => {
            check_arith_expr(value, tainted, sites);
            if let Some(op) = op {
                if op.can_overflow() && operand_unsanitized(value, tainted) {
                    sites.push((e.pos, *op));
                }
            }
            // Assignment updates the taint environment for plain names.
            if let ExprKind::Path(p) = &target.kind {
                if let [name] = p.as_slice() {
                    if expr_tainted(value, tainted) || (op.is_some() && tainted.contains(name)) {
                        tainted.insert(name.clone());
                    } else {
                        tainted.remove(name);
                    }
                }
            }
        }
        ExprKind::Block(stmts) | ExprKind::Loop { body: stmts } => {
            check_arith_stmts(stmts, tainted, sites)
        }
        ExprKind::If { cond, then, alt } => {
            check_arith_expr(cond, tainted, sites);
            check_arith_stmts(then, tainted, sites);
            if let Some(a) = alt {
                check_arith_expr(a, tainted, sites);
            }
        }
        ExprKind::While { cond, body } => {
            check_arith_expr(cond, tainted, sites);
            check_arith_stmts(body, tainted, sites);
        }
        ExprKind::For { iter, body } => {
            check_arith_expr(iter, tainted, sites);
            check_arith_stmts(body, tainted, sites);
        }
        ExprKind::Match { scrutinee, arms } => {
            check_arith_expr(scrutinee, tainted, sites);
            for a in arms {
                check_arith_expr(a, tainted, sites);
            }
        }
        _ => {
            // Generic recursion for the remaining shapes; binary
            // operators inside are caught by the match arms above when
            // the walk reaches them.
            let mut children: Vec<&Expr> = Vec::new();
            collect_children(e, &mut children);
            for c in children {
                check_arith_expr(c, tainted, sites);
            }
        }
    }
}

/// Direct sub-expressions of `e` (one level).
fn collect_children<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match &e.kind {
        ExprKind::Unary(x) | ExprKind::Ref(x) | ExprKind::Try(x) | ExprKind::Closure(x) => {
            out.push(x)
        }
        ExprKind::Call { callee, args } => {
            out.push(callee);
            out.extend(args.iter());
        }
        ExprKind::MethodCall { recv, args, .. } => {
            out.push(recv);
            out.extend(args.iter());
        }
        ExprKind::MacroCall { args, .. } => out.extend(args.iter()),
        ExprKind::Field { base, .. } => out.push(base),
        ExprKind::Index { base, index } => {
            out.push(base);
            out.push(index);
        }
        ExprKind::Cast { expr, .. } => out.push(expr),
        ExprKind::Struct { fields, .. } => out.extend(fields.iter()),
        ExprKind::Tuple(xs) => out.extend(xs.iter()),
        ExprKind::Range { lo, hi } => {
            out.extend(lo.as_deref());
            out.extend(hi.as_deref());
        }
        ExprKind::Return(x) | ExprKind::Jump(x) => out.extend(x.as_deref()),
        _ => {}
    }
}

/// Taint source: a `get_*` / `read_*` method call (stream-byte reads).
fn is_taint_source(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::MethodCall { method, .. } => {
            method.starts_with("get_") || method.starts_with("read_")
        }
        ExprKind::Try(inner) => is_taint_source(inner),
        _ => false,
    }
}

/// Whether `e` carries taint: a source, a tainted name, or taint
/// propagated through `? & ! - [] + …` (calls are sanitizing
/// boundaries: `u64::from(b)` widens, `b.wrapping_add(…)` checks).
fn expr_tainted(e: &Expr, tainted: &BTreeSet<String>) -> bool {
    if is_taint_source(e) {
        return true;
    }
    match &e.kind {
        ExprKind::Path(p) => matches!(p.as_slice(), [name] if tainted.contains(name)),
        ExprKind::Try(x) | ExprKind::Unary(x) | ExprKind::Ref(x) => expr_tainted(x, tainted),
        ExprKind::Index { base, .. } => expr_tainted(base, tainted),
        ExprKind::Binary { lhs, rhs, .. } => {
            expr_tainted(lhs, tainted) || expr_tainted(rhs, tainted)
        }
        ExprKind::Cast { expr, .. } => expr_tainted(expr, tainted),
        _ => false,
    }
}

/// A flagged operand: tainted AND not sanitized by an explicit cast
/// (widening is the author's declared intent) at its top level.
fn operand_unsanitized(e: &Expr, tainted: &BTreeSet<String>) -> bool {
    match &e.kind {
        ExprKind::Cast { .. } => false,
        ExprKind::Ref(x) | ExprKind::Try(x) => operand_unsanitized(x, tainted),
        _ => expr_tainted(e, tainted),
    }
}

// ---------------------------------------------------------------------
// float-determinism
// ---------------------------------------------------------------------

fn float_determinism(ctx: &mut Ctx<'_>) {
    for f in &ctx.symbols.fns {
        if f.def.is_test || !ctx.enabled(f.file, FLOAT_DET) {
            continue;
        }
        let Some(body) = &f.def.body else { continue };
        let mut sites: Vec<Pos> = Vec::new();
        walk_stmts(body, &mut |e: &Expr| {
            if let ExprKind::MethodCall { method, .. } = &e.kind {
                if method == "partial_cmp" {
                    sites.push(e.pos);
                }
            }
        });
        for pos in sites {
            ctx.emit(
                FLOAT_DET,
                f.file,
                pos,
                format!(
                    "`partial_cmp` in `{}` is NaN-unstable (returns `None`, tempting `unwrap`, and orders NaN inconsistently); use `f64::total_cmp` / `f32::total_cmp` or compare integer keys",
                    f.qual_name()
                ),
            );
        }
    }
}
