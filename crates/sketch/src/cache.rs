//! Direct-mapped cache of cell-id → min-hash columns.
//!
//! Streaming video repeats cell ids heavily: scene content evolves over
//! seconds while key frames arrive several times per second, so adjacent
//! key frames usually fingerprint to the *same* cell id (≈70% of key
//! frames on the ingest bench workload). Recomputing the `K` hash
//! evaluations for a repeated id is the window fold's dominant cost;
//! caching the whole *column* of hash values turns a repeat fold into one
//! element-wise `min` pass (`K·8` bytes, memory-bound) instead of `K`
//! Mersenne multiply-folds.
//!
//! The cache is direct-mapped on the mixed id, so lookup and eviction are
//! deterministic, and a miss just recomputes the column — sketches built
//! through the cache are **bit-identical** to uncached folding for every
//! id sequence (pinned by the equivalence tests below).

use crate::hash::{mix64, MinHashFamily};

/// A direct-mapped id → hash-column cache for one [`MinHashFamily`].
///
/// All buffers are allocated up front at construction; serving folds
/// never touches the allocator (the zero-alloc ingestion invariant).
#[derive(Debug, Clone)]
pub struct HashColumnCache {
    k: usize,
    /// Power-of-two way count; way of id `x` is `mix64(x) & (ways − 1)`.
    ways: usize,
    /// Cached id per way (valid only where `filled`).
    tags: Vec<u64>,
    /// Whether a way holds a computed column yet.
    filled: Vec<bool>,
    /// `ways × K` hash columns, way `w` at `[w·K, (w+1)·K)`.
    cols: Vec<u64>,
}

impl HashColumnCache {
    /// A cache with `ways` slots for columns of `family`'s `K` values
    /// (`ways × K × 8` bytes).
    ///
    /// # Panics
    /// Panics if `ways` is not a power of two.
    pub fn new(family: &MinHashFamily, ways: usize) -> HashColumnCache {
        assert!(ways.is_power_of_two(), "way count must be a power of two");
        HashColumnCache {
            k: family.k(),
            ways,
            tags: vec![0; ways],
            filled: vec![false; ways],
            cols: vec![0; ways * family.k()],
        }
    }

    /// Fold `family`'s hash column for `x` into `mins` element-wise,
    /// serving the column from the cache when `x` was computed recently.
    /// Bit-identical to [`MinHashFamily::update_mins`] — a hit replays
    /// the exact values a miss computes.
    ///
    /// # Panics
    /// Panics if `family`'s `K` differs from the cache's or `mins`'s.
    // vdsms-lint: entry
    pub fn fold_min(&mut self, family: &MinHashFamily, x: u64, mins: &mut [u64]) {
        assert_eq!(family.k(), self.k, "family/cache K mismatch");
        assert_eq!(mins.len(), self.k, "mins/cache K mismatch");
        let w = (mix64(x) as usize) & (self.ways - 1);
        let col = &mut self.cols[w * self.k..(w + 1) * self.k];
        if !(self.filled[w] && self.tags[w] == x) {
            family.fill_column(x, col);
            self.tags[w] = x;
            self.filled[w] = true;
        }
        for (m, &c) in mins.iter_mut().zip(col.iter()) {
            *m = (*m).min(c);
        }
    }

    /// Heap footprint in bytes (the columns dominate).
    pub fn heap_bytes(&self) -> usize {
        self.cols.len() * std::mem::size_of::<u64>()
            + self.tags.len() * std::mem::size_of::<u64>()
            + self.filled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_folds_match_uncached() {
        let fam = MinHashFamily::new(97, 5);
        // Repeats, conflict-prone neighbours, and fresh ids interleaved.
        let ids = [3u64, 3, 3, 7, 3, 7, 7, 900, 900, 3, 12_345, 900, 7];
        let mut cache = HashColumnCache::new(&fam, 8);
        let mut cached = vec![u64::MAX; 97];
        let mut plain = vec![u64::MAX; 97];
        for &id in &ids {
            cache.fold_min(&fam, id, &mut cached);
            fam.update_mins(id, &mut plain);
            assert_eq!(cached, plain, "divergence after folding id {id}");
        }
    }

    #[test]
    fn eviction_is_harmless() {
        // A 1-way cache evicts on every alternation; results must still
        // be exact.
        let fam = MinHashFamily::new(33, 9);
        let mut cache = HashColumnCache::new(&fam, 1);
        let mut cached = vec![u64::MAX; 33];
        let mut plain = vec![u64::MAX; 33];
        for &id in &[1u64, 2, 1, 2, 1, 1, 2] {
            cache.fold_min(&fam, id, &mut cached);
            fam.update_mins(id, &mut plain);
        }
        assert_eq!(cached, plain);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_ways() {
        let fam = MinHashFamily::new(4, 1);
        let _ = HashColumnCache::new(&fam, 3);
    }
}
