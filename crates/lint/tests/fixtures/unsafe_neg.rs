// Fixture: audited unsafe — a SAFETY comment within three lines above.
fn read_raw(p: *const u8) -> u8 {
    // SAFETY: callers guarantee `p` is valid for reads (library contract
    // documented on the public wrapper).
    unsafe { p.read() }
}
