//! Property tests (proptest): every `Edit` and `EditPipeline` application
//! is deterministic — the same seed and input clip produce byte-identical
//! output frames — and the timeline bookkeeping (`output_len`,
//! `map_span`) always agrees with what `apply` actually built.
//!
//! The robustness attack matrix commits per-cell floors to
//! `BENCH_robustness.json`; that gate is only sound if attacked streams
//! are reproducible, which reduces to exactly these invariants.

use proptest::prelude::*;
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::{Clip, Edit, EditPipeline, Fps};

/// A small seeded clip (proptest only draws the seed and length, keeping
/// cases fast while still varying content and frame count).
fn clip(seed: u64, frames: usize) -> Clip {
    let gen = ClipGenerator::new(SourceSpec {
        width: 48,
        height: 32,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 0.5,
        max_scene_s: 1.5,
        motifs: None,
    });
    Clip::new(gen.take(frames).collect(), Fps::integer(10))
}

/// Strategy over every `Edit` variant, with parameters in their valid
/// ranges (sized for ~20–60-frame inputs).
fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0.4f64..1.6, -20.0f64..20.0).prop_map(|(gain, offset)| Edit::GainOffset { gain, offset }),
        (0.5f64..8.0, any::<u64>()).prop_map(|(sigma, seed)| Edit::Noise { sigma, seed }),
        (16u32..64, 16u32..48).prop_map(|(width, height)| Edit::Resize { width, height }),
        (5u32..20).prop_map(|f| Edit::ResampleFps { target: Fps::integer(f) }),
        (2usize..6, any::<u64>()).prop_map(|(segments, seed)| Edit::SegmentReorder { segments, seed }),
        (1u32..4, 1u32..4).prop_map(|(num, den)| Edit::Speed { num, den }),
        (2usize..10, 1usize..2).prop_map(|(period, drop)| Edit::DropPeriodic { period, drop }),
        (0.01f64..0.2, 1usize..5, any::<u64>())
            .prop_map(|(rate, burst, seed)| Edit::DropBursty { rate, burst, seed }),
        (0.2f64..2.0, 0.2f64..2.0, any::<u64>())
            .prop_map(|(lead_s, trail_s, seed)| Edit::ClipInClip { lead_s, trail_s, seed }),
        (0.3f64..1.0, 0.3f64..1.0).prop_map(|(keep_w, keep_h)| Edit::Crop { keep_w, keep_h }),
        (0.0f64..0.45, 0.0f64..0.45).prop_map(|(bar_x, bar_y)| Edit::Letterbox { bar_x, bar_y }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One edit, applied twice to the same input, yields byte-identical
    /// frames — and its length/span bookkeeping matches the real output.
    #[test]
    fn single_edit_is_deterministic_and_length_consistent(
        edit in arb_edit(),
        seed in any::<u64>(),
        frames in 20usize..60,
    ) {
        let input = clip(seed, frames);
        let a = edit.apply(&input);
        let b = edit.apply(&input);
        prop_assert_eq!(a.frames(), b.frames(), "{:?} not deterministic", edit);
        prop_assert_eq!(a.fps(), b.fps());
        prop_assert_eq!(
            a.len(),
            edit.output_len(input.len(), input.fps()),
            "{:?}: output_len disagrees with apply", edit
        );
        let (s, e) = edit.map_span(input.len(), input.fps(), (0, input.len() as u64));
        prop_assert!(e <= a.len() as u64, "{:?}: span {:?} exceeds output", edit, (s, e));
    }

    /// Pipelines of several edits are deterministic end to end, and the
    /// folded `map_span` tracks the real output length through every
    /// stage.
    #[test]
    fn pipeline_is_deterministic_and_span_tracks_length(
        edits in proptest::collection::vec(arb_edit(), 1..4),
        seed in any::<u64>(),
        frames in 20usize..50,
    ) {
        let input = clip(seed, frames);
        let pipe = edits.iter().cloned().fold(EditPipeline::new(), |p, e| p.then(e));
        let a = pipe.apply(&input);
        let b = pipe.apply(&input);
        prop_assert_eq!(a.frames(), b.frames(), "{:?} not deterministic", edits);
        let mapped = pipe.map_span(input.len(), input.fps(), (0, input.len() as u64));
        prop_assert_eq!(mapped.len, a.len(), "{:?}: folded length drifted", edits);
        prop_assert_eq!(mapped.fps, a.fps());
        prop_assert!(mapped.span.1 <= a.len() as u64, "{:?}", edits);
    }
}
