#![forbid(unsafe_code)]
//! `vdsms-lint` — run the workspace static-analysis gate.
//!
//! ```text
//! vdsms-lint [--format human|json|sarif] [--root DIR] [--no-cache]
//! vdsms-lint --explain <rule>
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error.

use std::process::ExitCode;

const USAGE: &str = "\
vdsms-lint — workspace static-analysis gate

USAGE:
  vdsms-lint [--format human|json|sarif] [--root DIR] [--no-cache]
  vdsms-lint --explain <rule>

  --format FMT    report format: human (default), json, or sarif
  --json          alias for --format json
  --root DIR      workspace root (default: nearest ancestor with lint.toml)
  --no-cache      ignore the incremental summary cache
  --explain RULE  print a rule's rationale, example and suppression syntax

Per-file analysis summaries are cached under $CARGO_TARGET_DIR/vdsms-lint-cache
(<root>/target/vdsms-lint-cache when the variable is unset), keyed by
content hash; warm runs re-parse only changed files and produce
byte-identical output. The hit/miss split is reported on stderr.

Rules and per-crate configuration live in <root>/lint.toml.
Mark a streaming entry point (root of the hot-path analyses) with:
  // vdsms-lint: entry
or scope it to a subset of the hot-path rules:
  // vdsms-lint: entry(no-panic-hot-path)
Suppress a finding inline with a mandatory reason:
  // vdsms-lint: allow(rule-id) reason=\"why this occurrence is sound\"
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

fn explain_rule(id: &str) -> ExitCode {
    match vdsms_lint::rules::explain(id) {
        Some(info) => {
            println!("{} — {}\n", info.id, info.summary);
            println!("rationale:\n  {}\n", info.rationale);
            println!("example:");
            for line in info.example.lines() {
                println!("  {line}");
            }
            println!("\nsuppression:\n  {}", info.suppression);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: unknown rule `{id}`; registered rules:");
            for info in vdsms_lint::rules::registry() {
                eprintln!("  {} — {}", info.id, info.summary);
            }
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Human;
    let mut root: Option<String> = None;
    let mut use_cache = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("human") => Format::Human,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    Some(other) => {
                        eprintln!("error: unknown format `{other}` (human, json, sarif)\n{USAGE}");
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("error: --format needs a value\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--no-cache" => use_cache = false,
            "--explain" => {
                i += 1;
                return match args.get(i) {
                    Some(id) => explain_rule(id),
                    None => {
                        eprintln!("error: --explain needs a rule id\n{USAGE}");
                        ExitCode::from(2)
                    }
                };
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(v) => root = Some(v.clone()),
                    None => {
                        eprintln!("error: --root needs a value\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = match root {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match vdsms_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no lint.toml found between {} and /", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let result = vdsms_lint::load_config(&root).and_then(|config| {
        if use_cache {
            vdsms_lint::lint_workspace_cached(&root, &config)
        } else {
            vdsms_lint::lint_workspace(&root, &config)
                .map(|r| (r, vdsms_lint::cache::CacheStats::default()))
        }
    });
    match result {
        Ok((report, stats)) => {
            if use_cache {
                eprintln!("cache: {} reused, {} parsed", stats.reused, stats.parsed);
            }
            match format {
                Format::Human => print!("{}", report.render()),
                Format::Json => print!("{}", report.to_json()),
                Format::Sarif => print!("{}", vdsms_lint::sarif::to_sarif(&report)),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
