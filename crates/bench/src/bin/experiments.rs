//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id>... [--scale quick|default|large|full] [--seed N] [--out FILE]
//! experiments all
//! experiments list
//! ```
//!
//! Ids: table2, fig6, fig7, fig8, fig9, fig10a, fig10b, fig11, fig12,
//! fig13, fig14, fig15 (see DESIGN.md for the experiment index).

use std::io::Write;
use std::time::Instant;
use vdsms_bench::{exps, Ctx, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: experiments <id>...|all|list [--scale quick|default|large|full] [--seed N] [--out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Default;
    let mut seed = 2008u64;
    let mut out: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "list" => {
                for id in exps::ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(exps::ALL.iter().map(|s| s.to_string())),
            id if id.starts_with('-') => usage(),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();

    // fig7 and fig8 are produced by one run; drop the duplicate.
    if ids.iter().any(|i| i == "fig7") {
        ids.retain(|i| i != "fig8");
    }

    let mut ctx = Ctx::new(scale, seed);
    let mut rendered = String::new();
    let total = Instant::now();
    for id in &ids {
        eprintln!("[experiments] running {id} at {scale:?} scale...");
        let started = Instant::now();
        for table in exps::run(id, &mut ctx, scale) {
            println!("{}", table.to_plain());
            rendered.push_str(&table.to_markdown());
        }
        eprintln!("[experiments] {id} done in {:.1}s", started.elapsed().as_secs_f64());
    }
    eprintln!("[experiments] total {:.1}s", total.elapsed().as_secs_f64());

    if let Some(path) = out {
        let mut f = std::fs::File::create(&path).expect("create output file");
        f.write_all(rendered.as_bytes()).expect("write output file");
        eprintln!("[experiments] wrote {path}");
    }
}
