// Fixture: heap allocation on the hot path. Expected findings:
// no-alloc-hot-path x4 (push, to_vec, Vec::with_capacity, format!).
// vdsms-lint: entry
fn ingest(state: &mut State, frame: Frame) {
    state.ids.push(frame.id);
    let snapshot = state.ids.to_vec();
    let scratch = Vec::with_capacity(frame.len);
    emit(format!("frame {}", frame.id), snapshot, scratch);
}
