// Fixture: one real violation silenced by a well-formed directive.
// Expected: zero diagnostics, suppressed == 1.
fn spawn(pool: &Pool) -> Worker {
    // vdsms-lint: allow(no-panic-hot-path) reason="construction-time spawn failure, before any stream is admitted"
    pool.spawn().expect("spawn must succeed at startup")
}
