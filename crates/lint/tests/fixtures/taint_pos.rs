// taint-unchecked-flow positive fixture: untrusted stream bytes reach
// indexing, capacity and loop-bound sinks with no bounds check between.

pub struct Reader;

impl Reader {
    fn read_u8(&mut self) -> u8 {
        0
    }
}

// 1. Source and sink in one function: byte -> slice indexing.
pub fn direct_index(r: &mut Reader, table: &[u32]) -> u32 {
    let i = r.read_u8() as usize;
    table[i]
}

// 2. Source -> Vec::with_capacity (attacker-controlled allocation).
pub fn direct_capacity(r: &mut Reader) -> Vec<u8> {
    let n = r.read_u8() as usize;
    Vec::with_capacity(n)
}

// 3. Through a call return: the callee reads the wire, the caller sinks.
fn wire_len(r: &mut Reader) -> usize {
    r.read_u8() as usize
}

pub fn via_return(r: &mut Reader, v: &mut Vec<u8>) {
    let n = wire_len(r);
    v.reserve(n);
}

// 4. Through a call argument: the caller reads, the callee indexes.
fn pick(table: &[u32], idx: usize) -> u32 {
    table[idx]
}

pub fn via_param(r: &mut Reader, table: &[u32]) -> u32 {
    let i = r.read_u8() as usize;
    pick(table, i)
}

// 5. Source -> loop upper bound (attacker-controlled iteration count).
pub fn loop_bound(r: &mut Reader) -> u64 {
    let count = r.read_u8() as usize;
    let mut acc = 0u64;
    for _step in 0..count {
        acc += 1;
    }
    acc
}
