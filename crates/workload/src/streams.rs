//! Stream composition (VS1/VS2) and the shared fingerprinting front-end.
//!
//! The composed stream is produced exactly the way a broadcaster would
//! produce it: background film frames and inserted clip frames are pushed
//! through **one** stream encoder, yielding a single compressed bitstream.
//! Detection methods then consume the bitstream through the partial
//! decoder — including the paper's "processing time including partial
//! decoding" measurements.

use crate::clips::ClipLibrary;
use crate::truth::GtInterval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdsms_codec::{DcFrame, Encoder, PartialDecoder};
use vdsms_features::{FeatureConfig, FeatureExtractor};
use vdsms_video::source::{ClipGenerator, SourceSpec};

/// Which evaluation stream to compose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// Original clips inserted unchanged.
    Vs1,
    /// Tampered clips (edit pipeline + re-compression) inserted.
    Vs2,
    /// Clips put through one attack of the robustness matrix
    /// ([`crate::attacks`]); composed via
    /// [`crate::attacks::compose_attacked_stream`], which knows the
    /// attack, not by [`compose_stream`].
    Attacked,
}

/// A composed, encoded evaluation stream.
#[derive(Debug, Clone)]
pub struct ComposedStream {
    /// Which stream this is.
    pub kind: StreamKind,
    /// The compressed bitstream.
    pub bitstream: Vec<u8>,
    /// Ground-truth insertion intervals, in stream frame indices.
    pub truth: Vec<GtInterval>,
    /// Total frames in the stream.
    pub total_frames: u64,
}

/// The fingerprinted view of a stream: everything any detection method
/// needs, plus the partial-decode cost.
#[derive(Debug, Clone)]
pub struct FingerprintedStream {
    /// `(stream frame index, cell id)` per key frame.
    pub cell_ids: Vec<(u64, u64)>,
    /// `(stream frame index, normalized feature vector)` per key frame —
    /// the baselines' input.
    pub features: Vec<(u64, Vec<f32>)>,
    /// Wall-clock seconds spent partial-decoding and fingerprinting.
    pub decode_seconds: f64,
}

/// Compose an evaluation stream from a clip library.
///
/// The background alternates between `spec.base_films` seeded "films";
/// the first `spec.inserted` clips are planted at random, non-overlapping
/// positions (uniformly spread gaps).
///
/// # Panics
/// Panics on [`StreamKind::Attacked`] — attacked streams carry an attack
/// spec; build them with [`crate::attacks::compose_attacked_stream`].
pub fn compose_stream(library: &ClipLibrary, kind: StreamKind) -> ComposedStream {
    match kind {
        StreamKind::Vs1 => compose_with(library, kind, 0x0051, |id| {
            let clip = library.original(id);
            let len = clip.len() as u64;
            (clip, (0, len))
        }),
        StreamKind::Vs2 => compose_with(library, kind, 0x0052, |id| {
            let clip = library.edited(id);
            let len = clip.len() as u64;
            (clip, (0, len))
        }),
        StreamKind::Attacked => {
            panic!("attacked streams need an attack spec: use attacks::compose_attacked_stream")
        }
    }
}

/// The generic composer behind [`compose_stream`] and
/// [`crate::attacks::compose_attacked_stream`]. `clip_for` supplies the
/// clip inserted for each id plus the span `[start, end)` of the *query
/// content* inside it, in inserted-clip frames — the full clip for
/// VS1/VS2, but a sub-span for time-warping or clip-in-clip attacks.
/// The recorded ground truth covers only that content span.
pub(crate) fn compose_with(
    library: &ClipLibrary,
    kind: StreamKind,
    salt: u64,
    mut clip_for: impl FnMut(u32) -> (vdsms_video::Clip, (u64, u64)),
) -> ComposedStream {
    let spec = library.spec().clone();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ salt);

    // One continuous generator per base film; the background cycles
    // between them (the paper's "5 films as our base video").
    let mut films: Vec<ClipGenerator> = (0..spec.base_films)
        .map(|f| {
            ClipGenerator::new(SourceSpec {
                width: spec.width,
                height: spec.height,
                fps: spec.fps,
                seed: spec.seed ^ (0xf11f_0000 + u64::from(f)),
                min_scene_s: 2.0,
                max_scene_s: 8.0,
                motifs: spec.motifs(),
            })
        })
        .collect();

    // Split the base material into `inserted + 1` gaps with random
    // proportions (each at least one basic-window-ish chunk).
    let n_inserts = spec.inserted;
    let weights: Vec<f64> = (0..=n_inserts).map(|_| rng.gen_range(0.35..1.0)).collect();
    let weight_sum: f64 = weights.iter().sum();
    let gap_seconds: Vec<f64> =
        weights.iter().map(|w| (w / weight_sum) * spec.base_seconds).collect();

    let mut encoder = Encoder::new(spec.width, spec.height, spec.fps, spec.encoder_config());
    let mut truth = Vec::with_capacity(n_inserts);
    let mut frame_count: u64 = 0;

    for (i, gap) in gap_seconds.iter().enumerate() {
        // Background segment from the current film. Pad to the next GOP
        // boundary: broadcast splices happen on key frames (an encoder
        // cannot cut into a GOP without re-encoding it), and this keeps
        // the inserted copy's key frames aligned with the query's.
        let film = &mut films[i % spec.base_films as usize];
        let mut n = spec.fps.frames_in(*gap).max(1);
        let rem = (frame_count + n as u64) % u64::from(spec.gop);
        if rem != 0 {
            n += (u64::from(spec.gop) - rem) as usize;
        }
        for frame in film.by_ref().take(n) {
            encoder.push(&frame);
            frame_count += 1;
        }
        // Insertion (after every gap but the last).
        if i < n_inserts {
            let clip_id = i as u32;
            let (clip, content) = clip_for(clip_id);
            debug_assert!(
                content.0 <= content.1 && content.1 <= clip.len() as u64,
                "content span must lie within the inserted clip"
            );
            let start = frame_count;
            for frame in clip.frames() {
                // Edited clips may differ in resolution (PAL height); the
                // broadcaster letterboxes/rescales back to the stream
                // geometry.
                if frame.width() != spec.width || frame.height() != spec.height {
                    encoder.push(&frame.resize(spec.width, spec.height));
                } else {
                    encoder.push(frame);
                }
                frame_count += 1;
            }
            // Ground truth covers only the query content (an empty span —
            // everything dropped by the attack — plants no truth at all).
            if content.0 < content.1 {
                truth.push(GtInterval {
                    query_id: clip_id,
                    start_frame: start + content.0,
                    end_frame: start + content.1,
                });
            }
        }
    }

    ComposedStream { kind, bitstream: encoder.finish(), truth, total_frames: frame_count }
}

/// Run the compressed-domain front-end over a composed stream: partial
/// decode (I-frame DC only), feature extraction, grid–pyramid
/// fingerprinting. The elapsed time is reported so CPU-cost experiments
/// can include it, as the paper does.
pub fn fingerprint_stream(
    stream: &ComposedStream,
    features: &FeatureConfig,
) -> FingerprintedStream {
    // vdsms-lint: allow(no-wall-clock) reason="decode_seconds is a reported measurement, not an input to detection; results stay replay-identical"
    let started = std::time::Instant::now();
    let extractor = FeatureExtractor::new(*features);
    // vdsms-lint: allow(no-panic-hot-path) reason="the bitstream was composed by this same crate's generator; a parse failure is a workload bug, not an input condition"
    let mut decoder = PartialDecoder::new(&stream.bitstream).expect("stream must parse");
    let mut cell_ids = Vec::new();
    let mut feats = Vec::new();
    // Pooled decode (this consumer also needs the raw feature vectors, so
    // it takes the `_into` decoder directly rather than FingerprintStream).
    let mut frame = DcFrame::empty();
    // vdsms-lint: allow(no-panic-hot-path) reason="decoding a stream this same crate composed; a failure is a workload bug, not an input condition"
    while decoder.next_dc_frame_into(&mut frame).expect("stream must decode") {
        let v = extractor.feature_vector(&frame);
        cell_ids.push((frame.frame_index, extractor.partition().cell_id(&v)));
        feats.push((frame.frame_index, v));
    }
    FingerprintedStream {
        cell_ids,
        features: feats,
        decode_seconds: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    fn tiny_library() -> ClipLibrary {
        ClipLibrary::new(WorkloadSpec::tiny(3))
    }

    #[test]
    fn vs1_composition_has_expected_structure() {
        let lib = tiny_library();
        let s = compose_stream(&lib, StreamKind::Vs1);
        assert_eq!(s.truth.len(), 4);
        // Intervals are disjoint and ordered.
        for pair in s.truth.windows(2) {
            assert!(pair[0].end_frame <= pair[1].start_frame);
        }
        // Total length ≈ base + inserted clip durations.
        let clip_frames: u64 = s.truth.iter().map(|t| t.len()).sum();
        let base_frames = lib.spec().fps.frames_in(lib.spec().base_seconds) as u64;
        let expect = base_frames + clip_frames;
        assert!(
            (s.total_frames as i64 - expect as i64).abs() < 30,
            "{} vs {expect}",
            s.total_frames
        );
    }

    #[test]
    fn composition_is_deterministic() {
        let lib = tiny_library();
        let a = compose_stream(&lib, StreamKind::Vs1);
        let b = compose_stream(&lib, StreamKind::Vs1);
        assert_eq!(a.bitstream, b.bitstream);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn vs1_and_vs2_differ() {
        let lib = tiny_library();
        let a = compose_stream(&lib, StreamKind::Vs1);
        let b = compose_stream(&lib, StreamKind::Vs2);
        assert_ne!(a.bitstream, b.bitstream);
        // VS2's PAL-resampled inserts have different lengths.
        assert_ne!(a.truth, b.truth);
    }

    #[test]
    fn fingerprinting_covers_all_key_frames() {
        let lib = tiny_library();
        let s = compose_stream(&lib, StreamKind::Vs1);
        let f = fingerprint_stream(&s, &FeatureConfig::default());
        let expect = s.total_frames.div_ceil(u64::from(lib.spec().gop));
        assert_eq!(f.cell_ids.len() as u64, expect);
        assert_eq!(f.features.len(), f.cell_ids.len());
        assert!(f.decode_seconds > 0.0);
        // Frame indices are strictly increasing multiples of the GOP.
        for pair in f.cell_ids.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert_eq!(pair[0].0 % u64::from(lib.spec().gop), 0);
        }
    }

    #[test]
    fn planted_region_fingerprints_match_query() {
        // The stream's key frames inside a VS1 insertion must mostly map
        // to the same cells as the standalone query clip.
        let lib = tiny_library();
        let s = compose_stream(&lib, StreamKind::Vs1);
        let f = fingerprint_stream(&s, &FeatureConfig::default());
        let gt = s.truth[0];
        let in_region: Vec<u64> = f
            .cell_ids
            .iter()
            .filter(|(fr, _)| *fr >= gt.start_frame && *fr < gt.end_frame)
            .map(|&(_, id)| id)
            .collect();
        let query: std::collections::HashSet<u64> = lib
            .query_fingerprints(gt.query_id, &FeatureConfig::default())
            .into_iter()
            .collect();
        let hits = in_region.iter().filter(|id| query.contains(id)).count();
        assert!(
            hits * 10 >= in_region.len() * 6,
            "only {hits}/{} in-region key frames match the query set",
            in_region.len()
        );
    }
}
