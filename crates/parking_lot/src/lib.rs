//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free-guard API
//! (`lock()` returns the guard directly; a poisoned lock — a thread
//! panicked while holding it — propagates the panic rather than returning
//! `Err`, matching how this workspace uses parking_lot).
//!
//! Every blocking operation passes through a [`schedule::yield_point`]
//! before touching the underlying primitive: outside a schedule session
//! this is one relaxed atomic load (the production path); inside one, a
//! seeded controller perturbs the interleaving so concurrency tests can
//! explore many schedules deterministically. See [`schedule`].

pub mod schedule;

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        schedule::yield_point("mutex.lock");
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        schedule::yield_point("rwlock.read");
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        schedule::yield_point("rwlock.write");
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable matching parking_lot's guard-based API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified, atomically releasing the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        schedule::yield_point("condvar.wait");
        // std's API consumes and returns the guard; parking_lot's mutates
        // in place. Bridge via a raw pointer swap-free replace.
        replace_with(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        schedule::yield_point("condvar.notify");
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        schedule::yield_point("condvar.notify");
        self.inner.notify_all();
    }
}

/// Replace `*slot` through a consuming closure. Aborts the process if the
/// closure panics (the slot would otherwise be left invalid).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    // SAFETY: `slot` is a valid, exclusively borrowed `T`; the value read
    // out is always written back (or the process aborts before the slot is
    // observable), so no double-drop or use of a moved-out value occurs.
    unsafe {
        let bomb = AbortOnPanic;
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers_value() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
