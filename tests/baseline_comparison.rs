//! The paper's Section VI-E comparison as an executable claim: on a
//! temporally re-ordered copy, the min-hash engine detects and the
//! temporal-alignment baselines break down.

use vdsms::baselines::{BaselineKind, BaselineMatcher, BaselineQuery};
use vdsms::core::{Detector, DetectorConfig, Query, QuerySet};
use vdsms::features::FeatureConfig;
use vdsms::workload::{compose_stream, fingerprint_stream, score, ClipLibrary, StreamKind, WorkloadSpec};

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        num_clips: 6,
        inserted: 4,
        clip_min_s: 15.0,
        clip_max_s: 30.0,
        base_seconds: 180.0,
        ..WorkloadSpec::tiny(11)
    }
}

#[test]
fn bit_beats_baselines_on_reordered_copies() {
    let spec = spec();
    let lib = ClipLibrary::new(spec.clone());
    let fc = FeatureConfig::default();
    let stream = compose_stream(&lib, StreamKind::Vs2);
    let fp = fingerprint_stream(&stream, &fc);
    let w_kf = spec.window_keyframes(5.0);
    let w_fr = spec.window_frames(5.0);

    // Proposed method at the default threshold.
    let cfg = DetectorConfig { delta: 0.6, window_keyframes: w_kf, ..Default::default() };
    let family = Detector::family_for(&cfg);
    let queries = QuerySet::from_queries(
        (0..lib.len() as u32)
            .map(|id| Query::from_cell_ids(id, &family, &lib.query_fingerprints(id, &fc)))
            .collect(),
    );
    let mut det = Detector::new(cfg, queries);
    let dets = det.run(fp.cell_ids.iter().copied());
    let bit = score(&dets, &stream.truth, w_fr);
    assert!(bit.recall >= 0.5, "Bit must find reordered copies: {bit:?}");
    assert!(bit.precision >= 0.9, "{bit:?}");

    // Baselines: find each one's best F1 over a generous threshold sweep;
    // even so they must stay far below the proposed method.
    let bqueries: Vec<BaselineQuery> = (0..lib.len() as u32)
        .map(|id| BaselineQuery { id, features: lib.query_features(id, &fc) })
        .collect();
    for kind in [BaselineKind::Seq, BaselineKind::Warp { r: 4 }] {
        let mut best_f1 = 0.0f64;
        for theta in [0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0] {
            let mut m = BaselineMatcher::new(kind, theta, w_kf, bqueries.clone());
            let mut found = Vec::new();
            for (frame, feat) in &fp.features {
                found.extend(m.push_keyframe(*frame, feat.clone()));
            }
            let pr = score(&found, &stream.truth, w_fr);
            best_f1 = best_f1.max(pr.f1());
        }
        assert!(
            best_f1 < bit.f1(),
            "{kind:?} best F1 {best_f1} must trail Bit's {}",
            bit.f1()
        );
    }
}
