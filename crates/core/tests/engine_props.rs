//! Property tests for the detection engine: structural invariants that
//! must hold for arbitrary streams and query sets.

use proptest::prelude::*;
use vdsms_core::{Detector, DetectorConfig, Order, Query, QuerySet, Representation};
use vdsms_sketch::MinHashFamily;

fn arb_config() -> impl Strategy<Value = DetectorConfig> {
    (
        16usize..128,                      // k
        0.5f64..0.9,                       // delta
        1.0f64..3.0,                       // lambda
        1usize..8,                         // window_keyframes
        prop_oneof![Just(Order::Sequential), Just(Order::Geometric)],
        prop_oneof![Just(Representation::Bit), Just(Representation::Sketch)],
        any::<bool>(),
    )
        .prop_map(|(k, delta, lambda, window_keyframes, order, representation, use_index)| {
            DetectorConfig {
                k,
                delta,
                lambda,
                window_keyframes,
                order,
                representation,
                use_index,
                ..Default::default()
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine never panics and every detection is well-formed:
    /// position within the stream, start <= end, similarity in [δ, 1],
    /// matching a subscribed query.
    #[test]
    fn detections_are_well_formed(
        cfg in arb_config(),
        queries in proptest::collection::vec(
            proptest::collection::vec(0u64..400, 1..30), 1..8),
        stream in proptest::collection::vec(0u64..400, 10..200),
    ) {
        let family = MinHashFamily::new(cfg.k, cfg.hash_seed);
        let qs = QuerySet::from_queries(
            queries.iter().enumerate()
                .map(|(i, ids)| Query::from_cell_ids(i as u32, &family, ids))
                .collect());
        let m = qs.len() as u32;
        let mut det = Detector::new(cfg, qs);
        let n = stream.len() as u64;
        let dets = det.run(stream.iter().copied().enumerate().map(|(i, id)| (i as u64, id)));
        for d in &dets {
            prop_assert!(d.query_id < m);
            prop_assert!(d.start_frame <= d.end_frame);
            prop_assert!(d.end_frame < n);
            prop_assert!(d.similarity >= cfg.delta - 1e-9);
            prop_assert!(d.similarity <= 1.0 + 1e-9);
            prop_assert!(d.windows >= 1);
        }
        // Stats sanity.
        let s = det.stats();
        prop_assert_eq!(s.windows, n.div_ceil(cfg.window_keyframes as u64));
        prop_assert_eq!(s.detections as usize, dets.len());
    }

    /// Streaming one key frame at a time equals batch processing.
    #[test]
    fn streaming_equals_batch(
        stream in proptest::collection::vec(0u64..100, 20..120),
    ) {
        let cfg = DetectorConfig { k: 64, window_keyframes: 4, ..Default::default() };
        let family = MinHashFamily::new(cfg.k, cfg.hash_seed);
        let q: Vec<u64> = (0..40).collect();
        let make = || {
            Detector::new(cfg, QuerySet::from_queries(vec![
                Query::from_cell_ids(0, &family, &q)]))
        };
        let mut a = make();
        let batch = a.run(stream.iter().copied().enumerate().map(|(i, v)| (i as u64, v)));
        let mut b = make();
        let mut incremental = Vec::new();
        for (i, &v) in stream.iter().enumerate() {
            incremental.extend(b.push_keyframe(i as u64, v));
        }
        incremental.extend(b.finish());
        prop_assert_eq!(batch, incremental);
    }

    /// Subscribing then immediately unsubscribing leaves the engine
    /// equivalent to never subscribing (no detections for that id).
    #[test]
    fn unsubscribe_is_complete(
        stream in proptest::collection::vec(0u64..50, 20..100),
    ) {
        let cfg = DetectorConfig { k: 64, window_keyframes: 4, ..Default::default() };
        let family = MinHashFamily::new(cfg.k, cfg.hash_seed);
        let mut det = Detector::new(cfg, QuerySet::new());
        det.subscribe(Query::from_cell_ids(7, &family, &(0u64..50).collect::<Vec<_>>()));
        assert!(det.unsubscribe(7));
        let dets = det.run(stream.iter().copied().enumerate().map(|(i, v)| (i as u64, v)));
        prop_assert!(dets.is_empty(), "{dets:?}");
    }
}
