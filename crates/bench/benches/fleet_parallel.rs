//! Serial vs sharded fleet throughput: the scaling experiment behind the
//! `DetectorConfig::shards` switch.
//!
//! A fixed catalogue is monitored over 16 concurrent streams; the same
//! interleaved key-frame workload is pushed through the serial [`Fleet`]
//! and through [`ParallelFleet`] at 1/2/4/8 shards (pipelined
//! `push_batch_async` ingestion, one quiesce per epoch). Streams
//! periodically air query content so candidate maintenance — not just
//! window sketching — is part of the measured work. Fleets persist across
//! iterations with shifted frame indices, so the numbers are steady-state
//! streaming throughput (key frames per second), not setup cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use vdsms_core::{DetectorConfig, Fleet, ParallelFleet, Query, StreamId};

const STREAMS: u32 = 16;
const FRAMES_PER_STREAM: u64 = 240;
const QUERIES: u32 = 40;
const QUERY_KEYFRAMES: u64 = 48;
/// Key frames handed to the fleet per `push_batch` call.
const CHUNK: usize = 256;

fn cfg() -> DetectorConfig {
    DetectorConfig { k: 800, window_keyframes: 8, ..Default::default() }
}

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Cell id of query `q`'s key frame `i`.
fn query_cell(q: u32, i: u64) -> u64 {
    mix(u64::from(q) * 1_000_003 + i)
}

fn catalogue(cfg: &DetectorConfig) -> Vec<Query> {
    let family = vdsms_core::Detector::family_for(cfg);
    (0..QUERIES)
        .map(|q| {
            let cells: Vec<u64> = (0..QUERY_KEYFRAMES).map(|i| query_cell(q, i)).collect();
            Query::from_cell_ids(q, &family, &cells)
        })
        .collect()
}

/// One epoch of interleaved key frames for all streams. Each stream airs
/// one full query every 96 frames; the rest is unique background.
fn workload() -> Vec<(StreamId, u64, u64)> {
    let mut batch = Vec::with_capacity((u64::from(STREAMS) * FRAMES_PER_STREAM) as usize);
    for i in 0..FRAMES_PER_STREAM {
        for s in 0..STREAMS {
            let phase = i % 96;
            let cell = if phase < QUERY_KEYFRAMES {
                query_cell((s + (i / 96) as u32) % QUERIES, phase)
            } else {
                mix(0xbac0_0000 + u64::from(s) * 1_000_000 + i)
            };
            batch.push((s, i, cell));
        }
    }
    batch
}

/// Shift an epoch's frame indices so it can be re-fed to a live fleet.
fn shifted(epoch: u64, base: &[(StreamId, u64, u64)]) -> Vec<(StreamId, u64, u64)> {
    base.iter()
        .map(|&(s, i, c)| (s, i + epoch * FRAMES_PER_STREAM, c))
        .collect()
}

fn bench_fleet(c: &mut Criterion) {
    let cfg = cfg();
    let queries = catalogue(&cfg);
    let base = workload();

    let mut g = c.benchmark_group("fleet_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(base.len() as u64));

    let mut serial = Fleet::new(cfg);
    for s in 0..STREAMS {
        serial.add_stream(s).unwrap();
    }
    for q in &queries {
        serial.subscribe(q.clone());
    }
    let mut epoch = 0u64;
    g.bench_function("serial", |bench| {
        bench.iter(|| {
            let batch = shifted(epoch, &base);
            epoch += 1;
            for chunk in batch.chunks(CHUNK) {
                black_box(serial.push_batch(chunk).unwrap());
            }
        });
    });
    drop(serial);

    for shards in [1usize, 2, 4, 8] {
        let mut fleet = ParallelFleet::new(cfg, shards);
        for s in 0..STREAMS {
            fleet.add_stream(s).unwrap();
        }
        for q in &queries {
            fleet.subscribe(q.clone()).unwrap();
        }
        let mut epoch = 0u64;
        g.bench_with_input(
            BenchmarkId::new("parallel", shards),
            &shards,
            |bench, _| {
                bench.iter(|| {
                    let batch = shifted(epoch, &base);
                    epoch += 1;
                    for chunk in batch.chunks(CHUNK) {
                        fleet.push_batch_async(chunk).unwrap();
                    }
                    fleet.quiesce().unwrap();
                    black_box(fleet.take_detections());
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
