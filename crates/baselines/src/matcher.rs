//! Streaming sliding-window driver for the baseline measures.
//!
//! "For both of the methods, a query length sized window is sliding
//! through the video stream, the sliding gap (number of jumped frames) is
//! also known as basic window" (Section VI-E). The matcher buffers the
//! most recent `max query length` key-frame features and evaluates every
//! query once per gap.

use crate::distance::{banded_dtw, seq_distance};
use std::collections::{HashMap, VecDeque};
use vdsms_core::Detection;

/// Which baseline measure to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// Hampapur et al. aligned mean frame distance.
    Seq,
    /// Chiu et al. banded time-warping distance with half-width `r`
    /// (in key frames).
    Warp {
        /// Sakoe–Chiba band half-width in key frames.
        r: usize,
    },
}

/// A query for the baseline matcher: the raw per-key-frame feature
/// sequence (baselines do not sketch).
#[derive(Debug, Clone)]
pub struct BaselineQuery {
    /// Query id (shared id space with the main engine for evaluation).
    pub id: u32,
    /// Per-key-frame feature vectors.
    pub features: Vec<Vec<f32>>,
}

/// Streaming sliding-window matcher.
#[derive(Debug)]
pub struct BaselineMatcher {
    kind: BaselineKind,
    /// Distance threshold θ: a window matches when distance ≤ θ.
    threshold: f64,
    /// Sliding gap in key frames (= the basic window size).
    gap: usize,
    queries: Vec<BaselineQuery>,
    /// Ring buffer of `(frame_index, features)`, capacity = longest query.
    buffer: VecDeque<(u64, Vec<f32>)>,
    capacity: usize,
    since_eval: usize,
    /// Suppress consecutive re-reports per query.
    last_match_eval: HashMap<u32, u64>,
    evals: u64,
    /// Number of distance evaluations performed (cost metric).
    pub distance_evals: u64,
}

impl BaselineMatcher {
    /// Create a matcher.
    ///
    /// # Panics
    /// Panics if `gap == 0`, `queries` is empty, or any query is empty.
    pub fn new(
        kind: BaselineKind,
        threshold: f64,
        gap: usize,
        queries: Vec<BaselineQuery>,
    ) -> BaselineMatcher {
        assert!(gap >= 1, "gap must be >= 1");
        assert!(!queries.is_empty(), "need at least one query");
        assert!(queries.iter().all(|q| !q.features.is_empty()), "empty query");
        let capacity = queries.iter().map(|q| q.features.len()).max().expect("non-empty");
        BaselineMatcher {
            kind,
            threshold,
            gap,
            queries,
            buffer: VecDeque::with_capacity(capacity),
            capacity,
            since_eval: 0,
            last_match_eval: HashMap::new(),
            evals: 0,
            distance_evals: 0,
        }
    }

    /// Feed one key frame's feature vector; returns any detections fired
    /// at this position.
    pub fn push_keyframe(&mut self, frame_index: u64, features: Vec<f32>) -> Vec<Detection> {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
        }
        self.buffer.push_back((frame_index, features));
        self.since_eval += 1;
        if self.since_eval < self.gap {
            return Vec::new();
        }
        self.since_eval = 0;
        self.evaluate()
    }

    fn evaluate(&mut self) -> Vec<Detection> {
        self.evals += 1;
        let mut out = Vec::new();
        let buffered: Vec<&Vec<f32>> = self.buffer.iter().map(|(_, f)| f).collect();
        for q in &self.queries {
            let n = q.features.len();
            if self.buffer.len() < n {
                continue;
            }
            let window: Vec<Vec<f32>> =
                buffered[buffered.len() - n..].iter().map(|f| (*f).clone()).collect();
            self.distance_evals += 1;
            let dist = match self.kind {
                BaselineKind::Seq => seq_distance(&q.features, &window),
                BaselineKind::Warp { r } => banded_dtw(&q.features, &window, r),
            };
            if dist <= self.threshold {
                let suppressed = matches!(
                    self.last_match_eval.get(&q.id),
                    Some(&last) if last + 1 >= self.evals
                );
                self.last_match_eval.insert(q.id, self.evals);
                if !suppressed {
                    let start = self.buffer[self.buffer.len() - n].0;
                    // The `buffer.len() < n` guard above means the buffer
                    // is non-empty whenever a query survives to this point.
                    let Some(&(end, _)) = self.buffer.back() else { continue };
                    out.push(Detection {
                        query_id: q.id,
                        start_frame: start,
                        end_frame: end,
                        windows: n / self.gap.max(1),
                        similarity: 1.0 / (1.0 + dist),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(v: f32) -> Vec<f32> {
        vec![v, 1.0 - v]
    }

    fn query(id: u32, vals: &[f32]) -> BaselineQuery {
        BaselineQuery { id, features: vals.iter().map(|&v| feat(v)).collect() }
    }

    /// Stream: background ramp with the query's pattern planted at
    /// frame 50.
    fn run(kind: BaselineKind, threshold: f64, pattern: &[f32], planted: &[f32]) -> Vec<Detection> {
        let mut m = BaselineMatcher::new(kind, threshold, 2, vec![query(1, pattern)]);
        let mut out = Vec::new();
        for i in 0..100u64 {
            let v = if (50..50 + planted.len() as u64).contains(&i) {
                planted[(i - 50) as usize]
            } else {
                ((i % 37) as f32) / 37.0 * 0.3 + 0.65 // background in [0.65, 0.95]
            };
            out.extend(m.push_keyframe(i, feat(v)));
        }
        out
    }

    const PATTERN: [f32; 8] = [0.0, 0.1, 0.2, 0.05, 0.3, 0.15, 0.0, 0.1];

    #[test]
    fn seq_finds_exact_copy() {
        let dets = run(BaselineKind::Seq, 0.1, &PATTERN, &PATTERN);
        assert!(!dets.is_empty());
        let d = &dets[0];
        assert_eq!(d.query_id, 1);
        assert!((50..=60).contains(&d.start_frame), "start {}", d.start_frame);
    }

    #[test]
    fn seq_misses_reordered_copy() {
        let mut reordered = PATTERN;
        reordered.reverse();
        // Same frames, reversed order: Seq must NOT match at a threshold
        // that comfortably catches the exact copy.
        let dets = run(BaselineKind::Seq, 0.1, &PATTERN, &reordered);
        assert!(dets.is_empty(), "Seq matched a reordered copy: {dets:?}");
    }

    #[test]
    fn warp_finds_locally_shifted_copy() {
        // Planted copy delayed internally by one frame (local time shift).
        let shifted = [0.0, 0.0, 0.1, 0.2, 0.05, 0.3, 0.15, 0.0];
        let warp = run(BaselineKind::Warp { r: 2 }, 0.08, &PATTERN, &shifted);
        assert!(!warp.is_empty(), "Warp must tolerate a local shift");
        let seq = run(BaselineKind::Seq, 0.08, &PATTERN, &shifted);
        assert!(seq.len() <= warp.len());
    }

    #[test]
    fn warp_misses_globally_reordered_copy() {
        let mut reordered = PATTERN;
        reordered.reverse();
        let dets = run(BaselineKind::Warp { r: 3 }, 0.08, &PATTERN, &reordered);
        assert!(dets.is_empty(), "Warp matched a globally reordered copy");
    }

    #[test]
    fn no_false_positives_on_background() {
        for kind in [BaselineKind::Seq, BaselineKind::Warp { r: 2 }] {
            let mut m = BaselineMatcher::new(kind, 0.1, 2, vec![query(1, &PATTERN)]);
            let mut out = Vec::new();
            for i in 0..100u64 {
                let v = ((i % 37) as f32) / 37.0 * 0.3 + 0.65;
                out.extend(m.push_keyframe(i, feat(v)));
            }
            assert!(out.is_empty(), "{kind:?} produced false positives");
        }
    }

    #[test]
    fn consecutive_matches_are_suppressed() {
        // A long run of content matching the query at EVERY evaluation
        // must report one event, not one per gap.
        let constant = [0.3f32; 8];
        let mut m = BaselineMatcher::new(BaselineKind::Seq, 0.2, 1, vec![query(1, &constant)]);
        let mut n = 0;
        for i in 0..40u64 {
            n += m.push_keyframe(i, feat(0.3)).len();
        }
        assert_eq!(n, 1, "expected one suppressed event");
    }

    #[test]
    fn distance_evals_are_counted() {
        let mut m = BaselineMatcher::new(BaselineKind::Seq, 0.1, 4, vec![query(1, &PATTERN)]);
        for i in 0..40u64 {
            m.push_keyframe(i, feat(0.5));
        }
        // Evaluations at frames 4, 8, ..., 40 once the buffer holds 8.
        assert!(m.distance_evals >= 8);
    }
}
