//! The approximate min-wise hash family.
//!
//! Exact min-wise independent families are impractically large (the paper
//! cites Broder et al.); like the paper we use an *approximately* min-wise
//! family: `K` independent universal hash functions
//! `π_i(x) = (a_i·x + b_i) mod p` with `p = 2^61 − 1` (a Mersenne prime, so
//! the reduction is two shifts and an add), `a_i ∈ [1, p)`, `b_i ∈ [0, p)`
//! drawn from a seeded RNG. Pairwise-independent linear congruential
//! families of this form have min-wise error `O(1/√p)`, far below sketch
//! sampling noise at any practical `K`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `p = 2^61 − 1`, the Mersenne prime modulus.
pub const MERSENNE_P: u64 = (1u64 << 61) - 1;

/// Multiply-add modulo `2^61 − 1` using the Mersenne fold.
#[inline]
fn mul_add_mod(a: u64, x: u64, b: u64) -> u64 {
    let t = u128::from(a) * u128::from(x) + u128::from(b);
    // Fold twice: t = hi*2^61 + lo ≡ hi + lo (mod p).
    let folded = (t & u128::from(MERSENNE_P)) + (t >> 61);
    let folded = (folded & u128::from(MERSENNE_P)) + (folded >> 61);
    let r = folded as u64;
    if r >= MERSENNE_P {
        r - MERSENNE_P
    } else {
        r
    }
}

/// A family of `K` independent hash functions used for min-hash sketching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHashFamily {
    /// `(a_i, b_i)` coefficient pairs.
    coeffs: Vec<(u64, u64)>,
}

impl MinHashFamily {
    /// Create a family of `k` functions from a seed. The same `(k, seed)`
    /// always yields the same family — queries sketched offline stay
    /// comparable with windows sketched online.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> MinHashFamily {
        assert!(k >= 1, "need at least one hash function");
        let mut rng = StdRng::seed_from_u64(seed);
        let coeffs = (0..k)
            .map(|_| (rng.gen_range(1..MERSENNE_P), rng.gen_range(0..MERSENNE_P)))
            .collect();
        MinHashFamily { coeffs }
    }

    /// Number of hash functions `K`.
    pub fn k(&self) -> usize {
        self.coeffs.len()
    }

    /// Value of the `i`-th function on `x`.
    ///
    /// `x` is pre-mixed with a 64-bit finalizer so that near-identical cell
    /// ids (which differ only in their pyramid order) spread over the whole
    /// domain before the linear hash.
    #[inline]
    pub fn hash(&self, i: usize, x: u64) -> u64 {
        let (a, b) = self.coeffs[i];
        mul_add_mod(a, mix64(x) % MERSENNE_P, b)
    }

    /// Evaluate every function on `x` into `out` (length `K`), keeping the
    /// element-wise minimum. This is the sketch-update inner loop.
    #[inline]
    pub fn update_mins(&self, x: u64, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.coeffs.len());
        let mixed = mix64(x) % MERSENNE_P;
        for ((a, b), slot) in self.coeffs.iter().zip(out.iter_mut()) {
            let h = mul_add_mod(*a, mixed, *b);
            *slot = h.min(*slot);
        }
    }

    /// Evaluate every function on `x` into `out` (length `K`),
    /// overwriting — the raw hash *column*, not a min fold. Backs the
    /// [`crate::HashColumnCache`]: a stored column min-folds into a
    /// sketch with one element-wise pass instead of `K` Mersenne
    /// multiply-folds.
    // vdsms-lint: entry
    pub fn fill_column(&self, x: u64, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.coeffs.len());
        let mixed = mix64(x) % MERSENNE_P;
        for ((a, b), slot) in self.coeffs.iter().zip(out.iter_mut()) {
            *slot = mul_add_mod(*a, mixed, *b);
        }
    }

    /// Evaluate every function on each element of `xs`, folding the minima
    /// into `out` (length `K`). Equivalent to one [`Self::update_mins`]
    /// call per element — `min` is commutative and associative, so the
    /// resulting minima are bit-identical — but makes one pass over the
    /// coefficient table per 8-element chunk instead of per element: each
    /// `(a_i, b_i)` pair is loaded once and the chunk's eight hash
    /// evaluations are independent, so the Mersenne folds pipeline instead
    /// of serialising on the `out` stream. This is the per-window
    /// sketching kernel (`w` key-frame ids folded in one sweep).
    // vdsms-lint: entry
    pub fn update_mins_batch(&self, xs: &[u64], out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.coeffs.len());
        let mut chunks = xs.chunks_exact(8);
        for chunk in &mut chunks {
            let mut mixed = [0u64; 8];
            for (m, &x) in mixed.iter_mut().zip(chunk) {
                *m = mix64(x) % MERSENNE_P;
            }
            for ((a, b), slot) in self.coeffs.iter().zip(out.iter_mut()) {
                let mut m = *slot;
                for &mx in &mixed {
                    m = m.min(mul_add_mod(*a, mx, *b));
                }
                *slot = m;
            }
        }
        for &x in chunks.remainder() {
            self.update_mins(x, out);
        }
    }
}

/// SplitMix64 finalizer: a bijective 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn family_is_deterministic_per_seed() {
        let a = MinHashFamily::new(16, 7);
        let b = MinHashFamily::new(16, 7);
        for i in 0..16 {
            assert_eq!(a.hash(i, 12345), b.hash(i, 12345));
        }
        let c = MinHashFamily::new(16, 8);
        assert_ne!(a.hash(0, 12345), c.hash(0, 12345));
    }

    #[test]
    fn hash_values_below_modulus() {
        let fam = MinHashFamily::new(64, 3);
        for i in 0..64 {
            for x in [0u64, 1, 255, u64::MAX] {
                assert!(fam.hash(i, x) < MERSENNE_P);
            }
        }
    }

    #[test]
    fn mul_add_mod_agrees_with_u128_reference() {
        let cases = [
            (1u64, 0u64, 0u64),
            (MERSENNE_P - 1, MERSENNE_P - 1, MERSENNE_P - 1),
            (0x1234_5678_9abc, 0xfff_ffff_ffff, 17),
        ];
        for (a, x, b) in cases {
            let expect = ((u128::from(a) * u128::from(x) + u128::from(b))
                % u128::from(MERSENNE_P)) as u64;
            assert_eq!(mul_add_mod(a, x, b), expect);
        }
    }

    #[test]
    fn functions_are_injective_enough_on_small_domains() {
        // Distinct inputs rarely collide under a single function.
        let fam = MinHashFamily::new(1, 11);
        let mut seen = HashSet::new();
        for x in 0..10_000u64 {
            seen.insert(fam.hash(0, x));
        }
        assert!(seen.len() >= 9_995, "too many collisions: {}", seen.len());
    }

    #[test]
    fn min_is_roughly_uniform_over_set_elements() {
        // Min-wise property: over many functions, each of n elements is
        // the arg-min with probability ≈ 1/n.
        let n = 10usize;
        let k = 20_000usize;
        let fam = MinHashFamily::new(k, 99);
        let elems: Vec<u64> = (0..n as u64).map(|e| e * 1_000_003 + 17).collect();
        let mut counts = vec![0usize; n];
        for i in 0..k {
            let (arg, _) = elems
                .iter()
                .enumerate()
                .map(|(j, &e)| (j, fam.hash(i, e)))
                .min_by_key(|&(_, h)| h)
                .unwrap();
            counts[arg] += 1;
        }
        let expect = k as f64 / n as f64;
        for (j, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.25,
                "element {j} won the min {c} times, expected ≈ {expect}"
            );
        }
    }

    #[test]
    fn update_mins_matches_individual_hashes() {
        let fam = MinHashFamily::new(32, 5);
        let mut mins = vec![u64::MAX; 32];
        for x in [3u64, 9, 27, 81] {
            fam.update_mins(x, &mut mins);
        }
        for (i, &min) in mins.iter().enumerate() {
            let expect = [3u64, 9, 27, 81].iter().map(|&x| fam.hash(i, x)).min().unwrap();
            assert_eq!(min, expect);
        }
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        let mut seen = HashSet::new();
        for x in 0..100_000u64 {
            assert!(seen.insert(mix64(x)), "mix64 collision");
        }
    }
}
