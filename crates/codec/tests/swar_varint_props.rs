//! SWAR-vs-scalar equivalence properties for the entropy layer's word
//! kernels.
//!
//! `ByteReader::get_varint` took a word-at-a-time fast path; its contract
//! is *exact* equivalence with `get_varint_scalar` (the original
//! byte-at-a-time loop, kept as semantic ground truth): same value on
//! success, same error variant on failure, and the same cursor position
//! afterwards on every path — including 10-byte maximum-length varints,
//! continuation runs that straddle the 8-byte word boundary, and
//! truncation at every distance from end-of-buffer. `skip_past_zero_byte`
//! gets the same treatment against an inline scalar reference.

use proptest::prelude::*;
use vdsms_codec::bitio::{ByteReader, ByteWriter};
use vdsms_codec::CodecError;

/// Drive both readers from `start` and assert identical observable
/// behaviour: result AND cursor, repeatedly until both error out or the
/// buffer is exhausted.
fn assert_varint_equivalence(buf: &[u8], start: usize) {
    let mut fast = ByteReader::new(buf);
    let mut slow = ByteReader::new(buf);
    fast.seek(start);
    slow.seek(start);
    loop {
        let a = fast.get_varint();
        let b = slow.get_varint_scalar();
        assert_eq!(a, b, "value/error divergence at pos {}", slow.position());
        assert_eq!(
            fast.position(),
            slow.position(),
            "cursor divergence after result {a:?}"
        );
        if a.is_err() || fast.is_at_end() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: every decode from every prefix offset must
    /// agree between the SWAR path and the scalar path. Random bytes hit
    /// single-byte values, multi-byte varints, overlong continuation runs
    /// (the `CorruptEntropy` overflow path) and truncation near EOF.
    #[test]
    fn swar_varint_matches_scalar_on_random_buffers(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        start in 0usize..16,
    ) {
        let start = start.min(bytes.len());
        assert_varint_equivalence(&bytes, start);
    }

    /// Buffers biased toward continuation bytes (bit 7 set) exercise the
    /// no-terminator-in-word path and the overflow error much more often
    /// than uniform bytes do.
    #[test]
    fn swar_varint_matches_scalar_on_continuation_heavy_buffers(
        bytes in proptest::collection::vec(0x80u8..=0xff, 0..32),
        tail in proptest::collection::vec(any::<u8>(), 0..4),
        start in 0usize..8,
    ) {
        let mut buf = bytes;
        buf.extend_from_slice(&tail);
        let start = start.min(buf.len());
        assert_varint_equivalence(&buf, start);
    }

    /// Encoded varints straddling the 8-byte word boundary: a junk prefix
    /// of every length 0..16 shifts the encoding across every alignment,
    /// so the terminator lands before, on, and after the word edge.
    #[test]
    fn swar_varint_decodes_encodings_at_every_alignment(
        prefix_len in 0usize..16,
        values in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let mut w = ByteWriter::new();
        for _ in 0..prefix_len {
            w.put_u8(0xff); // junk continuation bytes, skipped via seek
        }
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut fast = ByteReader::new(&bytes);
        let mut slow = ByteReader::new(&bytes);
        fast.seek(prefix_len);
        slow.seek(prefix_len);
        for &v in &values {
            prop_assert_eq!(fast.get_varint().unwrap(), v);
            prop_assert_eq!(slow.get_varint_scalar().unwrap(), v);
            prop_assert_eq!(fast.position(), slow.position());
        }
        prop_assert!(fast.is_at_end());
    }

    /// Truncate a valid stream at EVERY byte offset: both paths must
    /// return identical results and never read past the buffer (the
    /// truncated slice is all they are given, so an out-of-bounds read
    /// would panic, not just misbehave).
    #[test]
    fn swar_varint_handles_truncation_at_every_offset(
        values in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert_varint_equivalence(&bytes[..cut], 0);
        }
    }

    /// `skip_past_zero_byte`'s word scan against a byte-at-a-time
    /// reference: same cursor on success, same error and end-position on
    /// a zero-free buffer.
    #[test]
    fn swar_zero_scan_matches_scalar(
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        start in 0usize..16,
    ) {
        let start = start.min(bytes.len());
        let mut fast = ByteReader::new(&bytes);
        fast.seek(start);
        let got = fast.skip_past_zero_byte();
        // Scalar reference: position just past the first zero byte.
        match bytes[start..].iter().position(|&b| b == 0) {
            Some(i) => {
                prop_assert_eq!(got, Ok(()));
                prop_assert_eq!(fast.position(), start + i + 1);
            }
            None => {
                prop_assert_eq!(got, Err(CodecError::UnexpectedEof));
                prop_assert_eq!(fast.position(), bytes.len());
            }
        }
    }
}

/// The four corner encodings the SWAR path special-cases: one byte,
/// exactly eight bytes (terminator in the last lane of the first word),
/// nine bytes (terminator just past the word), and the 10-byte maximum.
#[test]
fn swar_varint_word_boundary_corners() {
    for n_bytes in [1usize, 2, 7, 8, 9, 10] {
        // Smallest value needing exactly `n_bytes`: 2^(7*(n-1)), except
        // n=1 which is 0. u64::MAX needs the full 10 bytes.
        let v = if n_bytes == 1 {
            0u64
        } else if n_bytes == 10 {
            u64::MAX
        } else {
            1u64 << (7 * (n_bytes - 1))
        };
        let mut w = ByteWriter::new();
        w.put_varint(v);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), n_bytes, "encoding width for {v}");
        let mut fast = ByteReader::new(&bytes);
        let mut slow = ByteReader::new(&bytes);
        assert_eq!(fast.get_varint().unwrap(), v);
        assert_eq!(slow.get_varint_scalar().unwrap(), v);
        assert_eq!(fast.position(), n_bytes);
        assert_eq!(slow.position(), n_bytes);
    }
}

/// An 11th continuation byte must be rejected by both paths with the same
/// error and the same cursor, from every start alignment (so the SWAR
/// banked path and the pure-scalar tail both see it).
#[test]
fn swar_varint_overflow_equivalence_at_every_alignment() {
    for align in 0..9 {
        let mut buf = vec![0xffu8; align];
        buf.extend_from_slice(&[0x80; 10]); // 10 continuation bytes
        buf.push(0x01); // terminator arrives one byte too late
        let mut fast = ByteReader::new(&buf);
        let mut slow = ByteReader::new(&buf);
        fast.seek(align);
        slow.seek(align);
        let a = fast.get_varint();
        let b = slow.get_varint_scalar();
        assert_eq!(a, b, "overflow divergence at alignment {align}");
        assert!(matches!(a, Err(CodecError::CorruptEntropy(_))), "{a:?}");
        assert_eq!(fast.position(), slow.position());
    }
}
