#![forbid(unsafe_code)]
//! `vdsms-lint` — run the workspace static-analysis gate.
//!
//! ```text
//! vdsms-lint [--json] [--root DIR]
//! vdsms-lint --explain <rule>
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage/config error.

use std::process::ExitCode;

const USAGE: &str = "\
vdsms-lint — workspace static-analysis gate

USAGE:
  vdsms-lint [--json] [--root DIR]
  vdsms-lint --explain <rule>

  --json          machine-readable JSON report on stdout
  --root DIR      workspace root (default: nearest ancestor with lint.toml)
  --explain RULE  print a rule's rationale, example and suppression syntax

Rules and per-crate configuration live in <root>/lint.toml.
Mark a streaming entry point (root of the hot-path analyses) with:
  // vdsms-lint: entry
or scope it to a subset of the hot-path rules:
  // vdsms-lint: entry(no-panic-hot-path)
Suppress a finding inline with a mandatory reason:
  // vdsms-lint: allow(rule-id) reason=\"why this occurrence is sound\"
";

fn explain_rule(id: &str) -> ExitCode {
    match vdsms_lint::rules::explain(id) {
        Some(info) => {
            println!("{} — {}\n", info.id, info.summary);
            println!("rationale:\n  {}\n", info.rationale);
            println!("example:");
            for line in info.example.lines() {
                println!("  {line}");
            }
            println!("\nsuppression:\n  {}", info.suppression);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("error: unknown rule `{id}`; registered rules:");
            for info in vdsms_lint::rules::registry() {
                eprintln!("  {} — {}", info.id, info.summary);
            }
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--explain" => {
                i += 1;
                return match args.get(i) {
                    Some(id) => explain_rule(id),
                    None => {
                        eprintln!("error: --explain needs a rule id\n{USAGE}");
                        ExitCode::from(2)
                    }
                };
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(v) => root = Some(v.clone()),
                    None => {
                        eprintln!("error: --root needs a value\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = match root {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match vdsms_lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no lint.toml found between {} and /", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match vdsms_lint::lint_workspace_with_default_config(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
