//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — on
//! a simple measure-and-report harness: per benchmark it warms up briefly,
//! then takes `sample_size` timed samples of an auto-calibrated batch and
//! reports the median time per iteration (plus throughput when configured).
//! Running with `--test` (as `cargo test` does for `harness = false` bench
//! targets) executes each benchmark once for correctness and skips timing.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// A parameter-only id (upstream: `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// How much setup output to batch per timed run (upstream tuning hint;
/// this harness re-runs setup per iteration regardless, so the variants
/// only document intent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per sample batch.
    PerIteration,
}

/// The timing loop handed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    /// Filled by `iter`: (total time, iterations).
    result: &'a mut Option<(Duration, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Calibrate + sample.
    Measure { sample_size: usize },
    /// Run the routine once (used under `cargo test`).
    Check,
}

impl Bencher<'_> {
    /// Time `routine`, storing the median sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Check => {
                std_black_box(routine());
                *self.result = Some((Duration::ZERO, 1));
            }
            Mode::Measure { sample_size } => {
                // Calibrate a batch size aiming at ~2ms per sample.
                let mut batch = 1u64;
                loop {
                    let t = Instant::now();
                    for _ in 0..batch {
                        std_black_box(routine());
                    }
                    let elapsed = t.elapsed();
                    if elapsed >= Duration::from_millis(2) || batch >= 1 << 24 {
                        break;
                    }
                    batch = (batch * 2).max(1);
                }
                let mut samples: Vec<Duration> = (0..sample_size.max(3))
                    .map(|_| {
                        let t = Instant::now();
                        for _ in 0..batch {
                            std_black_box(routine());
                        }
                        t.elapsed()
                    })
                    .collect();
                samples.sort_unstable();
                let median = samples[samples.len() / 2];
                *self.result = Some((median, batch));
            }
        }
    }

    /// Time `routine` over inputs produced by `setup`; only the routine is
    /// timed. The upstream batching strategies collapse to
    /// setup-per-iteration here, which over-times nothing (setup runs
    /// outside the clock) at the cost of more setup calls.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Check => {
                std_black_box(routine(setup()));
                *self.result = Some((Duration::ZERO, 1));
            }
            Mode::Measure { sample_size } => {
                // Calibrate as in `iter`, but time only the routine.
                let mut batch = 1u64;
                let timed = |batch: u64, setup: &mut S, routine: &mut R| {
                    let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
                    let t = Instant::now();
                    for input in inputs {
                        std_black_box(routine(input));
                    }
                    t.elapsed()
                };
                loop {
                    let elapsed = timed(batch, &mut setup, &mut routine);
                    if elapsed >= Duration::from_millis(2) || batch >= 1 << 24 {
                        break;
                    }
                    batch = (batch * 2).max(1);
                }
                let mut samples: Vec<Duration> = (0..sample_size.max(3))
                    .map(|_| timed(batch, &mut setup, &mut routine))
                    .collect();
                samples.sort_unstable();
                let median = samples[samples.len() / 2];
                *self.result = Some((median, batch));
            }
        }
    }

    /// `iter_batched` with a by-reference routine.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (upstream default 100; this harness defaults
    /// lower because each sample is a calibrated batch).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Configure derived throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (formatting no-op).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to benchmark functions.
pub struct Criterion {
    check_only: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs harness=false bench binaries with `--test`;
        // plain positional args act as name filters like upstream.
        let mut check_only = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => check_only = true,
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { check_only, filter }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, 10, None, |b| f(b));
        self
    }

    fn run_one<F>(
        &mut self,
        name: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mode = if self.check_only {
            Mode::Check
        } else {
            Mode::Measure { sample_size }
        };
        let mut result = None;
        f(&mut Bencher { mode, result: &mut result });
        let Some((total, iters)) = result else {
            println!("{name:<52} (no measurement: iter was not called)");
            return;
        };
        if self.check_only {
            println!("{name:<52} ok (check mode)");
            return;
        }
        let per_iter = total.as_nanos() as f64 / iters as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / per_iter * 1e9 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.0} elem/s", n as f64 / per_iter * 1e9)
            }
            None => String::new(),
        };
        println!("{name:<52} {:>12}/iter{rate}", format_ns(per_iter));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_mode_runs_once_and_measure_reports() {
        let mut c = Criterion { check_only: true, filter: None };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);

        let mut c = Criterion { check_only: false, filter: None };
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { check_only: true, filter: Some("nomatch".into()) };
        let mut runs = 0u32;
        c.bench_function("something", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 0);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(2_500.0), "2.50 µs");
        assert_eq!(format_ns(3_000_000.0), "3.00 ms");
    }
}
