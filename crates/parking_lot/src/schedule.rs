//! Deterministic schedule exploration — a loom-lite controller for the
//! workspace's concurrency tests.
//!
//! The shim's lock operations (and `vdsms_core::sync`'s channel
//! operations) each call [`yield_point`] before touching the underlying
//! primitive. Outside a test session this is one relaxed atomic load and
//! a branch — the production fast path. Inside a session (between
//! [`begin`] and [`ScheduleGuard::finish`]) every yield point consults a
//! seeded controller that decides, deterministically from the seed and
//! the arrival order of yield points, whether the calling thread gives
//! up the CPU here — perturbing the interleaving the OS scheduler would
//! have produced. Exploring a few hundred seeds walks the program
//! through a few hundred *different* interleavings of the same logical
//! execution, which is what surfaces ordering bugs (a barrier that does
//! not wait, a drain that races a producer) that a single lucky
//! scheduling hides.
//!
//! Three properties make failures actionable:
//!
//! * **Seeded determinism** — every decision is derived from the session
//!   seed by a SplitMix64 chain, so re-running a failing seed replays
//!   the same decision sequence against the same arrival order.
//! * **Bounded preemption** — at most `max_preemptions` yields fire per
//!   session (the loom/CHESS insight: most concurrency bugs manifest
//!   within a small number of preemptions, and the bound keeps each
//!   seeded run fast).
//! * **Trace capture** — every yield-point visit is recorded (site,
//!   thread, decision); [`ScheduleGuard::finish`] returns the trace so a
//!   failing test can print the interleaving it died under.
//!
//! The controller deliberately uses `std::sync` primitives internally:
//! instrumenting itself with itself would recurse. (`lock-discipline`
//! is off for this crate — see `lint.toml`.)

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Fast-path gate: checked with one relaxed load per yield point.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Serializes sessions: `begin` in one test blocks until the session of
/// another test (sharing this process) has finished.
static SESSION: Mutex<()> = Mutex::new(());

/// The active session's controller state (`None` outside a session).
static STATE: Mutex<Option<State>> = Mutex::new(None);

/// Traces longer than this stop recording (decisions continue): bounds
/// memory for scenarios with very chatty yield points.
const TRACE_CAP: usize = 4096;

/// One yield-point visit, as recorded in the session trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The instrumented operation (`"mutex.lock"`, `"chan.recv"`, …).
    pub site: &'static str,
    /// Name of the visiting thread (or its anonymous id).
    pub thread: String,
    /// Whether the controller made this thread yield here.
    pub yielded: bool,
}

struct State {
    rng: u64,
    /// Remaining preemption budget; a zero budget records but never
    /// yields.
    budget: u32,
    trace: Vec<Step>,
}

impl State {
    /// SplitMix64: one fresh decision word per yield-point visit.
    fn next(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Exclusive handle on the running session. Ending it (via
/// [`ScheduleGuard::finish`] or `Drop`) disables every yield point
/// again and releases the session lock for the next test.
pub struct ScheduleGuard {
    session: Option<MutexGuard<'static, ()>>,
}

/// Start a schedule-exploration session.
///
/// Blocks until any session owned by another test ends, installs a
/// controller seeded with `seed`, and arms the yield points. At most
/// `max_preemptions` yields will fire over the whole session.
pub fn begin(seed: u64, max_preemptions: u32) -> ScheduleGuard {
    let session = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    *STATE.lock().unwrap_or_else(|e| e.into_inner()) = Some(State {
        // Pre-mix so consecutive raw seeds (0, 1, 2, …) diverge from the
        // first decision, not after a warm-up.
        rng: seed ^ 0x6a09_e667_f3bc_c909,
        budget: max_preemptions,
        trace: Vec::new(),
    });
    ENABLED.store(true, Ordering::SeqCst);
    ScheduleGuard { session: Some(session) }
}

impl ScheduleGuard {
    /// End the session and return its trace — the interleaving decisions
    /// actually taken, in arrival order.
    pub fn finish(mut self) -> Vec<Step> {
        self.end()
    }

    fn end(&mut self) -> Vec<Step> {
        ENABLED.store(false, Ordering::SeqCst);
        let trace = STATE
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .map(|s| s.trace)
            .unwrap_or_default();
        self.session = None;
        trace
    }
}

impl Drop for ScheduleGuard {
    fn drop(&mut self) {
        if self.session.is_some() {
            self.end();
        }
    }
}

/// The instrumentation hook: called by the shim's lock operations and
/// `vdsms_core::sync`'s channel operations before they act.
///
/// Disabled (the production case): one relaxed load, no contention, no
/// allocation. Enabled: draws one decision word from the session
/// controller, records the visit, and — within the preemption budget,
/// with probability 1/4 per visit — makes this thread `yield_now` one
/// to three times, handing the OS an explicit chance to run a peer at
/// exactly this point in the protocol.
pub fn yield_point(site: &'static str) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let spins = {
        let mut slot = STATE.lock().unwrap_or_else(|e| e.into_inner());
        // A thread can pass the gate just as the session ends; the state
        // being gone means the session is over — nothing to do.
        let Some(state) = slot.as_mut() else { return };
        let roll = state.next();
        let yielded = state.budget > 0 && roll % 4 == 0;
        if yielded {
            state.budget -= 1;
        }
        if state.trace.len() < TRACE_CAP {
            state.trace.push(Step { site, thread: thread_label(), yielded });
        }
        if yielded {
            1 + (roll >> 8) % 3
        } else {
            0
        }
    };
    // Yield outside the controller lock, so a descheduled thread never
    // blocks its peers' yield points.
    for _ in 0..spins {
        std::thread::yield_now();
    }
}

/// Render a trace for a failure report: one `site @ thread [yield]`
/// line per step.
pub fn format_trace(trace: &[Step]) -> String {
    let mut out = String::new();
    for (i, step) in trace.iter().enumerate() {
        out.push_str(&format!(
            "  #{i:<4} {site:<18} @ {thread}{mark}\n",
            site = step.site,
            thread = step.thread,
            mark = if step.yielded { "  [yield]" } else { "" },
        ));
    }
    out
}

fn thread_label() -> String {
    let current = std::thread::current();
    match current.name() {
        Some(name) => name.to_string(),
        None => format!("{:?}", current.id()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_yield_points_are_inert() {
        // No session: must not record, must not panic.
        yield_point("mutex.lock");
        assert!(!ENABLED.load(Ordering::SeqCst));
    }

    #[test]
    fn session_records_and_replays_deterministically() {
        let run = || {
            let guard = begin(42, 8);
            for _ in 0..20 {
                yield_point("mutex.lock");
                yield_point("chan.send");
            }
            guard.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 40);
        assert_eq!(a, b, "same seed + same arrival order = same decisions");
        assert!(a.iter().filter(|s| s.yielded).count() <= 8, "budget bounds preemptions");
        // Different seeds explore different interleavings.
        let guard = begin(43, 8);
        for _ in 0..20 {
            yield_point("mutex.lock");
            yield_point("chan.send");
        }
        let c = guard.finish();
        assert_ne!(
            a.iter().map(|s| s.yielded).collect::<Vec<_>>(),
            c.iter().map(|s| s.yielded).collect::<Vec<_>>(),
            "seed 43 must not replay seed 42's decisions"
        );
    }

    #[test]
    fn finish_disarms_the_yield_points() {
        let guard = begin(7, 4);
        yield_point("rwlock.write");
        let trace = guard.finish();
        assert_eq!(trace.len(), 1);
        yield_point("rwlock.write"); // after finish: inert
        let trace = begin(7, 4).finish();
        assert!(trace.is_empty(), "post-session visits must not leak into the next trace");
    }

    #[test]
    fn trace_formats_with_site_thread_and_decision() {
        let guard = begin(1, 64);
        yield_point("condvar.wait");
        let trace = guard.finish();
        let text = format_trace(&trace);
        assert!(text.contains("condvar.wait"), "{text}");
        assert!(text.contains("#0"), "{text}");
    }
}
