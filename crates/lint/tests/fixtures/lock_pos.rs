// Fixture: std locks and nested acquisition. Expected findings:
// lock-discipline x3 (std::sync::Mutex in the use-group, std::sync::Condvar
// in a type path, nested .lock() while a guard is live).
use std::sync::{Arc, Mutex};

fn wait(c: &std::sync::Condvar) {}

fn transfer(a: &Shared, b: &Shared) {
    let from = a.inner.lock();
    let to = b.inner.lock();
    to.push(from.pop());
}
