// Fixture: ordered collections and test-only hash maps are fine.
use std::collections::{BTreeMap, BTreeSet};

struct Index {
    rows: BTreeMap<u64, Vec<u32>>,
    seen: BTreeSet<u64>,
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn hash_collections_are_fine_in_tests() {
        let _ = HashSet::<u32>::new();
    }
}
