// guard-across-blocking positive fixture. Expected findings: 4 —
// a guard held across `.recv()`, across `.join()`, across a
// bounded-channel send, and across a call whose callee transitively
// blocks (witness chain).

use std::sync::mpsc::{self, Receiver};
use std::sync::Mutex;

// The transitive sink: blocks on `.recv()` but takes no lock itself.
fn wait_for_ack(rx: &Receiver<u64>) -> u64 {
    rx.recv().unwrap()
}

pub fn recv_under_lock(m: &Mutex<u64>, rx: &Receiver<u64>) -> u64 {
    let g = m.lock();
    let v = rx.recv().unwrap();
    drop(g);
    v
}

pub fn join_under_lock(m: &Mutex<u64>, h: std::thread::JoinHandle<()>) {
    let g = m.lock();
    h.join();
    drop(g);
}

pub fn bounded_send_under_lock(m: &Mutex<u64>) {
    let (tx, rx) = mpsc::sync_channel(4);
    let g = m.lock();
    tx.send(1).unwrap();
    drop(g);
    rx.recv().unwrap();
}

pub fn transitive_block(m: &Mutex<u64>, rx: &Receiver<u64>) -> u64 {
    let g = m.lock();
    let v = wait_for_ack(rx);
    drop(g);
    v
}
