//! # vdsms-baselines — the paper's comparison methods
//!
//! Section VI-E compares the proposed technique against two published
//! subsequence-matching approaches, re-implemented here from scratch:
//!
//! * **Seq** — Hampapur et al., "Comparison of sequence matching
//!   techniques for video copy detection": the query slides over the data
//!   sequence with a fixed-size window and the dissimilarity is the
//!   average distance between temporally *aligned* frame pairs. Fast, but
//!   entirely dependent on temporal order.
//! * **Warp** — Chiu et al., "A time warping based approach for video copy
//!   detection": dynamic time warping with a Sakoe–Chiba band of width
//!   `r`, tolerating *local* temporal variations (slow motion, dropped
//!   frames) but not global re-ordering.
//!
//! Per the paper's fair-comparison setup, both baselines consume the same
//! compressed-domain per-frame feature vectors as the proposed method, and
//! the sliding gap equals the basic-window size.

#![forbid(unsafe_code)]

pub mod distance;
pub mod matcher;

pub use distance::{banded_dtw, l1, seq_distance};
pub use matcher::{BaselineKind, BaselineMatcher, BaselineQuery};
