//! Detector configuration (the paper's Table I parameters plus method
//! selection).

/// Candidate combination order (Section IV-A, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Order {
    /// Maintain every suffix candidate of length `1..⌈λL/w⌉` windows; each
    /// arriving basic window extends them all. Most accurate, `O(⌈λL/w⌉)`
    /// combinations per window.
    Sequential,
    /// Maintain `O(log)` geometric segments (a binary counter) and test
    /// only the `⌈log i⌉` suffixes they induce. Cheaper, may miss matches
    /// whose boundaries fall between the tested suffix lengths.
    Geometric,
}

/// Sketch representation used for candidate-vs-query comparisons
/// (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Raw K-min-hash arrays; combining is an element-wise `min` over `K`
    /// u64 values and comparison counts equal positions.
    Sketch,
    /// 2K-bit relation signatures (Definition 3); combining is a bitwise
    /// OR over `K/32` words and comparison is two popcounts.
    Bit,
}

/// Full configuration of a [`crate::Detector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Number of min-hash functions `K` (paper default 800, swept
    /// 100–3000).
    pub k: usize,
    /// Seed of the min-hash family. Queries and streams must be sketched
    /// with the same `(k, hash_seed)`.
    pub hash_seed: u64,
    /// Similarity threshold `δ` (paper default 0.7, swept 0.5–0.9).
    pub delta: f64,
    /// Tempo-scaling bound `λ`: candidates longer than `λL` frames for a
    /// length-`L` query are expired (paper cites its ref. 28 for λ ≤ 2).
    pub lambda: f64,
    /// Basic window size `w`, in *key frames* (the paper's `w` is in
    /// seconds; multiply by the stream's key-frame rate).
    pub window_keyframes: usize,
    /// Candidate combination order.
    pub order: Order,
    /// Candidate representation.
    pub representation: Representation,
    /// Whether to use the Hash–Query index (Section V-C) to find related
    /// queries, instead of comparing every window against every query.
    pub use_index: bool,
    /// Whether Lemma-2 pruning is applied (always on in the paper; the
    /// ablation experiment switches it off to measure its contribution).
    pub enable_pruning: bool,
    /// Number of fleet shards (worker threads). `1` keeps the serial
    /// [`crate::Fleet`]; `> 1` selects the sharded
    /// [`crate::ParallelFleet`] when constructing via
    /// [`crate::AnyFleet::new`]. Detection results are independent of the
    /// shard count.
    pub shards: usize,
}

/// One detector axis point of an evaluation sweep: candidate combination
/// order × whether the Hash–Query index is used. The robustness attack
/// matrix (and any future sweep) names its detector columns with these,
/// so CLI flags, bench tables, and committed floor files all agree on
/// the spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorVariant {
    /// Sequential order with the Hash–Query index (the paper's default).
    Seq,
    /// Geometric order with the Hash–Query index.
    Geo,
    /// Sequential order, exhaustive comparison (no index).
    SeqNoIndex,
    /// Geometric order, exhaustive comparison (no index).
    GeoNoIndex,
}

impl DetectorVariant {
    /// Every variant, in canonical (floor-file) order.
    pub const ALL: [DetectorVariant; 4] = [
        DetectorVariant::Seq,
        DetectorVariant::Geo,
        DetectorVariant::SeqNoIndex,
        DetectorVariant::GeoNoIndex,
    ];

    /// Stable name used in CLI flags, reports, and floor files.
    pub fn name(self) -> &'static str {
        match self {
            DetectorVariant::Seq => "seq",
            DetectorVariant::Geo => "geo",
            DetectorVariant::SeqNoIndex => "seq-noindex",
            DetectorVariant::GeoNoIndex => "geo-noindex",
        }
    }

    /// Parse a [`DetectorVariant::name`] back.
    pub fn parse(s: &str) -> Option<DetectorVariant> {
        DetectorVariant::ALL.into_iter().find(|v| v.name() == s)
    }

    /// Apply this variant's order / index choice to a base configuration.
    pub fn configure(self, base: DetectorConfig) -> DetectorConfig {
        let (order, use_index) = match self {
            DetectorVariant::Seq => (Order::Sequential, true),
            DetectorVariant::Geo => (Order::Geometric, true),
            DetectorVariant::SeqNoIndex => (Order::Sequential, false),
            DetectorVariant::GeoNoIndex => (Order::Geometric, false),
        };
        DetectorConfig { order, use_index, ..base }
    }
}

/// Default min-hash family seed.
pub const DEFAULT_HASH_SEED: u64 = 0x5ce7_c4ed_0000_2008;

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            k: 800,
            hash_seed: DEFAULT_HASH_SEED,
            delta: 0.7,
            lambda: 2.0,
            window_keyframes: 10,
            order: Order::Sequential,
            representation: Representation::Bit,
            use_index: true,
            enable_pruning: true,
            shards: 1,
        }
    }
}

impl DetectorConfig {
    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics on invalid parameters (zero `K`, `δ ∉ (0, 1]`, `λ < 1`,
    /// zero window size).
    pub fn validate(&self) {
        assert!(self.k >= 1, "K must be >= 1");
        assert!(self.delta > 0.0 && self.delta <= 1.0, "δ must be in (0, 1]");
        assert!(self.lambda >= 1.0, "λ must be >= 1");
        assert!(self.window_keyframes >= 1, "window size must be >= 1");
        assert!(self.shards >= 1, "shard count must be >= 1");
    }

    /// The δ used for Lemma-2 pruning: the configured δ when pruning is
    /// enabled, else 0 (at δ = 0 the bound `n_lt > K` is unsatisfiable, so
    /// nothing is ever pruned).
    pub fn pruning_delta(&self) -> f64 {
        if self.enable_pruning {
            self.delta
        } else {
            0.0
        }
    }

    /// Maximum candidate length in basic windows for a query of
    /// `query_keyframes` key frames: `⌈λ·L / w⌉`.
    pub fn max_windows_for(&self, query_keyframes: usize) -> usize {
        ((self.lambda * query_keyframes as f64) / self.window_keyframes as f64).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table1() {
        let c = DetectorConfig::default();
        assert_eq!(c.k, 800);
        assert_eq!(c.delta, 0.7);
        assert_eq!(c.lambda, 2.0);
        assert_eq!(c.order, Order::Sequential);
        assert_eq!(c.representation, Representation::Bit);
        assert!(c.use_index);
        c.validate();
    }

    #[test]
    fn max_windows_rounds_up() {
        let c = DetectorConfig { window_keyframes: 10, lambda: 2.0, ..Default::default() };
        assert_eq!(c.max_windows_for(60), 12); // 2*60/10
        assert_eq!(c.max_windows_for(61), 13); // ceil(12.2)
        assert_eq!(c.max_windows_for(5), 1);
    }

    #[test]
    #[should_panic(expected = "δ must be in")]
    fn invalid_delta_rejected() {
        DetectorConfig { delta: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "λ must be")]
    fn invalid_lambda_rejected() {
        DetectorConfig { lambda: 0.5, ..Default::default() }.validate();
    }

    #[test]
    fn detector_variant_names_round_trip() {
        for v in DetectorVariant::ALL {
            assert_eq!(DetectorVariant::parse(v.name()), Some(v));
        }
        assert_eq!(DetectorVariant::parse("bogus"), None);
    }

    #[test]
    fn detector_variant_configures_order_and_index() {
        let base = DetectorConfig::default();
        let geo = DetectorVariant::GeoNoIndex.configure(base);
        assert_eq!(geo.order, Order::Geometric);
        assert!(!geo.use_index);
        assert_eq!(geo.k, base.k, "other fields pass through");
        let seq = DetectorVariant::Seq.configure(base);
        assert_eq!(seq.order, Order::Sequential);
        assert!(seq.use_index);
    }
}
