//! The per-file token rules, the rule registry (ids + explanations),
//! and inline-suppression handling.
//!
//! ## Rule catalog (v3)
//!
//! Per-file token rules (this module):
//!
//! | id | guards against |
//! |---|---|
//! | `deterministic-iteration` | `HashMap` / `HashSet` (and `hash_map` / `hash_set` paths) whose iteration order could leak into detections, stats or serialized output |
//! | `no-wall-clock` | `SystemTime::now` / `Instant::now` outside bench/CLI timing — wall-clock reads break replayable detection |
//! | `lock-discipline` | `std::sync::{Mutex, RwLock, Condvar}` — the workspace mandates the `parking_lot` shim (panic-free guards, no poisoning) |
//! | `unsafe-audit` | `unsafe` blocks without an adjacent `// SAFETY:` comment; crate roots missing `#![forbid(unsafe_code)]` |
//!
//! Workspace analyses (AST + call graph + dataflow, in [`crate::flow`]):
//!
//! | id | guards against |
//! |---|---|
//! | `no-panic-hot-path` | panic sites reachable from a `// vdsms-lint: entry` function — diagnostics name the call chain |
//! | `no-alloc-hot-path` | heap allocation on the same hot set (growth methods, allocating constructors, `vec!` / `format!`) |
//! | `lock-order` | cycles in the static lock-acquisition graph (deadlock hazard) — both witness chains reported |
//! | `no-unchecked-arith` | bare `+ - * <<` on values tainted by `get_*` / `read_*` stream reads (codec paths) |
//! | `float-determinism` | `partial_cmp` in production code — NaN-unstable ordering; use `total_cmp` |
//! | `taint-unchecked-flow` | untrusted bytes/lengths reaching slice indexing, capacity reservation or loop bounds with no bounds check — interprocedural, with witness chains |
//! | `loop-progress` | `while`/`loop` loops on hot or recovery paths with no provably advancing cursor (livelock hazard) |
//! | `no-swallowed-error` | `Result`s discarded via `let _ =` or statement-`.ok()` without a reasoned `allow` |
//! | `shared-state-discipline` | values captured by spawned closures without synchronization (`Arc<RefCell/Cell>`, `Rc`, `static mut`) — witness chain spawn-site → access |
//! | `guard-across-blocking` | lock guards held across `.recv()`, zero-arg `.join()`, bounded-channel `send` or any transitively-blocking call (deadlock shape `lock-order` can't see) |
//! | `channel-protocol` | channel misuse: send after the receiver was dropped, a one-shot reply `sync_channel(1)` sent more than once, a bare-statement `send` whose `Result` vanishes |
//!
//! A finding on a given line is suppressed by an inline directive on the
//! same line or the line above:
//!
//! ```text
//! // vdsms-lint: allow(rule-id) reason="why this occurrence is sound"
//! ```
//!
//! The reason is mandatory; a directive without one is itself reported
//! (rule `invalid-suppression`, which cannot be suppressed). The only
//! other directive is `// vdsms-lint: entry`, which marks the function
//! below it as a hot-path entry point; the scoped form
//! `entry(no-panic-hot-path)` seeds only the named hot-path rule, for
//! entries (batch evaluation, report generation) that must not panic
//! but are allowed to allocate.

use crate::config::{RuleSet, KNOWN_KEYS};
use crate::diag::Diagnostic;
use crate::lexer::{Comment, LexedFile, TokenKind};
use crate::SourceFile;

/// Rule id: panic sites on the interprocedural hot path.
pub const NO_PANIC: &str = "no-panic-hot-path";
/// Rule id: heap allocation on the interprocedural hot path.
pub const NO_ALLOC: &str = "no-alloc-hot-path";
/// Rule id: order-dependent collections forbidden.
pub const DET_ITER: &str = "deterministic-iteration";
/// Rule id: wall-clock reads forbidden.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule id: std locks forbidden (parking_lot shim only).
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule id: lock-acquisition-order cycles (deadlock hazard).
pub const LOCK_ORDER: &str = "lock-order";
/// Rule id: unchecked arithmetic on untrusted stream bytes.
pub const NO_UNCHECKED_ARITH: &str = "no-unchecked-arith";
/// Rule id: NaN-unstable float comparisons.
pub const FLOAT_DET: &str = "float-determinism";
/// Rule id: untrusted stream bytes reaching index/capacity/bound sinks.
pub const TAINT_FLOW: &str = "taint-unchecked-flow";
/// Rule id: hot-path loops must provably advance a cursor.
pub const LOOP_PROGRESS: &str = "loop-progress";
/// Rule id: silently discarded `Result`s.
pub const NO_SWALLOWED_ERROR: &str = "no-swallowed-error";
/// Rule id: unsafe must be audited.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Rule id: spawned closures may only share synchronized state.
pub const SHARED_STATE: &str = "shared-state-discipline";
/// Rule id: no lock guard held across a blocking operation.
pub const GUARD_BLOCKING: &str = "guard-across-blocking";
/// Rule id: channel endpoint protocol violations.
pub const CHANNEL_PROTOCOL: &str = "channel-protocol";
/// Rule id: malformed suppression directives (not suppressible).
pub const INVALID_SUPPRESSION: &str = "invalid-suppression";

/// One registered rule with its operator-facing explanation
/// (`vdsms-lint --explain <id>`).
pub struct RuleInfo {
    /// Rule id as used in `lint.toml` and `allow(…)`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Why the rule exists (tied to the paper's continuous-monitoring
    /// guarantee or the workspace's determinism contract).
    pub rationale: &'static str,
    /// A bad → good example.
    pub example: &'static str,
    /// How to silence a legitimate occurrence.
    pub suppression: &'static str,
}

/// Every registered rule, in catalog order.
pub fn registry() -> &'static [RuleInfo] {
    const SUPPRESS: &str = "// vdsms-lint: allow(<rule>) reason=\"…\" on the line above (reason mandatory)";
    &[
        RuleInfo {
            id: NO_PANIC,
            summary: "no panic sites reachable from a streaming entry point",
            rationale: "The VDSMS must monitor broadcast streams continuously (Yan/Ooi/Zhou, ICDE 2008, §VI); a panic anywhere on the per-keyframe path is an outage. 'Hot' is computed, not declared: every function reachable in the workspace call graph from a `// vdsms-lint: entry` function (Detector::push_keyframe, the shard worker batch loop) is checked for `.unwrap()`, `.expect()`, `panic!`, `todo!`, `unimplemented!` and index-then-`.clone()`. Diagnostics print the call chain from the entry point.",
            example: "bad:  let sig = rel.sig_for(q).unwrap();\ngood: let Some(sig) = rel.sig_for(q) else { continue };",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: NO_ALLOC,
            summary: "no heap allocation on the steady-state hot path",
            rationale: "Sustained throughput requires the per-keyframe loop to run in pre-allocated scratch space: growth methods (push/insert/extend/collect/to_vec/clone/…), allocating constructors (Vec::with_capacity, Box::new, String::from) and macros (vec!, format!) are flagged in every hot-path function. Capacity-zero constructors (Vec::new, String::new, BTreeMap::new) are exempt: std guarantees they do not allocate, so the growth call is the site that matters. Amortized growth into a buffer whose capacity is reserved up front is legitimate — say so in an allow reason.",
            example: "bad:  let related = rel.related().to_vec();\ngood: for i in 0..rel.related_len() { let (q, n) = rel.related_at(i); … }",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: DET_ITER,
            summary: "no order-randomized collections in production code",
            rationale: "Detections and stats must be bit-identical at any shard count (the PR 1 equivalence guarantee) and across runs; HashMap/HashSet iteration order is randomized per process and leaks into anything it feeds. Use BTreeMap/BTreeSet or sort explicitly.",
            example: "bad:  streams: HashMap<StreamId, Detector>\ngood: streams: BTreeMap<StreamId, Detector>",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: NO_WALL_CLOCK,
            summary: "no wall-clock reads in detection code",
            rationale: "Replayable detection means the same bitstream always yields the same detections; SystemTime::now/Instant::now smuggle nondeterminism in. Timestamps are inputs, not observations. Bench/CLI timing is exempted per crate in lint.toml.",
            example: "bad:  let t0 = Instant::now();\ngood: fn push_keyframe(&mut self, frame_index: u64, …) // caller supplies time",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: LOCK_DISCIPLINE,
            summary: "parking_lot-shim locks only",
            rationale: "std::sync locks poison on panic, turning one shard's bug into every shard's outage, and their guards return Results that breed unwraps. The workspace mandates the parking_lot shim (panic-free guards).",
            example: "bad:  use std::sync::Mutex;\ngood: use parking_lot::Mutex;",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: LOCK_ORDER,
            summary: "no cycles in the lock-acquisition order",
            rationale: "Two threads acquiring the same two locks in opposite orders deadlock under the right interleaving — and a deadlocked shard silently stops monitoring its streams. The analysis builds the static lock graph (an edge A → B whenever B is acquired — directly or via any callee, by transitive summary — while a guard on A is held) and reports every cycle with both witness chains. Fix by choosing one global acquisition order or narrowing the first guard's scope.",
            example: "bad:  thread 1: sink.lock() then stats.write(); thread 2: stats.write() then sink.lock()\ngood: both threads: sink before stats, always",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: NO_UNCHECKED_ARITH,
            summary: "no bare arithmetic on untrusted stream bytes",
            rationale: "Codec inputs are attacker-controlled: a crafted varint or header must not overflow its way into a wrong length or a debug-build panic. Values returned by get_*/read_* methods are tainted (flowing through let-bindings); a bare + - * << on a tainted operand is flagged unless the operand passed through an explicit widening cast (as u64), a conversion call (u64::from(b)), or a wrapping_*/checked_*/saturating_* method.",
            example: "bad:  let len = hi << 8 | lo;            // hi, lo from get_u8()\ngood: let len = u32::from(hi) << 8 | u32::from(lo);",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: FLOAT_DET,
            summary: "no NaN-unstable float comparisons in detection code",
            rationale: "partial_cmp returns None on NaN: callers either unwrap (a hot-path panic) or fall back inconsistently, so candidate ranking can differ across runs or platforms. total_cmp is total, deterministic, and exactly as fast; integer keys are better still.",
            example: "bad:  scores.sort_by(|a, b| a.partial_cmp(b).unwrap());\ngood: scores.sort_by(|a, b| a.total_cmp(b));",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: TAINT_FLOW,
            summary: "no untrusted byte or length reaching an index/capacity/bound sink unchecked",
            rationale: "Attack-transformed streams put every decoded length and offset under adversary control: a crafted payload length that reaches slice indexing, Vec::with_capacity/reserve or a loop bound unchecked is an out-of-bounds panic or a multi-gigabyte allocation — either one stops continuous monitoring. The analysis taints values returned by get_*/read_* reads and *_len/*_count payload fields, follows them through let-bindings, returns and call arguments (interprocedurally, by per-function summary), and flags any sink with no intervening comparison, `contains` check, `min`/`clamp`, `try_into` or `checked_*` on the way. Diagnostics print the witness call chain from the source to the sink.",
            example: "bad:  let n = r.read_u32()? as usize; let mut v = Vec::with_capacity(n);\ngood: let n = r.read_u32()? as usize; if n > MAX_PAYLOAD { return Err(…) } let mut v = Vec::with_capacity(n);",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: LOOP_PROGRESS,
            summary: "every hot-path loop provably advances a cursor",
            rationale: "A `while`/`loop` on the streaming or corruption-recovery path that can iterate without consuming input is a livelock: the shard spins forever on one malformed frame and its streams silently stop being monitored — the paper's continuous-operation setting fails open. Loops reachable from a `// vdsms-lint: entry` function must contain a progress witness: a non-zero `+=`/`-=` on a cursor, a re-assignment derived from the cursor itself, or a draining call (`next`, `pop`, `recv`, `advance`, `read_*`, …). `for` loops are exempt (the iterator advances by construction). Scoped entries may use `entry(loop-progress)`.",
            example: "bad:  while self.pos < len { if !self.try_frame() { continue } }\ngood: while self.pos < len { if !self.try_frame() { self.pos += 1; } }",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: NO_SWALLOWED_ERROR,
            summary: "no silently discarded Results",
            rationale: "A discarded `Result` converts a detectable fault into silent data loss: `let _ = reply.send(stats)` drops a shard's statistics on a closed channel and nobody ever learns. `let _ = <call>` where the callee's declared return type is a `Result` (resolved through the workspace call graph) and statement-position `.ok()` are flagged; channel sends/receives are flagged unconditionally because their `Result` is always load-bearing. Handle the error, or document why it is ignorable with an allow reason — `?` and explicit matches are never flagged.",
            example: "bad:  let _ = reply.send(stats);\ngood: if reply.send(stats).is_err() { break } // requester hung up",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: SHARED_STATE,
            summary: "state crossing a spawn boundary must be synchronized",
            rationale: "Shards, snapshot publishers and (next) the serve daemon all hand state to spawned threads; the only sound vehicles are `Arc<Mutex/RwLock/Atomic…>` and channels. A closure that captures an `Arc<RefCell<…>>`/`Arc<Cell<…>>` smuggles unsynchronized interior mutability across threads, an `Rc` shares a non-atomic refcount, and a `static mut` is a data race by construction — rustc catches many of these, but macro-generated and cfg-gated code slips through, and the lint sees the shape regardless. Diagnostics print the witness chain: where the value was created, where the thread was spawned, and where the closure touches it.",
            example: "bad:  let cache = Arc::new(RefCell::new(map)); thread::spawn(move || cache.borrow_mut().insert(k, v));\ngood: let cache = Arc::new(Mutex::new(map)); thread::spawn(move || cache.lock().insert(k, v));",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: GUARD_BLOCKING,
            summary: "no lock guard held across a blocking operation",
            rationale: "A guard held across `.recv()`, a zero-arg `.join()` or a `send` on a bounded channel stalls every thread that wants the lock for as long as the blocked peer takes — and if the peer needs that same lock to make progress, the fleet deadlocks without any lock-order cycle for `lock-order` to see. The analysis replays each function's ordered lock events against its blocking sites and a transitive blocks-summary of its callees, so a guard held across a call that blocks three frames deeper is still caught; the diagnostic names the guard and the full call chain down to the blocking operation. `Condvar::wait` is exempt — waiting is the one blocking call that must hold its guard.",
            example: "bad:  let sink = self.sink.lock(); let batch = rx.recv()?; sink.push(batch);\ngood: let batch = rx.recv()?; self.sink.lock().push(batch);",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: CHANNEL_PROTOCOL,
            summary: "channel endpoints follow their protocol",
            rationale: "The fleet's command channels are its spine: a `send` after the matching receiver was dropped is guaranteed data loss, a reply `sync_channel(1)` sent more than once blocks the second send forever (the requester reads one reply and walks away), and a statement-position `send(…)` whose `Result` simply vanishes hides a hung-up peer. The analysis pairs each function's tuple-`let` channel bindings with its send/recv/drop sequence and flags the three shapes; shutdown paths that intentionally fire-and-forget should route through a best-effort helper and say so.",
            example: "bad:  let (reply, rx) = mpsc::sync_channel(1); for s in shards { reply.send(ack) }\ngood: one fresh reply channel per request, moved into the command",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: UNSAFE_AUDIT,
            summary: "every unsafe block audited, every crate root forbids unsafe",
            rationale: "The workspace is #![forbid(unsafe_code)] everywhere except the parking_lot shim (unsafe-allowed = true in lint.toml); any unsafe block that does exist must carry a // SAFETY: comment within 3 lines above explaining why it is sound.",
            example: "bad:  unsafe { p.read_volatile() }\ngood: // SAFETY: p is valid for reads by contract.\n      unsafe { p.read_volatile() }",
            suppression: SUPPRESS,
        },
        RuleInfo {
            id: INVALID_SUPPRESSION,
            summary: "malformed vdsms-lint directives are findings",
            rationale: "A typo'd allow would silently fail open (the finding it meant to suppress still fires) or silently fail closed (suppressing nothing, forever). Every `// vdsms-lint:` comment must parse: either `entry`, or `allow(known-rule) reason=\"non-empty\"`. This rule cannot be suppressed.",
            example: "bad:  // vdsms-lint: allow(no-panic-hot-path)\ngood: // vdsms-lint: allow(no-panic-hot-path) reason=\"index invariant: set at construction\"",
            suppression: "not suppressible — fix the directive",
        },
    ]
}

/// Look up a rule explanation by id.
pub fn explain(id: &str) -> Option<&'static RuleInfo> {
    registry().iter().find(|r| r.id == id)
}

/// Per-file lint result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Surviving diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a valid `allow` directive.
    pub suppressed: usize,
}

/// One raw token-rule finding, before rule-switch filtering. The full
/// set is computed unconditionally so it can live in a config-independent
/// summary cache; [`filter_token_findings`] applies the active switches.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenFinding {
    /// Rule id.
    pub rule: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Diagnostic message.
    pub message: String,
    /// Whether this is the crate-root `#![forbid(unsafe_code)]` finding,
    /// which `unsafe-allowed = true` waives (the other `unsafe-audit`
    /// findings are not waivable).
    pub root_forbid: bool,
}

/// Run every per-file token rule, unconditionally. The result depends
/// only on the file's bytes — rule switches are applied later by
/// [`filter_token_findings`], so the cache can store this verbatim.
pub fn token_findings(file: &SourceFile, lexed: &LexedFile) -> Vec<TokenFinding> {
    let mut findings: Vec<TokenFinding> = Vec::new();
    {
        let mut emit = |rule: &str, line: u32, col: u32, message: String| {
            findings.push(TokenFinding { rule: rule.to_string(), line, col, message, root_forbid: false });
        };
        rule_deterministic_iteration(lexed, &mut emit);
        rule_no_wall_clock(lexed, &mut emit);
        rule_lock_discipline(lexed, &mut emit);
        rule_unsafe_blocks(lexed, &mut emit);
        rule_static_mut(lexed, &mut emit);
    }
    if file.is_crate_root {
        // Tagged, so the filter can drop it when `unsafe-allowed` is set.
        let mut emit = |rule: &str, line: u32, col: u32, message: String| {
            findings.push(TokenFinding { rule: rule.to_string(), line, col, message, root_forbid: true });
        };
        rule_root_forbid(lexed, &mut emit);
    }
    findings
}

/// Apply rule switches to pre-computed findings and render diagnostics.
pub fn filter_token_findings(
    file: &SourceFile,
    findings: &[TokenFinding],
    rules: &RuleSet,
) -> Vec<Diagnostic> {
    let lines: Vec<&str> = file.source.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map(|s| s.trim().to_string()).unwrap_or_default()
    };
    findings
        .iter()
        .filter(|t| rules.enabled(&t.rule))
        .filter(|t| !(t.root_forbid && rules.enabled("unsafe-allowed")))
        .map(|t| Diagnostic {
            rule: t.rule.clone(),
            file: file.path.clone(),
            line: t.line,
            col: t.col,
            message: t.message.clone(),
            snippet: snippet(t.line),
        })
        .collect()
}

/// Run the per-file token rules on an already-lexed file; diagnostics
/// are raw (suppressions are the driver's second pass, so workspace
/// analyses share them).
pub fn token_rules(file: &SourceFile, lexed: &LexedFile, rules: &RuleSet) -> Vec<Diagnostic> {
    filter_token_findings(file, &token_findings(file, lexed), rules)
}

/// Lint one file in isolation: token rules + suppressions. The
/// workspace analyses need the whole workspace — use
/// [`crate::lint_sources`] for those.
pub fn check_file(file: &SourceFile, rules: &RuleSet) -> FileReport {
    let lexed = crate::lexer::lex(&file.source);
    let diags = token_rules(file, &lexed, rules);
    apply_suppressions(&file.path, &lexed.comments, diags)
}

/// Parse directives, silence covered findings, report malformed ones.
pub fn apply_suppressions(
    path: &str,
    comments: &[Comment],
    diags: Vec<Diagnostic>,
) -> FileReport {
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut report = FileReport::default();
    for c in comments {
        match parse_directive(c) {
            DirectiveParse::None => {}
            DirectiveParse::Valid(s) => suppressions.push(s),
            DirectiveParse::Invalid(message) => {
                report.diagnostics.push(Diagnostic {
                    rule: INVALID_SUPPRESSION.to_string(),
                    file: path.to_string(),
                    line: c.line,
                    col: 1,
                    message,
                    snippet: format!("//{}", c.text.trim_end()),
                });
            }
        }
    }
    for d in diags {
        let covered = suppressions.iter().any(|s| {
            s.rules.iter().any(|r| r == &d.rule)
                && (s.line == d.line || s.end_line + 1 == d.line)
        });
        if covered {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d);
        }
    }
    report.diagnostics.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    report
}

struct Suppression {
    rules: Vec<String>,
    line: u32,
    end_line: u32,
}

enum DirectiveParse {
    None,
    Valid(Suppression),
    Invalid(String),
}

/// Parse `vdsms-lint: allow(rule-a, rule-b) reason="…"` (or the `entry`
/// marker, which is consumed by the parser, not here) from a comment.
fn parse_directive(c: &Comment) -> DirectiveParse {
    let text = c.text.trim();
    let Some(rest) = text.strip_prefix("vdsms-lint:") else {
        return DirectiveParse::None;
    };
    let rest = rest.trim_start();
    if rest == "entry" {
        // Hot-path entry marker — valid, handled by the parser.
        return DirectiveParse::None;
    }
    if let Some(inner) = rest.strip_prefix("entry(").and_then(|r| r.strip_suffix(')')) {
        // Scoped entry marker: `entry(rule, …)` seeds only the named
        // hot-path rules. Consumed by the parser; validated here so a
        // typo'd rule id cannot silently produce a no-op marker.
        let scoped: Vec<&str> =
            inner.split(',').map(str::trim).filter(|r| !r.is_empty()).collect();
        if scoped.is_empty() {
            return DirectiveParse::Invalid("scoped entry marker lists no rules".to_string());
        }
        for r in &scoped {
            if !matches!(*r, NO_PANIC | NO_ALLOC | LOOP_PROGRESS) {
                return DirectiveParse::Invalid(format!(
                    "entry scope names `{r}`, which is not a hot-path rule (expected \
                     `{NO_PANIC}`, `{NO_ALLOC}` or `{LOOP_PROGRESS}`)"
                ));
            }
        }
        return DirectiveParse::None;
    }
    let Some(rest) = rest.strip_prefix("allow") else {
        return DirectiveParse::Invalid(format!(
            "unknown vdsms-lint directive `{}` (expected `entry`, `entry(hot-path-rule)` or \
             `allow(rule-id) reason=\"…\"`)",
            rest.split_whitespace().next().unwrap_or("")
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return DirectiveParse::Invalid("allow directive missing `(rule-id)`".to_string());
    };
    let Some((ids, rest)) = rest.split_once(')') else {
        return DirectiveParse::Invalid("allow directive missing closing `)`".to_string());
    };
    let rules: Vec<String> =
        ids.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return DirectiveParse::Invalid("allow directive lists no rules".to_string());
    }
    for r in &rules {
        if r == INVALID_SUPPRESSION {
            return DirectiveParse::Invalid("`invalid-suppression` cannot be suppressed".to_string());
        }
        if !KNOWN_KEYS.contains(&r.as_str()) {
            return DirectiveParse::Invalid(format!("allow directive names unknown rule `{r}`"));
        }
    }
    let rest = rest.trim_start();
    let Some(reason) = rest.strip_prefix("reason=") else {
        return DirectiveParse::Invalid(
            "allow directive missing mandatory `reason=\"…\"`".to_string(),
        );
    };
    let reason = reason.trim();
    let ok_reason = reason.len() > 2 && reason.starts_with('"') && reason[1..].contains('"');
    let body = reason.trim_matches('"').trim();
    if !ok_reason || body.is_empty() {
        return DirectiveParse::Invalid("allow reason must be a non-empty quoted string".to_string());
    }
    DirectiveParse::Valid(Suppression { rules, line: c.line, end_line: c.end_line })
}

/// `deterministic-iteration`: any appearance of an order-randomized
/// collection in production code.
fn rule_deterministic_iteration(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    for (i, tok) in lexed.code_tokens() {
        if lexed.is_test(i) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet" | "hash_map" | "hash_set")) = tok.ident() {
            emit(
                DET_ITER,
                tok.line,
                tok.col,
                format!("`{name}` iteration order is randomized and can leak into detections/stats/serialized output; use `BTreeMap`/`BTreeSet` or an explicit sort"),
            );
        }
    }
}

/// `no-wall-clock`: `SystemTime::now` / `Instant::now`.
fn rule_no_wall_clock(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if lexed.is_test(i) {
            continue;
        }
        if let Some(name @ ("SystemTime" | "Instant")) = t[i].ident() {
            if t.get(i + 1).is_some_and(|n| n.kind == TokenKind::PathSep)
                && t.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                emit(
                    NO_WALL_CLOCK,
                    t[i].line,
                    t[i].col,
                    format!("`{name}::now()` makes detection non-replayable; take timestamps as input (bench/CLI timing is exempted via lint.toml)"),
                );
            }
        }
    }
}

/// `lock-discipline`: std locks are forbidden (use the parking_lot
/// shim). Nested-acquisition analysis lives in [`crate::flow`] as the
/// interprocedural `lock-order` rule.
fn rule_lock_discipline(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if lexed.is_test(i) {
            continue;
        }
        if t[i].is_ident("std")
            && t.get(i + 1).is_some_and(|n| n.kind == TokenKind::PathSep)
            && t.get(i + 2).is_some_and(|n| n.is_ident("sync"))
        {
            // Scan to the end of the path / use statement for lock types.
            let mut j = i + 3;
            while j < t.len() && !t[j].is_punct(';') && !t[j].is_punct('=') {
                if let Some(name @ ("Mutex" | "RwLock" | "Condvar")) = t[j].ident() {
                    emit(
                        LOCK_DISCIPLINE,
                        t[j].line,
                        t[j].col,
                        format!("`std::sync::{name}` is forbidden; use the `parking_lot` shim (panic-free guards, no poisoning)"),
                    );
                }
                j += 1;
                if j - i > 64 {
                    break;
                }
            }
        }
    }
}

/// `shared-state-discipline` (token half): `static mut` is a data race
/// by construction. `&'static mut` is safe from false positives —
/// `'static` lexes as a lifetime, not an identifier.
fn rule_static_mut(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if lexed.is_test(i) {
            continue;
        }
        if t[i].is_ident("static") && t.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            let name = t.get(i + 2).and_then(|n| n.ident()).unwrap_or("_");
            emit(
                SHARED_STATE,
                t[i].line,
                t[i].col,
                format!("`static mut {name}` is unsynchronized global mutable state — any two threads touching it race; use an atomic, a lock, or pass the state explicitly"),
            );
        }
    }
}

/// `unsafe-audit` (block half): `unsafe` needs an adjacent `// SAFETY:`
/// comment.
fn rule_unsafe_blocks(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    for (i, tok) in lexed.code_tokens() {
        if lexed.is_test(i) || !tok.is_ident("unsafe") {
            continue;
        }
        let documented = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && c.end_line <= tok.line
                && tok.line.saturating_sub(c.end_line) <= 3
        });
        if !documented {
            emit(
                UNSAFE_AUDIT,
                tok.line,
                tok.col,
                "`unsafe` without an adjacent `// SAFETY:` comment (within 3 lines above)".to_string(),
            );
        }
    }
}

/// `unsafe-audit` (root half): crate roots need `#![forbid(unsafe_code)]`
/// unless exempted via `unsafe-allowed`.
fn rule_root_forbid(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    let t = &lexed.tokens;
    let has_forbid = (0..t.len()).any(|i| {
        t[i].is_punct('#')
            && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && t.get(i + 2).is_some_and(|n| n.is_punct('['))
            && t.get(i + 3).is_some_and(|n| n.is_ident("forbid"))
            && t.get(i + 4).is_some_and(|n| n.is_punct('('))
            && t.get(i + 5).is_some_and(|n| n.is_ident("unsafe_code"))
    });
    if !has_forbid {
        emit(
            UNSAFE_AUDIT,
            1,
            1,
            "crate root is missing `#![forbid(unsafe_code)]` (set `unsafe-allowed = true` in lint.toml for the one shim that needs unsafe)".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(src: &str) -> SourceFile {
        SourceFile {
            crate_name: "test-crate".to_string(),
            path: "test.rs".to_string(),
            source: src.to_string(),
            is_crate_root: false,
        }
    }

    fn check(src: &str) -> FileReport {
        check_file(&input(src), &RuleSet::all_enabled())
    }

    fn rules_of(rep: &FileReport) -> Vec<&str> {
        rep.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn suppression_with_reason_silences_and_counts() {
        let rep = check(
            "// vdsms-lint: allow(deterministic-iteration) reason=\"sorted before output\"\n\
             use std::collections::HashMap;\n",
        );
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn suppression_without_reason_is_reported() {
        let rep = check(
            "// vdsms-lint: allow(deterministic-iteration)\n\
             use std::collections::HashMap;\n",
        );
        let rules = rules_of(&rep);
        assert!(rules.contains(&INVALID_SUPPRESSION), "{rules:?}");
        assert!(rules.contains(&DET_ITER), "the un-suppressed finding must survive");
    }

    #[test]
    fn entry_directive_is_valid_not_a_finding() {
        let rep = check("// vdsms-lint: entry\npub fn hot() {}\n");
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        assert_eq!(rep.suppressed, 0);
    }

    #[test]
    fn unknown_directive_is_a_finding() {
        let rep = check("// vdsms-lint: entrypoint\npub fn hot() {}\n");
        assert_eq!(rules_of(&rep), vec![INVALID_SUPPRESSION]);
    }

    #[test]
    fn scoped_entry_directive_is_valid_not_a_finding() {
        let rep = check("// vdsms-lint: entry(no-panic-hot-path)\npub fn sweep() {}\n");
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        let both = check(
            "// vdsms-lint: entry(no-panic-hot-path, no-alloc-hot-path)\npub fn sweep() {}\n",
        );
        assert!(both.diagnostics.is_empty(), "{:?}", both.diagnostics);
    }

    #[test]
    fn scoped_entry_with_a_non_hot_path_rule_is_a_finding() {
        // A typo'd or non-hot-path scope must not silently become a no-op
        // marker.
        let rep = check("// vdsms-lint: entry(no-panic-hotpath)\npub fn sweep() {}\n");
        assert_eq!(rules_of(&rep), vec![INVALID_SUPPRESSION]);
        let wrong_kind = check("// vdsms-lint: entry(lock-order)\npub fn sweep() {}\n");
        assert_eq!(rules_of(&wrong_kind), vec![INVALID_SUPPRESSION]);
        let empty = check("// vdsms-lint: entry()\npub fn sweep() {}\n");
        assert_eq!(rules_of(&empty), vec![INVALID_SUPPRESSION]);
    }

    #[test]
    fn hashmap_flagged_btreemap_not() {
        let rep = check("use std::collections::HashMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }");
        assert_eq!(rules_of(&rep), vec![DET_ITER]);
    }

    #[test]
    fn wall_clock_flagged_duration_not() {
        let rep = check("fn f() { let t = std::time::Instant::now(); let d = Duration::from_secs(1); }");
        assert_eq!(rules_of(&rep), vec![NO_WALL_CLOCK]);
    }

    #[test]
    fn std_mutex_flagged_parking_lot_not() {
        let rep = check("use std::sync::{Arc, Mutex};\nuse parking_lot::RwLock;\n");
        assert_eq!(rules_of(&rep), vec![LOCK_DISCIPLINE]);
        assert!(rep.diagnostics[0].message.contains("Mutex"));
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = check("fn f(p: *const u8) { unsafe { p.read_volatile(); } }");
        assert_eq!(rules_of(&bad), vec![UNSAFE_AUDIT]);
        let good = check("fn f(p: *const u8) {\n  // SAFETY: p is valid for reads by contract.\n  unsafe { p.read_volatile(); }\n}");
        assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let mut missing_input = input("pub fn x() {}");
        missing_input.is_crate_root = true;
        let missing = check_file(&missing_input, &RuleSet::all_enabled());
        assert_eq!(rules_of(&missing), vec![UNSAFE_AUDIT]);
        let mut present_input = input("#![forbid(unsafe_code)]\npub fn x() {}");
        present_input.is_crate_root = true;
        let present = check_file(&present_input, &RuleSet::all_enabled());
        assert!(present.diagnostics.is_empty(), "{:?}", present.diagnostics);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let mut rs = RuleSet::all_enabled();
        rs.switches.insert(DET_ITER.to_string(), false);
        let rep = check_file(&input("use std::collections::HashMap;"), &rs);
        assert!(rep.diagnostics.is_empty());
    }

    #[test]
    fn every_configurable_rule_has_a_full_explanation() {
        for key in KNOWN_KEYS {
            if *key == "unsafe-allowed" {
                continue; // a flag, not a rule
            }
            let info = explain(key).unwrap_or_else(|| panic!("no explanation for `{key}`"));
            assert!(!info.summary.is_empty(), "{key}: empty summary");
            assert!(info.rationale.len() > 40, "{key}: rationale too thin");
            assert!(!info.example.is_empty(), "{key}: empty example");
            assert!(!info.suppression.is_empty(), "{key}: empty suppression");
        }
        // invalid-suppression is registered too (not configurable).
        assert!(explain(INVALID_SUPPRESSION).is_some());
        // No duplicate ids.
        let mut ids: Vec<&str> = registry().iter().map(|r| r.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule ids in registry");
    }
}
