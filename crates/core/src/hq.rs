//! The Hash–Query (HQ) index (paper Section V-C, Figs. 4–5).
//!
//! Query sketches are stored column-per-query in a `K × m` array `HQ`,
//! where row `i` holds every query's `i`-th min-hash value, sorted by
//! value. Probing a basic-window sketch touches every row once, so only
//! *related* queries (those sharing at least one min-hash value with the
//! window) are ever compared — and their 2K-bit signatures are produced
//! as a by-product, with Lemma-2 pruning applied before a hit is
//! reported.
//!
//! The paper's Fig. 5 walks `⟨value, up, down⟩` triples row by row,
//! carrying a partial signature per related query. That walk is one
//! dependent load per row per tracked query — `K` serialized cache
//! accesses that dominate the probe even when only one query is related.
//! This implementation splits the probe into two phases with identical
//! results:
//!
//! 1. **Discovery**: scan each sorted row for values equal to the
//!    window's hash, resolving matches to query slots through a parallel
//!    `slots` slab (no link chase, no walk-up) and deduplicating slots
//!    across rows.
//! 2. **Encoding**: for each related slot, encode the full signature
//!    from the query's *contiguous* sketch copy in the `columns` slab
//!    with the word-building [`BitSig::encode_counts_from_mins`] kernel,
//!    then apply the Lemma-2 test to the counted result.
//!
//! Phase 2's final `n_lt > K(1−δ)` test accepts exactly the elements the
//! paper's mid-probe pruning keeps: `n_lt` only grows along the walk, so
//! an element whose running count ever exceeds the bound also exceeds it
//! in total (and is re-pruned on any re-creation), and one that never
//! does survives with the complete signature either way. The
//! `probe_matches_bruteforce` test pins this equivalence.

use crate::bitsig::BitSig;
use crate::query::{Query, QueryId, QuerySet};
use vdsms_sketch::Sketch;

/// Per-query metadata stored at the column entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueryMeta {
    id: QueryId,
    keyframes: u32,
}

/// A query found related to a probed window, with its complete bit
/// signature.
#[derive(Debug, Clone)]
pub struct ProbeHit {
    /// The related query's id.
    pub query_id: QueryId,
    /// The related query's length in key frames.
    pub keyframes: usize,
    /// Bit signature of the window relative to this query (Definition 3).
    pub sig: BitSig,
}

/// Result of probing one window sketch.
#[derive(Debug, Clone, Default)]
pub struct ProbeResult {
    /// Related, un-pruned queries with their signatures.
    pub hits: Vec<ProbeHit>,
    /// Number of row search operations performed (for the cost
    /// experiments).
    pub row_searches: u64,
}

/// Retired signature buffers kept per scratch, capped so a burst of
/// related windows cannot pin unbounded memory.
const SIG_POOL_CAP: usize = 64;

/// Rows at most this wide are searched with a linear equality scan
/// instead of a binary search (identical result on a sorted row: the
/// 61-bit values make a binary search's branches coin flips, and the
/// scan's compare-all loop vectorizes).
const ROW_SCAN_WIDTH: usize = 64;

/// Reusable working state for [`HqIndex::probe_into`]. Keep one per
/// detector and pass it to every probe; its buffers stabilize at the
/// probe's high-water marks so steady-state probes are allocation-free.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Slots discovered related this probe, in first-equal-row order.
    related: Vec<u32>,
    /// Per-slot "already discovered" flags, cleared each probe.
    seen: Vec<bool>,
    sig_pool: Vec<BitSig>,
}

impl ProbeScratch {
    /// Return a dead signature's word buffer for reuse by future probes
    /// (the caller is done with a [`ProbeHit`]'s signature).
    pub fn recycle_sig(&mut self, sig: BitSig) {
        if self.sig_pool.len() < SIG_POOL_CAP {
            // vdsms-lint: allow(no-alloc-hot-path) reason="pool Vec is capped at SIG_POOL_CAP; reaches its high-water mark during warm-up"
            self.sig_pool.push(sig);
        }
    }
}

/// The Hash–Query index.
///
/// The conceptual `K × m` array is stored **structure-of-arrays** as
/// three flat slabs:
///
/// - `values`: row-major `K × m` min-hash values, each row sorted — the
///   discovery scan streams this slab with hardware-friendly stride;
/// - `slots`: row-major `K × m` metadata-slot of each cell, replacing
///   the paper's `up`/`down` links (an equal cell resolves to its query
///   in one load instead of an `O(i)` walk to row 0);
/// - `columns`: column-major `m × K` copy of every subscribed sketch, so
///   a related query's signature is encoded from one contiguous slice.
///
/// The extra `columns` copy costs 8 bytes per cell over the linked
/// triples, and `slots` replaces the links' 8. Subscription updates
/// (`insert`/`remove`) rebuild the row slabs at the new width; they are
/// `O(K·m)` either way — same bound as relinking — and they happen
/// between windows, not per window.
#[derive(Debug, Clone)]
pub struct HqIndex {
    k: usize,
    /// Row-major `K × m` min-hash values, each row sorted ascending.
    values: Vec<u64>,
    /// Row-major `K × m`: metadata slot of the query owning each cell.
    slots: Vec<u32>,
    /// Column-major `m × K`: query `s`'s sketch occupies
    /// `[s·K, (s+1)·K)`.
    columns: Vec<u64>,
    meta: Vec<QueryMeta>,
}

impl HqIndex {
    /// Build the index from a query set (the paper's offline
    /// `BuildIndex(QS)`).
    ///
    /// # Panics
    /// Panics if any query's sketch `K` differs from `k`.
    pub fn build(k: usize, queries: &QuerySet) -> HqIndex {
        let mut index = HqIndex::empty(k);
        for q in queries.iter() {
            index.insert(q);
        }
        index
    }

    /// An empty index for sketches of `k` hash functions.
    pub fn empty(k: usize) -> HqIndex {
        assert!(k >= 1);
        HqIndex { k, values: Vec::new(), slots: Vec::new(), columns: Vec::new(), meta: Vec::new() }
    }

    /// Number of hash functions `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed queries `m`.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether no query is indexed.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Subscribe a query online: splice its `K` hash values into the
    /// sorted rows and append its sketch column.
    ///
    /// # Panics
    /// Panics if the query's sketch `K` differs, or its id is already
    /// present.
    pub fn insert(&mut self, q: &Query) {
        assert_eq!(q.sketch.k(), self.k, "query sketch K mismatch");
        assert!(
            self.meta.iter().all(|mq| mq.id != q.id),
            "query id {} already indexed",
            q.id
        );
        let m = self.meta.len();
        let slot = m as u32;

        // Rebuild the row slabs at width m+1 with the new cell spliced
        // into each row's sorted position.
        let mut values = Vec::with_capacity(self.k * (m + 1));
        let mut slots = Vec::with_capacity(self.k * (m + 1));
        for i in 0..self.k {
            let v = q.sketch.mins()[i];
            let row_vals = &self.values[i * m..(i + 1) * m];
            let row_slots = &self.slots[i * m..(i + 1) * m];
            let p = row_vals.partition_point(|&t| t < v);
            values.extend_from_slice(&row_vals[..p]);
            slots.extend_from_slice(&row_slots[..p]);
            values.push(v);
            slots.push(slot);
            values.extend_from_slice(&row_vals[p..]);
            slots.extend_from_slice(&row_slots[p..]);
        }
        self.values = values;
        self.slots = slots;
        self.columns.extend_from_slice(q.sketch.mins());
        self.meta.push(QueryMeta { id: q.id, keyframes: q.keyframes as u32 });
    }

    /// Unsubscribe a query online. Returns `false` if the id is not
    /// indexed.
    pub fn remove(&mut self, id: QueryId) -> bool {
        let Some(slot) = self.meta.iter().position(|mq| mq.id == id) else {
            return false;
        };
        let m = self.meta.len();

        // Rebuild the row slabs at width m−1 without the query's cells.
        let mut values = Vec::with_capacity(self.k * (m - 1));
        let mut slots = Vec::with_capacity(self.k * (m - 1));
        for i in 0..self.k {
            let row_vals = &self.values[i * m..(i + 1) * m];
            let row_slots = &self.slots[i * m..(i + 1) * m];
            let p = row_slots
                .iter()
                .position(|&s| s == slot as u32)
                .expect("indexed query must have a cell on every row");
            values.extend_from_slice(&row_vals[..p]);
            slots.extend_from_slice(&row_slots[..p]);
            values.extend_from_slice(&row_vals[p + 1..]);
            slots.extend_from_slice(&row_slots[p + 1..]);
        }
        self.values = values;
        self.slots = slots;

        // Compact the metadata table: move the last slot into the hole,
        // rename its cells, and move its column.
        let last = self.meta.len() - 1;
        self.meta.swap_remove(slot);
        if slot != last {
            for s in &mut self.slots {
                if *s == last as u32 {
                    *s = slot as u32;
                }
            }
            let (head, tail) = self.columns.split_at_mut(last * self.k);
            head[slot * self.k..(slot + 1) * self.k].copy_from_slice(&tail[..self.k]);
        }
        self.columns.truncate(last * self.k);
        true
    }

    /// Probe a basic-window sketch (the paper's `ProbeIndex`, Fig. 5):
    /// returns every query that shares at least one min-hash value with
    /// the window and survives Lemma-2 pruning, together with its
    /// complete bit signature.
    ///
    /// Allocates fresh result buffers; the streaming detector uses
    /// [`HqIndex::probe_into`] with reusable scratch instead.
    pub fn probe(&self, sk: &Sketch, delta: f64) -> ProbeResult {
        let mut scratch = ProbeScratch::default();
        let mut hits = Vec::new();
        let row_searches = self.probe_into(sk, delta, &mut scratch, &mut hits);
        ProbeResult { hits, row_searches }
    }

    /// [`HqIndex::probe`] with caller-owned buffers: `hits` is cleared and
    /// refilled, `scratch` holds the probe's working state. After a
    /// warm-up period the steady-state probe of an unrelated window
    /// touches no allocator — the buffers' high-water marks are bounded
    /// by the related-query count. Returns the row-search count.
    pub fn probe_into(
        &self,
        sk: &Sketch,
        delta: f64,
        scratch: &mut ProbeScratch,
        hits: &mut Vec<ProbeHit>,
    ) -> u64 {
        assert_eq!(sk.k(), self.k, "window sketch K mismatch");
        let prune_above = (self.k as f64 * (1.0 - delta)).floor() as usize;
        let m = self.meta.len();

        let ProbeScratch { related, seen, sig_pool } = scratch;
        related.clear();
        if seen.len() == m {
            seen.fill(false);
        } else {
            seen.clear();
            // vdsms-lint: allow(no-alloc-hot-path) reason="warm-up only: resizes when the subscribed-query count changes, then the branch above reuses the buffer"
            seen.resize(m, false);
        }
        hits.clear();
        let mut row_searches = 0u64;

        // Phase 1 — discovery: every row position whose value equals the
        // window's hash marks its owning slot related. The slot slab
        // resolves ownership in one load; duplicates across rows are
        // dropped by the `seen` flags, preserving first-discovery order
        // (which matches the paper walk's element-creation order).
        for i in 0..self.k {
            row_searches += 1;
            let ski = sk.mins()[i];
            let row_vals = &self.values[i * m..(i + 1) * m];
            let row_slots = &self.slots[i * m..(i + 1) * m];
            let (lo, hi) = if m <= ROW_SCAN_WIDTH {
                // Narrow rows: branch-free counts beat a mispredicting
                // binary search. The equal run is
                // `[count(< ski), count(< ski) + count(== ski))`.
                let mut lt = 0usize;
                let mut eq = 0usize;
                for &v in row_vals {
                    lt += usize::from(v < ski);
                    eq += usize::from(v == ski);
                }
                (lt, lt + eq)
            } else {
                // Wide rows keep the paper's `O(log m)` search.
                (row_vals.partition_point(|&v| v < ski), row_vals.partition_point(|&v| v <= ski))
            };
            for &s in &row_slots[lo..hi] {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    // vdsms-lint: allow(no-alloc-hot-path) reason="scratch Vec reused across probes; bounded by the related-query count"
                    related.push(s);
                }
            }
        }

        // Phase 2 — encoding: one contiguous-slice encode per related
        // query, counted in the same pass, then the Lemma-2 test on the
        // total (equivalent to the paper's mid-walk pruning — `n_lt` is
        // monotone over rows, see the module docs).
        for &s in related.iter() {
            let s = s as usize;
            let col = &self.columns[s * self.k..(s + 1) * self.k];
            // The signature's word buffer comes from the pool;
            // steady-state probes touch no allocator.
            let mut sig = sig_pool.pop().unwrap_or_default();
            let (n_less, _) = sig.encode_counts_from_mins(sk.mins(), col);
            if n_less > prune_above {
                if sig_pool.len() < SIG_POOL_CAP {
                    // vdsms-lint: allow(no-alloc-hot-path) reason="pool Vec is capped at SIG_POOL_CAP; reaches its high-water mark during warm-up"
                    sig_pool.push(sig);
                }
            } else {
                let mq = self.meta[s];
                // vdsms-lint: allow(no-alloc-hot-path) reason="caller-owned Vec reused across probes; non-empty only for windows related to a query"
                hits.push(ProbeHit {
                    query_id: mq.id,
                    keyframes: mq.keyframes as usize,
                    sig,
                });
            }
        }
        row_searches
    }

    /// Reference probe: brute-force over all queries. Used by tests and by
    /// the `NoIndex` engine variants (where its cost is the point of the
    /// comparison).
    pub fn probe_bruteforce(&self, sk: &Sketch, delta: f64, queries: &QuerySet) -> Vec<ProbeHit> {
        queries
            .iter()
            .filter_map(|q| {
                let sig = BitSig::encode(sk, &q.sketch);
                if sig.count_equal() == 0 || sig.violates_lemma2(delta) {
                    None
                } else {
                    Some(ProbeHit { query_id: q.id, keyframes: q.keyframes, sig })
                }
            })
            .collect()
    }

    /// Estimated heap size of the index in bytes (the paper notes the
    /// index is a fixed `m × K` triples — here three SoA slabs).
    pub fn heap_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<u64>()
            + self.slots.len() * std::mem::size_of::<u32>()
            + self.columns.len() * std::mem::size_of::<u64>()
            + self.meta.len() * std::mem::size_of::<QueryMeta>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_sketch::MinHashFamily;

    const K: usize = 64;

    fn family() -> MinHashFamily {
        MinHashFamily::new(K, 77)
    }

    fn query(f: &MinHashFamily, id: QueryId, base: u64, n: u64) -> Query {
        Query::from_cell_ids(id, f, &(base..base + n).collect::<Vec<_>>())
    }

    fn query_set(f: &MinHashFamily, m: u32) -> QuerySet {
        QuerySet::from_queries(
            (0..m).map(|i| query(f, i, u64::from(i) * 1000, 40)).collect(),
        )
    }

    /// Slab invariants: rows sorted, each row references every meta slot
    /// exactly once, and every cell's value matches its query's column
    /// entry.
    fn check_integrity(ix: &HqIndex) {
        let m = ix.meta.len();
        assert_eq!(ix.values.len(), ix.k * m, "values slab must be K × m");
        assert_eq!(ix.slots.len(), ix.k * m, "slots slab must be K × m");
        assert_eq!(ix.columns.len(), ix.k * m, "columns slab must be m × K");
        for i in 0..ix.k {
            let row_vals = &ix.values[i * m..(i + 1) * m];
            let row_slots = &ix.slots[i * m..(i + 1) * m];
            for w in row_vals.windows(2) {
                assert!(w[0] <= w[1], "row {i} not sorted");
            }
            let mut seen = vec![false; m];
            for (j, &s) in row_slots.iter().enumerate() {
                let s = s as usize;
                assert!(s < m, "slot out of range on row {i}");
                assert!(!seen[s], "duplicate slot {s} on row {i}");
                seen[s] = true;
                assert_eq!(
                    row_vals[j],
                    ix.columns[s * ix.k + i],
                    "cell/column mismatch at row {i} slot {s}"
                );
            }
        }
    }

    #[test]
    fn build_produces_consistent_slabs() {
        let f = family();
        let qs = query_set(&f, 20);
        let ix = HqIndex::build(K, &qs);
        assert_eq!(ix.len(), 20);
        check_integrity(&ix);
    }

    #[test]
    fn probe_matches_bruteforce() {
        let f = family();
        let qs = query_set(&f, 30);
        let ix = HqIndex::build(K, &qs);
        // Probe with a sketch overlapping query 7's ids — and also some
        // unrelated ids.
        for (base, n) in [(7000u64, 40u64), (7010, 60), (123_456, 20), (0, 10)] {
            let sk = Sketch::from_ids(&f, base..base + n);
            for delta in [0.5, 0.7, 0.9] {
                let mut got: Vec<QueryId> =
                    ix.probe(&sk, delta).hits.into_iter().map(|h| h.query_id).collect();
                let mut want: Vec<QueryId> = ix
                    .probe_bruteforce(&sk, delta, &qs)
                    .into_iter()
                    .map(|h| h.query_id)
                    .collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "probe mismatch at base={base} n={n} δ={delta}");
            }
        }
    }

    #[test]
    fn probe_signatures_match_direct_encoding() {
        let f = family();
        let qs = query_set(&f, 10);
        let ix = HqIndex::build(K, &qs);
        let sk = Sketch::from_ids(&f, 3000..3040); // strongly related to query 3
        let res = ix.probe(&sk, 0.5);
        assert!(!res.hits.is_empty());
        for hit in &res.hits {
            let q = qs.get(hit.query_id).unwrap();
            let direct = BitSig::encode(&sk, &q.sketch);
            assert_eq!(hit.sig, direct, "probe signature differs for query {}", hit.query_id);
        }
    }

    #[test]
    fn probe_finds_exact_match_with_full_similarity() {
        let f = family();
        let qs = query_set(&f, 10);
        let ix = HqIndex::build(K, &qs);
        let sk = qs.get(4).unwrap().sketch.clone();
        let res = ix.probe(&sk, 0.7);
        let hit = res.hits.iter().find(|h| h.query_id == 4).expect("query 4 must be hit");
        assert_eq!(hit.sig.similarity(), 1.0);
        assert_eq!(hit.keyframes, 40);
    }

    #[test]
    fn unrelated_probe_returns_nothing() {
        let f = family();
        let qs = query_set(&f, 10);
        let ix = HqIndex::build(K, &qs);
        let sk = Sketch::from_ids(&f, 900_000..900_050);
        // All-unrelated: either empty or only low-similarity flukes that
        // brute force agrees on.
        let got = ix.probe(&sk, 0.7).hits.len();
        let want = ix.probe_bruteforce(&sk, 0.7, &qs).len();
        assert_eq!(got, want);
    }

    #[test]
    fn online_insert_matches_fresh_build() {
        let f = family();
        let mut ix = HqIndex::empty(K);
        let mut qs = QuerySet::new();
        for i in 0..15u32 {
            let q = query(&f, i, u64::from(i) * 777, 25);
            qs.insert(q.clone());
            ix.insert(&q);
            check_integrity(&ix);
        }
        let fresh = HqIndex::build(K, &qs);
        let sk = Sketch::from_ids(&f, 3885..3920); // overlaps query 5
        let mut a: Vec<QueryId> = ix.probe(&sk, 0.6).hits.into_iter().map(|h| h.query_id).collect();
        let mut b: Vec<QueryId> =
            fresh.probe(&sk, 0.6).hits.into_iter().map(|h| h.query_id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn online_remove_keeps_integrity_and_results() {
        let f = family();
        let qs = query_set(&f, 12);
        let mut ix = HqIndex::build(K, &qs);
        assert!(ix.remove(5));
        assert!(!ix.remove(5), "double remove must return false");
        check_integrity(&ix);
        let sk = Sketch::from_ids(&f, 5000..5040); // query 5's content
        let hits = ix.probe(&sk, 0.7).hits;
        assert!(hits.iter().all(|h| h.query_id != 5), "removed query must not be hit");

        // Remove more, including the slot-compaction path.
        assert!(ix.remove(11));
        assert!(ix.remove(0));
        check_integrity(&ix);
        assert_eq!(ix.len(), 9);

        // Remaining queries still probe correctly.
        let sk3 = Sketch::from_ids(&f, 3000..3040);
        assert!(ix.probe(&sk3, 0.7).hits.iter().any(|h| h.query_id == 3));
    }

    #[test]
    fn remove_then_insert_round_trips() {
        let f = family();
        let qs = query_set(&f, 8);
        let mut ix = HqIndex::build(K, &qs);
        let q3 = qs.get(3).unwrap().clone();
        ix.remove(3);
        ix.insert(&q3);
        check_integrity(&ix);
        let sk = Sketch::from_ids(&f, 3000..3040);
        assert!(ix.probe(&sk, 0.7).hits.iter().any(|h| h.query_id == 3));
    }

    #[test]
    fn duplicate_hash_values_across_queries_are_handled() {
        // Force two queries with identical content (identical sketches) —
        // every row has duplicate values.
        let f = family();
        let mut qs = QuerySet::new();
        qs.insert(query(&f, 1, 500, 30));
        qs.insert(query(&f, 2, 500, 30)); // same cell ids
        qs.insert(query(&f, 3, 9999, 30));
        let ix = HqIndex::build(K, &qs);
        check_integrity(&ix);
        let sk = Sketch::from_ids(&f, 500..530);
        let mut hits: Vec<QueryId> =
            ix.probe(&sk, 0.7).hits.into_iter().map(|h| h.query_id).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2], "both duplicate queries must be found exactly once");
    }

    #[test]
    fn heap_bytes_scales_with_m_times_k() {
        let f = family();
        let ix = HqIndex::build(K, &query_set(&f, 10));
        // One u64 value, one u32 slot, and one u64 column entry per cell.
        let expected = 10 * K * 16;
        assert!(ix.heap_bytes() >= expected);
    }
}
