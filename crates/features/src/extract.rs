//! Compressed-domain feature extraction (paper Section III-A, phase 1).
//!
//! Each key frame is spatially partitioned into `D = rows × cols` equal
//! regions; the average DC coefficient of each region is computed, the `D`
//! averages are min–max normalized (Eq. 1), and `d` of them are selected as
//! the frame's feature vector.

use crate::partition::{normalize, normalize_in_place, GridPyramid};
use crate::CellId;
use vdsms_codec::DcFrame;

/// Configuration of the full fingerprint pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Spatial region rows (paper: 3).
    pub rows: u32,
    /// Spatial region columns (paper: 3, so `D = 9`).
    pub cols: u32,
    /// Selected feature dimensionality `d` (paper default 5, swept 3–7).
    pub d: usize,
    /// Grid slices per dimension `u` (paper default 4, swept 2–7).
    pub u: u32,
}

impl Default for FeatureConfig {
    fn default() -> FeatureConfig {
        // Paper Table I defaults: 3×3 blocks, d = 5, u = 4.
        FeatureConfig { rows: 3, cols: 3, d: 5, u: 4 }
    }
}

impl FeatureConfig {
    /// Total number of spatial regions `D`.
    pub fn big_d(&self) -> usize {
        (self.rows * self.cols) as usize
    }
}

/// 1-D overlap weight of block `b` (covering `[b, b+1)`) with region `r`
/// of `n` regions over `total` blocks. Shared by the naive
/// [`region_averages`] and the precomputed [`RegionPlan`] so both produce
/// bit-identical weights.
fn overlap(b: u32, r: u32, n: u32, total: u32) -> f64 {
    let r0 = f64::from(r) * f64::from(total) / f64::from(n);
    let r1 = f64::from(r + 1) * f64::from(total) / f64::from(n);
    (f64::from(b) + 1.0).min(r1) - f64::from(b).max(r0)
}

/// Average the DC coefficients of `dc` over `rows × cols` equal regions,
/// returned row-major.
///
/// Regions split the frame into *exact fractional* areas: a block
/// straddling a region boundary contributes to both regions, weighted by
/// its overlap. This keeps region averages comparable across resolutions
/// — a copy re-encoded at PAL geometry has a different block grid, and
/// snapping regions to whole blocks would shift every region boundary by
/// up to half a block.
/// This is the compatibility entry point; it delegates to a one-shot
/// [`RegionPlan`] so there is exactly one weight-computation
/// implementation in the crate (the property tests in
/// `tests/region_plan_props.rs` hold it bit-identical to an inlined
/// naive reference). Steady-state callers should build a plan once —
/// or use [`PlanCache`] — and call
/// [`RegionPlan::region_averages_into`] directly.
pub fn region_averages(dc: &DcFrame, rows: u32, cols: u32) -> Vec<f32> {
    let plan = RegionPlan::build(dc.blocks_w, dc.blocks_h, rows, cols);
    let mut out = vec![0.0f32; (rows * cols) as usize];
    plan.region_averages_into(&dc.dc, &mut out);
    out
}

/// A precomputed region-averaging plan for one `(blocks_w, blocks_h,
/// rows, cols)` geometry.
///
/// A per-frame region-averaging pass recomputes every block/region
/// overlap weight; a stream's geometry never changes mid-flight, so the
/// weights are loop invariants of the whole ingestion run. The plan
/// hoists them into **structure-of-arrays** form: parallel
/// `idx`/`wts` slices holding the multiply–add terms in exactly the
/// order the naive double loop visits them, with each region's run
/// padded to a multiple of `LANES` using zero-weight terms. The
/// padding lets [`Self::region_averages_into`] process fixed 4-wide
/// chunks (the four products have no mutual dependency, so they
/// vectorize/pipeline) while the *additions* stay in naive serial
/// order — and a `+0.0`/`-0.0` padding product can never change a
/// partial sum's bit pattern, because a left-folded sum seeded with
/// `+0.0` never becomes `-0.0` (that would take `-0.0 + -0.0`). The
/// resulting f64 sums — hence the f32 averages — are bit-identical to
/// the naive path for all finite inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionPlan {
    blocks_w: u32,
    blocks_h: u32,
    rows: u32,
    cols: u32,
    /// Block index of each multiply–add term, concatenated region by
    /// region in naive visit order; padding terms repeat an in-bounds
    /// index of their own region.
    idx: Vec<u32>,
    /// Overlap weight of each term, parallel to `idx`; padding terms
    /// carry weight `0.0`.
    wts: Vec<f64>,
    /// Per region (row-major): exclusive *padded* end offset into
    /// `idx`/`wts` and the region's total overlap weight (real terms
    /// only, accumulated in naive order).
    regions: Vec<(u32, f64)>,
}

/// Chunk width of the padded region runs: four independent products per
/// step keeps the multiplies pipelined without perturbing the serial
/// f64 addition order.
const LANES: usize = 4;

impl RegionPlan {
    /// Precompute the plan for one frame geometry.
    ///
    /// # Panics
    /// Panics on the same degenerate inputs as [`region_averages`]
    /// (zero regions, or fewer blocks than regions).
    pub fn build(blocks_w: u32, blocks_h: u32, rows: u32, cols: u32) -> RegionPlan {
        assert!(rows >= 1 && cols >= 1);
        assert!(
            blocks_h >= rows && blocks_w >= cols,
            "frame has fewer blocks ({blocks_w}x{blocks_h}) than regions ({cols}x{rows})",
        );
        let mut idx = Vec::new();
        let mut wts = Vec::new();
        // vdsms-lint: allow(no-alloc-hot-path) reason="plan construction: runs once per stream geometry, not per frame"
        let mut regions = Vec::with_capacity((rows * cols) as usize);
        for ry in 0..rows {
            let by0 = (f64::from(ry) * f64::from(blocks_h) / f64::from(rows)).floor() as u32;
            let by1 =
                ((f64::from(ry + 1) * f64::from(blocks_h) / f64::from(rows)).ceil() as u32)
                    .min(blocks_h);
            for rx in 0..cols {
                let bx0 = (f64::from(rx) * f64::from(blocks_w) / f64::from(cols)).floor() as u32;
                let bx1 =
                    ((f64::from(rx + 1) * f64::from(blocks_w) / f64::from(cols)).ceil() as u32)
                        .min(blocks_w);
                let mut weight = 0.0f64;
                let region_start = idx.len();
                for by in by0..by1 {
                    let wy = overlap(by, ry, rows, blocks_h);
                    if wy <= 0.0 {
                        continue;
                    }
                    for bx in bx0..bx1 {
                        let wx = overlap(bx, rx, cols, blocks_w);
                        if wx <= 0.0 {
                            continue;
                        }
                        let w = wx * wy;
                        // vdsms-lint: allow(no-alloc-hot-path) reason="plan construction: runs once per stream geometry, not per frame"
                        idx.push(by * blocks_w + bx);
                        // vdsms-lint: allow(no-alloc-hot-path) reason="plan construction: runs once per stream geometry, not per frame"
                        wts.push(w);
                        weight += w;
                    }
                }
                // Pad the run to a LANES multiple with zero-weight terms
                // repeating an index this region already reads (always
                // in bounds; index 0 for a degenerate empty region).
                let pad_idx = idx.get(region_start).copied().unwrap_or(0);
                let pad = (LANES - idx.len() % LANES) % LANES;
                for _ in 0..pad {
                    // vdsms-lint: allow(no-alloc-hot-path) reason="plan construction: runs once per stream geometry, not per frame"
                    idx.push(pad_idx);
                    // vdsms-lint: allow(no-alloc-hot-path) reason="plan construction: runs once per stream geometry, not per frame"
                    wts.push(0.0);
                }
                // vdsms-lint: allow(no-alloc-hot-path) reason="plan construction: pre-reserved to rows*cols above"
                regions.push((idx.len() as u32, weight));
            }
        }
        RegionPlan { blocks_w, blocks_h, rows, cols, idx, wts, regions }
    }

    /// Whether this plan was built for the given geometry.
    pub fn matches(&self, blocks_w: u32, blocks_h: u32, rows: u32, cols: u32) -> bool {
        self.blocks_w == blocks_w
            && self.blocks_h == blocks_h
            && self.rows == rows
            && self.cols == cols
    }

    /// Write the region averages of `dc` (raster-order block DCs) into
    /// `out`, allocation-free. Bit-identical to [`region_averages`] on
    /// the geometry the plan was built for.
    ///
    /// # Panics
    /// Panics if `dc` or `out` do not match the plan's geometry.
    // vdsms-lint: entry
    pub fn region_averages_into(&self, dc: &[f32], out: &mut [f32]) {
        assert_eq!(
            dc.len(),
            (self.blocks_w * self.blocks_h) as usize,
            "DC buffer does not match plan geometry"
        );
        assert_eq!(out.len(), self.regions.len(), "output does not match region count");
        let mut start = 0usize;
        for (slot, &(end, weight)) in out.iter_mut().zip(&self.regions) {
            let end = end as usize;
            let mut sum = 0.0f64;
            // Runs are padded to LANES, so each chunk is exactly four
            // terms: the products are independent (they pipeline or
            // vectorize), the adds fold left in naive serial order, and
            // zero-weight padding products are bit-level no-ops.
            let mut i = start;
            while i < end {
                let p0 = self.wts[i] * f64::from(dc[self.idx[i] as usize]);
                let p1 = self.wts[i + 1] * f64::from(dc[self.idx[i + 1] as usize]);
                let p2 = self.wts[i + 2] * f64::from(dc[self.idx[i + 2] as usize]);
                let p3 = self.wts[i + 3] * f64::from(dc[self.idx[i + 3] as usize]);
                sum = sum + p0 + p1 + p2 + p3;
                i += LANES;
            }
            *slot = (sum / weight) as f32;
            start = end;
        }
    }
}

/// Memoizes [`RegionPlan`] construction across frames (cf.
/// `vdsms_codec::QuantizerCache`): a stream's block geometry is fixed, so
/// the steady state is a pure field comparison and the plan rebuild only
/// fires when the ingested geometry actually changes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCache {
    last: RegionPlan,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl PlanCache {
    /// A cache primed with a trivial 1×1 geometry (the first real request
    /// replaces it).
    pub fn new() -> PlanCache {
        PlanCache { last: RegionPlan::build(1, 1, 1, 1) }
    }

    /// The plan for a geometry, rebuilt only if it differs from the
    /// previous request.
    pub fn plan_for(&mut self, blocks_w: u32, blocks_h: u32, rows: u32, cols: u32) -> &RegionPlan {
        if !self.last.matches(blocks_w, blocks_h, rows, cols) {
            self.last = RegionPlan::build(blocks_w, blocks_h, rows, cols);
        }
        &self.last
    }
}

/// Deterministically select `d` of the `D` normalized coefficients,
/// maximally spread over the frame: indices `round(i·(D−1)/(d−1))`.
///
/// For the paper's default `D = 9, d = 5` this picks regions
/// `{0, 2, 4, 6, 8}` — the four corners plus the centre of the 3×3 layout.
///
/// # Panics
/// Panics if `d > D` or `d == 0`.
pub fn select_dims(normalized: &[f32], d: usize) -> Vec<f32> {
    let big_d = normalized.len();
    assert!(d >= 1 && d <= big_d, "d must be in [1, {big_d}]");
    if d == big_d {
        return normalized.to_vec();
    }
    if d == 1 {
        return vec![normalized[big_d / 2]];
    }
    (0..d)
        .map(|i| {
            let idx = (i * (big_d - 1) + (d - 1) / 2) / (d - 1);
            normalized[idx]
        })
        .collect()
}

/// Write the [`select_dims`] selection into `out` (whose length is `d`),
/// allocation-free and bit-identical to the allocating variant.
///
/// # Panics
/// Panics if `out.len() > normalized.len()` or `out` is empty.
pub fn select_dims_into(normalized: &[f32], out: &mut [f32]) {
    let big_d = normalized.len();
    let d = out.len();
    assert!(d >= 1 && d <= big_d, "d must be in [1, {big_d}]");
    if d == big_d {
        out.copy_from_slice(normalized);
        return;
    }
    if d == 1 {
        out[0] = normalized[big_d / 2];
        return;
    }
    for (i, slot) in out.iter_mut().enumerate() {
        let idx = (i * (big_d - 1) + (d - 1) / 2) / (d - 1);
        *slot = normalized[idx];
    }
}

/// The end-to-end fingerprint pipeline: DC frame → cell id.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    config: FeatureConfig,
    partition: GridPyramid,
}

impl FeatureExtractor {
    /// Build an extractor for the given configuration.
    pub fn new(config: FeatureConfig) -> FeatureExtractor {
        assert!(config.d <= config.big_d(), "cannot select d > D dims");
        FeatureExtractor { config, partition: GridPyramid::new(config.d, config.u) }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FeatureConfig {
        &self.config
    }

    /// The underlying space partitioner.
    pub fn partition(&self) -> &GridPyramid {
        &self.partition
    }

    /// The normalized, selected `d`-dimensional feature vector of a frame.
    pub fn feature_vector(&self, dc: &DcFrame) -> Vec<f32> {
        let avgs = region_averages(dc, self.config.rows, self.config.cols);
        let normalized = normalize(&avgs);
        select_dims(&normalized, self.config.d)
    }

    /// The frame's fingerprint (grid–pyramid cell id).
    pub fn fingerprint(&self, dc: &DcFrame) -> CellId {
        self.partition.cell_id(&self.feature_vector(dc))
    }

    /// Fingerprint an entire sequence of key frames.
    pub fn fingerprint_sequence(&self, dcs: &[DcFrame]) -> Vec<CellId> {
        dcs.iter().map(|d| self.fingerprint(d)).collect()
    }

    /// Build the reusable scratch state for [`Self::fingerprint_into`].
    /// The intermediate buffers are sized here, once, from the config.
    pub fn scratch(&self) -> FingerprintScratch {
        FingerprintScratch {
            plans: PlanCache::new(),
            avgs: vec![0.0; self.config.big_d()],
            selected: vec![0.0; self.config.d],
        }
    }

    /// The frame's fingerprint, computed through the precomputed
    /// [`RegionPlan`] into caller-owned scratch buffers. Bit-identical to
    /// [`Self::fingerprint`]; performs **zero heap allocations** once the
    /// scratch's plan matches the frame geometry (i.e. after the first
    /// key frame of a stream).
    pub fn fingerprint_into(&self, scratch: &mut FingerprintScratch, dc: &DcFrame) -> CellId {
        let plan =
            scratch.plans.plan_for(dc.blocks_w, dc.blocks_h, self.config.rows, self.config.cols);
        plan.region_averages_into(&dc.dc, &mut scratch.avgs);
        normalize_in_place(&mut scratch.avgs);
        select_dims_into(&scratch.avgs, &mut scratch.selected);
        self.partition.cell_id(&scratch.selected)
    }
}

/// Caller-owned state for the allocation-free fingerprint path: the
/// memoized region plan plus the two intermediate feature buffers
/// (`D` region averages, `d` selected dims). One per ingestion stream;
/// build with [`FeatureExtractor::scratch`].
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintScratch {
    plans: PlanCache,
    avgs: Vec<f32>,
    selected: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_codec::{Encoder, EncoderConfig, PartialDecoder};
    use vdsms_video::source::{ClipGenerator, SourceSpec};
    use vdsms_video::{Clip, Edit, Fps};

    fn test_clip(seed: u64, seconds: f64) -> Clip {
        let spec = SourceSpec {
            width: 176,
            height: 120,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        };
        ClipGenerator::new(spec).clip(seconds)
    }

    fn dc_frames(clip: &Clip, quality: u8) -> Vec<DcFrame> {
        let bytes = Encoder::encode_clip(clip, EncoderConfig { gop: 5, quality, motion_search: true });
        PartialDecoder::new(&bytes).unwrap().decode_all().unwrap()
    }

    fn synthetic_dc(values: &[f32], w: u32, h: u32) -> DcFrame {
        assert_eq!(values.len(), (w * h) as usize);
        DcFrame { frame_index: 0, blocks_w: w, blocks_h: h, dc: values.to_vec() }
    }

    #[test]
    fn region_averages_partition_evenly() {
        // 6x6 blocks, 3x3 regions of 2x2 blocks each.
        let vals: Vec<f32> = (0..36).map(|i| i as f32).collect();
        let dc = synthetic_dc(&vals, 6, 6);
        let avgs = region_averages(&dc, 3, 3);
        assert_eq!(avgs.len(), 9);
        // Top-left region: blocks (0,0),(1,0),(0,1),(1,1) = 0,1,6,7 -> 3.5.
        assert!((avgs[0] - 3.5).abs() < 1e-6);
        // Bottom-right region: 28,29,34,35 -> 31.5.
        assert!((avgs[8] - 31.5).abs() < 1e-6);
    }

    #[test]
    fn select_dims_default_is_corners_plus_centre() {
        let n: Vec<f32> = (0..9).map(|i| i as f32).collect();
        assert_eq!(select_dims(&n, 5), vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn select_dims_edge_cases() {
        let n: Vec<f32> = (0..9).map(|i| i as f32).collect();
        assert_eq!(select_dims(&n, 9), n);
        assert_eq!(select_dims(&n, 1), vec![4.0]);
        assert_eq!(select_dims(&n, 2), vec![0.0, 8.0]);
        assert_eq!(select_dims(&n, 3), vec![0.0, 4.0, 8.0]);
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let clip = test_clip(1, 2.0);
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let a = ex.fingerprint_sequence(&dc_frames(&clip, 75));
        let b = ex.fingerprint_sequence(&dc_frames(&clip, 75));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fingerprints_survive_brightness_edit() {
        // The headline robustness property: a 30% brightness/contrast edit
        // must leave most fingerprints unchanged (normalization kills the
        // affine part; quantization jitter may flip a few).
        let clip = test_clip(2, 6.0);
        let edited = Edit::GainOffset { gain: 1.12, offset: 10.0 }.apply(&clip);
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let a = ex.fingerprint_sequence(&dc_frames(&clip, 75));
        let b = ex.fingerprint_sequence(&dc_frames(&edited, 75));
        assert_eq!(a.len(), b.len());
        let same = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(
            same * 10 >= a.len() * 7,
            "only {same}/{} fingerprints survived a brightness edit",
            a.len()
        );
    }

    #[test]
    fn fingerprints_survive_recompression() {
        // Calibration note: survival at a given quality gap is a property
        // of the partition's cell size vs the re-quantization noise, so
        // the floors below are set from the observed distribution across
        // seeds (12 s ⇒ 24 key frames keeps small-sample noise down). A
        // moderate re-encode (85→60) sits at 83–100% survival — the 70%
        // floor of the brightness test applies. The harsh 85→45 gap
        // hovers around the old 70% floor itself (66–92% by seed), which
        // made the test flap; for that gap the meaningful invariant is
        // that a clear majority of fingerprints survive.
        let clip = test_clip(3, 12.0);
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let a = ex.fingerprint_sequence(&dc_frames(&clip, 85));
        let moderate = ex.fingerprint_sequence(&dc_frames(&clip, 60));
        let harsh = ex.fingerprint_sequence(&dc_frames(&clip, 45));
        let same_moderate = a.iter().zip(&moderate).filter(|(x, y)| x == y).count();
        let same_harsh = a.iter().zip(&harsh).filter(|(x, y)| x == y).count();
        assert!(
            same_moderate * 10 >= a.len() * 7,
            "only {same_moderate}/{} fingerprints survived a moderate re-encode",
            a.len()
        );
        assert!(
            same_harsh * 2 > a.len(),
            "only {same_harsh}/{} fingerprints survived harsh re-quantization",
            a.len()
        );
    }

    #[test]
    fn different_content_gets_mostly_different_fingerprints() {
        let a_clip = test_clip(10, 6.0);
        let b_clip = test_clip(11, 6.0);
        let ex = FeatureExtractor::new(FeatureConfig::default());
        let a = ex.fingerprint_sequence(&dc_frames(&a_clip, 75));
        let b = ex.fingerprint_sequence(&dc_frames(&b_clip, 75));
        let same = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        assert!(same * 5 < a.len(), "{same}/{} collisions between unrelated clips", a.len());
    }

    #[test]
    fn fingerprint_is_in_cell_range() {
        let clip = test_clip(4, 1.0);
        let cfg = FeatureConfig::default();
        let ex = FeatureExtractor::new(cfg);
        let n = ex.partition().num_cells();
        for id in ex.fingerprint_sequence(&dc_frames(&clip, 75)) {
            assert!(id < n);
        }
    }

    #[test]
    #[should_panic(expected = "fewer blocks")]
    fn too_few_blocks_panics() {
        let dc = synthetic_dc(&[1.0, 2.0], 2, 1);
        let _ = region_averages(&dc, 3, 3);
    }
}
