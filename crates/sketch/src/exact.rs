//! Exact Jaccard similarity — the ground truth the sketches approximate
//! (paper Definition 2). Used by the "membership test" experiment
//! (Table II) and by tests validating sketch accuracy.

use std::collections::BTreeSet;

/// Exact Jaccard similarity `|A ∩ B| / |A ∪ B|` of two id collections
/// (duplicates ignored — sequences are compared as sets, which is the
/// source of the method's re-ordering robustness).
///
/// Returns 0.0 when both sets are empty.
pub fn jaccard<A, B>(a: A, b: B) -> f64
where
    A: IntoIterator<Item = u64>,
    B: IntoIterator<Item = u64>,
{
    let sa: BTreeSet<u64> = a.into_iter().collect();
    let sb: BTreeSet<u64> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_are_one() {
        assert_eq!(jaccard(0..10u64, 0..10u64), 1.0);
    }

    #[test]
    fn disjoint_sets_are_zero() {
        assert_eq!(jaccard(0..10u64, 10..20u64), 0.0);
    }

    #[test]
    fn half_overlap() {
        // A = {0..10}, B = {5..15}: |∩| = 5, |∪| = 15.
        assert!((jaccard(0..10u64, 5..15u64) - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_are_ignored() {
        let a = vec![1u64, 1, 1, 2];
        let b = vec![1u64, 2, 2];
        assert_eq!(jaccard(a, b), 1.0);
    }

    #[test]
    fn empty_vs_empty_is_zero() {
        assert_eq!(jaccard(std::iter::empty(), std::iter::empty()), 0.0);
    }

    #[test]
    fn order_does_not_matter() {
        let forward = jaccard([1u64, 2, 3, 4], [3u64, 4, 5]);
        let shuffled = jaccard([4u64, 1, 3, 2], [5u64, 3, 4]);
        assert_eq!(forward, shuffled);
    }
}
