// Fixture: unchecked arithmetic on untrusted stream bytes. Expected
// findings: no-unchecked-arith x3 (shift of a raw byte, add through a
// tainted let-binding, multiply of a raw byte).
fn decode_len(buf: &mut Reader) -> u32 {
    let hi = buf.get_u8();
    let lo = buf.get_u8();
    let word = hi << 8 | lo;
    let bumped = word + 1;
    let scaled = lo * 4;
    finish(bumped, scaled)
}
