//! Micro-benchmarks of the engine's primitive operations — the `C_comp` /
//! `C_comb` terms of the paper's Section IV-B cost model. The Bit-vs-
//! Sketch gap measured here is the mechanism behind Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdsms_codec::bitio::{ByteReader, ByteWriter};
use vdsms_core::BitSig;
use vdsms_features::RegionPlan;
use vdsms_sketch::{HashColumnCache, MinHashFamily, Sketch};

const KS: &[usize] = &[100, 800, 3000];

fn sketch_of(family: &MinHashFamily, base: u64, n: u64) -> Sketch {
    Sketch::from_ids(family, base..base + n)
}

fn bench_sketch_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("sketch");
    g.sample_size(30);
    for &k in KS {
        let family = MinHashFamily::new(k, 1);
        let a = sketch_of(&family, 0, 50);
        let b = sketch_of(&family, 25, 60);

        g.bench_with_input(BenchmarkId::new("build_window_50ids", k), &k, |bench, _| {
            bench.iter(|| Sketch::from_ids(&family, black_box(0u64..50)));
        });
        g.bench_with_input(BenchmarkId::new("combine", k), &k, |bench, _| {
            bench.iter(|| {
                let mut x = a.clone();
                x.combine(black_box(&b));
                x
            });
        });
        g.bench_with_input(BenchmarkId::new("compare", k), &k, |bench, _| {
            bench.iter(|| black_box(&a).equal_count(black_box(&b)));
        });
    }
    g.finish();
}

fn bench_bitsig_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitsig");
    g.sample_size(30);
    for &k in KS {
        let family = MinHashFamily::new(k, 1);
        let q = sketch_of(&family, 0, 50);
        let p1 = sketch_of(&family, 25, 60);
        let p2 = sketch_of(&family, 40, 70);
        let s1 = BitSig::encode(&p1, &q);
        let s2 = BitSig::encode(&p2, &q);

        g.bench_with_input(BenchmarkId::new("encode", k), &k, |bench, _| {
            bench.iter(|| BitSig::encode(black_box(&p1), black_box(&q)));
        });
        g.bench_with_input(BenchmarkId::new("or_combine", k), &k, |bench, _| {
            bench.iter(|| {
                let mut x = s1.clone();
                x.or_with(black_box(&s2));
                x
            });
        });
        g.bench_with_input(BenchmarkId::new("similarity", k), &k, |bench, _| {
            bench.iter(|| black_box(&s1).similarity());
        });
    }
    g.finish();
}

/// Per-stage rows for the fused ingestion hot path. Each stage pairs the
/// vectorized kernel with its scalar/naive "before" shape **in the same
/// build**, so the per-stage speedups in `BENCH_ingest.json` are
/// reproducible from a single commit.
fn bench_varint_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("varint");
    g.sample_size(30);
    // A stream shaped like real entropy data: mostly small zigzagged
    // deltas, some mid-width values, occasional full-width outliers.
    let mut w = ByteWriter::new();
    let mut x = 0x243f_6a88_85a3_08d3u64; // fixed xorshift seed
    const N: usize = 4096;
    for _ in 0..N {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let v = match x % 16 {
            0 => x,
            1..=3 => x % 100_000,
            _ => x % 128,
        };
        w.put_varint(v);
    }
    let bytes = w.into_bytes();

    g.bench_function("decode_swar_4096", |bench| {
        bench.iter(|| {
            let mut r = ByteReader::new(black_box(&bytes));
            let mut acc = 0u64;
            while !r.is_at_end() {
                acc = acc.wrapping_add(r.get_varint().unwrap());
            }
            acc
        });
    });
    g.bench_function("decode_scalar_4096", |bench| {
        bench.iter(|| {
            let mut r = ByteReader::new(black_box(&bytes));
            let mut acc = 0u64;
            while !r.is_at_end() {
                acc = acc.wrapping_add(r.get_varint_scalar().unwrap());
            }
            acc
        });
    });
    g.finish();
}

/// The naive per-frame region-averaging double loop, inlined here as the
/// "before" shape (the library now routes everything through
/// [`RegionPlan`]; `tests/region_plan_props.rs` holds the two
/// bit-identical).
fn naive_region_averages(
    dc: &[f32],
    blocks_w: u32,
    blocks_h: u32,
    rows: u32,
    cols: u32,
    out: &mut [f32],
) {
    let overlap = |b: u32, r: u32, n: u32, total: u32| -> f64 {
        let r0 = f64::from(r) * f64::from(total) / f64::from(n);
        let r1 = f64::from(r + 1) * f64::from(total) / f64::from(n);
        (f64::from(b) + 1.0).min(r1) - f64::from(b).max(r0)
    };
    for rr in 0..rows {
        for rc in 0..cols {
            let mut sum = 0.0f64;
            let mut weight = 0.0f64;
            for by in 0..blocks_h {
                let wy = overlap(by, rr, rows, blocks_h);
                if wy <= 0.0 {
                    continue;
                }
                for bx in 0..blocks_w {
                    let wx = overlap(bx, rc, cols, blocks_w);
                    if wx <= 0.0 {
                        continue;
                    }
                    let w = wy * wx;
                    sum += w * f64::from(dc[(by * blocks_w + bx) as usize]);
                    weight += w;
                }
            }
            out[(rr * cols + rc) as usize] = (sum / weight) as f32;
        }
    }
}

fn bench_region_averaging(c: &mut Criterion) {
    let mut g = c.benchmark_group("region_avg");
    g.sample_size(30);
    // CIF-ish geometry from the ingest benches: 176×120 → 22×15 blocks,
    // 3×3 regions (paper Table I).
    let (bw, bh, rows, cols) = (22u32, 15u32, 3u32, 3u32);
    let dc: Vec<f32> = (0..bw * bh).map(|i| (i as f32 * 0.37).sin() * 100.0).collect();
    let mut out = vec![0.0f32; (rows * cols) as usize];
    let plan = RegionPlan::build(bw, bh, rows, cols);

    g.bench_function("planned_soa_22x15", |bench| {
        bench.iter(|| {
            plan.region_averages_into(black_box(&dc), &mut out);
            out[0]
        });
    });
    g.bench_function("naive_22x15", |bench| {
        bench.iter(|| {
            naive_region_averages(black_box(&dc), bw, bh, rows, cols, &mut out);
            out[0]
        });
    });
    g.finish();
}

/// The per-window sketch fold (`w` key-frame ids into `K` minima) and the
/// signature merge+count — the two engine kernels between decode and the
/// candidate stores.
fn bench_window_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("window");
    g.sample_size(30);
    let k = 800;
    let family = MinHashFamily::new(k, 1);
    let ids: Vec<u64> = (0..8u64).map(|i| i * 0x9e37_79b9 + 17).collect();
    let mut mins = vec![u64::MAX; k];

    g.bench_function("fold8_batched", |bench| {
        bench.iter(|| {
            mins.fill(u64::MAX);
            family.update_mins_batch(black_box(&ids), &mut mins);
            mins[0]
        });
    });
    g.bench_function("fold8_one_at_a_time", |bench| {
        bench.iter(|| {
            mins.fill(u64::MAX);
            for &id in black_box(&ids) {
                family.update_mins(id, &mut mins);
            }
            mins[0]
        });
    });
    // Steady-state cached fold: all 8 ids hit the hash-column cache
    // (the streaming common case — ~70% of key frames repeat the
    // previous cell id), so each fold is one element-wise min pass.
    let mut cache = HashColumnCache::new(&family, 64);
    for &id in &ids {
        cache.fold_min(&family, id, &mut mins);
    }
    g.bench_function("fold8_cached_hits", |bench| {
        bench.iter(|| {
            mins.fill(u64::MAX);
            for &id in black_box(&ids) {
                cache.fold_min(&family, id, &mut mins);
            }
            mins[0]
        });
    });

    let q = sketch_of(&family, 0, 50);
    let p1 = sketch_of(&family, 25, 60);
    let p2 = sketch_of(&family, 40, 70);
    let s1 = BitSig::encode(&p1, &q);
    let s2 = BitSig::encode(&p2, &q);
    let mut acc = s1.clone();

    g.bench_function("merge_count_fused", |bench| {
        bench.iter(|| {
            acc.clone_from(&s1);
            acc.or_with_counts(black_box(&s2))
        });
    });
    g.bench_function("merge_then_count", |bench| {
        bench.iter(|| {
            acc.clone_from(&s1);
            acc.or_with(black_box(&s2));
            (acc.count_less(), acc.count_equal())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sketch_ops,
    bench_bitsig_ops,
    bench_varint_decode,
    bench_region_averaging,
    bench_window_kernels
);
criterion_main!(benches);
