//! Figures 14 and 15 — precision and recall of the baselines on the
//! temporally re-ordered VS2 stream, across their distance thresholds.
//!
//! Expected shape (the paper's headline comparison): because both
//! baselines depend on temporal order, loosening the threshold trades
//! precision for recall without ever reaching a good operating point —
//! "before the precisions reach 50%, the recalls of Seq fall below 30%".
//! Warp tolerates local warps but not global re-ordering, so it fares
//! only slightly better.

use crate::table::{f2, f3};
use crate::{Ctx, Table};
use vdsms_baselines::BaselineKind;
use vdsms_workload::StreamKind;

/// Distance thresholds swept (mean L1 over d=5 normalized features).
const THETAS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0, 1.2];

/// Warp band half-widths, in key frames (the paper sweeps its `r`).
const WARP_RS: &[usize] = &[2, 4, 8];

/// Fig. 14: the Seq baseline.
pub fn run_seq(ctx: &mut Ctx) -> Table {
    let m = ctx.library().len();
    let mut table = Table::new(
        "Figure 14 — precision & recall of Seq vs distance threshold (VS2)",
        &["θ", "precision", "recall", "detections"],
    );
    table.note(format!("m = {m} queries, w = 5 s, aligned mean-L1 distance"));
    for &theta in THETAS {
        let (pr, _) = ctx.run_baseline(StreamKind::Vs2, BaselineKind::Seq, theta, 5.0, m);
        table.push(vec![
            f2(theta),
            f3(pr.precision),
            f3(pr.recall),
            pr.detections.to_string(),
        ]);
    }
    table
}

/// Fig. 15: the Warp baseline across band widths.
pub fn run_warp(ctx: &mut Ctx) -> Table {
    let m = ctx.library().len();
    let mut headers = vec!["θ".to_string()];
    for r in WARP_RS {
        headers.push(format!("r={r} p"));
        headers.push(format!("r={r} r"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Figure 15 — precision & recall of Warp vs distance threshold (VS2)",
        &header_refs,
    );
    table.note(format!("m = {m} queries, w = 5 s, banded DTW (r in key frames)"));
    for &theta in THETAS {
        let mut row = vec![f2(theta)];
        for &r in WARP_RS {
            let (pr, _) =
                ctx.run_baseline(StreamKind::Vs2, BaselineKind::Warp { r }, theta, 5.0, m);
            row.push(f3(pr.precision));
            row.push(f3(pr.recall));
        }
        table.push(row);
    }
    table
}
