// Fixture: malformed directives. Expected findings: invalid-suppression x3
// (missing reason, unknown rule, attempt to allow invalid-suppression)
// plus the surviving no-wall-clock finding the first directive failed
// to cover.
fn render_elapsed(frames: u64) -> u64 {
    // vdsms-lint: allow(no-wall-clock)
    let t0 = std::time::Instant::now();
    frames / t0.elapsed().as_secs().max(1)
}

// vdsms-lint: allow(made-up-rule) reason="no such rule"
// vdsms-lint: allow(invalid-suppression) reason="nice try"
