#![forbid(unsafe_code)]
//! # vdsms-lint — the workspace static-analysis gate
//!
//! PR 1's headline guarantee — detections and stats are **bit-identical
//! at any shard count** — and the paper's continuous-monitoring setting
//! (Yan/Ooi/Zhou, ICDE 2008, §VI assumes uninterrupted operation) are
//! properties of the *code*, not of any one test run. This crate enforces
//! them mechanically, in two layers sharing one hand-rolled lexer (no
//! external parser dependencies, consistent with the workspace's offline
//! stand-in policy):
//!
//! 1. **Per-file token rules** ([`rules`]) — pattern matchers for
//!    structural bans (order-randomized collections, wall-clock reads,
//!    std locks, unaudited `unsafe`).
//! 2. **Workspace semantic analyses** ([`flow`]) — a recursive-descent
//!    [`parser`] builds a lint-grade [`ast`], a [`symbols`] table and a
//!    [`callgraph`] link every file, and the analyses run over the whole
//!    workspace at once: interprocedural hot-path inference (panic- and
//!    allocation-freedom from `// vdsms-lint: entry` markers), lock-order
//!    deadlock detection, taint-based overflow checking and float-compare
//!    determinism.
//!
//! Both layers share inline suppressions with mandatory reasons,
//! per-crate configuration in `lint.toml`, and machine-readable JSON
//! output for CI. See [`rules`] for the rule catalog and suppression
//! syntax, or `vdsms-lint --explain <rule>` for any single rule. Run the
//! gate as `cargo run -p vdsms-lint --release` (what `ci.sh` does) or via
//! the operator-facing alias `vdsms lint`.
//!
//! The lint scope is each crate's `src/` tree: integration tests,
//! benches and examples are test/demo code by definition, and `#[cfg(test)]`
//! / `#[test]` items inside `src/` are excluded by the lexer's test-region
//! tracking.

pub mod ast;
pub mod cache;
pub mod callgraph;
pub mod config;
pub mod diag;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod summaries;
pub mod symbols;

pub use config::{parse_config, ConfigError, LintConfig, RuleSet};
pub use diag::{Diagnostic, Report};
pub use rules::{check_file, FileReport};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One source file handed to the lint driver, with the crate it belongs
/// to (rule switches are per crate) and its workspace-relative path
/// label (used verbatim in diagnostics).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Package name of the owning crate.
    pub crate_name: String,
    /// Workspace-relative path label (forward slashes).
    pub path: String,
    /// Full source text.
    pub source: String,
    /// Whether this is the crate root (`src/lib.rs` / `src/main.rs`),
    /// where `#![forbid(unsafe_code)]` is required.
    pub is_crate_root: bool,
}

/// Errors while driving a workspace lint run.
#[derive(Debug)]
pub enum LintError {
    /// I/O failure reading a file (path, error).
    Io(PathBuf, std::io::Error),
    /// `lint.toml` is missing or malformed.
    Config(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            LintError::Config(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for LintError {}

/// One discovered workspace crate.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml`.
    pub name: String,
    /// Crate directory (contains `Cargo.toml` and `src/`).
    pub dir: PathBuf,
}

/// Discover workspace members: the root package plus every `crates/*`
/// directory with a `Cargo.toml`. Sorted by name for deterministic
/// reports.
pub fn discover_crates(root: &Path) -> Result<Vec<CrateInfo>, LintError> {
    let mut out = Vec::new();
    let mut push_pkg = |dir: PathBuf| -> Result<(), LintError> {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() || !dir.join("src").is_dir() {
            return Ok(());
        }
        let text = std::fs::read_to_string(&manifest).map_err(|e| LintError::Io(manifest, e))?;
        if let Some(name) = package_name(&text) {
            out.push(CrateInfo { name, dir });
        }
        Ok(())
    };
    push_pkg(root.to_path_buf())?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            std::fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            push_pkg(dir)?;
        }
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

/// Extract `name = "…"` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(section) = line.strip_prefix('[') {
            in_package = section.trim_end_matches(']').trim() == "package";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// All `.rs` files under `dir`, recursively, sorted for determinism.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d).map_err(|e| LintError::Io(d.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| LintError::Io(d.clone(), e))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Extract one file's analysis summary: lex, parse (tolerantly) and
/// summarize. This is the expensive per-file phase the incremental
/// cache stores; [`lint_summaries`] consumes its output.
pub fn summarize_file(file: &SourceFile) -> summaries::FileSummary {
    let lexed = lexer::lex(&file.source);
    let ast = parser::parse_file(&lexed);
    summaries::summarize(file, &lexed, &ast)
}

/// The link phase: token-finding filtering per file, the cross-file
/// semantic analyses over summaries, then suppressions (one pass,
/// shared by both layers) and the canonical sort. `files[i]` and
/// `summaries[i]` must correspond; summaries may come from
/// [`summarize_file`] or the incremental cache — the result is
/// identical by construction.
pub fn lint_summaries(
    files: &[SourceFile],
    summaries: &[summaries::FileSummary],
    config: &LintConfig,
) -> Report {
    let mut per_file: Vec<Vec<Diagnostic>> = Vec::with_capacity(files.len());
    for (file, summary) in files.iter().zip(summaries) {
        let rules = config.rules_for(&file.crate_name);
        per_file.push(rules::filter_token_findings(file, &summary.token_findings, &rules));
    }

    // Workspace analyses emit diagnostics keyed by path label; route
    // them back to their files so suppressions apply uniformly.
    let by_path: BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.path.as_str(), i)).collect();
    for diag in flow::analyze(files, summaries, config) {
        if let Some(&i) = by_path.get(diag.file.as_str()) {
            per_file[i].push(diag);
        }
    }

    let mut report = Report::default();
    for ((file, summary), diags) in files.iter().zip(summaries).zip(per_file) {
        let fr = rules::apply_suppressions(&file.path, &summary.comments, diags);
        report.files_scanned += 1;
        report.suppressed += fr.suppressed;
        report.diagnostics.extend(fr.diagnostics);
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    report
}

/// Lint a set of in-memory sources as one workspace: summarize every
/// file, then link.
pub fn lint_sources(files: &[SourceFile], config: &LintConfig) -> Report {
    let summaries: Vec<summaries::FileSummary> = files.iter().map(summarize_file).collect();
    lint_summaries(files, &summaries, config)
}

/// Read every crate's `src/` tree under `root` into [`SourceFile`]s,
/// in the canonical (crate, path) order.
pub fn collect_workspace_files(root: &Path) -> Result<Vec<SourceFile>, LintError> {
    let mut files = Vec::new();
    for krate in discover_crates(root)? {
        let src = krate.dir.join("src");
        let crate_root_file = ["lib.rs", "main.rs"]
            .iter()
            .map(|f| src.join(f))
            .find(|p| p.is_file());
        for path in rust_files(&src)? {
            let source =
                std::fs::read_to_string(&path).map_err(|e| LintError::Io(path.clone(), e))?;
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile {
                crate_name: krate.name.clone(),
                path: label,
                source,
                is_crate_root: crate_root_file.as_deref() == Some(&path),
            });
        }
    }
    Ok(files)
}

/// Lint every crate's `src/` tree under `root` with `config`.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> Result<Report, LintError> {
    let files = collect_workspace_files(root)?;
    Ok(lint_sources(&files, config))
}

/// Like [`lint_workspace`], but reusing the on-disk caches under
/// [`cache::cache_dir`] (`$CARGO_TARGET_DIR`-aware); also returns the
/// hit/miss split.
///
/// Two layers: per-file summaries (only touched files re-parse) and a
/// whole-workspace report keyed by every file's cache key plus the
/// config fingerprint. On a fully-unchanged tree the second layer
/// skips summary loading and the link phase entirely, so a warm run
/// costs little more than hashing the sources.
pub fn lint_workspace_cached(
    root: &Path,
    config: &LintConfig,
) -> Result<(Report, cache::CacheStats), LintError> {
    let files = collect_workspace_files(root)?;
    let key = cache::report_key(&files, config);
    if let Some(report) = cache::load_cached_report(root, key) {
        // Nothing changed since the stored report was linked: every
        // file's summary would be reused and the link inputs are
        // identical, so the report itself is reusable byte-for-byte.
        let stats = cache::CacheStats { reused: files.len(), parsed: 0 };
        return Ok((report, stats));
    }
    let (summaries, stats) = cache::summarize_with_cache(root, &files);
    let report = lint_summaries(&files, &summaries, config);
    cache::store_cached_report(root, key, &report);
    Ok((report, stats))
}

/// Load and parse `<root>/lint.toml`.
pub fn load_config(root: &Path) -> Result<LintConfig, LintError> {
    let config_path = root.join("lint.toml");
    let text = std::fs::read_to_string(&config_path)
        .map_err(|e| LintError::Config(format!("{}: {e}", config_path.display())))?;
    parse_config(&text).map_err(|e| LintError::Config(e.to_string()))
}

/// Load `<root>/lint.toml` and lint the workspace — the entry point the
/// binary and the `vdsms lint` CLI subcommand share.
pub fn lint_workspace_with_default_config(root: &Path) -> Result<Report, LintError> {
    let config = load_config(root)?;
    lint_workspace(root, &config)
}

/// Walk upward from `start` to the first directory containing
/// `lint.toml` (the workspace root).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_workspace_manifest_shapes() {
        assert_eq!(
            package_name("[package]\nname = \"vdsms-core\"\nversion.workspace = true\n"),
            Some("vdsms-core".to_string())
        );
        // `name` under a different section must not match.
        assert_eq!(package_name("[workspace]\nname = \"nope\"\n"), None);
        // Root manifest: [workspace] first, then [package].
        assert_eq!(
            package_name("[workspace]\nmembers = [\"crates/*\"]\n[package]\nname = \"vdsms\"\n"),
            Some("vdsms".to_string())
        );
    }
}
