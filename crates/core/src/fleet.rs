//! Multi-stream monitoring: one query catalogue, many concurrent streams.
//!
//! The paper's setting is explicitly multi-stream ("there are many
//! concurrent video streams and for each stream, there could be many
//! continuous video copy monitoring queries"). A [`Fleet`] manages one
//! [`Detector`] per stream while keeping subscriptions synchronized
//! across all of them, and aggregates statistics and detections per
//! stream.
//!
//! Each detector keeps its own candidate state and HQ index copy —
//! candidate lists are inherently per-stream, and the index is small
//! (`m × K` triples) next to the stream state, so replication is cheaper
//! than locking a shared index on the per-window hot path.

use crate::config::DetectorConfig;
use crate::detection::Detection;
use crate::engine::Detector;
use crate::query::{Query, QueryId, QuerySet};
use crate::stats::Stats;
use std::collections::HashMap;

/// Identifier of one monitored stream.
pub type StreamId = u32;

/// A detection tagged with the stream it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDetection {
    /// Which stream matched.
    pub stream_id: StreamId,
    /// The detection.
    pub detection: Detection,
}

/// A fleet of per-stream detectors sharing one query catalogue.
pub struct Fleet {
    cfg: DetectorConfig,
    /// The catalogue; new streams are seeded from it.
    catalogue: QuerySet,
    streams: HashMap<StreamId, Detector>,
}

impl Fleet {
    /// Create an empty fleet.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DetectorConfig) -> Fleet {
        cfg.validate();
        Fleet { cfg, catalogue: QuerySet::new(), streams: HashMap::new() }
    }

    /// The configuration every stream's detector uses.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Number of monitored streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Number of subscribed queries.
    pub fn query_count(&self) -> usize {
        self.catalogue.len()
    }

    /// Start monitoring a new stream; it immediately watches every
    /// subscribed query.
    ///
    /// # Panics
    /// Panics if the stream id is already monitored.
    pub fn add_stream(&mut self, stream_id: StreamId) {
        assert!(
            !self.streams.contains_key(&stream_id),
            "stream {stream_id} already monitored"
        );
        self.streams.insert(stream_id, Detector::new(self.cfg, self.catalogue.clone()));
    }

    /// Stop monitoring a stream; returns its final statistics, or `None`
    /// if the id was not monitored.
    pub fn remove_stream(&mut self, stream_id: StreamId) -> Option<Stats> {
        self.streams.remove(&stream_id).map(|d| d.stats().clone())
    }

    /// Subscribe a query on every stream (and for all future streams).
    ///
    /// # Panics
    /// Panics on duplicate query id or sketch `K` mismatch.
    pub fn subscribe(&mut self, query: Query) {
        self.catalogue.insert(query.clone());
        for det in self.streams.values_mut() {
            det.subscribe(query.clone());
        }
    }

    /// Unsubscribe a query everywhere. Returns `false` if it was not
    /// subscribed.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        let found = self.catalogue.remove(id).is_some();
        for det in self.streams.values_mut() {
            det.unsubscribe(id);
        }
        found
    }

    /// Feed one key frame of one stream.
    ///
    /// # Panics
    /// Panics if the stream is not monitored.
    pub fn push_keyframe(
        &mut self,
        stream_id: StreamId,
        frame_index: u64,
        cell_id: u64,
    ) -> Vec<StreamDetection> {
        let det = self
            .streams
            .get_mut(&stream_id)
            .unwrap_or_else(|| panic!("stream {stream_id} not monitored"));
        det.push_keyframe(frame_index, cell_id)
            .into_iter()
            .map(|detection| StreamDetection { stream_id, detection })
            .collect()
    }

    /// Flush every stream's partial window (end of monitoring epoch).
    pub fn finish_all(&mut self) -> Vec<StreamDetection> {
        let mut out = Vec::new();
        for (&stream_id, det) in &mut self.streams {
            out.extend(
                det.finish().into_iter().map(|detection| StreamDetection { stream_id, detection }),
            );
        }
        out
    }

    /// Per-stream statistics.
    pub fn stats(&self, stream_id: StreamId) -> Option<&Stats> {
        self.streams.get(&stream_id).map(|d| d.stats())
    }

    /// Aggregate statistics across all streams (counter-wise sum; peaks
    /// take the max).
    pub fn total_stats(&self) -> Stats {
        let mut total = Stats::default();
        for det in self.streams.values() {
            let s = det.stats();
            total.windows += s.windows;
            total.sketch_compares += s.sketch_compares;
            total.sketch_combines += s.sketch_combines;
            total.sig_encodes += s.sig_encodes;
            total.sig_ors += s.sig_ors;
            total.sig_compares += s.sig_compares;
            total.index_probes += s.index_probes;
            total.index_row_searches += s.index_row_searches;
            total.lemma2_prunes += s.lemma2_prunes;
            total.length_expiries += s.length_expiries;
            total.detections += s.detections;
            total.live_signature_sum += s.live_signature_sum;
            total.live_signature_peak = total.live_signature_peak.max(s.live_signature_peak);
            total.live_candidate_sum += s.live_candidate_sum;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_sketch::MinHashFamily;

    const K: usize = 64;

    fn cfg() -> DetectorConfig {
        DetectorConfig { k: K, window_keyframes: 4, ..Default::default() }
    }

    fn family() -> MinHashFamily {
        MinHashFamily::new(K, crate::config::DEFAULT_HASH_SEED)
    }

    fn query(id: QueryId, base: u64) -> Query {
        let ids: Vec<u64> = (base..base + 24).collect();
        Query::from_cell_ids(id, &family(), &ids)
    }

    /// Feed a stream whose frames `range` carry query `base` content.
    fn feed(
        fleet: &mut Fleet,
        stream: StreamId,
        copy_base: u64,
        copy_at: std::ops::Range<u64>,
    ) -> Vec<StreamDetection> {
        let mut out = Vec::new();
        for i in 0..80u64 {
            let id = if copy_at.contains(&i) {
                copy_base + (i - copy_at.start) % 24
            } else {
                500_000 + u64::from(stream) * 1000 + i
            };
            out.extend(fleet.push_keyframe(stream, i, id));
        }
        out
    }

    #[test]
    fn per_stream_detection_with_shared_catalogue() {
        let mut fleet = Fleet::new(cfg());
        fleet.subscribe(query(1, 1000));
        fleet.subscribe(query(2, 2000));
        fleet.add_stream(10);
        fleet.add_stream(20);
        assert_eq!(fleet.stream_count(), 2);
        assert_eq!(fleet.query_count(), 2);

        // Stream 10 airs query 1; stream 20 airs query 2.
        let d10 = feed(&mut fleet, 10, 1000, 30..54);
        let d20 = feed(&mut fleet, 20, 2000, 40..64);
        assert!(d10.iter().any(|d| d.detection.query_id == 1 && d.stream_id == 10), "{d10:?}");
        assert!(d10.iter().all(|d| d.detection.query_id != 2));
        assert!(d20.iter().any(|d| d.detection.query_id == 2 && d.stream_id == 20), "{d20:?}");
    }

    #[test]
    fn late_stream_sees_existing_catalogue() {
        let mut fleet = Fleet::new(cfg());
        fleet.subscribe(query(7, 9000));
        fleet.add_stream(1); // added after the subscription
        let dets = feed(&mut fleet, 1, 9000, 20..44);
        assert!(dets.iter().any(|d| d.detection.query_id == 7));
    }

    #[test]
    fn subscribe_and_unsubscribe_propagate_to_all_streams() {
        let mut fleet = Fleet::new(cfg());
        fleet.add_stream(1);
        fleet.add_stream(2);
        fleet.subscribe(query(5, 4000));
        assert!(fleet.unsubscribe(5));
        assert!(!fleet.unsubscribe(5));
        for s in [1, 2] {
            let dets = feed(&mut fleet, s, 4000, 10..34);
            assert!(dets.is_empty(), "stream {s}: {dets:?}");
        }
    }

    #[test]
    fn stats_aggregate_across_streams() {
        let mut fleet = Fleet::new(cfg());
        fleet.subscribe(query(1, 1000));
        fleet.add_stream(1);
        fleet.add_stream(2);
        feed(&mut fleet, 1, 1000, 30..54);
        feed(&mut fleet, 2, 7777, 0..0); // clean stream
        fleet.finish_all();
        let total = fleet.total_stats();
        assert_eq!(total.windows, fleet.stats(1).unwrap().windows + fleet.stats(2).unwrap().windows);
        assert!(total.detections >= 1);
        assert_eq!(fleet.remove_stream(2).unwrap().detections, 0);
        assert_eq!(fleet.stream_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already monitored")]
    fn duplicate_stream_rejected() {
        let mut fleet = Fleet::new(cfg());
        fleet.add_stream(1);
        fleet.add_stream(1);
    }
}
