//! Offline query sketching and persistence.
//!
//! The paper notes that "the sketches of the query sequences can be
//! min-hashed offline" (Section V-C.1). In production that means a batch
//! job fingerprints and sketches the protected catalogue once, and the
//! monitoring nodes just load the sketch file — they never touch the
//! query videos. Each query's footprint is `K` u64 minima (6.4 KB at
//! K = 800), versus megabytes of video.
//!
//! ```text
//! cargo run --release --example offline_sketching
//! ```

use vdsms::codec::{Encoder, EncoderConfig};
use vdsms::core::{load_queries, save_queries, Detector, Query, QuerySet};
use vdsms::features::{FeatureConfig, FeatureExtractor, FingerprintStream};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::Fps;
use vdsms::DetectorConfig;

const ENC: EncoderConfig = EncoderConfig { gop: 5, quality: 80, motion_search: true };

fn spec(seed: u64) -> SourceSpec {
    SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    }
}

fn main() {
    let cfg = DetectorConfig { window_keyframes: 6, ..Default::default() };
    let family = Detector::family_for(&cfg);
    let extractor = FeatureExtractor::new(FeatureConfig::default());

    // --- The batch job: sketch the catalogue offline.
    let mut catalogue = QuerySet::new();
    let mut total_video_bytes = 0usize;
    for id in 0..10u32 {
        let clip = ClipGenerator::new(spec(3000 + u64::from(id))).clip(20.0);
        let bytes = Encoder::encode_clip(&clip, ENC);
        total_video_bytes += bytes.len();
        let mut ingest = FingerprintStream::new(&bytes, extractor.clone()).unwrap();
        let mut cells = Vec::new();
        while let Some((_, cell)) = ingest.next_fingerprint().unwrap() {
            cells.push(cell);
        }
        catalogue.insert(Query::from_cell_ids(id, &family, &cells));
    }
    let sketch_file = save_queries(&catalogue);
    let path = std::env::temp_dir().join("vdsms_catalogue.vdsq");
    std::fs::write(&path, &sketch_file).expect("write sketch file");
    println!(
        "batch job: sketched {} queries; {} KiB of video -> {} KiB sketch file at {}",
        catalogue.len(),
        total_video_bytes / 1024,
        sketch_file.len() / 1024,
        path.display()
    );

    // --- The monitoring node: load sketches, never sees the videos.
    let loaded = std::fs::read(&path).expect("read sketch file");
    let queries = load_queries(&loaded, cfg.k).expect("valid sketch file");
    let mut detector = Detector::new(cfg, queries);

    // A broadcast airing catalogue item 4.
    let mut broadcast = ClipGenerator::new(spec(900)).clip(25.0);
    broadcast.append(ClipGenerator::new(spec(3004)).clip(20.0));
    broadcast.append(ClipGenerator::new(spec(901)).clip(15.0));
    let stream_bytes = Encoder::encode_clip(&broadcast, ENC);

    // The fused ingestion front-end: bytes -> (frame, cell) with pooled
    // buffers, straight into the detector.
    let mut dets = Vec::new();
    let mut ingest = FingerprintStream::new(&stream_bytes, extractor).unwrap();
    while let Some((frame_index, cell)) = ingest.next_fingerprint().unwrap() {
        dets.extend(detector.push_keyframe(frame_index, cell));
    }
    dets.extend(detector.finish());

    assert!(dets.iter().any(|d| d.query_id == 4), "catalogue item 4 must be found");
    for d in &dets {
        println!(
            "monitoring node: detected catalogue item {} at frames {}..{} (sim {:.2})",
            d.query_id, d.start_frame, d.end_frame, d.similarity
        );
    }
    std::fs::remove_file(&path).ok();
}
