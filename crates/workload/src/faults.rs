//! Seeded bitstream fault injection.
//!
//! Real broadcast monitoring sees damaged input as a matter of course —
//! signal hiccups, splice glitches, truncated captures. [`inject_faults`]
//! reproduces those failure modes deterministically: a [`FaultSpec`]
//! (seed + per-record rates) mutates an encoded bitstream with bit
//! flips, whole-record drops, mid-stream byte deletion/insertion and
//! truncation, and the returned [`FaultReport`] says exactly which
//! original records were damaged — so robustness tests can assert that
//! detection survives *outside* the damaged spans, not merely that
//! nothing panics.
//!
//! The stream header is never mutated: a stream whose geometry is gone
//! is unopenable by design (the decoder needs the block grid), and the
//! CLI's multi-stream monitor covers that failure class by skipping the
//! stream and reporting it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vdsms_codec::bitio::ByteReader;
use vdsms_codec::StreamHeader;

/// Deterministic per-record fault model. All rates are probabilities in
/// `[0, 1]` evaluated independently per frame record; the same spec on
/// the same bytes always yields the same mutation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// RNG seed; every mutation decision derives from it.
    pub seed: u64,
    /// Per-record probability of flipping one random bit.
    pub flip_rate: f64,
    /// Per-record probability of dropping the whole record.
    pub drop_rate: f64,
    /// Per-record probability of deleting one random interior byte.
    pub delete_rate: f64,
    /// Per-record probability of inserting one random byte.
    pub insert_rate: f64,
    /// Per-record probability of truncating the stream mid-record (the
    /// first hit ends the stream).
    pub truncate_rate: f64,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            seed: 0,
            flip_rate: 0.0,
            drop_rate: 0.0,
            delete_rate: 0.0,
            insert_rate: 0.0,
            truncate_rate: 0.0,
        }
    }
}

impl FaultSpec {
    /// Parse a `key=value` comma list, e.g.
    /// `seed=7,flip=0.02,drop=0.01,delete=0.005,insert=0.005,truncate=0.001`.
    /// Unmentioned rates stay 0; `seed` defaults to 0. Unknown keys,
    /// malformed numbers and rates outside `[0, 1]` are errors.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not key=value"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 =
                    v.parse().map_err(|_| format!("fault rate `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate `{v}` is outside [0, 1]"));
                }
                Ok(r)
            };
            match key.trim() {
                "seed" => {
                    spec.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault seed `{value}` is not an integer"))?;
                }
                "flip" => spec.flip_rate = rate(value.trim())?,
                "drop" => spec.drop_rate = rate(value.trim())?,
                "delete" => spec.delete_rate = rate(value.trim())?,
                "insert" => spec.insert_rate = rate(value.trim())?,
                "truncate" => spec.truncate_rate = rate(value.trim())?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(spec)
    }

    /// The same fault model with a different seed — the CLI derives one
    /// stream-specific seed per monitored file so multi-stream runs do
    /// not damage every stream at identical positions.
    pub fn with_seed(mut self, seed: u64) -> FaultSpec {
        self.seed = seed;
        self
    }

    /// Whether any fault can occur under this spec.
    pub fn is_active(&self) -> bool {
        self.flip_rate > 0.0
            || self.drop_rate > 0.0
            || self.delete_rate > 0.0
            || self.insert_rate > 0.0
            || self.truncate_rate > 0.0
    }
}

/// What [`inject_faults`] did to a bitstream, in *original* record
/// indices (for this codec one record is one frame, so these are frame
/// indices of the pre-fault stream).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// The mutated bitstream.
    pub bytes: Vec<u8>,
    /// Frame records in the original stream.
    pub records_seen: u64,
    /// Records hit by at least one fault.
    pub records_faulted: u64,
    /// Records whose bytes were mutated in place (flip/delete/insert) —
    /// the decoder's recovery may lose this record and must resync.
    pub damaged_records: Vec<u64>,
    /// Records removed entirely. Later frames keep their bytes but shift
    /// one index earlier per preceding drop (the decoder cannot see a
    /// clean removal), so position-sensitive assertions must allow that
    /// drift.
    pub dropped_records: Vec<u64>,
    /// Record at which the stream was cut short, if any; every record
    /// from here on is gone.
    pub truncated_at_record: Option<u64>,
}

impl FaultReport {
    /// Number of index positions by which frames after `record` have
    /// shifted toward zero (dropped records before it).
    pub fn shift_at(&self, record: u64) -> u64 {
        self.dropped_records.iter().filter(|&&r| r < record).count() as u64
    }

    /// Whether the original frame range `[start, end)` is entirely
    /// untouched: no mutated or dropped record inside it and not past a
    /// truncation point.
    pub fn range_is_clean(&self, start: u64, end: u64) -> bool {
        let hit = |r: &u64| *r >= start && *r < end;
        !self.damaged_records.iter().any(hit)
            && !self.dropped_records.iter().any(hit)
            && self.truncated_at_record.is_none_or(|t| end <= t)
    }
}

/// Apply `spec` to an encoded bitstream. The header is copied verbatim;
/// each frame record is then dropped, mutated or truncated according to
/// seeded coin flips. Returns the mutated bytes plus the damage map.
///
/// # Panics
/// Panics if `bytes` does not start with a parseable stream header —
/// fault injection is a test/bench harness for streams the caller just
/// encoded, not a parser for arbitrary input.
pub fn inject_faults(bytes: &[u8], spec: &FaultSpec) -> FaultReport {
    let mut r = ByteReader::new(bytes);
    StreamHeader::read(&mut r).expect("inject_faults needs a valid stream header");
    let header_len = r.position();

    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xfa17_5eed);
    let mut report = FaultReport::default();
    report.bytes.extend_from_slice(&bytes[..header_len]);

    let mut record = 0u64;
    while !r.is_at_end() {
        // Record framing: type(u8) quality(u8) payload_len(u32le).
        let start = r.position();
        let ok = r.skip(2).is_ok();
        let payload_len = if ok { r.get_u32_le().unwrap_or(0) } else { 0 };
        if !ok || r.skip(payload_len as usize).is_err() {
            // The input itself is malformed past this point; pass the
            // tail through untouched.
            report.bytes.extend_from_slice(&bytes[start..]);
            break;
        }
        let end = r.position();
        report.records_seen += 1;

        let mut faulted = false;
        if spec.drop_rate > 0.0 && rng.gen_bool(spec.drop_rate) {
            report.dropped_records.push(record);
            report.records_faulted += 1;
            record += 1;
            continue;
        }

        let emitted_start = report.bytes.len();
        report.bytes.extend_from_slice(&bytes[start..end]);
        let span = emitted_start..report.bytes.len();

        if spec.flip_rate > 0.0 && rng.gen_bool(spec.flip_rate) {
            let at = rng.gen_range(span.clone());
            let bit = rng.gen_range(0u32..8);
            report.bytes[at] ^= 1 << bit;
            faulted = true;
        }
        if spec.delete_rate > 0.0 && rng.gen_bool(spec.delete_rate) {
            let at = rng.gen_range(emitted_start..report.bytes.len());
            report.bytes.remove(at);
            faulted = true;
        }
        if spec.insert_rate > 0.0 && rng.gen_bool(spec.insert_rate) {
            let at = rng.gen_range(emitted_start..=report.bytes.len());
            report.bytes.insert(at, rng.gen::<u8>());
            faulted = true;
        }
        if spec.truncate_rate > 0.0 && rng.gen_bool(spec.truncate_rate) {
            let keep = rng.gen_range(emitted_start..report.bytes.len());
            report.bytes.truncate(keep);
            report.truncated_at_record = Some(record);
            report.records_faulted += 1;
            if faulted {
                report.damaged_records.push(record);
            }
            return report;
        }
        if faulted {
            report.damaged_records.push(record);
            report.records_faulted += 1;
        }
        record += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_codec::{Encoder, EncoderConfig};
    use vdsms_video::source::{ClipGenerator, SourceSpec};
    use vdsms_video::Fps;

    fn encoded(seed: u64, seconds: f64) -> Vec<u8> {
        let clip = ClipGenerator::new(SourceSpec {
            width: 48,
            height: 32,
            fps: Fps::integer(10),
            seed,
            min_scene_s: 1.0,
            max_scene_s: 2.0,
            motifs: None,
        })
        .clip(seconds);
        Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true })
    }

    #[test]
    fn parse_round_trips_every_key() {
        let spec =
            FaultSpec::parse("seed=7, flip=0.5, drop=0.25, delete=0.125, insert=1, truncate=0")
                .unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.flip_rate, 0.5);
        assert_eq!(spec.drop_rate, 0.25);
        assert_eq!(spec.delete_rate, 0.125);
        assert_eq!(spec.insert_rate, 1.0);
        assert_eq!(spec.truncate_rate, 0.0);
        assert!(spec.is_active());
        assert!(!FaultSpec::parse("seed=9").unwrap().is_active());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultSpec::parse("flip").is_err());
        assert!(FaultSpec::parse("flip=two").is_err());
        assert!(FaultSpec::parse("flip=1.5").is_err());
        assert!(FaultSpec::parse("warp=0.1").is_err());
        assert!(FaultSpec::parse("seed=-3").is_err());
    }

    #[test]
    fn zero_rates_are_the_identity() {
        let bytes = encoded(1, 2.0);
        let report = inject_faults(&bytes, &FaultSpec::default());
        assert_eq!(report.bytes, bytes);
        assert_eq!(report.records_faulted, 0);
        assert_eq!(report.records_seen, 20);
        assert!(report.range_is_clean(0, report.records_seen));
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let bytes = encoded(2, 3.0);
        let spec = FaultSpec { seed: 42, flip_rate: 0.2, drop_rate: 0.1, ..Default::default() };
        let a = inject_faults(&bytes, &spec);
        let b = inject_faults(&bytes, &spec);
        assert_eq!(a, b);
        let c = inject_faults(&bytes, &spec.with_seed(43));
        assert_ne!(a.bytes, c.bytes, "different seeds must damage differently");
    }

    #[test]
    fn damage_map_matches_the_mutation() {
        let bytes = encoded(3, 4.0);
        let spec = FaultSpec {
            seed: 5,
            flip_rate: 0.3,
            drop_rate: 0.1,
            delete_rate: 0.1,
            insert_rate: 0.1,
            ..Default::default()
        };
        let report = inject_faults(&bytes, &spec);
        assert_eq!(report.records_seen, 40);
        assert!(report.records_faulted >= 1, "{report:?}");
        assert_ne!(report.bytes, bytes);
        // Every reported index is a real record index; drops and damage
        // are disjoint (a dropped record has no bytes left to mutate).
        for &d in &report.damaged_records {
            assert!(d < 40);
            assert!(!report.dropped_records.contains(&d));
        }
        // The header survives verbatim.
        let mut r = ByteReader::new(&bytes);
        StreamHeader::read(&mut r).unwrap();
        let hl = r.position();
        assert_eq!(report.bytes[..hl], bytes[..hl]);
        // Clean ranges really are clean.
        let all: Vec<u64> = report
            .damaged_records
            .iter()
            .chain(&report.dropped_records)
            .copied()
            .collect();
        for r in 0..40u64 {
            assert_eq!(report.range_is_clean(r, r + 1), !all.contains(&r), "record {r}");
        }
    }

    #[test]
    fn truncation_shortens_the_stream_and_ends_the_report() {
        let bytes = encoded(4, 4.0);
        let spec = FaultSpec { seed: 11, truncate_rate: 0.2, ..Default::default() };
        let report = inject_faults(&bytes, &spec);
        let cut = report.truncated_at_record.expect("0.2 over 40 records must truncate");
        assert!(report.bytes.len() < bytes.len());
        assert!(cut < 40);
        assert!(!report.range_is_clean(cut, cut + 1));
        assert!(report.range_is_clean(0, cut));
    }

    #[test]
    fn shift_at_counts_prior_drops() {
        let report = FaultReport {
            dropped_records: vec![3, 10, 20],
            ..Default::default()
        };
        assert_eq!(report.shift_at(0), 0);
        assert_eq!(report.shift_at(4), 1);
        assert_eq!(report.shift_at(11), 2);
        assert_eq!(report.shift_at(25), 3);
    }
}
