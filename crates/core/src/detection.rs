//! Detection records emitted by the engine.

use crate::query::QueryId;

/// One reported copy: a candidate subsequence of the stream whose
/// estimated similarity to a query reached the threshold `δ`
/// (Definition 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The matched query.
    pub query_id: QueryId,
    /// Stream frame index of the first frame of the candidate sequence.
    pub start_frame: u64,
    /// Stream frame index of the last frame of the candidate sequence
    /// (inclusive; this is also the position at which the detection fired,
    /// the `Q_i.p` of the paper's evaluation rule).
    pub end_frame: u64,
    /// Candidate length in basic windows.
    pub windows: usize,
    /// Estimated similarity at detection time.
    pub similarity: f64,
}

impl Detection {
    /// The paper's match position `Q_i.p`: the stream position where the
    /// copy was declared.
    pub fn position(&self) -> u64 {
        self.end_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_is_end_frame() {
        let d = Detection {
            query_id: 3,
            start_frame: 100,
            end_frame: 260,
            windows: 4,
            similarity: 0.85,
        };
        assert_eq!(d.position(), 260);
    }
}
