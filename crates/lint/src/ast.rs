//! The syntax tree produced by [`crate::parser`].
//!
//! This is a *lint-grade* AST, not a compiler-grade one: it keeps exactly
//! the structure the workspace analyses need — items, function bodies,
//! statements, and an expression tree rich enough to see method calls,
//! paths, macro invocations, binary arithmetic, casts and block scopes —
//! and collapses everything else (types, generics, patterns, visibility)
//! into either skipped token runs or [`ExprKind::Unknown`]. The parser is
//! tolerant by construction: code it cannot understand degrades analysis
//! coverage, never correctness of what *was* parsed, and never panics.

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Pos {
    /// Convenience constructor.
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct AstFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    /// A free or associated function.
    Fn(FnDef),
    /// An `impl` block (inherent or trait); `self_ty` is the last path
    /// segment of the implemented-for type.
    Impl {
        /// Simple name of the type being implemented.
        self_ty: String,
        /// Items inside the block (functions, mostly).
        items: Vec<Item>,
    },
    /// An inline `mod name { … }`.
    Mod {
        /// Module name.
        name: String,
        /// Items inside the module.
        items: Vec<Item>,
    },
    /// A `trait` definition; default method bodies are kept.
    Trait {
        /// Trait name (used as `self_ty` for its default methods).
        name: String,
        /// Items inside the trait.
        items: Vec<Item>,
    },
    /// Anything else (struct, enum, use, const, static, type, macro …).
    Other,
}

/// A function definition.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Position of the `fn` keyword.
    pub pos: Pos,
    /// Whether the function is test-only code (`#[test]` / `#[cfg(test)]`
    /// region, as tracked by the lexer).
    pub is_test: bool,
    /// Entry marker, if a `// vdsms-lint: entry` directive annotates this
    /// function (root of the interprocedural hot path). `Some(rules)`
    /// carries the rule ids a scoped `entry(rule, …)` form names; an
    /// empty list is the bare `entry` form and seeds every hot-path
    /// rule.
    pub entry: Option<Vec<String>>,
    /// Parameter names, best-effort (identifier patterns only).
    pub params: Vec<String>,
    /// Whether the declared return type is a `Result` (by name: the
    /// first type path mentions `Result` or an alias ending in
    /// `Result`). Drives `no-swallowed-error`.
    pub returns_result: bool,
    /// Body statements; `None` for bodyless declarations (trait methods,
    /// extern fns).
    pub body: Option<Vec<Stmt>>,
}

impl FnDef {
    /// Whether any entry marker (scoped or not) annotates this function.
    pub fn is_entry(&self) -> bool {
        self.entry.is_some()
    }

    /// Whether this function seeds the hot set of `rule`: true for the
    /// bare `entry` form, or a scoped `entry(…)` form naming `rule`.
    pub fn entry_covers(&self, rule: &str) -> bool {
        match &self.entry {
            Some(rules) => rules.is_empty() || rules.iter().any(|r| r == rule),
            None => false,
        }
    }
}

/// One statement in a block.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init>;` — `name` is kept only for single-identifier
    /// patterns (what the local dataflow needs).
    Let {
        /// Bound identifier, if the pattern is a plain `ident` /
        /// `mut ident`.
        name: Option<String>,
        /// Bound identifiers when the pattern is a flat tuple of plain
        /// idents — `let (tx, rx) = …` — in source order (`_` kept as
        /// `_`). Empty for every other pattern shape. The channel
        /// endpoint tracking needs both names of an `mpsc` pair.
        tuple: Vec<String>,
        /// Initializer expression, if present.
        init: Option<Expr>,
        /// Position of the `let`.
        pos: Pos,
    },
    /// An expression statement. The flag records whether a `;`
    /// terminated it: a semicolon discards the value, while a
    /// semicolon-less tail is the enclosing block's value (the
    /// delegation idiom `fn send(…) -> … { self.0.send(v) }` must not
    /// read as a discarded send).
    Expr(Expr, bool),
    /// A nested item (fn/struct/… defined inside a block).
    Item(Box<Item>),
}

/// Binary operators the analyses distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `==`, `!=`, `<`, `>`, `<=`, `>=` (not distinguished further)
    Cmp,
}

impl BinOp {
    /// Whether the operator can overflow on fixed-width integers (the
    /// operators `no-unchecked-arith` polices).
    pub fn can_overflow(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl)
    }

    /// Source text of the operator, for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Cmp => "<cmp>",
        }
    }
}

/// An expression with its source position.
#[derive(Debug)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Position of the expression's first token (for method calls, the
    /// method name's position — that is where diagnostics point).
    pub pos: Pos,
}

/// Expression kinds.
#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c` or a plain identifier (including `self`, `Self`).
    Path(Vec<String>),
    /// Any literal. Numeric literals keep their source text (empty for
    /// strings/chars, which the analyses treat as opaque).
    Lit(String),
    /// Unary `-x`, `!x`, `*x`.
    Unary(Box<Expr>),
    /// `&x` / `&mut x`.
    Ref(Box<Expr>),
    /// `lhs <op> rhs`.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `target = value` or `target <op>= value`.
    Assign {
        /// Assignment target.
        target: Box<Expr>,
        /// Compound operator, if any (`+=` → `Add`).
        op: Option<BinOp>,
        /// Assigned value.
        value: Box<Expr>,
    },
    /// `callee(args…)` where `callee` is usually a path.
    Call {
        /// The called expression.
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv.method(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `name!(args…)` / `name![…]` / `name!{…}` — arguments are parsed
    /// as expressions where possible, else dropped.
    MacroCall {
        /// Macro name (last path segment).
        name: String,
        /// Parsed arguments (best effort).
        args: Vec<Expr>,
    },
    /// `base.field` (also tuple fields `x.0`).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name (or tuple index as text).
        name: String,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `expr as ty`.
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// Target type, as source text (e.g. `u64`, `*const u8`).
        ty: String,
    },
    /// `expr?`.
    Try(Box<Expr>),
    /// `{ stmts }`.
    Block(Vec<Stmt>),
    /// `if cond { then } else { alt }` (`alt` is a Block or another If).
    If {
        /// Condition (struct literals disallowed inside, as in Rust).
        cond: Box<Expr>,
        /// Then-block statements.
        then: Vec<Stmt>,
        /// Else branch, if any.
        alt: Option<Box<Expr>>,
    },
    /// `while cond { body }` (including `while let`).
    While {
        /// Loop condition.
        cond: Box<Expr>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `loop { body }`.
    Loop {
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `for pat in iter { body }`.
    For {
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `match scrutinee { pat => expr, … }` — patterns and guards are
    /// skipped; arm values are kept.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arm value expressions.
        arms: Vec<Expr>,
    },
    /// `|args| body` / `move |args| body`.
    Closure(Box<Expr>),
    /// `Path { field: expr, … }`.
    Struct {
        /// Struct path.
        path: Vec<String>,
        /// Field value expressions (shorthand fields become paths).
        fields: Vec<Expr>,
    },
    /// `(a, b, …)` tuples and `[a, b, …]` arrays.
    Tuple(Vec<Expr>),
    /// `lo .. hi` / `lo ..= hi` with either side optional.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// `return expr?`.
    Return(Option<Box<Expr>>),
    /// `break expr?` / `continue` (labels dropped, break values kept).
    Jump(Option<Box<Expr>>),
    /// Anything the parser could not classify (consumed tolerantly).
    Unknown,
}

impl Expr {
    /// The path segments if this is a plain path expression.
    pub fn as_path(&self) -> Option<&[String]> {
        match &self.kind {
            ExprKind::Path(p) => Some(p),
            _ => None,
        }
    }

    /// The last identifier of a receiver chain: `self.streams` → `streams`,
    /// `shard.sink` → `sink`, `x` → `x`. Used as the lock identity by the
    /// lock-order analysis. `None` when the chain has no trailing name
    /// (calls, literals, …).
    pub fn chain_name(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Path(p) => p.last().map(String::as_str),
            ExprKind::Field { name, .. } => Some(name),
            ExprKind::Ref(e) | ExprKind::Unary(e) | ExprKind::Try(e) => e.chain_name(),
            ExprKind::Index { base, .. } => base.chain_name(),
            _ => None,
        }
    }

    /// The numeric value of an integer literal, if this expression is one
    /// (`_` separators and type suffixes tolerated; hex/oct/bin accepted).
    pub fn int_value(&self) -> Option<u64> {
        let ExprKind::Lit(text) = &self.kind else { return None };
        let clean: String = text.chars().filter(|c| *c != '_').collect();
        let (radix, rest) = if let Some(r) = clean.strip_prefix("0x") {
            (16, r)
        } else if let Some(r) = clean.strip_prefix("0o") {
            (8, r)
        } else if let Some(r) = clean.strip_prefix("0b") {
            (2, r)
        } else {
            (10, clean.as_str())
        };
        // A type suffix (u8/i32/usize/…) starts at the first char that is
        // not a digit of the radix; floats (a `.` or exponent) bail out
        // the same way via from_str_radix failing on the prefix.
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_digit(radix))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 {
            return None;
        }
        u64::from_str_radix(&rest[..end], radix).ok()
    }
}

/// Walk every expression in a statement list, depth-first, including
/// nested blocks and closures — but **not** nested items (a nested `fn`
/// is its own symbol, analysed separately).
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    for s in stmts {
        match s {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
            }
            Stmt::Expr(e, _) => walk_expr(e, f),
            Stmt::Item(_) => {}
        }
    }
}

/// Walk one expression tree depth-first (pre-order).
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Path(_) | ExprKind::Lit(_) | ExprKind::Unknown => {}
        ExprKind::Unary(x) | ExprKind::Ref(x) | ExprKind::Try(x) | ExprKind::Closure(x) => {
            walk_expr(x, f)
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Field { base, .. } => walk_expr(base, f),
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::Cast { expr, .. } => walk_expr(expr, f),
        ExprKind::Block(stmts) | ExprKind::Loop { body: stmts } => walk_stmts(stmts, f),
        ExprKind::If { cond, then, alt } => {
            walk_expr(cond, f);
            walk_stmts(then, f);
            if let Some(a) = alt {
                walk_expr(a, f);
            }
        }
        ExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_stmts(body, f);
        }
        ExprKind::For { iter, body } => {
            walk_expr(iter, f);
            walk_stmts(body, f);
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for a in arms {
                walk_expr(a, f);
            }
        }
        ExprKind::Struct { fields, .. } => {
            for x in fields {
                walk_expr(x, f);
            }
        }
        ExprKind::Tuple(xs) => {
            for x in xs {
                walk_expr(x, f);
            }
        }
        ExprKind::Range { lo, hi } => {
            if let Some(x) = lo {
                walk_expr(x, f);
            }
            if let Some(x) = hi {
                walk_expr(x, f);
            }
        }
        ExprKind::Return(x) | ExprKind::Jump(x) => {
            if let Some(x) = x {
                walk_expr(x, f);
            }
        }
    }
}

/// Walk every item recursively (modules, impls, traits, nested items in
/// function bodies), calling `f` on each function definition together
/// with the `self_ty` of its enclosing impl/trait (if any).
pub fn walk_fns<'a>(items: &'a [Item], f: &mut impl FnMut(Option<&'a str>, &'a FnDef)) {
    walk_fns_inner(items, None, f);
}

fn walk_fns_inner<'a>(
    items: &'a [Item],
    self_ty: Option<&'a str>,
    f: &mut impl FnMut(Option<&'a str>, &'a FnDef),
) {
    for item in items {
        match item {
            Item::Fn(def) => {
                f(self_ty, def);
                if let Some(body) = &def.body {
                    walk_body_items(body, f);
                }
            }
            Item::Impl { self_ty: ty, items } | Item::Trait { name: ty, items } => {
                walk_fns_inner(items, Some(ty.as_str()), f);
            }
            Item::Mod { items, .. } => walk_fns_inner(items, self_ty, f),
            Item::Other => {}
        }
    }
}

fn walk_body_items<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(Option<&'a str>, &'a FnDef)) {
    for s in stmts {
        if let Stmt::Item(item) = s {
            walk_fns_inner(std::slice::from_ref(item.as_ref()), None, f);
        }
    }
}
