//! Result tables: the rows/series the paper's tables and figures report.

/// A labelled result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id + description, e.g. "Figure 6 — CPU time vs K".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-text notes (parameters, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}|\n", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out.push('\n');
        out
    }

    /// Render as aligned plain text (for terminal output).
    pub fn to_plain(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        for n in &self.notes {
            out.push_str(&format!("   ({n})\n"));
        }
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Test", &["a", "bb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.note("note");
        t
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("### Test"));
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> note"));
    }

    #[test]
    fn plain_aligns_columns() {
        let p = sample().to_plain();
        assert!(p.contains("a  bb"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }
}
