//! Property tests for the codec's entropy and transform layers.

use proptest::prelude::*;
use vdsms_codec::bitio::{ByteReader, ByteWriter};
use vdsms_codec::dct;
use vdsms_codec::quant::Quantizer;
use vdsms_codec::zigzag::{decode_block, decode_block_dc_only, encode_block};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Varints and signed varints round-trip any value.
    #[test]
    fn varint_round_trip(values in proptest::collection::vec(any::<u64>(), 1..50)) {
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.get_varint().unwrap(), v);
        }
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn signed_round_trip(values in proptest::collection::vec(any::<i64>(), 1..50)) {
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_signed(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.get_signed().unwrap(), v);
        }
    }

    /// Block entropy coding round-trips arbitrary quantized levels, and
    /// the DC-only fast path agrees with the full decode on both the DC
    /// value and the end-of-block cursor position.
    #[test]
    fn block_coding_round_trip(
        levels in proptest::collection::vec(-2048i32..2048, 64),
        prev_dc in -2048i32..2048,
    ) {
        let arr: [i32; 64] = levels.clone().try_into().unwrap();
        let mut w = ByteWriter::new();
        let dc = encode_block(&mut w, &arr, prev_dc);
        let bytes = w.into_bytes();

        let mut r1 = ByteReader::new(&bytes);
        let (decoded, dc1) = decode_block(&mut r1, prev_dc).unwrap();
        prop_assert_eq!(decoded, arr);
        prop_assert_eq!(dc1, dc);
        prop_assert!(r1.is_at_end());

        let mut r2 = ByteReader::new(&bytes);
        let dc2 = decode_block_dc_only(&mut r2, prev_dc).unwrap();
        prop_assert_eq!(dc2, dc);
        prop_assert_eq!(r2.position(), r1.position());
    }

    /// DCT inverse(forward) is the identity within float tolerance, for
    /// arbitrary sample blocks.
    #[test]
    fn dct_round_trip(samples in proptest::collection::vec(-128.0f32..128.0, 64)) {
        let arr: [f32; 64] = samples.clone().try_into().unwrap();
        let back = dct::inverse(&dct::forward(&arr));
        for (a, b) in arr.iter().zip(&back) {
            prop_assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    /// Quantize/dequantize error is bounded by half the step size, for
    /// every quality level.
    #[test]
    fn quantization_error_bounded(
        coeffs in proptest::collection::vec(-1000.0f32..1000.0, 64),
        quality in 1u8..=100,
    ) {
        let q = Quantizer::new(quality);
        let arr: [f32; 64] = coeffs.clone().try_into().unwrap();
        let deq = q.dequantize(&q.quantize(&arr));
        for i in 0..64 {
            let half = f32::from(q.table()[i]) / 2.0;
            prop_assert!((arr[i] - deq[i]).abs() <= half + 1e-2);
        }
    }

    /// The decoder never panics on arbitrary garbage bytes — it returns
    /// an error or (for streams that happen to parse) decodes frames.
    #[test]
    fn decoder_is_panic_free_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(mut dec) = vdsms_codec::Decoder::new(&bytes) {
            for _ in 0..10 {
                match dec.next_frame() {
                    Ok(Some(_)) => continue,
                    _ => break,
                }
            }
        }
        if let Ok(mut dec) = vdsms_codec::PartialDecoder::new(&bytes) {
            for _ in 0..10 {
                match dec.next_dc_frame() {
                    Ok(Some(_)) => continue,
                    _ => break,
                }
            }
        }
    }
}
