//! Figures 7 and 8 — precision (Fig. 7) and recall (Fig. 8) of the Bit
//! method vs `K`, for δ ∈ {0.5, 0.7, 0.9} under Sequential and Geometric
//! orders, on VS1.
//!
//! Expected shape: precision rises with K and saturates (≈ K ≥ 1000 in
//! the paper); recall holds or mildly falls as K grows (fewer lucky
//! matches); Geometric trades a little recall at high δ for its cheaper
//! maintenance.

use crate::table::f3;
use crate::{Ctx, Scale, Table};
use vdsms_core::{DetectorConfig, Order, Representation};
use vdsms_workload::StreamKind;

/// Run the sweep, returning the Fig. 7 (precision) and Fig. 8 (recall)
/// tables.
pub fn run(ctx: &mut Ctx, scale: Scale) -> Vec<Table> {
    let m = ctx.library().len();
    let w_kf = ctx.spec().window_keyframes(5.0);
    let deltas = [0.5, 0.7, 0.9];

    let headers: Vec<String> = std::iter::once("K".to_string())
        .chain(deltas.iter().flat_map(|d| {
            [format!("Seq δ={d}"), format!("Geo δ={d}")]
        }))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut precision =
        Table::new("Figure 7 — precision vs K (Bit method, VS1)", &header_refs);
    let mut recall = Table::new("Figure 8 — recall vs K (Bit method, VS1)", &header_refs);
    for t in [&mut precision, &mut recall] {
        t.note(format!("m = {m} queries, w = 5 s"));
    }

    for k in scale.k_sweep_accuracy() {
        let mut p_row = vec![k.to_string()];
        let mut r_row = vec![k.to_string()];
        for &delta in &deltas {
            for order in [Order::Sequential, Order::Geometric] {
                let cfg = DetectorConfig {
                    k,
                    delta,
                    window_keyframes: w_kf,
                    order,
                    representation: Representation::Bit,
                    use_index: true,
                    ..Default::default()
                };
                let res = ctx.run_engine(StreamKind::Vs1, cfg, m);
                p_row.push(f3(res.pr.precision));
                r_row.push(f3(res.pr.recall));
            }
        }
        precision.push(p_row);
        recall.push(r_row);
    }
    vec![precision, recall]
}
