//! Geometric-order candidate store (Section IV-A, Fig. 2).
//!
//! Instead of every suffix, the store keeps `O(log)` *segments* whose
//! lengths follow a binary counter (1, 2, 4, ... windows). When window `t`
//! arrives it is tested alone, then cascaded backwards through the
//! segments — each cascade step combines one more segment into the running
//! suffix and re-tests it — giving `⌈log i⌉` combinations per arrival as
//! in the paper's cost model. Afterwards the window is appended as a
//! length-1 segment and equal-length neighbours merge (carry
//! propagation).
//!
//! The price of the logarithmic cost is that only geometrically-spaced
//! suffix lengths are tested, which the paper reports as slightly lower
//! recall at high δ (Figs. 7–8).

use crate::bitsig::BitSig;
use crate::config::{DetectorConfig, Representation};
use crate::detection::Detection;
use crate::query::{QueryId, QuerySet};
use crate::stats::Stats;
use crate::window::{sketch_relations, Window, WindowRelations};
use std::collections::{BTreeMap, VecDeque};
use vdsms_sketch::Sketch;

/// Largest power of two `<= n` (`n >= 1`).
fn prev_power_of_two(n: usize) -> usize {
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// One tracked query within a segment.
#[derive(Debug, Clone)]
struct Entry {
    qid: QueryId,
    keyframes: usize,
    /// Bit representation only: signature of this *segment* vs the query.
    sig: Option<BitSig>,
}

/// One geometric segment of the stream.
#[derive(Debug, Clone)]
struct Segment {
    start_window: u64,
    start_frame: u64,
    len_windows: usize,
    /// The segment's combined sketch — kept in both representations (it is
    /// needed for carry merges and for on-demand signature encoding).
    sketch: Sketch,
    entries: Vec<Entry>,
}

/// Retired segments kept for buffer reuse, capped so a burst cannot pin
/// unbounded memory.
const SEG_POOL_CAP: usize = 16;

/// The geometric candidate store.
#[derive(Debug)]
pub struct GeoStore {
    rep: Representation,
    segments: VecDeque<Segment>,
    /// Last window at which each query was reported, to suppress
    /// re-reports on consecutive windows of the same ongoing match.
    last_report: BTreeMap<QueryId, u64>,
    /// Reusable cascade suffix sketch (zero-alloc steady state).
    scratch_sketch: Sketch,
    /// Reusable cascade suffix entry list.
    scratch_entries: Vec<Entry>,
    /// Double-buffer for the sorted entry merges: swapped with the list
    /// being merged each cascade/carry step.
    scratch_merge: Vec<Entry>,
    /// Retired segments: their sketches and entry vectors keep their
    /// capacity, so steady-state segment births are allocation-free.
    pool: Vec<Segment>,
}

impl GeoStore {
    /// New empty store.
    pub fn new(rep: Representation) -> GeoStore {
        GeoStore {
            rep,
            segments: VecDeque::new(),
            last_report: BTreeMap::new(),
            scratch_sketch: Sketch::default(),
            scratch_entries: Vec::new(),
            scratch_merge: Vec::new(),
            pool: Vec::new(),
        }
    }

    /// Return a dead segment's buffers to the pool.
    fn retire(&mut self, seg: Segment) {
        if self.pool.len() < SEG_POOL_CAP {
            // vdsms-lint: allow(no-alloc-hot-path) reason="pool Vec is capped at SEG_POOL_CAP; reaches its high-water mark during warm-up"
            self.pool.push(seg);
        }
    }

    /// Number of live segments.
    pub fn candidate_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of live segment-query pairs (memory metric).
    pub fn live_signatures(&self) -> usize {
        self.segments.iter().map(|s| s.entries.len()).sum()
    }

    /// Process one arrived basic window.
    pub fn advance(
        &mut self,
        win: &Window,
        rel: &mut WindowRelations,
        cfg: &DetectorConfig,
        queries: &QuerySet,
        stats: &mut Stats,
    ) -> Vec<Detection> {
        let mut out = Vec::new();

        // --- Phase 1: cascade the new window backwards through the
        // segments, testing each induced suffix. All cascade state lives
        // in reusable scratch buffers.
        let mut cur_sketch = std::mem::take(&mut self.scratch_sketch);
        cur_sketch.copy_from(&win.sketch);
        let mut cur_entries = std::mem::take(&mut self.scratch_entries);
        cur_entries.clear();
        for i in 0..rel.related_len() {
            let (qid, keyframes) = rel.related_at(i);
            let sig = match self.rep {
                Representation::Bit => match rel.sig_for(qid, &win.sketch, queries, stats) {
                    // vdsms-lint: allow(no-alloc-hot-path) reason="one signature per window×related-query relation event — the Bit representation's inherent cost"
                    Some(s) => Some(s.clone()),
                    None => continue,
                },
                Representation::Sketch => None,
            };
            // vdsms-lint: allow(no-alloc-hot-path) reason="scratch Vec reused across windows; capacity stabilizes at the related-query high-water mark"
            cur_entries.push(Entry { qid, keyframes, sig });
        }
        cur_entries.sort_unstable_by_key(|e| e.qid);
        let mut cur_len = 1usize;
        Self::test_suffix(
            self.rep,
            &mut self.last_report,
            &cur_sketch,
            &mut cur_entries,
            cur_len,
            win.start_frame,
            win,
            cfg,
            stats,
            queries,
            &mut out,
        );

        for seg_idx in (0..self.segments.len()).rev() {
            let seg = &self.segments[seg_idx];
            let seg_start_frame = seg.start_frame;
            cur_len += seg.len_windows;

            match self.rep {
                Representation::Sketch => {
                    // Merge the related-query lists (sorted union,
                    // two-pointer: O(α), not O(α²)) into the merge
                    // double-buffer. Entry `sig` is `None` in this
                    // representation, so the clones below copy two scalars
                    // and never touch the heap.
                    let mut merged = std::mem::take(&mut self.scratch_merge);
                    merged.clear();
                    let mut older = seg.entries.iter().peekable();
                    for newer in cur_entries.drain(..) {
                        while let Some(o) = older.peek() {
                            if o.qid < newer.qid {
                                // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; Entry sig is None in the Sketch representation so the clone is heap-free"
                                merged.push((*o).clone());
                                older.next();
                            } else {
                                break;
                            }
                        }
                        if older.peek().is_some_and(|o| o.qid == newer.qid) {
                            older.next();
                        }
                        // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                        merged.push(newer);
                    }
                    // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                    merged.extend(older.cloned());
                    self.scratch_merge = std::mem::replace(&mut cur_entries, merged);
                    cur_sketch.combine(&seg.sketch);
                    stats.sketch_combines += 1;
                }
                Representation::Bit => {
                    // cur covers [x, t]; seg covers [s, x). The suffix
                    // signature is the OR of both parts' signatures, each
                    // encoded on demand from its part's sketch if the
                    // query was not already tracked there (sorted
                    // two-pointer merge: O(α), not O(α²)).
                    // Every Bit-representation entry carries a signature by
                    // construction (signature-less ones are skipped when the
                    // entry lists are built), so `sig: None` arms below drop
                    // the entry instead of panicking.
                    let mut merged = std::mem::take(&mut self.scratch_merge);
                    merged.clear();
                    let mut older = seg.entries.iter().peekable();
                    for mut newer in cur_entries.drain(..) {
                        // Older-only entries before this qid: the query is
                        // tracked by the segment but unseen in the newer
                        // suffix — encode the newer part on demand.
                        while let Some(o) = older.next_if(|o| o.qid < newer.qid) {
                            if let (Some(q), Some(osig)) = (queries.get(o.qid), o.sig.as_ref()) {
                                stats.sig_encodes += 1;
                                let mut sig = BitSig::encode(&cur_sketch, &q.sketch);
                                sig.or_with(osig);
                                stats.sig_ors += 1;
                                // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                                merged.push(Entry {
                                    qid: o.qid,
                                    keyframes: o.keyframes,
                                    sig: Some(sig),
                                });
                            }
                        }
                        let Some(sig) = newer.sig.as_mut() else { continue };
                        if let Some(o) = older.next_if(|o| o.qid == newer.qid) {
                            // Matching entry: OR the two parts' signatures.
                            let Some(osig) = o.sig.as_ref() else { continue };
                            sig.or_with(osig);
                            stats.sig_ors += 1;
                        } else {
                            // Newer-only: encode the segment part on demand.
                            let Some(q) = queries.get(newer.qid) else { continue };
                            stats.sig_encodes += 1;
                            sig.or_with(&BitSig::encode(&seg.sketch, &q.sketch));
                            stats.sig_ors += 1;
                        }
                        // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                        merged.push(newer);
                    }
                    for o in older {
                        if let (Some(q), Some(osig)) = (queries.get(o.qid), o.sig.as_ref()) {
                            stats.sig_encodes += 1;
                            let mut sig = BitSig::encode(&cur_sketch, &q.sketch);
                            sig.or_with(osig);
                            stats.sig_ors += 1;
                            // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                            merged.push(Entry { qid: o.qid, keyframes: o.keyframes, sig: Some(sig) });
                        }
                    }
                    self.scratch_merge = std::mem::replace(&mut cur_entries, merged);
                    cur_sketch.combine(&seg.sketch);
                }
            }

            Self::test_suffix(
                self.rep,
                &mut self.last_report,
                &cur_sketch,
                &mut cur_entries,
                cur_len,
                seg_start_frame,
                win,
                cfg,
                stats,
                queries,
                &mut out,
            );
        }

        // --- Phase 2: append the window as a length-1 segment (reusing a
        // pooled segment's buffers when one is available), then carry-
        // merge equal-length neighbours (binary counter).
        let mut seg = self.pool.pop().unwrap_or_else(|| Segment {
            start_window: 0,
            start_frame: 0,
            len_windows: 0,
            sketch: Sketch::default(),
            entries: Vec::new(),
        });
        seg.start_window = win.index;
        seg.start_frame = win.start_frame;
        seg.len_windows = 1;
        seg.sketch.copy_from(&win.sketch);
        seg.entries.clear();
        for i in 0..rel.related_len() {
            let (qid, keyframes) = rel.related_at(i);
            let sig = match self.rep {
                Representation::Bit => match rel.sig_for(qid, &win.sketch, queries, stats) {
                    // vdsms-lint: allow(no-alloc-hot-path) reason="one signature per window×related-query relation event — the Bit representation's inherent cost"
                    Some(s) => Some(s.clone()),
                    None => continue,
                },
                Representation::Sketch => None,
            };
            // vdsms-lint: allow(no-alloc-hot-path) reason="pooled Vec; capacity stabilizes at the related-query high-water mark"
            seg.entries.push(Entry { qid, keyframes, sig });
        }
        seg.entries.sort_unstable_by_key(|e| e.qid);
        // vdsms-lint: allow(no-alloc-hot-path) reason="VecDeque capacity is bounded by the O(log horizon) segment count"
        self.segments.push_back(seg);
        // Cap segment growth at half the candidate horizon: with unbounded
        // carry-merging a single segment would swallow the whole horizon
        // and the tested suffix lengths would lose all granularity (every
        // copy shorter than the horizon would be missed). Capping at
        // `horizon/2` keeps the suffix lengths geometric *and* guarantees
        // some tested suffix overshoots a copy by at most `horizon/2`
        // windows.
        let global_max = cfg.max_windows_for(queries.max_keyframes()).max(1);
        let merge_cap = prev_power_of_two((global_max / 2).max(1));
        while self.segments.len() >= 2 {
            let n = self.segments.len();
            if self.segments[n - 1].len_windows != self.segments[n - 2].len_windows
                || self.segments[n - 1].len_windows * 2 > merge_cap
            {
                break;
            }
            let (Some(newer), Some(older)) = (self.segments.pop_back(), self.segments.pop_back())
            else {
                break;
            };
            let merged = self.merge_segments(older, newer, cfg, queries, stats);
            // vdsms-lint: allow(no-alloc-hot-path) reason="VecDeque capacity is bounded by the O(log horizon) segment count"
            self.segments.push_back(merged);
        }

        // --- Phase 3: expire the oldest segment while the remaining
        // segments still cover the λL horizon.
        let mut total: usize = self.segments.iter().map(|s| s.len_windows).sum();
        while self.segments.len() > 1 {
            let Some(front) = self.segments.front() else { break };
            let front_len = front.len_windows;
            if total - front_len < global_max {
                break;
            }
            if let Some(front) = self.segments.pop_front() {
                self.retire(front);
            }
            total -= front_len;
        }

        // Hand the cascade scratch buffers back for the next window.
        cur_entries.clear();
        self.scratch_entries = cur_entries;
        self.scratch_sketch = cur_sketch;

        stats.sample_live(self.live_signatures(), self.segments.len());
        out
    }

    /// Test the current suffix against its tracked queries, pruning and
    /// emitting detections.
    #[allow(clippy::too_many_arguments)]
    fn test_suffix(
        rep: Representation,
        last_report: &mut BTreeMap<QueryId, u64>,
        cur_sketch: &Sketch,
        cur_entries: &mut Vec<Entry>,
        cur_len: usize,
        start_frame: u64,
        win: &Window,
        cfg: &DetectorConfig,
        stats: &mut Stats,
        queries: &QuerySet,
        out: &mut Vec<Detection>,
    ) {
        let k = cur_sketch.k() as f64;
        cur_entries.retain(|e| {
            if cur_len > cfg.max_windows_for(e.keyframes) {
                stats.length_expiries += 1;
                return false;
            }
            let (sim, violates) = match rep {
                Representation::Sketch => {
                    let Some(q) = queries.get(e.qid) else {
                        return false;
                    };
                    stats.sketch_compares += 1;
                    let (n_eq, n_less) = sketch_relations(cur_sketch, &q.sketch);
                    (n_eq as f64 / k, n_less as f64 > k * (1.0 - cfg.pruning_delta()))
                }
                Representation::Bit => {
                    // Bit entries always carry a signature by construction;
                    // drop rather than panic if the invariant ever breaks.
                    let Some(sig) = e.sig.as_ref() else {
                        return false;
                    };
                    stats.sig_compares += 1;
                    let (n_less, n_eq) = sig.counts();
                    (
                        sig.similarity_from_count(n_eq),
                        sig.lemma2_from_count(n_less, cfg.pruning_delta()),
                    )
                }
            };
            if violates {
                stats.lemma2_prunes += 1;
                return false;
            }
            if sim + 1e-12 >= cfg.delta {
                // Suppress re-reports while the same match keeps firing on
                // consecutive windows.
                let suppressed =
                    matches!(last_report.get(&e.qid), Some(&last) if last + 1 >= win.index);
                // vdsms-lint: allow(no-alloc-hot-path) reason="match events only; the map's key set is bounded by the query count"
                last_report.insert(e.qid, win.index);
                if !suppressed {
                    stats.detections += 1;
                    // vdsms-lint: allow(no-alloc-hot-path) reason="detection events only; the output Vec stays empty (and unallocated) on non-matching windows"
                    out.push(Detection {
                        query_id: e.qid,
                        start_frame,
                        end_frame: win.end_frame,
                        windows: cur_len,
                        similarity: sim,
                    });
                }
            }
            true
        });
    }

    /// Carry-merge two adjacent equal-length segments in place: `older`
    /// absorbs `newer` (whose buffers are retired to the pool afterwards)
    /// and is returned ready to rejoin the deque. The entry merge runs
    /// before the sketch combine because the Bit arm encodes on-demand
    /// signatures against each part's *pristine* sketch.
    fn merge_segments(
        &mut self,
        mut older: Segment,
        mut newer: Segment,
        cfg: &DetectorConfig,
        queries: &QuerySet,
        stats: &mut Stats,
    ) -> Segment {
        let mut merged = std::mem::take(&mut self.scratch_merge);
        merged.clear();
        match self.rep {
            Representation::Sketch => {
                // Sorted union of the two entry lists (Entry sig is `None`
                // in this representation, so the moves are heap-free).
                let mut a = older.entries.drain(..).peekable();
                let mut b = newer.entries.drain(..).peekable();
                loop {
                    let e = match (a.peek(), b.peek()) {
                        (Some(x), Some(y)) => match x.qid.cmp(&y.qid) {
                            std::cmp::Ordering::Less => a.next(),
                            std::cmp::Ordering::Greater => b.next(),
                            std::cmp::Ordering::Equal => {
                                b.next();
                                a.next()
                            }
                        },
                        (Some(_), None) => a.next(),
                        (None, Some(_)) => b.next(),
                        (None, None) => break,
                    };
                    // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                    merged.extend(e);
                }
            }
            Representation::Bit => {
                let or_parts = |a: Option<BitSig>,
                                part_sketch: &Sketch,
                                qid: QueryId,
                                stats: &mut Stats|
                 -> Option<BitSig> {
                    match a {
                        Some(sig) => Some(sig),
                        None => {
                            let q = queries.get(qid)?;
                            stats.sig_encodes += 1;
                            Some(BitSig::encode(part_sketch, &q.sketch))
                        }
                    }
                };
                for e in older.entries.drain(..) {
                    let newer_sig = match newer.entries.iter().position(|x| x.qid == e.qid) {
                        Some(pos) => newer.entries.remove(pos).sig,
                        None => None,
                    };
                    let Some(mut sig) = e.sig else { continue };
                    let Some(other) =
                        or_parts(newer_sig, &newer.sketch, e.qid, stats)
                    else {
                        continue;
                    };
                    let (n_less, _) = sig.or_with_counts(&other);
                    stats.sig_ors += 1;
                    if sig.lemma2_from_count(n_less, cfg.pruning_delta()) {
                        stats.lemma2_prunes += 1;
                        continue;
                    }
                    // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                    merged.push(Entry { qid: e.qid, keyframes: e.keyframes, sig: Some(sig) });
                }
                for e in newer.entries.drain(..) {
                    let Some(mut sig) = e.sig else { continue };
                    let Some(other) = or_parts(None, &older.sketch, e.qid, stats) else {
                        continue;
                    };
                    let (n_less, _) = sig.or_with_counts(&other);
                    stats.sig_ors += 1;
                    if sig.lemma2_from_count(n_less, cfg.pruning_delta()) {
                        stats.lemma2_prunes += 1;
                        continue;
                    }
                    // vdsms-lint: allow(no-alloc-hot-path) reason="double-buffered scratch Vec; capacity stabilizes at the live-entry high-water mark"
                    merged.push(Entry { qid: e.qid, keyframes: e.keyframes, sig: Some(sig) });
                }
            }
        }
        self.scratch_merge = std::mem::replace(&mut older.entries, merged);

        older.sketch.combine(&newer.sketch);
        match self.rep {
            Representation::Sketch => stats.sketch_combines += 1,
            Representation::Bit => {}
        }
        older.len_windows += newer.len_windows;
        self.retire(newer);
        older
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use vdsms_sketch::MinHashFamily;

    const K: usize = 128;

    fn cfg(rep: Representation) -> DetectorConfig {
        DetectorConfig {
            k: K,
            delta: 0.7,
            lambda: 2.0,
            window_keyframes: 4,
            representation: rep,
            order: crate::config::Order::Geometric,
            use_index: false,
            ..Default::default()
        }
    }

    fn family() -> MinHashFamily {
        MinHashFamily::new(K, 5)
    }

    fn window(f: &MinHashFamily, index: u64, ids: &[u64]) -> Window {
        Window {
            index,
            start_frame: index * 4,
            end_frame: index * 4 + 3,
            sketch: Sketch::from_ids(f, ids.iter().copied()),
        }
    }

    fn run(rep: Representation) -> (Vec<Detection>, Stats, GeoStore) {
        let f = family();
        let query_ids: Vec<u64> = (0..40).collect();
        let queries = QuerySet::from_queries(vec![Query::from_cell_ids(1, &f, &query_ids)]);
        let config = cfg(rep);
        let mut store = GeoStore::new(rep);
        let mut stats = Stats::default();
        let mut dets = Vec::new();
        // Four windows covering the query out of order.
        let parts: [&[u64]; 4] =
            [&query_ids[30..40], &query_ids[10..20], &query_ids[0..10], &query_ids[20..30]];
        for (i, part) in parts.iter().enumerate() {
            let w = window(&f, i as u64, part);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            dets.extend(store.advance(&w, &mut rel, &config, &queries, &mut stats));
        }
        (dets, stats, store)
    }

    #[test]
    fn geometric_bit_detects_split_copy() {
        let (dets, stats, _) = run(Representation::Bit);
        let best = dets.iter().map(|d| d.similarity).fold(0.0, f64::max);
        assert!(best >= 0.7, "suffix must cross the threshold (best {best})");
        assert!(stats.sig_ors > 0);
    }

    #[test]
    fn geometric_sketch_detects_split_copy() {
        let (dets, stats, _) = run(Representation::Sketch);
        let best = dets.iter().map(|d| d.similarity).fold(0.0, f64::max);
        assert!(best >= 0.7, "best {best}");
        assert!(stats.sketch_combines > 0);
    }

    #[test]
    fn segment_lengths_follow_binary_counter() {
        let (_, _, store) = run(Representation::Bit);
        // After 4 windows: one segment of length 4.
        let lens: Vec<usize> = store.segments.iter().map(|s| s.len_windows).collect();
        assert_eq!(lens, vec![4]);
    }

    #[test]
    fn combinations_per_window_are_logarithmic() {
        // Over n windows, sequential does Θ(n²) combinations while
        // geometric does Θ(n log n). Check the per-window combine count
        // stays ≤ log2(i)+1.
        let f = family();
        let queries = QuerySet::from_queries(vec![Query::from_cell_ids(
            1,
            &f,
            &(5000u64..5040).collect::<Vec<_>>(),
        )]);
        let config = cfg(Representation::Sketch);
        let mut store = GeoStore::new(Representation::Sketch);
        let mut stats = Stats::default();
        let mut prev = 0u64;
        for i in 0..64u64 {
            let ids: Vec<u64> = (i * 7..i * 7 + 7).collect();
            let w = window(&f, i, &ids);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            store.advance(&w, &mut rel, &config, &queries, &mut stats);
            let combines_this_window = stats.sketch_combines - prev;
            prev = stats.sketch_combines;
            // Cascade over O(horizon/cap + log cap) segments plus carry
            // merges: logarithmic with a small constant, far below the
            // sequential order's Θ(horizon) per window.
            let bound = 2 * ((i + 1).ilog2() as u64) + 6;
            assert!(
                combines_this_window <= bound,
                "window {i}: {combines_this_window} combines exceeds log bound {bound}"
            );
        }
    }

    #[test]
    fn expiry_caps_total_span() {
        let f = family();
        // Query of 8 keyframes => global max = ceil(2*8/4) = 4 windows.
        let queries = QuerySet::from_queries(vec![Query::from_cell_ids(
            1,
            &f,
            &(0u64..8).collect::<Vec<_>>(),
        )]);
        let config = cfg(Representation::Bit);
        let mut store = GeoStore::new(Representation::Bit);
        let mut stats = Stats::default();
        for i in 0..20u64 {
            let w = window(&f, i, &[0, 1, 2, 3]);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            store.advance(&w, &mut rel, &config, &queries, &mut stats);
            let total: usize = store.segments.iter().map(|s| s.len_windows).sum();
            assert!(total <= 2 * 4, "span {total} must stay near the λL bound");
        }
    }

    #[test]
    fn consecutive_matches_are_suppressed() {
        let f = family();
        let queries =
            QuerySet::from_queries(vec![Query::from_cell_ids(1, &f, &[1, 2, 3, 4])]);
        let config = cfg(Representation::Bit);
        let mut store = GeoStore::new(Representation::Bit);
        let mut stats = Stats::default();
        let mut n = 0;
        for i in 0..6u64 {
            let w = window(&f, i, &[1, 2, 3, 4]);
            let mut rel = WindowRelations::all_queries(&queries);
            stats.windows += 1;
            n += store.advance(&w, &mut rel, &config, &queries, &mut stats).len();
        }
        assert_eq!(n, 1, "an ongoing match must report once, not once per window");
    }
}
