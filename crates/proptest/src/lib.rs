//! Offline stand-in for the `proptest` crate.
//!
//! Supports the API subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! range/`any`/`Just`/tuple/`prop_oneof!`/`prop_map` strategies, the
//! `collection::{vec, hash_set}` combinators, and the `prop_assert*`
//! macros. No shrinking: each test runs `cases` deterministic cases whose
//! seeds derive from the test name, and a failure reports the case number
//! and seed so it can be replayed (the seed is stable across runs, so a
//! failing case is always reproducible by rerunning the test).

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;

/// Per-test configuration (subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// The per-case random source handed to strategies.
pub type TestRng = StdRng;

/// Derive the deterministic RNG for `(test name, case index)`.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name keeps seeds stable and distinct per test.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// A generator of values of one type.
///
/// Unlike upstream proptest there is no shrinking: `generate` draws a
/// value directly from the RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying a bounded number of
    /// times.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred, whence }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 consecutive draws", self.whence);
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::Rng as _;
                rng.gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// One boxed alternative of a [`Union`].
pub type UnionOption<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Object-safe strategy wrapper backing [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<UnionOption<T>>,
}

impl<T> Union<T> {
    /// Build from generator closures, one per alternative.
    pub fn from_options(options: Vec<UnionOption<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        let i = rng.gen_range(0..self.options.len());
        (self.options[i])(rng)
    }
}

/// Choose uniformly among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::from_options(vec![
            $({
                let s = $strategy;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

/// Assert inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u64..100, ys in proptest::collection::vec(any::<u8>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal arms first: the final catch-all would otherwise re-match
    // the `@cfg`-prefixed recursive calls and loop forever.
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(
                    concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed (deterministic; rerun reproduces it)",
                        stringify!($name), case, config.cases);
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    // With a config header.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    // Without one.
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

pub mod prelude {
    //! The customary glob import.
    pub use crate::{
        any, case_rng, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestRng,
    };
    pub use rand::Rng as _;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u64..100, crate::collection::vec(any::<u8>(), 1..9));
        let a = s.generate(&mut crate::case_rng("t", 3));
        let b = s.generate(&mut crate::case_rng("t", 3));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::case_rng("t", 4));
        // Different cases almost surely differ.
        assert!(a != c || s.generate(&mut crate::case_rng("t", 5)) != a);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_collections_respect_bounds(
            x in 10u64..20,
            f in 0.25f64..0.75,
            v in crate::collection::vec(0i32..5, 2..6),
            s in crate::collection::hash_set(0u64..1000, 3..10),
            flag in any::<bool>(),
            choice in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..5).contains(&e)));
            prop_assert!((3..10).contains(&s.len()));
            prop_assert!(choice == 1u8 || choice == 2u8);
            let _ = flag;
        }

        #[test]
        fn prop_map_applies(y in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 20);
        }
    }
}
