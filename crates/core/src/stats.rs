//! Operation counters for the paper's cost experiments.
//!
//! The paper's Section IV-B cost model is
//! `αC_comp + (αC_comp + C_comb)·⌈λL/w⌉` per basic window (Sequential) or
//! with `log(⌈λL/w⌉)` (Geometric). These counters expose every term —
//! comparisons, combinations, index probes, live signature population — so
//! the CPU (Figs. 6, 9, 12) and memory (Fig. 10) experiments can report
//! both wall-clock time and machine-independent operation counts.

/// Mutable counters accumulated by a [`crate::Detector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Basic windows processed.
    pub windows: u64,
    /// Sketch–sketch comparisons (`C_comp`, Sketch representation: K u64
    /// equality scans).
    pub sketch_compares: u64,
    /// Sketch–sketch combinations (`C_comb`, Sketch representation: K u64
    /// mins).
    pub sketch_combines: u64,
    /// Bit-signature encodings (Definition 3: one per window × related
    /// query, the only O(K) value-domain operation of the Bit method).
    pub sig_encodes: u64,
    /// Bit-signature OR-combinations (`C_comb`, Bit representation:
    /// K/32 word ORs).
    pub sig_ors: u64,
    /// Bit-signature similarity evaluations (`C_comp`, Bit representation:
    /// two popcount scans).
    pub sig_compares: u64,
    /// Hash–Query index probes.
    pub index_probes: u64,
    /// Binary/equal-search row operations inside index probes.
    pub index_row_searches: u64,
    /// Candidate-query entries pruned by Lemma 2.
    pub lemma2_prunes: u64,
    /// Candidate-query entries expired by the λL length bound.
    pub length_expiries: u64,
    /// Detections emitted.
    pub detections: u64,
    /// Sum over windows of the number of live signatures (or live
    /// candidate-query pairs for the Sketch representation) in the
    /// candidate list — divide by `windows` for the paper's "average
    /// number of bit signatures" memory metric (Fig. 10).
    pub live_signature_sum: u64,
    /// Peak number of live signatures at any window boundary.
    pub live_signature_peak: u64,
    /// Sum over windows of the candidate count (for average candidate-list
    /// length).
    pub live_candidate_sum: u64,
    /// Degradation: frames lost to bitstream corruption (decoder-level
    /// recovery; see `vdsms_codec`'s `IngestHealth`).
    pub frames_dropped: u64,
    /// Degradation: bytes discarded while resynchronizing onto a record
    /// boundary after corruption.
    pub bytes_skipped: u64,
    /// Degradation: successful decoder resynchronizations.
    pub resyncs: u64,
    /// Degradation: shard workers restarted after a panic (parallel fleet
    /// supervision).
    pub shard_restarts: u64,
    /// Degradation: upper bound on key frames whose detector-state effect
    /// was lost to a shard restart (in-flight at the time of the crash).
    pub frames_lost: u64,
}

impl Stats {
    /// Accumulate another detector's (or shard's) counters into this one:
    /// counters add, peaks take the max. Merging per-stream or per-shard
    /// stats in any order yields the same aggregate (the operation is
    /// commutative and associative), which is what lets a sharded fleet
    /// report the same totals as a serial one.
    pub fn merge(&mut self, other: &Stats) {
        self.windows += other.windows;
        self.sketch_compares += other.sketch_compares;
        self.sketch_combines += other.sketch_combines;
        self.sig_encodes += other.sig_encodes;
        self.sig_ors += other.sig_ors;
        self.sig_compares += other.sig_compares;
        self.index_probes += other.index_probes;
        self.index_row_searches += other.index_row_searches;
        self.lemma2_prunes += other.lemma2_prunes;
        self.length_expiries += other.length_expiries;
        self.detections += other.detections;
        self.live_signature_sum += other.live_signature_sum;
        self.live_signature_peak = self.live_signature_peak.max(other.live_signature_peak);
        self.live_candidate_sum += other.live_candidate_sum;
        self.frames_dropped += other.frames_dropped;
        self.bytes_skipped += other.bytes_skipped;
        self.resyncs += other.resyncs;
        self.shard_restarts += other.shard_restarts;
        self.frames_lost += other.frames_lost;
    }

    /// Whether any degradation counter is non-zero — i.e. the numbers in
    /// this report were produced under corruption recovery or after a
    /// shard restart and may undercount the true stream.
    pub fn is_degraded(&self) -> bool {
        self.frames_dropped != 0
            || self.bytes_skipped != 0
            || self.resyncs != 0
            || self.shard_restarts != 0
            || self.frames_lost != 0
    }

    /// Average number of live signatures per window (Fig. 10's metric).
    pub fn avg_signatures(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.live_signature_sum as f64 / self.windows as f64
    }

    /// Average candidate-list length per window.
    pub fn avg_candidates(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.live_candidate_sum as f64 / self.windows as f64
    }

    /// Estimated signature memory in bytes, using the paper's accounting
    /// of 2K bits per signature.
    pub fn avg_signature_bytes(&self, k: usize) -> f64 {
        self.avg_signatures() * (2 * k) as f64 / 8.0
    }

    /// Record the live population at a window boundary.
    pub(crate) fn sample_live(&mut self, signatures: usize, candidates: usize) {
        self.live_signature_sum += signatures as u64;
        self.live_signature_peak = self.live_signature_peak.max(signatures as u64);
        self.live_candidate_sum += candidates as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_windows() {
        let s = Stats::default();
        assert_eq!(s.avg_signatures(), 0.0);
        assert_eq!(s.avg_candidates(), 0.0);
    }

    #[test]
    fn sample_live_accumulates() {
        let mut s = Stats { windows: 2, ..Default::default() };
        s.sample_live(10, 3);
        s.sample_live(20, 5);
        assert_eq!(s.avg_signatures(), 15.0);
        assert_eq!(s.live_signature_peak, 20);
        assert_eq!(s.avg_candidates(), 4.0);
    }

    #[test]
    fn signature_bytes_uses_2k_bits() {
        let mut s = Stats { windows: 1, ..Default::default() };
        s.sample_live(150, 10);
        // 150 signatures × 2×800 bits = 150 × 200 bytes = 30 KB, the
        // paper's own arithmetic in Section VI-D.
        assert_eq!(s.avg_signature_bytes(800), 30_000.0);
    }
}
