//! Ground-truth insertion records.

/// One planted copy: query `query_id`'s content occupies stream frames
/// `[start_frame, end_frame)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GtInterval {
    /// The query whose content was inserted.
    pub query_id: u32,
    /// First stream frame of the insertion (the paper's `Q_i.begin`).
    pub start_frame: u64,
    /// One past the last stream frame (the paper's `Q_i.end` is
    /// `end_frame − 1`).
    pub end_frame: u64,
}

impl GtInterval {
    /// The paper's correctness rule: a detection of this query at stream
    /// position `p` is correct iff `begin + w ≤ p ≤ end + w`, with `w` in
    /// frames.
    pub fn accepts(&self, p: u64, w_frames: u64) -> bool {
        p >= self.start_frame + w_frames && p <= self.end_frame.saturating_sub(1) + w_frames
    }

    /// Interval length in frames.
    pub fn len(&self) -> u64 {
        self.end_frame - self.start_frame
    }

    /// Whether the interval is degenerate.
    pub fn is_empty(&self) -> bool {
        self.end_frame <= self.start_frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_window_tolerance() {
        let gt = GtInterval { query_id: 1, start_frame: 100, end_frame: 200 };
        let w = 10;
        assert!(!gt.accepts(105, w), "before begin+w");
        assert!(gt.accepts(110, w));
        assert!(gt.accepts(209, w));
        assert!(!gt.accepts(210, w), "after end+w");
    }

    #[test]
    fn len_and_empty() {
        let gt = GtInterval { query_id: 1, start_frame: 5, end_frame: 9 };
        assert_eq!(gt.len(), 4);
        assert!(!gt.is_empty());
    }

    #[test]
    fn single_frame_interval_accepts_exactly_one_position() {
        // [100, 101): the paper's end is end_frame − 1 = 100, so the rule
        // accepts only p = 100 + w. Off by one in either direction of the
        // half-open convention would accept 0 or 2 positions.
        let gt = GtInterval { query_id: 1, start_frame: 100, end_frame: 101 };
        let w = 10;
        assert!(!gt.accepts(109, w));
        assert!(gt.accepts(110, w));
        assert!(!gt.accepts(111, w));
    }

    #[test]
    fn empty_interval_never_accepts() {
        // A degenerate record (everything dropped by an attack) must not
        // make any detection correct.
        let gt = GtInterval { query_id: 1, start_frame: 100, end_frame: 100 };
        assert!(gt.is_empty());
        for p in 90..130 {
            assert!(!gt.accepts(p, 10), "p = {p}");
        }
    }

    #[test]
    fn zero_window_accepts_the_interval_itself() {
        // w = 0 degenerates the rule to begin ≤ p ≤ end: the boundary
        // arithmetic must not underflow or shift.
        let gt = GtInterval { query_id: 1, start_frame: 100, end_frame: 200 };
        assert!(!gt.accepts(99, 0));
        assert!(gt.accepts(100, 0));
        assert!(gt.accepts(199, 0));
        assert!(!gt.accepts(200, 0));
    }

    #[test]
    fn interval_starting_at_frame_zero_does_not_underflow() {
        let gt = GtInterval { query_id: 1, start_frame: 0, end_frame: 10 };
        assert!(gt.accepts(0, 0));
        assert!(gt.accepts(9, 0));
        assert!(!gt.accepts(10, 0));
        assert!(gt.accepts(5, 5));
        assert!(!gt.accepts(4, 5));
    }
}
