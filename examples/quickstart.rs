//! Quickstart: subscribe a clip, watch a broadcast stream, get detections.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vdsms::codec::{Encoder, EncoderConfig};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::Fps;
use vdsms::{DetectorConfig, MonitorBuilder};

fn main() {
    // The video we want to find copies of — in a real deployment this
    // would be an advertisement, a film sample, a news segment...
    let spec = SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed: 7,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    };
    let protected = ClipGenerator::new(spec.clone()).clip(15.0);
    println!(
        "protected clip: {:.1} s, {} frames at {:.2} fps",
        protected.duration(),
        protected.len(),
        protected.fps().as_f64()
    );

    // Build a monitor. Window sizes are expressed in key frames: with a
    // GOP of 5 at 10 fps the stream carries 2 key frames per second, so a
    // 6-key-frame window is a 3-second basic window.
    let enc = EncoderConfig { gop: 5, quality: 80, motion_search: true };
    let mut monitor = MonitorBuilder::new()
        .detector(DetectorConfig { window_keyframes: 6, ..Default::default() })
        .query_encoder(enc)
        .build();
    monitor.subscribe_clip(1, &protected);

    // A broadcast: background content with the protected clip aired in the
    // middle.
    let mut broadcast = ClipGenerator::new(SourceSpec { seed: 99, ..spec.clone() }).clip(40.0);
    broadcast.append(protected);
    broadcast.append(ClipGenerator::new(SourceSpec { seed: 100, ..spec }).clip(30.0));
    let bitstream = Encoder::encode_clip(&broadcast, enc);
    println!(
        "broadcast: {:.1} s, compressed to {} KiB",
        broadcast.duration(),
        bitstream.len() / 1024
    );

    // Watch it. Only key-frame DC coefficients are decoded — no inverse
    // DCT, no pixel reconstruction.
    let detections = monitor.watch_bitstream(&bitstream).expect("valid stream");
    assert!(!detections.is_empty(), "the aired copy must be detected");
    for d in &detections {
        println!(
            "detected query {} at frames {}..{} ({} windows, similarity {:.2})",
            d.query_id, d.start_frame, d.end_frame, d.windows, d.similarity
        );
    }
    let s = monitor.stats();
    println!(
        "engine: {} windows, {} index probes, {} signature ORs, {} Lemma-2 prunes",
        s.windows, s.index_probes, s.sig_ors, s.lemma2_prunes
    );
}
