//! The rule engine: token-pattern rules over a [`LexedFile`], inline
//! suppression handling, and per-file orchestration.
//!
//! ## Rule catalog
//!
//! | id | guards against |
//! |---|---|
//! | `no-panic-hot-path` | `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!` and indexing-adjacent `[..].clone()` in streaming hot-path crates — the paper's VDSMS must monitor continuously, so a panic is an outage |
//! | `deterministic-iteration` | `HashMap` / `HashSet` (and `hash_map` / `hash_set` paths) whose iteration order could leak into detections, stats or serialized output — the shard-equivalence guarantee requires order-free state |
//! | `no-wall-clock` | `SystemTime::now` / `Instant::now` outside bench/CLI timing — wall-clock reads break replayable detection |
//! | `lock-discipline` | `std::sync::{Mutex, RwLock, Condvar}` (the workspace mandates the `parking_lot` shim) and nested lock acquisition while a guard is held (deadlock smell) |
//! | `unsafe-audit` | `unsafe` blocks without an adjacent `// SAFETY:` comment; crate roots missing `#![forbid(unsafe_code)]` (except crates with `unsafe-allowed = true`) |
//!
//! A finding on a given line is suppressed by an inline directive on the
//! same line or the line above:
//!
//! ```text
//! // vdsms-lint: allow(rule-id) reason="why this occurrence is sound"
//! ```
//!
//! The reason is mandatory; a directive without one is itself reported
//! (rule `invalid-suppression`, which cannot be suppressed).

use crate::config::{RuleSet, KNOWN_KEYS};
use crate::diag::Diagnostic;
use crate::lexer::{Comment, LexedFile, TokenKind};

/// Rule id: panics forbidden in hot-path crates.
pub const NO_PANIC: &str = "no-panic-hot-path";
/// Rule id: order-dependent collections forbidden.
pub const DET_ITER: &str = "deterministic-iteration";
/// Rule id: wall-clock reads forbidden.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule id: std locks forbidden; nested acquisition flagged.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule id: unsafe must be audited.
pub const UNSAFE_AUDIT: &str = "unsafe-audit";
/// Rule id: malformed suppression directives (not suppressible).
pub const INVALID_SUPPRESSION: &str = "invalid-suppression";

/// Everything a rule needs to inspect one file.
pub struct FileInput<'a> {
    /// Workspace-relative path label used in diagnostics.
    pub path: &'a str,
    /// Raw source (for snippets).
    pub source: &'a str,
    /// Whether this file is the crate root (`src/lib.rs` / `src/main.rs`),
    /// where `#![forbid(unsafe_code)]` is required.
    pub is_crate_root: bool,
}

/// Per-file lint result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Surviving diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a valid `allow` directive.
    pub suppressed: usize,
}

/// Lint one file under `rules`.
pub fn check_file(input: &FileInput<'_>, rules: &RuleSet) -> FileReport {
    let lexed = crate::lexer::lex(input.source);
    let lines: Vec<&str> = input.source.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map(|s| s.trim().to_string()).unwrap_or_default()
    };
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut emit = |rule: &str, tok_line: u32, tok_col: u32, message: String| {
        diags.push(Diagnostic {
            rule: rule.to_string(),
            file: input.path.to_string(),
            line: tok_line,
            col: tok_col,
            message,
            snippet: snippet(tok_line),
        });
    };

    if rules.enabled(NO_PANIC) {
        rule_no_panic(&lexed, &mut emit);
    }
    if rules.enabled(DET_ITER) {
        rule_deterministic_iteration(&lexed, &mut emit);
    }
    if rules.enabled(NO_WALL_CLOCK) {
        rule_no_wall_clock(&lexed, &mut emit);
    }
    if rules.enabled(LOCK_DISCIPLINE) {
        rule_lock_discipline(&lexed, &mut emit);
    }
    if rules.enabled(UNSAFE_AUDIT) {
        rule_unsafe_audit(&lexed, input.is_crate_root, rules.enabled("unsafe-allowed"), &mut emit);
    }

    apply_suppressions(input, &lexed.comments, diags)
}

/// Parse directives, silence covered findings, report malformed ones.
fn apply_suppressions(
    input: &FileInput<'_>,
    comments: &[Comment],
    diags: Vec<Diagnostic>,
) -> FileReport {
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut report = FileReport::default();
    for c in comments {
        match parse_directive(c) {
            DirectiveParse::None => {}
            DirectiveParse::Valid(s) => suppressions.push(s),
            DirectiveParse::Invalid(message) => {
                report.diagnostics.push(Diagnostic {
                    rule: INVALID_SUPPRESSION.to_string(),
                    file: input.path.to_string(),
                    line: c.line,
                    col: 1,
                    message,
                    snippet: format!("//{}", c.text.trim_end()),
                });
            }
        }
    }
    for d in diags {
        let covered = suppressions.iter().any(|s| {
            s.rules.iter().any(|r| r == &d.rule)
                && (s.line == d.line || s.end_line + 1 == d.line)
        });
        if covered {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d);
        }
    }
    report.diagnostics.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    report
}

struct Suppression {
    rules: Vec<String>,
    line: u32,
    end_line: u32,
}

enum DirectiveParse {
    None,
    Valid(Suppression),
    Invalid(String),
}

/// Parse `vdsms-lint: allow(rule-a, rule-b) reason="…"` from a comment.
fn parse_directive(c: &Comment) -> DirectiveParse {
    let text = c.text.trim();
    let Some(rest) = text.strip_prefix("vdsms-lint:") else {
        return DirectiveParse::None;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return DirectiveParse::Invalid(format!(
            "unknown vdsms-lint directive `{}` (expected `allow(rule-id) reason=\"…\"`)",
            rest.split_whitespace().next().unwrap_or("")
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return DirectiveParse::Invalid("allow directive missing `(rule-id)`".to_string());
    };
    let Some((ids, rest)) = rest.split_once(')') else {
        return DirectiveParse::Invalid("allow directive missing closing `)`".to_string());
    };
    let rules: Vec<String> =
        ids.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if rules.is_empty() {
        return DirectiveParse::Invalid("allow directive lists no rules".to_string());
    }
    for r in &rules {
        if r == INVALID_SUPPRESSION {
            return DirectiveParse::Invalid("`invalid-suppression` cannot be suppressed".to_string());
        }
        if !KNOWN_KEYS.contains(&r.as_str()) {
            return DirectiveParse::Invalid(format!("allow directive names unknown rule `{r}`"));
        }
    }
    let rest = rest.trim_start();
    let Some(reason) = rest.strip_prefix("reason=") else {
        return DirectiveParse::Invalid(
            "allow directive missing mandatory `reason=\"…\"`".to_string(),
        );
    };
    let reason = reason.trim();
    let ok_reason = reason.len() > 2 && reason.starts_with('"') && reason[1..].contains('"');
    let body = reason.trim_matches('"').trim();
    if !ok_reason || body.is_empty() {
        return DirectiveParse::Invalid("allow reason must be a non-empty quoted string".to_string());
    }
    DirectiveParse::Valid(Suppression { rules, line: c.line, end_line: c.end_line })
}

/// `no-panic-hot-path`: `.unwrap()`, `.expect(`, `panic!` / `todo!` /
/// `unimplemented!`, and `[…].clone()` right after an index expression.
fn rule_no_panic(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if lexed.is_test(i) {
            continue;
        }
        let tok = &t[i];
        match tok.ident() {
            Some(m @ ("unwrap" | "expect"))
                if i > 0
                    && t[i - 1].is_punct('.')
                    && t.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                emit(
                    NO_PANIC,
                    tok.line,
                    tok.col,
                    format!("`.{m}()` can panic in the streaming hot path; return a typed error (or `allow` with a reason)"),
                );
            }
            Some(m @ ("panic" | "todo" | "unimplemented"))
                if t.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                emit(
                    NO_PANIC,
                    tok.line,
                    tok.col,
                    format!("`{m}!` aborts continuous monitoring; return a typed error (or `allow` with a reason)"),
                );
            }
            Some("clone")
                if i > 1
                    && t[i - 1].is_punct('.')
                    && t[i - 2].is_punct(']')
                    && t.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                emit(
                    NO_PANIC,
                    tok.line,
                    tok.col,
                    "indexing followed by `.clone()` panics on a missing key/out-of-range index; use `.get(…)`".to_string(),
                );
            }
            _ => {}
        }
    }
}

/// `deterministic-iteration`: any appearance of an order-randomized
/// collection in production code.
fn rule_deterministic_iteration(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    for (i, tok) in lexed.code_tokens() {
        if lexed.is_test(i) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet" | "hash_map" | "hash_set")) = tok.ident() {
            emit(
                DET_ITER,
                tok.line,
                tok.col,
                format!("`{name}` iteration order is randomized and can leak into detections/stats/serialized output; use `BTreeMap`/`BTreeSet` or an explicit sort"),
            );
        }
    }
}

/// `no-wall-clock`: `SystemTime::now` / `Instant::now`.
fn rule_no_wall_clock(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    let t = &lexed.tokens;
    for i in 0..t.len() {
        if lexed.is_test(i) {
            continue;
        }
        if let Some(name @ ("SystemTime" | "Instant")) = t[i].ident() {
            if t.get(i + 1).is_some_and(|n| n.kind == TokenKind::PathSep)
                && t.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                emit(
                    NO_WALL_CLOCK,
                    t[i].line,
                    t[i].col,
                    format!("`{name}::now()` makes detection non-replayable; take timestamps as input (bench/CLI timing is exempted via lint.toml)"),
                );
            }
        }
    }
}

/// `lock-discipline`: std locks are forbidden (use the parking_lot shim),
/// and acquiring a second lock while a guard is held is a deadlock smell.
fn rule_lock_discipline(lexed: &LexedFile, emit: &mut impl FnMut(&str, u32, u32, String)) {
    let t = &lexed.tokens;

    // Part 1: `std::sync::{Mutex, RwLock, Condvar}` in paths or use-groups.
    for i in 0..t.len() {
        if lexed.is_test(i) {
            continue;
        }
        if t[i].is_ident("std")
            && t.get(i + 1).is_some_and(|n| n.kind == TokenKind::PathSep)
            && t.get(i + 2).is_some_and(|n| n.is_ident("sync"))
        {
            // Scan to the end of the path / use statement for lock types.
            let mut j = i + 3;
            while j < t.len() && !t[j].is_punct(';') && !t[j].is_punct('=') {
                if let Some(name @ ("Mutex" | "RwLock" | "Condvar")) = t[j].ident() {
                    emit(
                        LOCK_DISCIPLINE,
                        t[j].line,
                        t[j].col,
                        format!("`std::sync::{name}` is forbidden; use the `parking_lot` shim (panic-free guards, no poisoning)"),
                    );
                }
                j += 1;
                if j - i > 64 {
                    break;
                }
            }
        }
    }

    // Part 2: nested acquisition. A guard becomes live when a `let`
    // statement acquires via `.lock()` / `.read()` / `.write()` (empty
    // argument list — I/O `.read(buf)` never matches) and stays live to
    // the end of its enclosing block. Any further acquisition while a
    // guard is live is flagged.
    let mut depth: i32 = 0;
    let mut live_guards: Vec<i32> = Vec::new();
    let mut stmt_starts_with_let = false;
    let mut at_stmt_start = true;
    for i in 0..t.len() {
        match &t[i].kind {
            TokenKind::Punct('{') => {
                depth += 1;
                at_stmt_start = true;
                continue;
            }
            TokenKind::Punct('}') => {
                depth -= 1;
                live_guards.retain(|&d| d <= depth);
                at_stmt_start = true;
                stmt_starts_with_let = false;
                continue;
            }
            TokenKind::Punct(';') => {
                at_stmt_start = true;
                stmt_starts_with_let = false;
                continue;
            }
            _ => {}
        }
        if at_stmt_start {
            stmt_starts_with_let = t[i].is_ident("let");
            at_stmt_start = false;
        }
        let acquisition = matches!(t[i].ident(), Some("lock" | "read" | "write"))
            && i > 0
            && t[i - 1].is_punct('.')
            && t.get(i + 1).is_some_and(|n| n.is_punct('('))
            && t.get(i + 2).is_some_and(|n| n.is_punct(')'));
        if acquisition && !lexed.is_test(i) {
            if !live_guards.is_empty() {
                emit(
                    LOCK_DISCIPLINE,
                    t[i].line,
                    t[i].col,
                    "lock acquired while another guard is held in the same function — deadlock smell; narrow the first guard's scope".to_string(),
                );
            }
            if stmt_starts_with_let {
                live_guards.push(depth);
            }
        }
    }
}

/// `unsafe-audit`: `unsafe` needs an adjacent `// SAFETY:` comment, and
/// crate roots need `#![forbid(unsafe_code)]` unless exempted.
fn rule_unsafe_audit(
    lexed: &LexedFile,
    is_crate_root: bool,
    unsafe_allowed: bool,
    emit: &mut impl FnMut(&str, u32, u32, String),
) {
    for (i, tok) in lexed.code_tokens() {
        if lexed.is_test(i) || !tok.is_ident("unsafe") {
            continue;
        }
        let documented = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && c.end_line <= tok.line
                && tok.line.saturating_sub(c.end_line) <= 3
        });
        if !documented {
            emit(
                UNSAFE_AUDIT,
                tok.line,
                tok.col,
                "`unsafe` without an adjacent `// SAFETY:` comment (within 3 lines above)".to_string(),
            );
        }
    }
    if is_crate_root && !unsafe_allowed {
        let t = &lexed.tokens;
        let has_forbid = (0..t.len()).any(|i| {
            t[i].is_punct('#')
                && t.get(i + 1).is_some_and(|n| n.is_punct('!'))
                && t.get(i + 2).is_some_and(|n| n.is_punct('['))
                && t.get(i + 3).is_some_and(|n| n.is_ident("forbid"))
                && t.get(i + 4).is_some_and(|n| n.is_punct('('))
                && t.get(i + 5).is_some_and(|n| n.is_ident("unsafe_code"))
        });
        if !has_forbid {
            emit(
                UNSAFE_AUDIT,
                1,
                1,
                "crate root is missing `#![forbid(unsafe_code)]` (set `unsafe-allowed = true` in lint.toml for the one shim that needs unsafe)".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> FileReport {
        check_file(
            &FileInput { path: "test.rs", source: src, is_crate_root: false },
            &RuleSet::all_enabled(),
        )
    }

    fn rules_of(rep: &FileReport) -> Vec<&str> {
        rep.diagnostics.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn unwrap_in_hot_path_is_flagged_and_test_code_is_not() {
        let rep = check(
            "fn f(m: &M) { m.get(0).unwrap(); }\n\
             #[cfg(test)]\nmod tests { fn t(m: &M) { m.get(0).unwrap(); } }\n",
        );
        assert_eq!(rules_of(&rep), vec![NO_PANIC]);
        assert_eq!(rep.diagnostics[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let rep = check("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }");
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn index_clone_is_flagged() {
        let rep = check("fn f(v: &[Vec<u8>], i: usize) -> Vec<u8> { v[i].clone() }");
        assert_eq!(rules_of(&rep), vec![NO_PANIC]);
    }

    #[test]
    fn suppression_with_reason_silences_and_counts() {
        let rep = check(
            "// vdsms-lint: allow(no-panic-hot-path) reason=\"invariant: set at construction\"\n\
             fn f(m: &M) { m.get(0).unwrap(); }\n",
        );
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn suppression_without_reason_is_reported() {
        let rep = check(
            "// vdsms-lint: allow(no-panic-hot-path)\n\
             fn f(m: &M) { m.get(0).unwrap(); }\n",
        );
        let rules = rules_of(&rep);
        assert!(rules.contains(&INVALID_SUPPRESSION), "{rules:?}");
        assert!(rules.contains(&NO_PANIC), "the un-suppressed finding must survive");
    }

    #[test]
    fn hashmap_flagged_btreemap_not() {
        let rep = check("use std::collections::HashMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }");
        assert_eq!(rules_of(&rep), vec![DET_ITER]);
    }

    #[test]
    fn wall_clock_flagged_duration_not() {
        let rep = check("fn f() { let t = std::time::Instant::now(); let d = Duration::from_secs(1); }");
        assert_eq!(rules_of(&rep), vec![NO_WALL_CLOCK]);
    }

    #[test]
    fn std_mutex_flagged_parking_lot_not() {
        let rep = check("use std::sync::{Arc, Mutex};\nuse parking_lot::RwLock;\n");
        assert_eq!(rules_of(&rep), vec![LOCK_DISCIPLINE]);
        assert!(rep.diagnostics[0].message.contains("Mutex"));
    }

    #[test]
    fn nested_lock_is_a_smell_sequential_is_not() {
        let nested = check(
            "fn f(a: &L, b: &L) {\n  let g = a.lock();\n  let h = b.lock();\n}\n",
        );
        assert_eq!(rules_of(&nested), vec![LOCK_DISCIPLINE]);
        assert_eq!(nested.diagnostics[0].line, 3);
        let sequential = check(
            "fn f(a: &L, b: &L) {\n  { let g = a.lock(); }\n  { let h = b.lock(); }\n}\n",
        );
        assert!(sequential.diagnostics.is_empty(), "{:?}", sequential.diagnostics);
        let temporaries = check("fn f(a: &L, b: &L) {\n  a.lock().push(1);\n  b.lock().push(2);\n}\n");
        assert!(temporaries.diagnostics.is_empty(), "{:?}", temporaries.diagnostics);
    }

    #[test]
    fn io_read_with_args_is_not_an_acquisition() {
        let rep = check("fn f(r: &mut R, buf: &mut [u8]) { let n = r.read(buf); let m = r.read(buf); }");
        assert!(rep.diagnostics.is_empty(), "{:?}", rep.diagnostics);
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = check("fn f(p: *const u8) { unsafe { p.read_volatile(); } }");
        assert_eq!(rules_of(&bad), vec![UNSAFE_AUDIT]);
        let good = check("fn f(p: *const u8) {\n  // SAFETY: p is valid for reads by contract.\n  unsafe { p.read_volatile(); }\n}");
        assert!(good.diagnostics.is_empty(), "{:?}", good.diagnostics);
    }

    #[test]
    fn crate_root_requires_forbid_unsafe() {
        let missing = check_file(
            &FileInput { path: "lib.rs", source: "pub fn x() {}", is_crate_root: true },
            &RuleSet::all_enabled(),
        );
        assert_eq!(rules_of(&missing), vec![UNSAFE_AUDIT]);
        let present = check_file(
            &FileInput {
                path: "lib.rs",
                source: "#![forbid(unsafe_code)]\npub fn x() {}",
                is_crate_root: true,
            },
            &RuleSet::all_enabled(),
        );
        assert!(present.diagnostics.is_empty(), "{:?}", present.diagnostics);
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let rep = check_file(
            &FileInput {
                path: "x.rs",
                source: "fn f(m: &M) { m.get(0).unwrap(); }",
                is_crate_root: false,
            },
            &RuleSet::builtin_default(),
        );
        assert!(rep.diagnostics.is_empty());
    }
}
