//! Fixture-driven rule tests: every rule has a positive fixture (must
//! fire, with the expected count) and a negative fixture full of
//! look-alikes (must stay silent), plus suppression round-trips.

use std::path::PathBuf;
use vdsms_lint::{check_file, FileInput, RuleSet};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn check(name: &str) -> vdsms_lint::FileReport {
    let source = fixture(name);
    check_file(
        &FileInput { path: name, source: &source, is_crate_root: false },
        &RuleSet::all_enabled(),
    )
}

fn count_of(rep: &vdsms_lint::FileReport, rule: &str) -> usize {
    rep.diagnostics.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn positive_fixtures_fire_exactly_the_expected_rule() {
    for (file, rule, expected) in [
        ("no_panic_pos.rs", "no-panic-hot-path", 4),
        ("det_iter_pos.rs", "deterministic-iteration", 3),
        ("wall_clock_pos.rs", "no-wall-clock", 2),
        ("lock_pos.rs", "lock-discipline", 3),
        ("unsafe_pos.rs", "unsafe-audit", 1),
    ] {
        let rep = check(file);
        assert_eq!(
            count_of(&rep, rule),
            expected,
            "{file}: wrong `{rule}` count: {:#?}",
            rep.diagnostics
        );
        assert_eq!(
            rep.diagnostics.len(),
            expected,
            "{file}: unexpected extra findings: {:#?}",
            rep.diagnostics
        );
    }
}

#[test]
fn negative_fixtures_are_silent() {
    for file in [
        "no_panic_neg.rs",
        "det_iter_neg.rs",
        "wall_clock_neg.rs",
        "lock_neg.rs",
        "unsafe_neg.rs",
    ] {
        let rep = check(file);
        assert!(rep.diagnostics.is_empty(), "{file}: {:#?}", rep.diagnostics);
        assert_eq!(rep.suppressed, 0, "{file}: nothing should need suppression");
    }
}

#[test]
fn diagnostics_carry_position_rule_and_snippet() {
    let rep = check("no_panic_pos.rs");
    let d = &rep.diagnostics[0];
    assert_eq!(d.rule, "no-panic-hot-path");
    assert_eq!(d.file, "no_panic_pos.rs");
    assert_eq!((d.line, d.col), (4, 28), "unwrap call position");
    assert!(d.snippet.contains("unwrap"), "snippet shows the offending line: {d:?}");
    assert!(d.render().contains("no_panic_pos.rs:4:28"), "render is file:line:col");
}

#[test]
fn valid_suppression_silences_and_is_counted() {
    let rep = check("suppression_ok.rs");
    assert!(rep.diagnostics.is_empty(), "{:#?}", rep.diagnostics);
    assert_eq!(rep.suppressed, 1);
}

#[test]
fn malformed_suppressions_are_themselves_findings() {
    let rep = check("suppression_bad.rs");
    assert_eq!(count_of(&rep, "invalid-suppression"), 3, "{:#?}", rep.diagnostics);
    assert_eq!(
        count_of(&rep, "no-panic-hot-path"),
        1,
        "a reason-less directive must not silence the finding it targets"
    );
    assert_eq!(rep.suppressed, 0);
}

#[test]
fn positive_fixtures_are_silent_when_their_rule_is_disabled() {
    // The per-crate config story in miniature: the same source is clean
    // once the rule is switched off (builtin_default disables the two
    // hot-path-only rules).
    for file in ["no_panic_pos.rs", "det_iter_pos.rs"] {
        let source = fixture(file);
        let rep = check_file(
            &FileInput { path: file, source: &source, is_crate_root: false },
            &RuleSet::builtin_default(),
        );
        assert!(rep.diagnostics.is_empty(), "{file}: {:#?}", rep.diagnostics);
    }
}
