//! # vdsms-workload — the paper's evaluation workload, synthesized
//!
//! Section VI of the paper builds its testbed from 5 base films and 200
//! short videos (MTV, advertisements, movie samples, sports) downloaded
//! from video.google.com, inserted into the films to form a 12-hour
//! "doctored" stream. Two streams are evaluated:
//!
//! * **VS1** — the original short videos inserted unchanged;
//! * **VS2** — the short videos first put through the tamper pipeline
//!   (color/brightness alteration, noise, resolution change, PAL re-encode
//!   at 25 fps, segment re-ordering) and then inserted.
//!
//! This crate synthesizes the equivalent workload from seeded generators
//! (see `vdsms-video` for why the synthetic content preserves the relevant
//! statistics): a [`ClipLibrary`] of short videos, [`compose_stream`] to
//! build VS1/VS2 bitstreams with ground-truth insertion positions, the
//! fingerprinting front-end shared by all methods, and the paper's
//! precision/recall scoring rule ([`metrics`]).
//!
//! Everything is deterministic per [`WorkloadSpec::seed`]. The default
//! spec is scaled down from the paper's 12 hours to keep a full experiment
//! sweep in CPU-minutes; `WorkloadSpec::paper_scale` restores the original
//! proportions.

#![forbid(unsafe_code)]

pub mod attacks;
pub mod clips;
pub mod faults;
pub mod json;
pub mod metrics;
pub mod spec;
pub mod streams;
pub mod truth;

pub use attacks::{
    check_floors, compose_attacked_stream, evaluate_matrix, full_grid, smoke_grid, standard_grid,
    AttackKind, AttackMatrixReport, AttackSpec, AttackedClip, MatrixCell, MatrixConfig, Strength,
};
pub use clips::ClipLibrary;
pub use faults::{inject_faults, FaultReport, FaultSpec};
pub use json::Json;
pub use metrics::{score, PrecisionRecall};
pub use spec::WorkloadSpec;
pub use streams::{compose_stream, fingerprint_stream, ComposedStream, FingerprintedStream, StreamKind};
pub use truth::GtInterval;
