//! Pixel-domain frame representation.
//!
//! The detection pipeline works on the *luma* (Y) plane only: the paper's
//! frame fingerprint is built from block-averaged DC coefficients, which for
//! broadcast content are dominated by luminance. Color/brightness edits in
//! the tamper pipeline are modelled as gain/offset on this plane, which is
//! exactly how they perturb DC coefficients in the real pipeline.

/// A single video frame: a `width × height` luma plane of 8-bit samples,
/// stored row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl Frame {
    /// Create a frame filled with a constant luma value.
    pub fn filled(width: u32, height: u32, value: u8) -> Frame {
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        Frame { width, height, data: vec![value; (width * height) as usize] }
    }

    /// Create a frame from raw row-major samples.
    ///
    /// # Panics
    /// Panics if `data.len() != width * height`.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Frame {
        assert_eq!(
            data.len(),
            (width as usize) * (height as usize),
            "sample buffer does not match dimensions"
        );
        assert!(width > 0 && height > 0, "frame dimensions must be non-zero");
        Frame { width, height, data }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raw row-major luma samples.
    pub fn samples(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw samples.
    pub fn samples_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize]
    }

    /// Set the sample at `(x, y)`.
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize] = v;
    }

    /// One row of samples.
    pub fn row(&self, y: u32) -> &[u8] {
        let start = (y * self.width) as usize;
        &self.data[start..start + self.width as usize]
    }

    /// Mean luma of the whole frame, in `[0, 255]`.
    pub fn mean(&self) -> f64 {
        let sum: u64 = self.data.iter().map(|&v| u64::from(v)).sum();
        sum as f64 / self.data.len() as f64
    }

    /// Mean luma of the rectangle `[x0, x1) × [y0, y1)`.
    ///
    /// Used by tests to cross-check the codec's DC coefficients against the
    /// pixel domain.
    pub fn region_mean(&self, x0: u32, y0: u32, x1: u32, y1: u32) -> f64 {
        assert!(x0 < x1 && y0 < y1 && x1 <= self.width && y1 <= self.height);
        let mut sum = 0u64;
        for y in y0..y1 {
            let row = self.row(y);
            for &v in &row[x0 as usize..x1 as usize] {
                sum += u64::from(v);
            }
        }
        sum as f64 / ((x1 - x0) as u64 * (y1 - y0) as u64) as f64
    }

    /// Bilinear resample to a new resolution.
    ///
    /// This models the "change the resolution" edit of the paper's `VS2`
    /// stream (e.g. NTSC 352×240 → PAL 352×288). Bilinear filtering slightly
    /// perturbs local block averages, which is the behaviour the feature
    /// layer must tolerate.
    pub fn resize(&self, new_width: u32, new_height: u32) -> Frame {
        assert!(new_width > 0 && new_height > 0);
        if new_width == self.width && new_height == self.height {
            return self.clone();
        }
        let mut out = Vec::with_capacity((new_width * new_height) as usize);
        let sx = (self.width as f64) / (new_width as f64);
        let sy = (self.height as f64) / (new_height as f64);
        for y in 0..new_height {
            // Sample at pixel centers to avoid edge bias.
            let fy = ((y as f64 + 0.5) * sy - 0.5).clamp(0.0, (self.height - 1) as f64);
            let y0 = fy.floor() as u32;
            let y1 = (y0 + 1).min(self.height - 1);
            let wy = fy - y0 as f64;
            for x in 0..new_width {
                let fx = ((x as f64 + 0.5) * sx - 0.5).clamp(0.0, (self.width - 1) as f64);
                let x0 = fx.floor() as u32;
                let x1 = (x0 + 1).min(self.width - 1);
                let wx = fx - x0 as f64;
                let p00 = f64::from(self.get(x0, y0));
                let p10 = f64::from(self.get(x1, y0));
                let p01 = f64::from(self.get(x0, y1));
                let p11 = f64::from(self.get(x1, y1));
                let top = p00 + (p10 - p00) * wx;
                let bot = p01 + (p11 - p01) * wx;
                let v = top + (bot - top) * wy;
                out.push(v.round().clamp(0.0, 255.0) as u8);
            }
        }
        Frame::from_raw(new_width, new_height, out)
    }

    /// Extract the rectangle `[x0, x0 + w) × [y0, y0 + h)` as a new frame.
    ///
    /// Models the region-crop family of edits (zoom, letterbox removal):
    /// the attacker keeps a sub-rectangle of the picture and discards the
    /// rest.
    ///
    /// # Panics
    /// Panics if the rectangle is empty or out of bounds.
    pub fn crop(&self, x0: u32, y0: u32, w: u32, h: u32) -> Frame {
        assert!(w > 0 && h > 0, "crop rectangle must be non-empty");
        assert!(
            x0 + w <= self.width && y0 + h <= self.height,
            "crop rectangle out of bounds"
        );
        let mut data = Vec::with_capacity((w * h) as usize);
        for y in y0..y0 + h {
            let row = self.row(y);
            data.extend_from_slice(&row[x0 as usize..(x0 + w) as usize]);
        }
        Frame::from_raw(w, h, data)
    }

    /// Paste `src` into this frame with its top-left corner at `(x0, y0)`,
    /// clipping against this frame's bounds. Used by the letterbox /
    /// pillarbox edit to place downscaled content on a bar-colored canvas.
    pub fn blit(&mut self, src: &Frame, x0: u32, y0: u32) {
        let w = src.width.min(self.width.saturating_sub(x0));
        let h = src.height.min(self.height.saturating_sub(y0));
        for y in 0..h {
            let dst_start = ((y0 + y) * self.width + x0) as usize;
            let src_row = src.row(y);
            self.data[dst_start..dst_start + w as usize]
                .copy_from_slice(&src_row[..w as usize]);
        }
    }

    /// Mean absolute pixel difference between two frames of equal size.
    ///
    /// # Panics
    /// Panics if the frames differ in dimensions.
    pub fn mean_abs_diff(&self, other: &Frame) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let sum: u64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum();
        sum as f64 / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Frame {
        let mut f = Frame::filled(w, h, 0);
        for y in 0..h {
            for x in 0..w {
                f.set(x, y, ((x * 255) / w.max(1)) as u8);
            }
        }
        f
    }

    #[test]
    fn filled_frame_has_uniform_mean() {
        let f = Frame::filled(16, 8, 200);
        assert_eq!(f.mean(), 200.0);
        assert_eq!(f.get(15, 7), 200);
    }

    #[test]
    #[should_panic(expected = "sample buffer")]
    fn from_raw_rejects_bad_length() {
        let _ = Frame::from_raw(4, 4, vec![0; 15]);
    }

    #[test]
    fn region_mean_matches_manual_sum() {
        let f = gradient(32, 32);
        let m = f.region_mean(0, 0, 16, 32);
        let mut sum = 0u64;
        for y in 0..32 {
            for x in 0..16 {
                sum += u64::from(f.get(x, y));
            }
        }
        assert!((m - sum as f64 / (16.0 * 32.0)).abs() < 1e-9);
    }

    #[test]
    fn resize_identity_is_noop() {
        let f = gradient(20, 10);
        assert_eq!(f.resize(20, 10), f);
    }

    #[test]
    fn resize_preserves_global_mean_approximately() {
        let f = gradient(64, 48);
        let small = f.resize(32, 24);
        let back = small.resize(64, 48);
        assert!((f.mean() - small.mean()).abs() < 2.0, "downscale drifted mean");
        assert!((f.mean() - back.mean()).abs() < 2.0, "round trip drifted mean");
    }

    #[test]
    fn resize_constant_frame_is_constant() {
        let f = Frame::filled(17, 13, 99);
        let r = f.resize(40, 23);
        assert!(r.samples().iter().all(|&v| v == 99));
    }

    #[test]
    fn mean_abs_diff_zero_for_identical() {
        let f = gradient(8, 8);
        assert_eq!(f.mean_abs_diff(&f.clone()), 0.0);
    }

    #[test]
    fn mean_abs_diff_counts_offsets() {
        let a = Frame::filled(4, 4, 10);
        let b = Frame::filled(4, 4, 13);
        assert_eq!(a.mean_abs_diff(&b), 3.0);
    }

    #[test]
    fn row_returns_correct_slice() {
        let f = gradient(8, 4);
        assert_eq!(f.row(2).len(), 8);
        assert_eq!(f.row(2)[3], f.get(3, 2));
    }

    #[test]
    fn crop_extracts_expected_rectangle() {
        let f = gradient(16, 8);
        let c = f.crop(4, 2, 6, 3);
        assert_eq!((c.width(), c.height()), (6, 3));
        for y in 0..3 {
            for x in 0..6 {
                assert_eq!(c.get(x, y), f.get(x + 4, y + 2));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn crop_rejects_overflow_rectangle() {
        let _ = gradient(8, 8).crop(4, 4, 8, 8);
    }

    #[test]
    fn blit_pastes_and_clips() {
        let mut canvas = Frame::filled(8, 8, 0);
        let patch = Frame::filled(4, 4, 200);
        canvas.blit(&patch, 2, 3);
        assert_eq!(canvas.get(2, 3), 200);
        assert_eq!(canvas.get(5, 6), 200);
        assert_eq!(canvas.get(1, 3), 0);
        assert_eq!(canvas.get(6, 6), 0);
        // Clipping: a blit at the edge must not panic or wrap.
        canvas.blit(&patch, 6, 6);
        assert_eq!(canvas.get(7, 7), 200);
    }
}
