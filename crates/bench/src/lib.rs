//! # vdsms-bench — the paper's evaluation, regenerated
//!
//! One module per table/figure of Section VI (see `DESIGN.md` for the
//! experiment index), a shared [`context::Ctx`] that builds and caches the
//! synthetic workload, and plain-text/markdown table output. The
//! `experiments` binary drives everything:
//!
//! ```text
//! cargo run --release -p vdsms-bench --bin experiments -- all
//! cargo run --release -p vdsms-bench --bin experiments -- fig6 --scale quick
//! ```

#![forbid(unsafe_code)]

pub mod context;
pub mod exps;
pub mod table;

pub use context::{Ctx, Scale};
pub use table::Table;
