//! Attack × detector robustness matrix (extension beyond the paper):
//! the seeded adversarial evaluation from `vdsms_workload::attacks`,
//! rendered as a bench table.
//!
//! Unlike [`super::tamper_sweep`], which measures raw fingerprint-set
//! similarity, this runs the *full detection engine* (both combination
//! orders, with and without the Hash–Query index) over streams whose
//! inserted copies were attacked — speed changes, frame drops,
//! clip-in-clip embedding, crops, re-encode chains — with the ground
//! truth remapped through each attack's timeline. The same evaluation
//! backs `vdsms eval-attacks` and the committed `BENCH_robustness.json`
//! floors.

use crate::table::f3;
use crate::{Ctx, Scale, Table};
use vdsms_workload::{evaluate_matrix, MatrixConfig};

/// Run the matrix at the profile matching the bench scale.
pub fn run(ctx: &mut Ctx, scale: Scale) -> Table {
    let profile = match scale {
        Scale::Quick => "smoke",
        Scale::Default => "quick",
        Scale::Large | Scale::Full => "default",
    };
    let seed = ctx.spec().seed;
    let config = MatrixConfig::profile(profile, seed)
        .expect("bench scales map to known attack-matrix profiles");
    let report = evaluate_matrix(&config);

    let mut table = Table::new(
        "Extension — attack × detector robustness matrix",
        &["attack", "strength", "detector", "precision", "recall", "found"],
    );
    table.note(format!(
        "profile {profile}, seed {seed}, w {:.1}s, δ {:.2}, K {}; truth spans remapped through time-warping attacks",
        report.w_seconds, report.delta, report.k
    ));
    for c in &report.cells {
        table.push(vec![
            c.attack.clone(),
            c.strength.clone(),
            c.detector.clone(),
            f3(c.precision),
            f3(c.recall),
            format!("{}/{}", c.found, c.planted),
        ]);
    }
    table
}
