// Fixture: an AB/BA deadlock across two functions. Expected findings:
// lock-order x1 — one diagnostic per unordered lock pair, naming both
// witness chains.
fn publish(s: &Shared) {
    let sink = s.sink.lock();
    let stats = s.stats.lock();
    sink.merge_into(stats);
}

fn snapshot(s: &Shared) {
    let stats = s.stats.lock();
    let sink = s.sink.lock();
    stats.copy_from(sink);
}
