// shared-state-discipline positive fixture. Expected findings: 3 —
// a `static mut` (token half), an `Arc<RefCell<…>>` clone crossing a
// spawn boundary, and an `Rc` clone crossing a spawn boundary.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::thread;

static mut HITS: u64 = 0;

fn report(v: u64) -> u64 {
    v
}

// The spawned closure captures `snd` (a clone of an `Arc<RefCell<…>>`)
// while the spawning thread keeps `counts`: unsynchronized interior
// mutability on two threads.
pub fn leak_cell() {
    let counts = Arc::new(RefCell::new(0u64));
    let snd = Arc::clone(&counts);
    thread::spawn(move || {
        snd.borrow_mut();
    });
    counts.borrow();
}

// Same shape with `Rc`: the non-atomic refcount crosses the spawn.
pub fn leak_rc() {
    let shared = Rc::new(7u64);
    let mine = shared.clone();
    thread::spawn(move || {
        report(*mine);
    });
    report(*shared);
}
