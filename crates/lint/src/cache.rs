//! The incremental analysis cache: per-file summaries keyed by content
//! hash, stored under `$CARGO_TARGET_DIR/vdsms-lint-cache/` (falling
//! back to `<root>/target/vdsms-lint-cache/` when the variable is
//! unset), so CI and local runs share one cache layout with cargo's
//! own artifacts.
//!
//! The per-file phase ([`crate::summarize_file`]) is the expensive part
//! of a lint run — lexing, parsing and the summary walks. Its output,
//! a [`FileSummary`], depends only on the file's bytes and identity
//! (crate, path label, crate-root flag) and on the extraction code
//! itself — **not** on configuration: summaries record every fact
//! unconditionally and rule switches are applied at link time. That
//! makes the cache safe to reuse across config edits, and makes a warm
//! run's diagnostics byte-identical to a cold run's by construction
//! (both feed the same summaries to the same link phase).
//!
//! The key is a chunked FNV-1a-style 64-bit hash over the lint version, the summary
//! format version, the file identity and the source bytes; any change
//! to either the file or the extraction semantics simply misses. A
//! cache entry that fails to parse or mismatches the embedded format
//! version is treated as a miss and rewritten — the cache can never
//! make a run fail, only make it faster.

use crate::config::LintConfig;
use crate::diag::Report;
use crate::summaries::{FileSummary, SUMMARY_VERSION};
use crate::SourceFile;
use std::path::{Path, PathBuf};
use vdsms_json::Json;

/// Bumped when extraction semantics change without a summary-shape
/// change (part of the cache key alongside [`SUMMARY_VERSION`]).
/// v4: concurrency model — spawn/capture, channel and blocking facts
/// feed three new link-phase rules, so stale reports must miss.
pub const LINT_VERSION: u64 = 4;

/// Counters for one cached lint run, reported on stderr by the binary
/// and asserted by `ci.sh` (a warm run must reuse, a cold run must
/// parse).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Files whose summary was loaded from the cache.
    pub reused: usize,
    /// Files that were (re)parsed and summarized.
    pub parsed: usize,
}

/// The on-disk cache directory for workspace `root`: honors
/// `CARGO_TARGET_DIR` (like cargo itself — a relative value is
/// resolved against `root`) so redirected builds keep lint artifacts
/// next to compile artifacts; defaults to `<root>/target`.
pub fn cache_dir(root: &Path) -> PathBuf {
    cache_dir_from(root, std::env::var_os("CARGO_TARGET_DIR").as_deref())
}

/// [`cache_dir`] with the environment lookup factored out, so the
/// resolution rules are testable without racing on process-global env.
fn cache_dir_from(root: &Path, cargo_target_dir: Option<&std::ffi::OsStr>) -> PathBuf {
    let target = match cargo_target_dir {
        Some(dir) if !dir.is_empty() => {
            let dir = PathBuf::from(dir);
            if dir.is_absolute() {
                dir
            } else {
                root.join(dir)
            }
        }
        _ => root.join("target"),
    };
    target.join("vdsms-lint-cache")
}

/// FNV-1a-64, widened to consume 8 bytes per multiply. The byte-serial
/// original is a long dependency chain that caps hashing at ~1 GB/s in
/// the worst case; chunking keeps the same mixing structure (xor then
/// multiply by the FNV prime) while cutting the multiplies 8×. Only
/// stability matters for a cache key, not any external FNV test vector
/// — the tail bytes and a trailing length mix keep distinct inputs
/// distinct across chunk boundaries.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let word = u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        h ^= word;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &b in chunks.remainder() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(0x0000_0100_0000_01b3)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The cache key for one source file: lint + summary version, file
/// identity, and content. Separator bytes keep field boundaries
/// unambiguous.
pub fn cache_key(file: &SourceFile) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &LINT_VERSION.to_le_bytes());
    h = fnv1a(h, &SUMMARY_VERSION.to_le_bytes());
    h = fnv1a(h, file.crate_name.as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, file.path.as_bytes());
    h = fnv1a(h, &[0, u8::from(file.is_crate_root)]);
    fnv1a(h, file.source.as_bytes())
}

fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.json"))
}

/// One file's cache probe: the key (reused for the write on a miss)
/// and the cached summary, if a valid entry existed.
fn probe(dir: &Path, file: &SourceFile) -> (u64, Option<FileSummary>) {
    let key = cache_key(file);
    let cached = std::fs::read_to_string(entry_path(dir, key))
        .ok()
        .as_deref()
        .and_then(FileSummary::from_json);
    (key, cached)
}

/// Summarize `files`, reusing cached summaries where the key matches.
/// Cache I/O failures are silently treated as misses (a read-only or
/// missing `target/` never breaks the lint run); `stats` records the
/// hit/miss split.
///
/// The probe phase (hash every file, read and decode its entry) is
/// independent per file and dominates a warm run, so it fans out over
/// scoped threads; results land by index, keeping the summary order —
/// and therefore every diagnostic — deterministic. Misses are then
/// summarized and written back serially.
pub fn summarize_with_cache(root: &Path, files: &[SourceFile]) -> (Vec<FileSummary>, CacheStats) {
    let dir = cache_dir(root);
    let writable = std::fs::create_dir_all(&dir).is_ok();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get()).min(8);
    let mut probed: Vec<(u64, Option<FileSummary>)> = Vec::new();
    if workers > 1 && files.len() > 1 {
        let chunk = files.len().div_ceil(workers);
        probed.resize_with(files.len(), || (0, None));
        std::thread::scope(|s| {
            for (out, part) in probed.chunks_mut(chunk).zip(files.chunks(chunk)) {
                let dir = &dir;
                s.spawn(move || {
                    for (slot, file) in out.iter_mut().zip(part) {
                        *slot = probe(dir, file);
                    }
                });
            }
        });
    } else {
        probed.extend(files.iter().map(|f| probe(&dir, f)));
    }
    let mut stats = CacheStats::default();
    let mut summaries = Vec::with_capacity(files.len());
    for (file, (key, cached)) in files.iter().zip(probed) {
        if let Some(cached) = cached {
            stats.reused += 1;
            summaries.push(cached);
            continue;
        }
        let summary = crate::summarize_file(file);
        stats.parsed += 1;
        if writable {
            // Write-then-rename would be sturdier against concurrent
            // runs, but the gate runs single-process; a torn write just
            // misses next time.
            let _ = std::fs::write(entry_path(&dir, key), summary.to_json());
        }
        summaries.push(summary);
    }
    (summaries, stats)
}

/// The report-cache key: every per-file key in order, then the config
/// fingerprint. The per-file keys already cover the lint and summary
/// versions, file identities and contents, so this hash changes when
/// **any** input to the link phase changes — and only then.
pub fn report_key(files: &[SourceFile], config: &LintConfig) -> u64 {
    let mut h = fnv1a(FNV_OFFSET, &(files.len() as u64).to_le_bytes());
    for f in files {
        h = fnv1a(h, &cache_key(f).to_le_bytes());
    }
    fnv1a(h, config.fingerprint().as_bytes())
}

fn report_path(dir: &Path) -> PathBuf {
    dir.join("report.json")
}

/// Load the cached whole-workspace report if one exists for `key`.
///
/// This is the second cache layer: per-file summaries make a run
/// incremental (only touched files re-parse), while the report cache
/// makes the fully-unchanged case skip the link phase too. The key is
/// embedded in the entry, so a stale report self-invalidates; corrupt
/// or mismatching entries are misses.
pub fn load_cached_report(root: &Path, key: u64) -> Option<Report> {
    let text = std::fs::read_to_string(report_path(&cache_dir(root))).ok()?;
    let v = Json::parse(&text).ok()?;
    if v.get("key")?.as_str()? != format!("{key:016x}") {
        return None;
    }
    Report::from_json_value(v.get("report")?)
}

/// Persist the whole-workspace report under `key`. Best-effort like
/// every cache write: failure just means the next run relinks.
pub fn store_cached_report(root: &Path, key: u64, report: &Report) {
    let dir = cache_dir(root);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let entry = Json::Obj(vec![
        ("key".to_string(), Json::str(format!("{key:016x}"))),
        ("report".to_string(), report.to_json_value()),
    ]);
    let _ = std::fs::write(report_path(&dir), entry.to_compact());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            crate_name: "demo".to_string(),
            path: "crates/demo/src/lib.rs".to_string(),
            source: src.to_string(),
            is_crate_root: true,
        }
    }

    #[test]
    fn cache_dir_honors_cargo_target_dir() {
        let root = Path::new("/ws");
        let os = std::ffi::OsStr::new;
        assert_eq!(cache_dir_from(root, None), PathBuf::from("/ws/target/vdsms-lint-cache"));
        assert_eq!(
            cache_dir_from(root, Some(os(""))),
            PathBuf::from("/ws/target/vdsms-lint-cache"),
            "empty CARGO_TARGET_DIR behaves like unset, matching cargo"
        );
        assert_eq!(
            cache_dir_from(root, Some(os("/ci/shared-target"))),
            PathBuf::from("/ci/shared-target/vdsms-lint-cache")
        );
        assert_eq!(
            cache_dir_from(root, Some(os("build/out"))),
            PathBuf::from("/ws/build/out/vdsms-lint-cache"),
            "relative CARGO_TARGET_DIR resolves against the workspace root"
        );
    }

    #[test]
    fn key_changes_with_content_and_identity() {
        let a = file("pub fn f() {}\n");
        let mut b = a.clone();
        b.source.push('\n');
        assert_ne!(cache_key(&a), cache_key(&b));
        let mut c = a.clone();
        c.path = "crates/demo/src/other.rs".to_string();
        assert_ne!(cache_key(&a), cache_key(&c));
        let mut d = a.clone();
        d.is_crate_root = false;
        assert_ne!(cache_key(&a), cache_key(&d));
        assert_eq!(cache_key(&a), cache_key(&a.clone()));
    }

    #[test]
    fn warm_run_reuses_and_touched_file_reparses() {
        let root = std::env::temp_dir().join(format!("vdsms-lint-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let files =
            vec![file("pub fn f() {}\n"), SourceFile { path: "crates/demo/src/b.rs".into(), ..file("pub fn g() {}\n") }];

        let (cold, s1) = summarize_with_cache(&root, &files);
        assert_eq!((s1.reused, s1.parsed), (0, 2));
        let (warm, s2) = summarize_with_cache(&root, &files);
        assert_eq!((s2.reused, s2.parsed), (2, 0));
        assert_eq!(cold, warm);

        // Touch one file: exactly one re-parse, identical summaries for
        // the rest.
        let mut touched = files.clone();
        touched[1].source = "pub fn g() { let x = 1; }\n".to_string();
        let (after, s3) = summarize_with_cache(&root, &touched);
        assert_eq!((s3.reused, s3.parsed), (1, 1));
        assert_eq!(after[0], cold[0]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn report_cache_round_trips_and_self_invalidates() {
        let root =
            std::env::temp_dir().join(format!("vdsms-lint-report-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let files = vec![file("pub fn f() {}\n")];
        let config = LintConfig::default();
        let key = report_key(&files, &config);
        assert!(load_cached_report(&root, key).is_none(), "empty cache is a miss");

        let mut report = Report { files_scanned: 1, ..Default::default() };
        report.diagnostics.push(crate::diag::Diagnostic {
            rule: "loop-progress".into(),
            file: "crates/demo/src/lib.rs".into(),
            line: 4,
            col: 5,
            message: "hot loop has no progress witness".into(),
            snippet: "loop {}".into(),
        });
        store_cached_report(&root, key, &report);
        let loaded = load_cached_report(&root, key).expect("stored report loads");
        assert_eq!(loaded.to_json(), report.to_json(), "round trip is byte-identical");

        // A different file set or config produces a different key, and
        // the embedded key makes the stale entry a miss.
        let mut touched = files.clone();
        touched[0].source.push('\n');
        let other = report_key(&touched, &config);
        assert_ne!(key, other);
        assert!(load_cached_report(&root, other).is_none(), "stale report is a miss");

        // Corruption is a miss, never an error.
        std::fs::write(report_path(&cache_dir(&root)), "{broken").expect("write");
        assert!(load_cached_report(&root, key).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_cache_entries_are_misses() {
        let root =
            std::env::temp_dir().join(format!("vdsms-lint-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let files = vec![file("pub fn f() {}\n")];
        let (cold, _) = summarize_with_cache(&root, &files);
        // Corrupt the entry on disk; the next run must re-parse, not fail.
        let dir = cache_dir(&root);
        let entry = entry_path(&dir, cache_key(&files[0]));
        std::fs::write(&entry, "{not json").expect("cache entry should exist");
        let (again, stats) = summarize_with_cache(&root, &files);
        assert_eq!((stats.reused, stats.parsed), (0, 1));
        assert_eq!(cold, again);
        let _ = std::fs::remove_dir_all(&root);
    }
}
