// Fixture: one real violation silenced by a well-formed directive.
// Expected: zero diagnostics, suppressed == 1.
fn render_elapsed(frames: u64) -> u64 {
    // vdsms-lint: allow(no-wall-clock) reason="CLI progress display only, never feeds detection"
    let t0 = std::time::Instant::now();
    frames / t0.elapsed().as_secs().max(1)
}
