//! Query persistence: serialize sketched queries so they can be built
//! offline (the paper's "the sketches of the query sequences can be
//! min-hashed offline") and loaded at subscription time without
//! re-decoding the query video.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! file   := magic("VDSQ") version(u8=1) count(u32) query*
//! query  := id(u32) keyframes(u32) k(u32) mins(u64 × k)
//! ```
//!
//! The hash family `(k, hash_seed)` is *not* stored — sketches are only
//! meaningful against the family they were built with, so the loader
//! checks `k` and the caller is responsible for using the same seed
//! (store it alongside, e.g. in the deployment config).

use crate::query::{Query, QuerySet};
use vdsms_sketch::Sketch;

/// Magic bytes of the query-set format.
pub const MAGIC: &[u8; 4] = b"VDSQ";
/// Current format version.
pub const VERSION: u8 = 1;

/// Errors while loading a persisted query set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Bad magic or version.
    BadHeader,
    /// Truncated input.
    UnexpectedEof,
    /// A query's `K` differs from the expected one.
    KMismatch {
        /// `K` expected by the caller.
        expected: usize,
        /// `K` found in the file.
        found: usize,
    },
    /// Duplicate query id in the file.
    DuplicateId(u32),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "not a VDSQ query-set file"),
            PersistError::UnexpectedEof => write!(f, "query-set file truncated"),
            PersistError::KMismatch { expected, found } => {
                write!(f, "sketch K mismatch: expected {expected}, file has {found}")
            }
            PersistError::DuplicateId(id) => write!(f, "duplicate query id {id}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize a query set.
pub fn save_queries(queries: &QuerySet) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(queries.len() as u32).to_le_bytes());
    for q in queries.iter() {
        out.extend_from_slice(&q.id.to_le_bytes());
        out.extend_from_slice(&(q.keyframes as u32).to_le_bytes());
        out.extend_from_slice(&(q.sketch.k() as u32).to_le_bytes());
        for &m in q.sketch.mins() {
            out.extend_from_slice(&m.to_le_bytes());
        }
    }
    out
}

/// Deserialize a query set, verifying every sketch uses `expected_k`.
pub fn load_queries(bytes: &[u8], expected_k: usize) -> Result<QuerySet, PersistError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], PersistError> {
        if *pos + n > bytes.len() {
            return Err(PersistError::UnexpectedEof);
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let u32_at = |pos: &mut usize| -> Result<u32, PersistError> {
        let s = take(pos, 4)?;
        let arr = s.try_into().map_err(|_| PersistError::UnexpectedEof)?;
        Ok(u32::from_le_bytes(arr))
    };

    if take(&mut pos, 4)? != MAGIC || take(&mut pos, 1)? != [VERSION] {
        return Err(PersistError::BadHeader);
    }
    let count = u32_at(&mut pos)?;
    let mut set = QuerySet::new();
    for _ in 0..count {
        let id = u32_at(&mut pos)?;
        let keyframes = u32_at(&mut pos)? as usize;
        let k = u32_at(&mut pos)? as usize;
        if k != expected_k {
            return Err(PersistError::KMismatch { expected: expected_k, found: k });
        }
        let mut mins = Vec::with_capacity(k);
        for _ in 0..k {
            let s = take(&mut pos, 8)?;
            let arr = s.try_into().map_err(|_| PersistError::UnexpectedEof)?;
            mins.push(u64::from_le_bytes(arr));
        }
        if set.get(id).is_some() {
            return Err(PersistError::DuplicateId(id));
        }
        set.insert(Query { id, keyframes, sketch: Sketch::from_mins(mins) });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_sketch::MinHashFamily;

    fn sample_set(k: usize) -> QuerySet {
        let family = MinHashFamily::new(k, 3);
        QuerySet::from_queries(
            (0..5u32)
                .map(|i| {
                    let ids: Vec<u64> = (0..20).map(|j| u64::from(i) * 100 + j).collect();
                    Query::from_cell_ids(i, &family, &ids)
                })
                .collect(),
        )
    }

    #[test]
    fn round_trip_preserves_everything() {
        let set = sample_set(64);
        let bytes = save_queries(&set);
        let loaded = load_queries(&bytes, 64).unwrap();
        assert_eq!(loaded.len(), set.len());
        for q in set.iter() {
            let l = loaded.get(q.id).unwrap();
            assert_eq!(l.keyframes, q.keyframes);
            assert_eq!(l.sketch, q.sketch);
        }
    }

    #[test]
    fn k_mismatch_is_rejected() {
        let bytes = save_queries(&sample_set(64));
        assert_eq!(
            load_queries(&bytes, 128).err(),
            Some(PersistError::KMismatch { expected: 128, found: 64 })
        );
    }

    #[test]
    fn garbage_and_truncation_are_rejected() {
        assert_eq!(load_queries(b"nope", 8).err(), Some(PersistError::BadHeader));
        assert_eq!(load_queries(b"nop", 8).err(), Some(PersistError::UnexpectedEof));
        let bytes = save_queries(&sample_set(16));
        assert_eq!(
            load_queries(&bytes[..bytes.len() - 3], 16).err(),
            Some(PersistError::UnexpectedEof)
        );
        assert_eq!(load_queries(&[], 16).err(), Some(PersistError::UnexpectedEof));
    }

    #[test]
    fn empty_set_round_trips() {
        let bytes = save_queries(&QuerySet::new());
        assert!(load_queries(&bytes, 800).unwrap().is_empty());
    }

    #[test]
    fn loaded_queries_work_in_a_detector() {
        let cfg = crate::DetectorConfig { k: 64, window_keyframes: 4, ..Default::default() };
        let family = crate::Detector::family_for(&cfg);
        let ids: Vec<u64> = (0..30).collect();
        let set = QuerySet::from_queries(vec![Query::from_cell_ids(9, &family, &ids)]);
        let loaded = load_queries(&save_queries(&set), 64).unwrap();
        let mut det = crate::Detector::new(cfg, loaded);
        let dets = det.run(ids.iter().copied().enumerate().map(|(i, v)| (i as u64, v)));
        assert!(dets.iter().any(|d| d.query_id == 9));
    }
}
