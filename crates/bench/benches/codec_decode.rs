//! Full pixel decoding vs compressed-domain partial decoding — the
//! structural speedup that motivates Section III-A's feature extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vdsms_codec::{Decoder, Encoder, EncoderConfig, PartialDecoder};
use vdsms_video::source::{ClipGenerator, SourceSpec};
use vdsms_video::Fps;

fn bench_decode(c: &mut Criterion) {
    let spec = SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed: 3,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    };
    let clip = ClipGenerator::new(spec).clip(10.0);
    let bytes = Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });

    let mut g = c.benchmark_group("decode_10s_clip");
    g.sample_size(20);
    g.bench_function("full_pixel_decode", |bench| {
        bench.iter(|| Decoder::new(black_box(&bytes)).unwrap().decode_all().unwrap());
    });
    g.bench_function("partial_dc_decode", |bench| {
        bench.iter(|| PartialDecoder::new(black_box(&bytes)).unwrap().decode_all().unwrap());
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let spec = SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed: 3,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    };
    let clip = ClipGenerator::new(spec).clip(2.0);
    let mut g = c.benchmark_group("encode_2s_clip");
    g.sample_size(10);
    g.bench_function("gop5_q80", |bench| {
        bench.iter(|| Encoder::encode_clip(black_box(&clip), EncoderConfig { gop: 5, quality: 80, motion_search: true }));
    });
    g.finish();
}

criterion_group!(benches, bench_decode, bench_encode);
criterion_main!(benches);
