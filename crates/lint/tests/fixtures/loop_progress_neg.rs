// loop-progress negative fixture: every hot loop here provably moves —
// a drain call, a counter, a cursor — and the one stalled loop is cold.

pub struct Queue;

impl Queue {
    pub fn has_more(&self) -> bool {
        false
    }
    pub fn pop(&mut self) {}
}

// vdsms-lint: entry
pub fn drain(queue: &mut Queue) {
    while queue.has_more() {
        queue.pop();
    }
}

// vdsms-lint: entry
pub fn countdown(mut n: u32) {
    while n > 0 {
        n -= 1;
    }
}

// vdsms-lint: entry
pub fn resync(bytes: &[u8]) {
    let mut cursor = 0;
    while cursor < bytes.len() {
        cursor += 1;
    }
}

// Stalled, but unreachable from any entry marker: the reachability gate
// keeps cold code out of this rule.
pub fn cold_spin() {
    loop {}
}
