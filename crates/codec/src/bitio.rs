//! Byte-oriented entropy I/O: LEB128 varints with zigzag signed mapping.
//!
//! The codec's entropy layer is run-length + varint rather than Huffman:
//! it keeps the bitstream compact enough to be honest about compressed-
//! domain costs while remaining skippable at byte granularity, which is
//! what the partial decoder exploits.
//!
//! The read side is SWAR-accelerated: away from the buffer tail, varint
//! decoding and terminator scanning load 8 bytes at a time and find the
//! byte of interest with word-parallel bit tricks instead of a
//! byte-at-a-time loop. Every SWAR path has an exact scalar twin
//! ([`ByteReader::get_varint_scalar`], the tail loops below) and the
//! property tests in `tests/codec_props.rs` hold them bit- and
//! error-identical over random, adversarial and truncated input.

use crate::{CodecError, Result};

/// `0x01` repeated in every byte lane.
const SWAR_LSB: u64 = 0x0101_0101_0101_0101;

/// `0x80` repeated in every byte lane.
const SWAR_MSB: u64 = 0x8080_8080_8080_8080;

/// Load 8 little-endian bytes starting at `pos`.
///
/// # Panics
/// Panics if fewer than 8 bytes remain — callers guard with a length
/// check, keeping the SWAR fast paths in-bounds by construction.
#[inline]
fn load_u64_le(buf: &[u8], pos: usize) -> u64 {
    let mut arr = [0u8; 8];
    arr.copy_from_slice(&buf[pos..pos + 8]);
    u64::from_le_bytes(arr)
}

/// Word-parallel zero-byte detector: the classic `(w - 0x01…) & !w &
/// 0x80…` trick. The result has bit `8i+7` set iff byte `i` of `w` is
/// zero — exact for every byte up to and including the *first* zero
/// (borrow propagation can only perturb lanes above it), which is all a
/// `trailing_zeros`-based first-match scan ever reads.
#[inline]
fn swar_zero_bytes(w: u64) -> u64 {
    w.wrapping_sub(SWAR_LSB) & !w & SWAR_MSB
}

/// Compact eight 7-bit LEB128 payload groups (one per byte lane, high
/// bits already cleared) into a contiguous 56-bit value. Three
/// shift-and-mask rounds: bytes → 14-bit pairs → 28-bit quads → 56 bits.
#[inline]
fn swar_compress7(w: u64) -> u64 {
    let w = (w & 0x007f_007f_007f_007f) | ((w & 0x7f00_7f00_7f00_7f00) >> 1);
    let w = (w & 0x0000_3fff_0000_3fff) | ((w & 0x3fff_0000_3fff_0000) >> 2);
    (w & 0x0fff_ffff) | (((w >> 32) & 0x0fff_ffff) << 28)
}

/// Position of the first byte `<= 1` at or after `from`, scanning 8
/// bytes per step. This is the corruption-recovery resync accelerator:
/// a plausible frame-record header must start with a kind byte of 0
/// or 1, so every other byte value can be skipped at word speed before
/// the full header plausibility check runs.
// vdsms-lint: entry
pub fn find_byte_le_one(buf: &[u8], from: usize) -> Option<usize> {
    let mut p = from;
    let end = buf.len();
    while p.saturating_add(8) <= end {
        let w = load_u64_le(buf, p);
        // A byte is <= 1 when it is 0x00 in `w` or 0x00 in `w ^ 0x01…`;
        // each detector is exact at its first match, so the OR's lowest
        // set bit is the first qualifying byte.
        let hits = swar_zero_bytes(w) | swar_zero_bytes(w ^ SWAR_LSB);
        if hits != 0 {
            return Some(p + (hits.trailing_zeros() >> 3) as usize);
        }
        p += 8;
    }
    while p < end {
        if buf[p] <= 1 {
            return Some(p);
        }
        p += 1;
    }
    None
}

/// Append-only varint writer over a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// New empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the buffer.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32 (used for fixed-width length prefixes the
    /// partial decoder needs for O(1) frame skipping).
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a signed value with zigzag mapping (`0, -1, 1, -2, ...` →
    /// `0, 1, 2, 3, ...`) then LEB128.
    pub fn put_signed(&mut self, v: i64) {
        self.put_varint(zigzag_encode(v));
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Overwrite 4 bytes at `pos` with a little-endian u32 (back-patching a
    /// length prefix after the payload is known).
    pub fn patch_u32_le(&mut self, pos: usize, v: u32) {
        self.buf[pos..pos + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Cursor-based varint reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// New reader at position 0.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor is at the end.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a little-endian u32.
    pub fn get_u32_le(&mut self) -> Result<u32> {
        if self.remaining() < 4 {
            return Err(CodecError::UnexpectedEof);
        }
        let mut arr = [0u8; 4];
        arr.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_le_bytes(arr))
    }

    /// Read an unsigned LEB128 varint.
    ///
    /// With at least 8 bytes in the buffer this is a SWAR decode: one
    /// word load, one `!w & 0x80…` terminator scan, and a three-round
    /// 7-bit-group compaction — no per-byte loop. Encodings longer than
    /// 8 bytes (and reads near the buffer tail) fall through to the
    /// scalar continuation / [`Self::get_varint_scalar`], which define
    /// the semantics bit for bit, including the quirks: a 10-byte
    /// encoding is accepted with payload bits above bit 63 dropped,
    /// an 11th continuation byte is `CorruptEntropy`, and EOF inside a
    /// varint is `UnexpectedEof` even where overflow would also apply.
    // vdsms-lint: entry
    pub fn get_varint(&mut self) -> Result<u64> {
        // Single-byte encodings dominate real streams (small zigzagged
        // DC deltas); answer them before paying for a word load.
        if let Some(&b) = self.buf.get(self.pos) {
            if b < 0x80 {
                self.pos += 1;
                return Ok(u64::from(b));
            }
        }
        if self.pos.saturating_add(8) <= self.buf.len() {
            let w = load_u64_le(self.buf, self.pos);
            // A terminator byte has bit 7 clear.
            let term = !w & SWAR_MSB;
            if term != 0 {
                // `tbit` is bit 8n+7 for the first terminator byte n;
                // widen it downward into a keep-bytes-0..=n mask.
                let tbit = term & term.wrapping_neg();
                let mask = tbit | (tbit - 1);
                self.pos += (tbit.trailing_zeros() >> 3) as usize + 1;
                return Ok(swar_compress7(w & mask & !SWAR_MSB));
            }
            // All 8 loaded bytes are continuation bytes: bank their 56
            // payload bits, then finish with the exact scalar tail so
            // overlong-encoding and EOF behavior match the reference.
            let mut v = swar_compress7(w & !SWAR_MSB);
            self.pos += 8;
            let mut shift = 56u32;
            loop {
                let byte = self.get_u8()?;
                if shift >= 64 {
                    return Err(CodecError::CorruptEntropy("varint overflow"));
                }
                v |= u64::from(byte & 0x7f) << shift;
                if byte & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
            }
        }
        self.get_varint_scalar()
    }

    /// Byte-at-a-time LEB128 reference decoder. This is the semantic
    /// ground truth the SWAR fast path in [`Self::get_varint`] is
    /// property-tested against; it also serves reads within 8 bytes of
    /// the buffer end, where a word load would run out of bounds.
    pub fn get_varint_scalar(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(CodecError::CorruptEntropy("varint overflow"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-mapped signed varint.
    pub fn get_signed(&mut self) -> Result<i64> {
        Ok(zigzag_decode(self.get_varint()?))
    }

    /// Read exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// The entire underlying buffer, independent of the cursor. The
    /// decoder's corruption-recovery scan needs to inspect raw bytes ahead
    /// of the cursor without consuming them.
    pub fn buffer(&self) -> &'a [u8] {
        self.buf
    }

    /// Move the cursor to an absolute byte offset, clamped to the end of
    /// the buffer (resync after a corrupt record).
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.buf.len());
    }

    /// Advance the cursor by `n` bytes without reading (frame skipping).
    pub fn skip(&mut self, n: usize) -> Result<()> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        self.pos += n;
        Ok(())
    }

    /// Advance the cursor just past the next `0x00` byte.
    ///
    /// This is the fused ingestion path's AC-tail skip: inside an I-frame
    /// payload, every varint the encoder emits is minimal and non-zero
    /// except the end-of-block token and a zero DC delta, and the DC
    /// delta is always consumed *before* this scan starts — so the first
    /// `0x00` byte after a block's DC is exactly its EOB marker (see
    /// `vdsms_codec::zigzag`). A plain byte scan replaces per-token
    /// varint parsing.
    /// The scan itself is SWAR: 8 bytes per step through the bulk of
    /// the payload, with a scalar tail for the last partial word.
    // vdsms-lint: entry
    pub fn skip_past_zero_byte(&mut self) -> Result<()> {
        let end = self.buf.len();
        let mut p = self.pos;
        while p.saturating_add(8) <= end {
            let z = swar_zero_bytes(load_u64_le(self.buf, p));
            if z != 0 {
                self.pos = p + (z.trailing_zeros() >> 3) as usize + 1;
                return Ok(());
            }
            p += 8;
        }
        while p < end {
            if self.buf[p] == 0 {
                self.pos = p + 1;
                return Ok(());
            }
            p += 1;
        }
        self.pos = end;
        Err(CodecError::UnexpectedEof)
    }
}

/// Zigzag-map a signed integer to unsigned.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip_boundaries() {
        let cases = [0u64, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64, u64::MAX];
        let mut w = ByteWriter::new();
        for &c in &cases {
            w.put_varint(c);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &c in &cases {
            assert_eq!(r.get_varint().unwrap(), c);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn signed_round_trip() {
        let cases = [0i64, -1, 1, -2, 2, 255, -255, i32::MAX as i64, i32::MIN as i64];
        let mut w = ByteWriter::new();
        for &c in &cases {
            w.put_signed(c);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &c in &cases {
            assert_eq!(r.get_signed().unwrap(), c);
        }
    }

    #[test]
    fn zigzag_mapping_is_compact_for_small_magnitudes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        for v in -1000..1000 {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn u32_le_and_patching() {
        let mut w = ByteWriter::new();
        w.put_u32_le(0);
        w.put_u8(7);
        w.patch_u32_le(0, 0xdead_beef);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u32_le().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u8().unwrap(), 7);
    }

    #[test]
    fn reader_eof_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[0x80]); // unterminated varint
        assert_eq!(r.get_varint(), Err(CodecError::UnexpectedEof));
        let mut r2 = ByteReader::new(&[]);
        assert_eq!(r2.get_u32_le(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn skip_past_zero_byte_lands_after_terminator() {
        let data = [5u8, 0x83, 0x10, 0, 7, 0];
        let mut r = ByteReader::new(&data);
        r.skip_past_zero_byte().unwrap();
        assert_eq!(r.position(), 4);
        r.skip_past_zero_byte().unwrap();
        assert!(r.is_at_end());
        assert_eq!(r.skip_past_zero_byte(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn skip_moves_cursor() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r = ByteReader::new(&data);
        r.skip(3).unwrap();
        assert_eq!(r.get_u8().unwrap(), 4);
        assert!(r.skip(2).is_err());
    }

    #[test]
    fn varint_rejects_overlong_encodings() {
        // 11 continuation bytes exceed 64 bits of payload.
        let data = [0xff; 11];
        let mut r = ByteReader::new(&data);
        assert!(matches!(r.get_varint(), Err(CodecError::CorruptEntropy(_))));
    }
}
