//! # vdsms-video — synthetic video substrate
//!
//! The ICDE 2008 paper evaluates on 200 real short videos from
//! video.google.com inserted into five base films (12 hours of NTSC video).
//! Those videos are not redistributable, so this crate provides the
//! substitute substrate: a deterministic, seeded **synthetic video
//! generator** whose output has the statistical properties the detection
//! pipeline actually depends on:
//!
//! * frames are piecewise-smooth luminance fields organized into *scenes*
//!   separated by hard cuts (so block-DC averages are temporally coherent
//!   within a scene and jump across scenes);
//! * distinct clips (distinct seeds) have distinct block-DC trajectories;
//! * two *copies* of the same clip — one re-encoded, brightness-shifted,
//!   noised, rescaled, temporally resampled — have nearly-but-not-exactly
//!   equal trajectories.
//!
//! The crate also implements the paper's full tamper/editing pipeline used
//! to produce the `VS2` evaluation stream (Section VI): brightness/color
//! alteration of 20–50 %, additive noise, resolution change, PAL re-encoding
//! at 25 fps, and content-preserving segment re-ordering.
//!
//! Everything is deterministic given a seed, so experiments are exactly
//! reproducible.

#![forbid(unsafe_code)]

pub mod clip;
pub mod edit;
pub mod frame;
pub mod source;

pub use clip::Clip;
pub use edit::{Edit, EditPipeline, SpanMap};
pub use frame::Frame;
pub use source::{ClipGenerator, SourceSpec};

/// Frames-per-second represented as an exact rational so that NTSC
/// (30000/1001 ≈ 29.97) and PAL (25/1) are both representable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fps {
    /// Numerator of the frame rate.
    pub num: u32,
    /// Denominator of the frame rate.
    pub den: u32,
}

impl Fps {
    /// NTSC frame rate, 30000/1001 ≈ 29.97 fps (the paper's source videos).
    pub const NTSC: Fps = Fps { num: 30000, den: 1001 };
    /// PAL frame rate, 25 fps (the paper's re-encoded `VS2` copies).
    pub const PAL: Fps = Fps { num: 25, den: 1 };

    /// Construct an integer frame rate.
    pub const fn integer(fps: u32) -> Fps {
        Fps { num: fps, den: 1 }
    }

    /// The frame rate as a float (frames per second).
    pub fn as_f64(self) -> f64 {
        f64::from(self.num) / f64::from(self.den)
    }

    /// Number of frames spanning `seconds` of wall-clock time (rounded).
    pub fn frames_in(self, seconds: f64) -> usize {
        (seconds * self.as_f64()).round() as usize
    }

    /// Duration in seconds of `frames` frames.
    pub fn seconds_of(self, frames: usize) -> f64 {
        frames as f64 / self.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_ntsc_is_close_to_29_97() {
        assert!((Fps::NTSC.as_f64() - 29.97).abs() < 0.01);
    }

    #[test]
    fn fps_pal_is_25() {
        assert_eq!(Fps::PAL.as_f64(), 25.0);
    }

    #[test]
    fn fps_frames_in_round_trips_seconds() {
        let fps = Fps::integer(30);
        assert_eq!(fps.frames_in(10.0), 300);
        assert!((fps.seconds_of(300) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fps_frames_in_ntsc() {
        // 60 seconds of NTSC is 1798 frames (60 * 29.97 = 1798.2).
        assert_eq!(Fps::NTSC.frames_in(60.0), 1798);
    }
}
