//! Tampered-copy hunting: the paper's headline capability.
//!
//! A pirate takes a protected clip, darkens it, adds noise, re-encodes it
//! at PAL geometry and frame rate, **re-orders its segments along a new
//! story line**, and embeds it in their own broadcast. The min-hash
//! engine (order-blind set similarity) finds the copy; the
//! temporal-alignment baselines (Seq, Warp) do not — reproducing the
//! comparison of the paper's Section VI-E.
//!
//! ```text
//! cargo run --release --example tamper_hunt
//! ```

use vdsms::baselines::{BaselineKind, BaselineMatcher, BaselineQuery};
use vdsms::codec::{Encoder, EncoderConfig, PartialDecoder};
use vdsms::features::{FeatureConfig, FeatureExtractor};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::{Clip, EditPipeline, Fps};
use vdsms::{DetectorConfig, MonitorBuilder};

const ENC: EncoderConfig = EncoderConfig { gop: 5, quality: 80, motion_search: true };

fn spec(seed: u64) -> SourceSpec {
    SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(10),
        seed,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    }
}

/// Per-key-frame feature vectors of a clip (what the baselines consume).
fn features_of(clip: &Clip, fc: &FeatureConfig) -> Vec<Vec<f32>> {
    let bytes = Encoder::encode_clip(clip, ENC);
    let dcs = PartialDecoder::new(&bytes).unwrap().decode_all().unwrap();
    let ex = FeatureExtractor::new(*fc);
    dcs.iter().map(|d| ex.feature_vector(d)).collect()
}

fn main() {
    let protected = ClipGenerator::new(spec(5)).clip(30.0);

    // The pirate's edit: the full VS2 tamper suite.
    let pipeline = EditPipeline::vs2_standard(
        1234,
        protected.width(),
        protected.height(),
        protected.fps(),
        6, // six segments, re-ordered
    );
    println!("tamper pipeline: {:?}\n", pipeline.edits());
    let pirated = pipeline.apply(&protected);
    // Letterbox back to the broadcast geometry and retime to the
    // broadcaster's constant frame rate (the frames air at the stream's
    // rate, tempo-scaling the content).
    let pirated = Clip::new(
        pirated.frames().iter().map(|f| f.resize(protected.width(), protected.height())).collect(),
        pirated.fps(),
    )
    .retimed(protected.fps());

    // The pirate's broadcast.
    let mut broadcast = ClipGenerator::new(spec(60)).clip(60.0);
    let copy_starts = broadcast.duration();
    broadcast.append(pirated);
    broadcast.append(ClipGenerator::new(spec(61)).clip(40.0));
    let bitstream = Encoder::encode_clip(&broadcast, ENC);
    println!("pirate broadcast: {:.0} s; copy airs at {:.0} s\n", broadcast.duration(), copy_starts);

    // --- The proposed method.
    let mut monitor = MonitorBuilder::new()
        .detector(DetectorConfig { window_keyframes: 8, ..Default::default() })
        .query_encoder(ENC)
        .build();
    monitor.subscribe_clip(0, &protected);
    let dets = monitor.watch_bitstream(&bitstream).expect("valid stream");
    println!("min-hash Bit method: {} detections", dets.len());
    for d in dets.iter().take(3) {
        println!(
            "  frames {}..{} (t = {:.0}s..{:.0}s), similarity {:.2}",
            d.start_frame,
            d.end_frame,
            d.start_frame as f64 / 10.0,
            d.end_frame as f64 / 10.0,
            d.similarity
        );
    }
    assert!(!dets.is_empty(), "the tampered copy must be found");

    // --- The baselines, given the same compressed-domain features and a
    // generous threshold.
    let fc = FeatureConfig::default();
    let query_feats = features_of(&protected, &fc);
    let stream_bytes = bitstream;
    let dcs = PartialDecoder::new(&stream_bytes).unwrap().decode_all().unwrap();
    let ex = FeatureExtractor::new(fc);
    for (name, kind) in
        [("Seq (aligned)", BaselineKind::Seq), ("Warp (DTW r=4)", BaselineKind::Warp { r: 4 })]
    {
        let mut matcher = BaselineMatcher::new(
            kind,
            0.25, // a threshold that catches exact copies comfortably
            8,
            vec![BaselineQuery { id: 0, features: query_feats.clone() }],
        );
        let mut found = Vec::new();
        for dc in &dcs {
            found.extend(matcher.push_keyframe(dc.frame_index, ex.feature_vector(dc)));
        }
        println!("{name}: {} detections on the re-ordered copy", found.len());
    }
    println!("\nThe set-similarity engine survives re-ordering; aligned matchers do not.");
}
