//! Diagnostics: what a rule reports, how it renders for humans, and the
//! machine-readable JSON form CI consumes.
//!
//! The JSON emitter goes through [`vdsms_json`] — the same module the
//! `vdsms-workload` floor parser reads with — so the reader and writer
//! of every JSON surface in the workspace share one byte-stable
//! implementation and cannot drift.

use std::fmt::Write as _;
use vdsms_json::Json;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `no-panic-hot-path`).
    pub rule: String,
    /// Path of the offending file, workspace-relative where possible.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed, for rendering.
    pub snippet: String,
}

impl Diagnostic {
    /// Render as `file:line:col: [rule] message` plus the snippet line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        );
        if !self.snippet.is_empty() {
            let _ = writeln!(out, "    | {}", self.snippet);
        }
        out
    }
}

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, in (file, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of suppressed findings (matched by an `allow` directive).
    pub suppressed: usize,
}

impl Report {
    /// True when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
        }
        let _ = writeln!(
            out,
            "vdsms-lint: {} violation(s), {} suppressed, {} file(s) scanned",
            self.diagnostics.len(),
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// The report as a [`Json`] value (stable key order).
    pub fn to_json_value(&self) -> Json {
        let violations = self
            .diagnostics
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("rule".to_string(), Json::str(&d.rule)),
                    ("file".to_string(), Json::str(&d.file)),
                    ("line".to_string(), Json::num(d.line as usize)),
                    ("col".to_string(), Json::num(d.col as usize)),
                    ("message".to_string(), Json::str(&d.message)),
                    ("snippet".to_string(), Json::str(&d.snippet)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("violations".to_string(), Json::Arr(violations)),
            ("count".to_string(), Json::num(self.diagnostics.len())),
            ("suppressed".to_string(), Json::num(self.suppressed)),
            ("files_scanned".to_string(), Json::num(self.files_scanned)),
        ])
    }

    /// Machine-readable JSON (stable key order, no external deps).
    pub fn to_json(&self) -> String {
        let mut out = self.to_json_value().to_pretty();
        out.push('\n');
        out
    }

    /// Rebuild a report from a [`Json`] value written by
    /// [`Report::to_json_value`]. Used by the report-level cache; any
    /// shape mismatch is `None` (a cache miss, never an error).
    pub fn from_json_value(v: &Json) -> Option<Report> {
        let violations = v.get("violations")?.as_arr()?;
        let mut diagnostics = Vec::with_capacity(violations.len());
        for d in violations {
            diagnostics.push(Diagnostic {
                rule: d.get("rule")?.as_str()?.to_string(),
                file: d.get("file")?.as_str()?.to_string(),
                line: u32::try_from(d.get("line")?.as_usize()?).ok()?,
                col: u32::try_from(d.get("col")?.as_usize()?).ok()?,
                message: d.get("message")?.as_str()?.to_string(),
                snippet: d.get("snippet")?.as_str()?.to_string(),
            });
        }
        if v.get("count")?.as_usize()? != diagnostics.len() {
            return None;
        }
        Some(Report {
            diagnostics,
            suppressed: v.get("suppressed")?.as_usize()?,
            files_scanned: v.get("files_scanned")?.as_usize()?,
        })
    }

    /// Parse the string form produced by [`Report::to_json`].
    pub fn from_json(text: &str) -> Option<Report> {
        Self::from_json_value(&Json::parse(text).ok()?)
    }
}

/// JSON-escape a string (quotes, backslashes, control characters).
pub fn json_string(s: &str) -> String {
    vdsms_json::escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            rule: "no-panic-hot-path".into(),
            file: "crates/core/src/x.rs".into(),
            line: 3,
            col: 7,
            message: "`unwrap()` forbidden".into(),
            snippet: "let v = m.get(&k).unwrap();".into(),
        }
    }

    #[test]
    fn render_contains_location_and_rule() {
        let r = diag().render();
        assert!(r.contains("crates/core/src/x.rs:3:7"));
        assert!(r.contains("[no-panic-hot-path]"));
        assert!(r.contains("unwrap"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_round_trips_through_json_byte_identically() {
        let mut rep = Report { files_scanned: 7, suppressed: 3, ..Default::default() };
        rep.diagnostics.push(diag());
        rep.diagnostics.push(Diagnostic {
            rule: "loop-progress".into(),
            file: "crates/core/src/y.rs".into(),
            line: 11,
            col: 1,
            message: "hot loop has no progress witness (\"quoted\")".into(),
            snippet: "while let Some(x) = q.pop() {}".into(),
        });
        let json = rep.to_json();
        let back = Report::from_json(&json).expect("own output parses");
        assert_eq!(back.to_json(), json, "serialize(parse(x)) must be byte-identical");
        assert_eq!(back.render(), rep.render());

        // Shape mismatches are misses, not panics.
        assert!(Report::from_json("{}").is_none());
        assert!(Report::from_json("not json").is_none());
        assert!(Report::from_json(&json.replacen("\"count\": 2", "\"count\": 9", 1)).is_none());
    }

    #[test]
    fn json_report_shape() {
        let mut rep = Report { files_scanned: 2, ..Default::default() };
        rep.diagnostics.push(diag());
        let j = rep.to_json();
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"rule\": \"no-panic-hot-path\""));
        // Empty report is still valid JSON with an empty array.
        let empty = Report::default().to_json();
        assert!(empty.contains("\"violations\": []"));
    }
}
