//! The adversarial attack matrix: seeded content-level attacks × detector
//! variants, with ground truth remapped through time-warping edits.
//!
//! The paper evaluates only its VS1/VS2 edit lists; modern benchmarks
//! (the 2023 Video Similarity Challenge, and temporal-attack studies of
//! the min-hash family) show that *content-level* attacks — speed
//! changes, frame drops, clip-in-clip embedding — are what actually break
//! set-similarity detectors. This module generates those attacks as
//! attack × strength grids, composes one evaluation stream per attack,
//! and sweeps every [`DetectorVariant`] over it, producing the empirical
//! robustness map the tiered-fingerprint work needs.
//!
//! Everything derives from `u64` seeds: the same [`MatrixConfig`]
//! reproduces the same report byte for byte, which is what lets
//! `BENCH_robustness.json` commit per-cell recall/precision floors that
//! CI can enforce.
//!
//! **Truth remapping.** A sped-up airing occupies fewer stream frames
//! than the original query, and a clip-in-clip airing starts after a
//! distractor lead. [`AttackSpec::attack_clip`] therefore returns the
//! attacked clip *and* the span the query content occupies inside it,
//! computed by [`EditPipeline::map_span`] from the same source maps that
//! assembled the frames; [`compose_attacked_stream`] records ground truth
//! over that span only.

use crate::clips::ClipLibrary;
use crate::json::Json;
use crate::metrics::score;
use crate::spec::WorkloadSpec;
use crate::streams::{compose_with, fingerprint_stream, ComposedStream, StreamKind};
use std::fmt::Write as _;
use vdsms_codec::{Decoder, Encoder, EncoderConfig};
use vdsms_core::{Detector, DetectorConfig, DetectorVariant, Query, QuerySet};
use vdsms_features::FeatureConfig;
use vdsms_video::{Clip, Edit, EditPipeline, Fps};

/// One attack family of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Faster playback via frame resampling (time warp: shorter airing).
    SpeedUp,
    /// Slower playback via frame resampling (time warp: longer airing).
    SlowDown,
    /// Periodic frame drops (cadence removal; time warp).
    PeriodicDrop,
    /// Seeded bursty frame drops (splice damage; time warp).
    BurstyDrop,
    /// The query embedded at an offset inside a longer distractor video.
    ClipInClip,
    /// Center region crop scaled back up (zoom / reframing).
    Crop,
    /// Letterbox/pillarbox bars around downscaled content.
    Letterbox,
    /// Multi-generation re-encode chain at decreasing quality.
    ReencodeChain,
    /// Brightness/contrast alteration (the paper's color edit, harder).
    Recolor,
    /// Additive Gaussian noise overlay.
    Noise,
}

impl AttackKind {
    /// Every attack kind, in canonical (report) order.
    pub const ALL: [AttackKind; 10] = [
        AttackKind::SpeedUp,
        AttackKind::SlowDown,
        AttackKind::PeriodicDrop,
        AttackKind::BurstyDrop,
        AttackKind::ClipInClip,
        AttackKind::Crop,
        AttackKind::Letterbox,
        AttackKind::ReencodeChain,
        AttackKind::Recolor,
        AttackKind::Noise,
    ];

    /// Stable name used in CLI flags, reports, and floor files.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::SpeedUp => "speed-up",
            AttackKind::SlowDown => "slow-down",
            AttackKind::PeriodicDrop => "periodic-drop",
            AttackKind::BurstyDrop => "bursty-drop",
            AttackKind::ClipInClip => "clip-in-clip",
            AttackKind::Crop => "crop",
            AttackKind::Letterbox => "letterbox",
            AttackKind::ReencodeChain => "reencode-chain",
            AttackKind::Recolor => "recolor",
            AttackKind::Noise => "noise",
        }
    }

    /// Parse a [`AttackKind::name`] back.
    pub fn parse(s: &str) -> Option<AttackKind> {
        AttackKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// How hard the attack hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strength {
    /// Barely perceptible; every detector should survive.
    Light,
    /// A realistic pirate re-upload.
    Medium,
    /// Aggressive evasion.
    Heavy,
}

impl Strength {
    /// Every strength, in canonical order.
    pub const ALL: [Strength; 3] = [Strength::Light, Strength::Medium, Strength::Heavy];

    /// Stable name used in reports and floor files.
    pub fn name(self) -> &'static str {
        match self {
            Strength::Light => "light",
            Strength::Medium => "medium",
            Strength::Heavy => "heavy",
        }
    }

    /// Parse a [`Strength::name`] back.
    pub fn parse(s: &str) -> Option<Strength> {
        Strength::ALL.into_iter().find(|x| x.name() == s)
    }
}

/// One fully specified attack: family × strength × seed. The seed drives
/// every random draw inside the attack (noise stream, drop pattern,
/// distractor content), so an `AttackSpec` is reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackSpec {
    /// Attack family.
    pub kind: AttackKind,
    /// Strength level.
    pub strength: Strength,
    /// Seed of the attack's random draws.
    pub seed: u64,
}

/// What [`AttackSpec::attack_clip`] produces: the attacked clip plus the
/// span `[start, end)` (in attacked-clip frames) that still carries the
/// original query's content — the ground truth of an insertion.
#[derive(Debug, Clone)]
pub struct AttackedClip {
    /// The attacked clip.
    pub clip: Clip,
    /// Query-content span within `clip`, `[start, end)` in frames.
    pub content: (u64, u64),
}

impl AttackSpec {
    /// Parse `"kind"` or `"kind:strength"` (e.g. `"speed-up:heavy"`);
    /// strength defaults to medium.
    pub fn parse(s: &str, seed: u64) -> Result<AttackSpec, String> {
        let (kind_s, strength_s) = match s.split_once(':') {
            Some((k, st)) => (k, st),
            None => (s, "medium"),
        };
        let kind = AttackKind::parse(kind_s)
            .ok_or_else(|| format!("unknown attack '{kind_s}' (see attacks::AttackKind)"))?;
        let strength = Strength::parse(strength_s)
            .ok_or_else(|| format!("unknown strength '{strength_s}' (light|medium|heavy)"))?;
        Ok(AttackSpec { kind, strength, seed })
    }

    /// `kind:strength`, the cell label used in reports and floor files.
    pub fn label(&self) -> String {
        format!("{}:{}", self.kind.name(), self.strength.name())
    }

    /// This attack re-seeded for one particular clip, so that two clips
    /// attacked under the same spec do not share noise/drop patterns.
    pub fn derive(&self, salt: u64) -> AttackSpec {
        AttackSpec {
            seed: self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ..*self
        }
    }

    /// The edit pipeline realizing this attack (empty for the re-encode
    /// chain, which is not a pixel/timeline edit).
    fn pipeline(&self, fps: Fps) -> EditPipeline {
        let s = self.strength;
        fn by_strength<T>(s: Strength, l: T, m: T, h: T) -> T {
            match s {
                Strength::Light => l,
                Strength::Medium => m,
                Strength::Heavy => h,
            }
        }
        match self.kind {
            AttackKind::SpeedUp => {
                let (num, den) = by_strength(s, (5, 4), (3, 2), (2, 1));
                EditPipeline::new().then(Edit::Speed { num, den })
            }
            AttackKind::SlowDown => {
                let (num, den) = by_strength(s, (4, 5), (2, 3), (1, 2));
                EditPipeline::new().then(Edit::Speed { num, den })
            }
            AttackKind::PeriodicDrop => {
                let (period, drop) = by_strength(s, (10, 1), (5, 1), (3, 1));
                EditPipeline::new().then(Edit::DropPeriodic { period, drop })
            }
            AttackKind::BurstyDrop => {
                let (rate, burst) = by_strength(s, (0.02, 3), (0.04, 5), (0.06, 8));
                EditPipeline::new().then(Edit::DropBursty { rate, burst, seed: self.seed })
            }
            AttackKind::ClipInClip => {
                let (lead_s, trail_s) = by_strength(s, (4.0, 2.0), (8.0, 4.0), (15.0, 8.0));
                EditPipeline::new().then(Edit::ClipInClip { lead_s, trail_s, seed: self.seed })
            }
            AttackKind::Crop => {
                let keep = by_strength(s, 0.9, 0.8, 0.65);
                EditPipeline::new().then(Edit::Crop { keep_w: keep, keep_h: keep })
            }
            AttackKind::Letterbox => {
                let (bar_x, bar_y) = by_strength(s, (0.0, 0.08), (0.05, 0.12), (0.12, 0.12));
                EditPipeline::new().then(Edit::Letterbox { bar_x, bar_y })
            }
            AttackKind::ReencodeChain => EditPipeline::new(),
            AttackKind::Recolor => {
                let (gain, offset) = by_strength(s, (1.1, 8.0), (0.8, -10.0), (0.65, -18.0));
                EditPipeline::new().then(Edit::GainOffset { gain, offset })
            }
            AttackKind::Noise => {
                let sigma = by_strength(s, 2.0, 4.0, 7.0);
                EditPipeline::new().then(Edit::Noise { sigma, seed: self.seed })
            }
        }
        .maybe_resample(fps)
    }

    /// Re-encode chain generations (quality per generation), empty for
    /// every other attack.
    fn reencode_qualities(&self) -> &'static [u8] {
        if self.kind != AttackKind::ReencodeChain {
            return &[];
        }
        match self.strength {
            Strength::Light => &[70, 60],
            Strength::Medium => &[65, 55, 45],
            Strength::Heavy => &[60, 50, 40, 30],
        }
    }

    /// Apply this attack to a clip: edit pipeline, then (for the
    /// re-encode chain) generation after generation of encode → decode
    /// round trips. Returns the attacked clip and the query-content span
    /// inside it, mapped through the attack's timeline.
    // vdsms-lint: entry(no-panic-hot-path)
    pub fn attack_clip(&self, clip: &Clip, gop: u32) -> AttackedClip {
        let pipe = self.pipeline(clip.fps());
        let mapped = pipe.map_span(clip.len(), clip.fps(), (0, clip.len() as u64));
        let mut attacked = pipe.apply(clip);
        for &quality in self.reencode_qualities() {
            let bytes = Encoder::encode_clip(
                &attacked,
                EncoderConfig { gop, quality, motion_search: true },
            );
            let frames = Decoder::new(&bytes)
                // vdsms-lint: allow(no-panic-hot-path) reason="decoding bytes this same call just encoded; a failure is a codec bug, not an input condition"
                .expect("own encoding must parse")
                .decode_all()
                // vdsms-lint: allow(no-panic-hot-path) reason="decoding bytes this same call just encoded; a failure is a codec bug, not an input condition"
                .expect("own encoding must decode");
            attacked = Clip::new(frames, attacked.fps());
        }
        debug_assert_eq!(mapped.len, attacked.len(), "map_span and apply disagree");
        AttackedClip { clip: attacked, content: mapped.span }
    }
}

/// `EditPipeline` helper: attacks never change the nominal rate, so no
/// resampling is appended today; the hook exists so a future fps-changing
/// attack composes through the same path.
trait MaybeResample {
    fn maybe_resample(self, fps: Fps) -> EditPipeline;
}

impl MaybeResample for EditPipeline {
    fn maybe_resample(self, _fps: Fps) -> EditPipeline {
        self
    }
}

/// The full attack × strength grid (30 specs).
pub fn full_grid(seed: u64) -> Vec<AttackSpec> {
    let mut grid = Vec::with_capacity(AttackKind::ALL.len() * Strength::ALL.len());
    for kind in AttackKind::ALL {
        for strength in Strength::ALL {
            grid.push(AttackSpec { kind, strength, seed });
        }
    }
    grid
}

/// Every attack kind at medium strength (the matrix's standard row set).
pub fn standard_grid(seed: u64) -> Vec<AttackSpec> {
    AttackKind::ALL
        .into_iter()
        .map(|kind| AttackSpec { kind, strength: Strength::Medium, seed })
        .collect()
}

/// The CI smoke subset: one time-warping and one embedding attack.
pub fn smoke_grid(seed: u64) -> Vec<AttackSpec> {
    vec![
        AttackSpec { kind: AttackKind::SpeedUp, strength: Strength::Medium, seed },
        AttackSpec { kind: AttackKind::ClipInClip, strength: Strength::Medium, seed },
    ]
}

/// Compose the evaluation stream for one attack: every inserted clip is
/// attacked (under a per-clip derived seed) before insertion, and the
/// ground truth covers the remapped query-content span.
// vdsms-lint: entry(no-panic-hot-path)
pub fn compose_attacked_stream(library: &ClipLibrary, attack: &AttackSpec) -> ComposedStream {
    let gop = library.spec().gop;
    compose_with(library, StreamKind::Attacked, 0x0a7c, |id| {
        let original = library.original(id);
        let attacked = attack.derive(u64::from(id)).attack_clip(&original, gop);
        (attacked.clip, attacked.content)
    })
}

/// Configuration of one matrix evaluation run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Workload sizing (clips, stream length, geometry).
    pub spec: WorkloadSpec,
    /// Profile name recorded in the report and matched against the floor
    /// file ("smoke", "quick", ...).
    pub profile: String,
    /// Attacks to evaluate (one composed stream each).
    pub attacks: Vec<AttackSpec>,
    /// Detector variants to sweep per attack.
    pub detectors: Vec<DetectorVariant>,
    /// Basic window size `w` in seconds.
    pub w_seconds: f64,
    /// Similarity threshold δ.
    pub delta: f64,
    /// Min-hash function count K.
    pub k: usize,
}

impl MatrixConfig {
    /// A named evaluation profile, or `None` for an unknown name.
    ///
    /// * `smoke` — CI gate: 2 attacks × Seq/Geo on a ~2-minute stream.
    /// * `quick` — the standard grid (every kind, medium strength) × all
    ///   four variants on a small stream.
    /// * `default` — the full kind × strength grid × all four variants.
    pub fn profile(name: &str, seed: u64) -> Option<MatrixConfig> {
        let small = WorkloadSpec {
            seed,
            num_clips: 6,
            inserted: 3,
            clip_min_s: 8.0,
            clip_max_s: 14.0,
            base_seconds: 90.0,
            ..Default::default()
        };
        match name {
            "smoke" => Some(MatrixConfig {
                spec: small,
                profile: name.to_string(),
                attacks: smoke_grid(seed),
                detectors: vec![DetectorVariant::Seq, DetectorVariant::Geo],
                w_seconds: 5.0,
                delta: 0.7,
                k: 400,
            }),
            "quick" => Some(MatrixConfig {
                spec: WorkloadSpec {
                    num_clips: 8,
                    inserted: 4,
                    base_seconds: 120.0,
                    ..small
                },
                profile: name.to_string(),
                attacks: standard_grid(seed),
                detectors: DetectorVariant::ALL.to_vec(),
                w_seconds: 5.0,
                delta: 0.7,
                k: 400,
            }),
            "default" => Some(MatrixConfig {
                spec: WorkloadSpec {
                    seed,
                    num_clips: 16,
                    inserted: 8,
                    clip_min_s: 10.0,
                    clip_max_s: 30.0,
                    base_seconds: 400.0,
                    ..Default::default()
                },
                profile: name.to_string(),
                attacks: full_grid(seed),
                detectors: DetectorVariant::ALL.to_vec(),
                w_seconds: 5.0,
                delta: 0.7,
                k: 800,
            }),
            _ => None,
        }
    }
}

/// One (attack, detector) cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Attack kind name.
    pub attack: String,
    /// Strength name.
    pub strength: String,
    /// Detector variant name.
    pub detector: String,
    /// Precision under the paper's position rule.
    pub precision: f64,
    /// Recall of planted (remapped) copies.
    pub recall: f64,
    /// Detections reported.
    pub detections: usize,
    /// Detections satisfying the position rule.
    pub correct: usize,
    /// Copies planted.
    pub planted: usize,
    /// Copies found.
    pub found: usize,
}

/// The full matrix report. [`AttackMatrixReport::to_json`] is byte-stable
/// for a given config, which is what the golden-snapshot test and the
/// committed floors rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackMatrixReport {
    /// Master seed of the run.
    pub seed: u64,
    /// Profile name ("smoke", "quick", ...).
    pub profile: String,
    /// Basic window size in seconds.
    pub w_seconds: f64,
    /// Similarity threshold δ.
    pub delta: f64,
    /// Min-hash count K.
    pub k: usize,
    /// One cell per attack × detector, sorted by (attack, strength,
    /// detector) names.
    pub cells: Vec<MatrixCell>,
}

impl AttackMatrixReport {
    /// Machine-readable JSON (stable key order and formatting, no
    /// external deps) — the `vdsms-lint --json` convention.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"attack_matrix\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(out, "  \"w_seconds\": {:.1},", self.w_seconds);
        let _ = writeln!(out, "  \"delta\": {:.2},", self.delta);
        let _ = writeln!(out, "  \"k\": {},", self.k);
        out.push_str("  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"attack\": \"{}\", \"strength\": \"{}\", \"detector\": \"{}\", \
                 \"precision\": {:.6}, \"recall\": {:.6}, \"detections\": {}, \
                 \"correct\": {}, \"planted\": {}, \"found\": {}}}",
                c.attack,
                c.strength,
                c.detector,
                c.precision,
                c.recall,
                c.detections,
                c.correct,
                c.planted,
                c.found,
            );
        }
        if !self.cells.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The cell for an (attack, strength, detector) name triple.
    pub fn cell(&self, attack: &str, strength: &str, detector: &str) -> Option<&MatrixCell> {
        self.cells
            .iter()
            .find(|c| c.attack == attack && c.strength == strength && c.detector == detector)
    }
}

/// Evaluate the attack matrix: one composed stream per attack, every
/// detector variant swept over each, scored against the remapped ground
/// truth. Deterministic per config.
// vdsms-lint: entry(no-panic-hot-path)
pub fn evaluate_matrix(config: &MatrixConfig) -> AttackMatrixReport {
    let library = ClipLibrary::new(config.spec.clone());
    let spec = library.spec().clone();
    let fc = FeatureConfig::default();
    let base = DetectorConfig {
        k: config.k,
        delta: config.delta,
        window_keyframes: spec.window_keyframes(config.w_seconds),
        ..Default::default()
    };
    let w_frames = spec.window_frames(config.w_seconds);

    // Queries (all library clips — uninserted ones are precision
    // distractors) are fingerprinted once; each variant re-sketches the
    // same cell sequences.
    let query_cells: Vec<Vec<u64>> = (0..library.len() as u32)
        .map(|id| library.query_fingerprints(id, &fc))
        .collect();

    let mut cells = Vec::with_capacity(config.attacks.len() * config.detectors.len());
    for attack in &config.attacks {
        let stream = compose_attacked_stream(&library, attack);
        let fingerprints = fingerprint_stream(&stream, &fc);
        for &variant in &config.detectors {
            let cfg = variant.configure(base);
            let family = Detector::family_for(&cfg);
            let queries = QuerySet::from_queries(
                query_cells
                    .iter()
                    .enumerate()
                    .map(|(id, cs)| Query::from_cell_ids(id as u32, &family, cs))
                    .collect(),
            );
            let mut detector = Detector::new(cfg, queries);
            let detections = detector.run(fingerprints.cell_ids.clone());
            let pr = score(&detections, &stream.truth, w_frames);
            cells.push(MatrixCell {
                attack: attack.kind.name().to_string(),
                strength: attack.strength.name().to_string(),
                detector: variant.name().to_string(),
                precision: pr.precision,
                recall: pr.recall,
                detections: pr.detections,
                correct: pr.correct,
                planted: pr.planted,
                found: pr.found,
            });
        }
    }
    cells.sort_by(|a, b| {
        (&a.attack, &a.strength, &a.detector).cmp(&(&b.attack, &b.strength, &b.detector))
    });
    AttackMatrixReport {
        seed: config.spec.seed,
        profile: config.profile.clone(),
        w_seconds: config.w_seconds,
        delta: config.delta,
        k: config.k,
        cells,
    }
}

/// Check a matrix report against the committed floor file
/// (`BENCH_robustness.json`). Returns the list of violations — empty
/// means the gate passes.
///
/// The floor file carries one section per profile; a report whose
/// profile has no section is a configuration error (the gate must never
/// pass vacuously), as is a floor entry naming a cell the report does
/// not contain.
pub fn check_floors(report: &AttackMatrixReport, floors_json: &str) -> Result<Vec<String>, String> {
    let doc = Json::parse(floors_json).map_err(|e| format!("floor file: {e}"))?;
    let section = doc
        .get("profiles")
        .and_then(|p| p.get(&report.profile))
        .ok_or_else(|| format!("floor file has no section for profile '{}'", report.profile))?;
    if let Some(seed) = section.get("seed").and_then(Json::as_f64) {
        if seed as u64 != report.seed {
            return Err(format!(
                "floor section '{}' was measured at seed {}, report ran seed {}",
                report.profile, seed as u64, report.seed
            ));
        }
    }
    let floors = section
        .get("floors")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("floor section '{}' has no floors array", report.profile))?;
    if floors.is_empty() {
        return Err(format!("floor section '{}' is empty", report.profile));
    }

    // Measured values are committed to 6 decimals; tolerate that rounding
    // when comparing, so a floor set to the measured value passes.
    const EPS: f64 = 5e-7;
    let mut failures = Vec::new();
    for floor in floors {
        let attack = floor.get("attack").and_then(Json::as_str).unwrap_or("?");
        let strength = floor.get("strength").and_then(Json::as_str).unwrap_or("medium");
        let detector = floor.get("detector").and_then(Json::as_str).unwrap_or("?");
        let label = format!("{attack}:{strength} × {detector}");
        let Some(cell) = report.cell(attack, strength, detector) else {
            failures.push(format!("{label}: floor committed but cell missing from report"));
            continue;
        };
        if let Some(min_recall) = floor.get("min_recall").and_then(Json::as_f64) {
            if cell.recall + EPS < min_recall {
                failures.push(format!(
                    "{label}: recall {:.6} below floor {min_recall:.6}",
                    cell.recall
                ));
            }
        }
        if let Some(min_precision) = floor.get("min_precision").and_then(Json::as_f64) {
            if cell.precision + EPS < min_precision {
                failures.push(format!(
                    "{label}: precision {:.6} below floor {min_precision:.6}",
                    cell.precision
                ));
            }
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            num_clips: 4,
            inserted: 2,
            clip_min_s: 8.0,
            clip_max_s: 12.0,
            base_seconds: 60.0,
            ..Default::default()
        }
    }

    #[test]
    fn names_round_trip_and_grids_cover_the_matrix() {
        for k in AttackKind::ALL {
            assert_eq!(AttackKind::parse(k.name()), Some(k));
        }
        for s in Strength::ALL {
            assert_eq!(Strength::parse(s.name()), Some(s));
        }
        assert!(AttackKind::ALL.len() >= 8, "matrix must cover >= 8 attack types");
        assert_eq!(full_grid(1).len(), AttackKind::ALL.len() * 3);
        assert_eq!(standard_grid(1).len(), AttackKind::ALL.len());
        assert_eq!(smoke_grid(1).len(), 2);
    }

    #[test]
    fn attack_spec_parse_accepts_kind_and_strength() {
        let a = AttackSpec::parse("speed-up:heavy", 7).unwrap();
        assert_eq!(a.kind, AttackKind::SpeedUp);
        assert_eq!(a.strength, Strength::Heavy);
        let b = AttackSpec::parse("crop", 7).unwrap();
        assert_eq!(b.strength, Strength::Medium);
        assert!(AttackSpec::parse("bogus", 7).is_err());
        assert!(AttackSpec::parse("crop:massive", 7).is_err());
    }

    #[test]
    fn every_attack_is_deterministic_and_span_consistent() {
        let lib = ClipLibrary::new(tiny_spec(11));
        let clip = lib.original(0);
        for spec in full_grid(23) {
            let a = spec.attack_clip(&clip, lib.spec().gop);
            let b = spec.attack_clip(&clip, lib.spec().gop);
            assert_eq!(a.clip.frames(), b.clip.frames(), "{}", spec.label());
            assert_eq!(a.content, b.content, "{}", spec.label());
            assert!(
                a.content.1 <= a.clip.len() as u64,
                "{}: span {:?} exceeds clip len {}",
                spec.label(),
                a.content,
                a.clip.len()
            );
            assert!(a.content.0 < a.content.1, "{}: attack emptied the content", spec.label());
        }
    }

    #[test]
    fn speed_up_shrinks_content_span_and_clip_in_clip_offsets_it() {
        let lib = ClipLibrary::new(tiny_spec(12));
        let clip = lib.original(1);
        let fast = AttackSpec { kind: AttackKind::SpeedUp, strength: Strength::Medium, seed: 3 }
            .attack_clip(&clip, lib.spec().gop);
        // Medium speed-up is 1.5×: two thirds of the frames remain.
        let expect = (clip.len() as f64 / 1.5).round() as u64;
        assert_eq!(fast.clip.len() as u64, expect);
        assert_eq!(fast.content, (0, expect));

        let embedded =
            AttackSpec { kind: AttackKind::ClipInClip, strength: Strength::Medium, seed: 3 }
                .attack_clip(&clip, lib.spec().gop);
        let lead = clip.fps().frames_in(8.0) as u64;
        assert_eq!(embedded.content, (lead, lead + clip.len() as u64));
        assert_eq!(
            &embedded.clip.frames()[lead as usize..(lead as usize + clip.len())],
            clip.frames()
        );
    }

    #[test]
    fn attacked_stream_truth_is_remapped() {
        let lib = ClipLibrary::new(tiny_spec(13));
        let attack =
            AttackSpec { kind: AttackKind::SpeedUp, strength: Strength::Heavy, seed: 5 };
        let s = compose_attacked_stream(&lib, &attack);
        assert_eq!(s.kind, StreamKind::Attacked);
        assert_eq!(s.truth.len(), 2);
        for (i, gt) in s.truth.iter().enumerate() {
            // 2× speed-up: the airing occupies about half the original.
            let original = lib.original(gt.query_id).len() as u64;
            assert!(
                gt.len() <= original / 2 + 2 && gt.len() >= original / 2 - 2,
                "truth {i} len {} vs original {original}",
                gt.len()
            );
        }
        // Determinism of the composed stream.
        let again = compose_attacked_stream(&lib, &attack);
        assert_eq!(s.bitstream, again.bitstream);
        assert_eq!(s.truth, again.truth);
    }

    #[test]
    fn warped_truth_matches_detection_within_window_tolerance() {
        // The acceptance test for truth remapping: plant an airing, apply
        // a known speed factor, and the detected position must satisfy
        // the paper's rule against the *warped* span — and would NOT
        // satisfy it against the unwarped span's end, proving the remap
        // matters.
        let lib = ClipLibrary::new(tiny_spec(14));
        let attack =
            AttackSpec { kind: AttackKind::SpeedUp, strength: Strength::Light, seed: 9 };
        let config = MatrixConfig {
            spec: tiny_spec(14),
            profile: "test".to_string(),
            attacks: vec![attack],
            detectors: vec![DetectorVariant::Seq],
            w_seconds: 5.0,
            delta: 0.6,
            k: 400,
        };
        let stream = compose_attacked_stream(&lib, &attack);
        let fingerprints = fingerprint_stream(&stream, &FeatureConfig::default());
        let base = DetectorConfig {
            k: config.k,
            delta: config.delta,
            window_keyframes: lib.spec().window_keyframes(config.w_seconds),
            ..Default::default()
        };
        let cfg = DetectorVariant::Seq.configure(base);
        let family = Detector::family_for(&cfg);
        let queries = QuerySet::from_queries(
            (0..lib.len() as u32)
                .map(|id| {
                    Query::from_cell_ids(
                        id,
                        &family,
                        &lib.query_fingerprints(id, &FeatureConfig::default()),
                    )
                })
                .collect(),
        );
        let mut det = Detector::new(cfg, queries);
        let detections = det.run(fingerprints.cell_ids.clone());
        let w_frames = lib.spec().window_frames(config.w_seconds);

        // Every planted (warped) copy is found at a position the warped
        // truth accepts.
        for gt in &stream.truth {
            let hit = detections
                .iter()
                .find(|d| d.query_id == gt.query_id && gt.accepts(d.position(), w_frames));
            assert!(hit.is_some(), "warped copy {} not detected: {detections:?}", gt.query_id);
            // The unwarped span would extend past the warped end by the
            // speed factor; check the warp is actually reflected in the
            // recorded truth (1.25× light speed-up shortens the span).
            let original = lib.original(gt.query_id).len() as u64;
            assert!(gt.len() < original, "truth span must be warped shorter");
        }
    }

    #[test]
    fn matrix_report_is_deterministic_and_floors_check() {
        let config = MatrixConfig {
            spec: tiny_spec(15),
            profile: "test".to_string(),
            attacks: smoke_grid(15),
            detectors: vec![DetectorVariant::Seq],
            w_seconds: 5.0,
            delta: 0.7,
            k: 400,
        };
        let a = evaluate_matrix(&config);
        let b = evaluate_matrix(&config);
        assert_eq!(a.to_json(), b.to_json(), "matrix must be byte-reproducible");
        assert_eq!(a.cells.len(), 2);

        // Floors at the measured values pass; floors above them fail;
        // missing cells and profiles are configuration errors.
        let cell = &a.cells[0];
        let ok_floors = format!(
            r#"{{"profiles": {{"test": {{"seed": 15, "floors": [
                {{"attack": "{}", "strength": "{}", "detector": "{}",
                  "min_recall": {:.6}, "min_precision": {:.6}}}]}}}}}}"#,
            cell.attack, cell.strength, cell.detector, cell.recall, cell.precision
        );
        assert_eq!(check_floors(&a, &ok_floors).unwrap(), Vec::<String>::new());

        let too_high = ok_floors.replace(
            &format!("\"min_recall\": {:.6}", cell.recall),
            "\"min_recall\": 1.100000",
        );
        let failures = check_floors(&a, &too_high).unwrap();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("below floor"), "{failures:?}");

        let missing_cell = ok_floors.replace(&cell.attack, "no-such-attack");
        assert!(check_floors(&a, &missing_cell).unwrap()[0].contains("missing"));

        assert!(check_floors(&a, r#"{"profiles": {}}"#).is_err(), "no section = error");
        let wrong_seed = ok_floors.replace("\"seed\": 15", "\"seed\": 16");
        assert!(check_floors(&a, &wrong_seed).is_err(), "seed mismatch = error");
    }

    #[test]
    fn profiles_resolve() {
        for name in ["smoke", "quick", "default"] {
            let c = MatrixConfig::profile(name, 7).unwrap();
            assert_eq!(c.profile, name);
            assert!(!c.attacks.is_empty());
            assert!(!c.detectors.is_empty());
        }
        assert!(MatrixConfig::profile("bogus", 7).is_none());
    }
}
