//! Multi-stream monitoring: one query catalogue, many concurrent streams.
//!
//! The paper's setting is explicitly multi-stream ("there are many
//! concurrent video streams and for each stream, there could be many
//! continuous video copy monitoring queries"). A [`Fleet`] manages one
//! [`Detector`] per stream while keeping subscriptions synchronized
//! across all of them, and aggregates statistics and detections per
//! stream.
//!
//! Each detector keeps its own candidate state — candidate lists are
//! inherently per-stream — but the query catalogue and its HQ index are
//! *shared*: the fleet maintains one immutable `Arc<QuerySet>` /
//! `Arc<HqIndex>` snapshot and every stream's detector holds a clone of
//! the `Arc`. Subscription changes build a new snapshot once and install
//! it on every detector, so catalogue memory is O(1) in the number of
//! streams and the sharded [`crate::ParallelFleet`] can hand the same
//! snapshot to all of its worker threads.

use crate::config::DetectorConfig;
use crate::detection::Detection;
use crate::engine::Detector;
use crate::error::FleetError;
use crate::hq::HqIndex;
use crate::query::{Query, QueryId, QuerySet};
use crate::stats::Stats;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of one monitored stream.
pub type StreamId = u32;

/// A detection tagged with the stream it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDetection {
    /// Which stream matched.
    pub stream_id: StreamId,
    /// The detection.
    pub detection: Detection,
}

/// The fleet-wide shared catalogue snapshot: the query set and (when the
/// configuration uses it) the HQ index built over exactly that set. The
/// snapshot is immutable once published; subscription changes produce a
/// new one.
#[derive(Clone)]
pub(crate) struct CatalogueSnapshot {
    /// The subscribed queries.
    pub queries: Arc<QuerySet>,
    /// The HQ index over `queries`; `Some` iff the config uses the index.
    pub index: Option<Arc<HqIndex>>,
}

impl CatalogueSnapshot {
    /// An empty snapshot for a configuration.
    pub fn empty(cfg: &DetectorConfig) -> CatalogueSnapshot {
        CatalogueSnapshot {
            queries: Arc::new(QuerySet::new()),
            index: cfg.use_index.then(|| Arc::new(HqIndex::empty(cfg.k))),
        }
    }

    /// Publish a snapshot with `query` added.
    ///
    /// # Panics
    /// Panics on duplicate query id or sketch `K` mismatch.
    pub fn with_subscribed(&self, query: Query) -> CatalogueSnapshot {
        let mut queries = Arc::clone(&self.queries);
        let mut index = self.index.clone();
        if let Some(ix) = &mut index {
            Arc::make_mut(ix).insert(&query);
        }
        Arc::make_mut(&mut queries).insert(query);
        CatalogueSnapshot { queries, index }
    }

    /// Publish a snapshot with query `id` removed; `None` if not present.
    pub fn with_unsubscribed(&self, id: QueryId) -> Option<CatalogueSnapshot> {
        let mut queries = Arc::clone(&self.queries);
        Arc::make_mut(&mut queries).remove(id)?;
        let mut index = self.index.clone();
        if let Some(ix) = &mut index {
            Arc::make_mut(ix).remove(id);
        }
        Some(CatalogueSnapshot { queries, index })
    }

    /// Spawn a detector sharing this snapshot.
    pub fn spawn_detector(&self, cfg: DetectorConfig) -> Detector {
        Detector::with_shared(cfg, Arc::clone(&self.queries), self.index.clone())
    }
}

/// A fleet of per-stream detectors sharing one query catalogue.
///
/// Streams live in a `BTreeMap` so every whole-fleet walk —
/// [`Fleet::finish_all`], [`Fleet::total_stats`] — visits them in
/// stream-id order, keeping detection and stats output deterministic
/// across runs (the `deterministic-iteration` lint rule).
pub struct Fleet {
    cfg: DetectorConfig,
    /// The shared catalogue; new streams are seeded from it.
    catalogue: CatalogueSnapshot,
    streams: BTreeMap<StreamId, Detector>,
}

impl Fleet {
    /// Create an empty fleet.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DetectorConfig) -> Fleet {
        cfg.validate();
        Fleet { catalogue: CatalogueSnapshot::empty(&cfg), cfg, streams: BTreeMap::new() }
    }

    /// The configuration every stream's detector uses.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Number of monitored streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Number of subscribed queries.
    pub fn query_count(&self) -> usize {
        self.catalogue.queries.len()
    }

    /// Start monitoring a new stream; it immediately watches every
    /// subscribed query.
    ///
    /// # Errors
    /// [`FleetError::StreamAlreadyMonitored`] if the id is already in use.
    pub fn add_stream(&mut self, stream_id: StreamId) -> Result<(), FleetError> {
        if self.streams.contains_key(&stream_id) {
            return Err(FleetError::StreamAlreadyMonitored(stream_id));
        }
        self.streams.insert(stream_id, self.catalogue.spawn_detector(self.cfg));
        Ok(())
    }

    /// Stop monitoring a stream; returns its final statistics, or `None`
    /// if the id was not monitored.
    pub fn remove_stream(&mut self, stream_id: StreamId) -> Option<Stats> {
        self.streams.remove(&stream_id).map(|d| *d.stats())
    }

    /// Subscribe a query on every stream (and for all future streams).
    ///
    /// # Panics
    /// Panics on duplicate query id or sketch `K` mismatch.
    pub fn subscribe(&mut self, query: Query) {
        self.catalogue = self.catalogue.with_subscribed(query);
        self.install_catalogue();
    }

    /// Unsubscribe a query everywhere. Returns `false` if it was not
    /// subscribed.
    pub fn unsubscribe(&mut self, id: QueryId) -> bool {
        let Some(next) = self.catalogue.with_unsubscribed(id) else {
            return false;
        };
        self.catalogue = next;
        self.install_catalogue();
        true
    }

    /// Push the current snapshot to every stream's detector, restoring
    /// full sharing after a subscription change.
    fn install_catalogue(&mut self) {
        for det in self.streams.values_mut() {
            det.install_catalogue(
                Arc::clone(&self.catalogue.queries),
                self.catalogue.index.clone(),
            );
        }
    }

    /// Feed one key frame of one stream.
    ///
    /// # Errors
    /// [`FleetError::StreamNotMonitored`] if the stream id is unknown.
    // vdsms-lint: entry
    pub fn push_keyframe(
        &mut self,
        stream_id: StreamId,
        frame_index: u64,
        cell_id: u64,
    ) -> Result<Vec<StreamDetection>, FleetError> {
        let det = self
            .streams
            .get_mut(&stream_id)
            .ok_or(FleetError::StreamNotMonitored(stream_id))?;
        Ok(det
            .push_keyframe(frame_index, cell_id)
            .into_iter()
            .map(|detection| StreamDetection { stream_id, detection })
            // vdsms-lint: allow(no-alloc-hot-path) reason="detection events only; collecting an empty iterator does not allocate"
            .collect())
    }

    /// Feed a batch of key frames spanning any number of streams, in
    /// order. Returns all detections the batch triggered, in feed order.
    ///
    /// This is the serial counterpart of
    /// [`crate::ParallelFleet::push_batch`]: the two produce the same
    /// detection set for the same batch sequence (ordering may differ
    /// across streams).
    ///
    /// # Errors
    /// [`FleetError::StreamNotMonitored`] if any referenced stream id is
    /// unknown; key frames before the offending one have been applied.
    pub fn push_batch(
        &mut self,
        batch: &[(StreamId, u64, u64)],
    ) -> Result<Vec<StreamDetection>, FleetError> {
        let mut out = Vec::new();
        for &(stream_id, frame_index, cell_id) in batch {
            out.extend(self.push_keyframe(stream_id, frame_index, cell_id)?);
        }
        Ok(out)
    }

    /// Flush every stream's partial window (end of monitoring epoch).
    /// Streams are flushed in ascending stream-id order.
    pub fn finish_all(&mut self) -> Vec<StreamDetection> {
        let mut out = Vec::new();
        for (&stream_id, det) in &mut self.streams {
            out.extend(
                det.finish().into_iter().map(|detection| StreamDetection { stream_id, detection }),
            );
        }
        out
    }

    /// Per-stream statistics.
    pub fn stats(&self, stream_id: StreamId) -> Option<&Stats> {
        self.streams.get(&stream_id).map(|d| d.stats())
    }

    /// Aggregate statistics across all streams (counter-wise sum; peaks
    /// take the max).
    pub fn total_stats(&self) -> Stats {
        let mut total = Stats::default();
        for det in self.streams.values() {
            total.merge(det.stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_sketch::MinHashFamily;

    const K: usize = 64;

    fn cfg() -> DetectorConfig {
        DetectorConfig { k: K, window_keyframes: 4, ..Default::default() }
    }

    fn family() -> MinHashFamily {
        MinHashFamily::new(K, crate::config::DEFAULT_HASH_SEED)
    }

    fn query(id: QueryId, base: u64) -> Query {
        let ids: Vec<u64> = (base..base + 24).collect();
        Query::from_cell_ids(id, &family(), &ids)
    }

    /// Feed a stream whose frames `range` carry query `base` content.
    fn feed(
        fleet: &mut Fleet,
        stream: StreamId,
        copy_base: u64,
        copy_at: std::ops::Range<u64>,
    ) -> Vec<StreamDetection> {
        let mut out = Vec::new();
        for i in 0..80u64 {
            let id = if copy_at.contains(&i) {
                copy_base + (i - copy_at.start) % 24
            } else {
                500_000 + u64::from(stream) * 1000 + i
            };
            out.extend(fleet.push_keyframe(stream, i, id).unwrap());
        }
        out
    }

    #[test]
    fn per_stream_detection_with_shared_catalogue() {
        let mut fleet = Fleet::new(cfg());
        fleet.subscribe(query(1, 1000));
        fleet.subscribe(query(2, 2000));
        fleet.add_stream(10).unwrap();
        fleet.add_stream(20).unwrap();
        assert_eq!(fleet.stream_count(), 2);
        assert_eq!(fleet.query_count(), 2);

        // Stream 10 airs query 1; stream 20 airs query 2.
        let d10 = feed(&mut fleet, 10, 1000, 30..54);
        let d20 = feed(&mut fleet, 20, 2000, 40..64);
        assert!(d10.iter().any(|d| d.detection.query_id == 1 && d.stream_id == 10), "{d10:?}");
        assert!(d10.iter().all(|d| d.detection.query_id != 2));
        assert!(d20.iter().any(|d| d.detection.query_id == 2 && d.stream_id == 20), "{d20:?}");
    }

    #[test]
    fn late_stream_sees_existing_catalogue() {
        let mut fleet = Fleet::new(cfg());
        fleet.subscribe(query(7, 9000));
        fleet.add_stream(1).unwrap(); // added after the subscription
        let dets = feed(&mut fleet, 1, 9000, 20..44);
        assert!(dets.iter().any(|d| d.detection.query_id == 7));
    }

    #[test]
    fn subscribe_and_unsubscribe_propagate_to_all_streams() {
        let mut fleet = Fleet::new(cfg());
        fleet.add_stream(1).unwrap();
        fleet.add_stream(2).unwrap();
        fleet.subscribe(query(5, 4000));
        assert!(fleet.unsubscribe(5));
        assert!(!fleet.unsubscribe(5));
        for s in [1, 2] {
            let dets = feed(&mut fleet, s, 4000, 10..34);
            assert!(dets.is_empty(), "stream {s}: {dets:?}");
        }
    }

    #[test]
    fn stats_aggregate_across_streams() {
        let mut fleet = Fleet::new(cfg());
        fleet.subscribe(query(1, 1000));
        fleet.add_stream(1).unwrap();
        fleet.add_stream(2).unwrap();
        feed(&mut fleet, 1, 1000, 30..54);
        feed(&mut fleet, 2, 7777, 0..0); // clean stream
        fleet.finish_all();
        let total = fleet.total_stats();
        assert_eq!(total.windows, fleet.stats(1).unwrap().windows + fleet.stats(2).unwrap().windows);
        assert!(total.detections >= 1);
        assert_eq!(fleet.remove_stream(2).unwrap().detections, 0);
        assert_eq!(fleet.stream_count(), 1);
    }

    #[test]
    fn duplicate_stream_rejected() {
        let mut fleet = Fleet::new(cfg());
        fleet.add_stream(1).unwrap();
        assert_eq!(fleet.add_stream(1), Err(FleetError::StreamAlreadyMonitored(1)));
    }

    #[test]
    fn unknown_stream_rejected() {
        let mut fleet = Fleet::new(cfg());
        assert_eq!(
            fleet.push_keyframe(9, 0, 0),
            Err(FleetError::StreamNotMonitored(9))
        );
        assert_eq!(
            fleet.push_batch(&[(9, 0, 0)]),
            Err(FleetError::StreamNotMonitored(9))
        );
    }
}
