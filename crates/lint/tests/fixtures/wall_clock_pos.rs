// Fixture: wall-clock reads. Expected findings: no-wall-clock x2.
fn stamp() -> (std::time::Instant, std::time::SystemTime) {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    (t, s)
}
