//! Advertisement airtime monitoring — the paper's motivating scenario:
//! "advertising agencies would like to ensure that their advertisements
//! have been broadcasted on the prime time slot they pay for and without
//! tamper."
//!
//! Five ad campaigns subscribe as continuous queries; a broadcast day is
//! streamed; the monitor reports each airing with its time slot, and the
//! agency cross-checks the contracted schedule.
//!
//! ```text
//! cargo run --release --example ad_monitor
//! ```

use vdsms::codec::{Encoder, EncoderConfig};
use vdsms::video::source::{ClipGenerator, SourceSpec};
use vdsms::video::{Clip, Fps};
use vdsms::{Detection, DetectorConfig, MonitorBuilder};

const FPS: u32 = 10;
const GOP: u32 = 5;

fn spec(seed: u64) -> SourceSpec {
    SourceSpec {
        width: 176,
        height: 120,
        fps: Fps::integer(FPS),
        seed,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: None,
    }
}

/// Merge raw detections into airing events (consecutive detections of the
/// same ad collapse into one airing).
fn airings(detections: &[Detection], fps: f64) -> Vec<(u32, f64, f64)> {
    let mut events: Vec<(u32, u64, u64)> = Vec::new();
    for d in detections {
        match events.last_mut() {
            Some((q, _, end)) if *q == d.query_id && d.start_frame <= *end + 100 => {
                *end = (*end).max(d.end_frame);
            }
            _ => events.push((d.query_id, d.start_frame, d.end_frame)),
        }
    }
    events.into_iter().map(|(q, s, e)| (q, s as f64 / fps, e as f64 / fps)).collect()
}

fn main() {
    let enc = EncoderConfig { gop: GOP, quality: 80, motion_search: true };

    // Five ad campaigns of 10-20 seconds.
    let ads: Vec<Clip> = (0..5u64)
        .map(|i| ClipGenerator::new(spec(1000 + i)).clip(10.0 + 2.5 * i as f64))
        .collect();

    let mut monitor = MonitorBuilder::new()
        .detector(DetectorConfig { window_keyframes: 6, ..Default::default() })
        .query_encoder(enc)
        .build();
    for (i, ad) in ads.iter().enumerate() {
        monitor.subscribe_clip(i as u32, ad);
    }
    println!("subscribed {} ad campaigns", monitor.query_count());

    // The broadcast day: programming with ad breaks. Ad 0 airs twice
    // (as contracted); ad 3 is skipped by the broadcaster; the rest air
    // once.
    let schedule: &[(u64, Option<usize>)] = &[
        (40, Some(0)),
        (35, Some(1)),
        (50, Some(2)),
        (30, None), // ad 3's contracted slot — silently dropped!
        (45, Some(0)),
        (40, Some(4)),
        (30, None),
    ];
    let mut broadcast = ClipGenerator::new(spec(77)).clip(20.0);
    let mut programming = ClipGenerator::new(spec(78));
    let mut contracted: Vec<(usize, f64)> = Vec::new();
    for &(gap_s, ad) in schedule {
        if let Some(a) = ad {
            contracted.push((a, broadcast.duration()));
            broadcast.append(ads[a].clone());
        }
        broadcast.append(programming.clip(gap_s as f64));
    }
    let bitstream = Encoder::encode_clip(&broadcast, enc);
    println!(
        "broadcast day: {:.0} s ({} KiB compressed)\n",
        broadcast.duration(),
        bitstream.len() / 1024
    );

    let detections = monitor.watch_bitstream(&bitstream).expect("valid stream");
    let aired = airings(&detections, f64::from(FPS));
    println!("-- airtime report --");
    for (ad, from, to) in &aired {
        println!("ad {ad}: aired {from:>6.1}s .. {to:>6.1}s");
    }

    println!("\n-- contract check --");
    for (i, _) in ads.iter().enumerate() {
        let expected = contracted.iter().filter(|(a, _)| *a == i).count();
        let got = aired.iter().filter(|(a, _, _)| *a as usize == i).count();
        let status = if got >= expected { "OK" } else { "MISSING AIRING" };
        println!("ad {i}: contracted {expected}, detected {got} -> {status}");
    }

    let got3 = aired.iter().filter(|(a, _, _)| *a == 3).count();
    assert_eq!(got3, 0, "ad 3 was never aired");
    let got0 = aired.iter().filter(|(a, _, _)| *a == 0).count();
    assert!(got0 >= 2, "ad 0 aired twice, detected {got0}");
}
