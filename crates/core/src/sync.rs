//! Schedule-aware channels: thin wrappers over [`std::sync::mpsc`] whose
//! operations pass through [`parking_lot::schedule::yield_point`] before
//! delegating.
//!
//! The fleet's concurrency protocol is built on exactly three channel
//! shapes — the per-shard command queue (`channel`), one-shot reply /
//! acknowledgment channels (`sync_channel(1)`), and nothing else — and
//! its correctness arguments (the quiesce barrier, journal replay,
//! drain-on-shutdown) are all statements about the *order* of channel
//! operations relative to lock operations. Routing every send and
//! receive through a yield point puts those orderings under the seeded
//! schedule controller's control, so `tests/schedule_exploration.rs`
//! can drive the fleet through thousands of distinct interleavings
//! deterministically. Outside a schedule session each yield point is a
//! single relaxed atomic load.
//!
//! The API mirrors the `std::sync::mpsc` subset the workspace uses;
//! error types are re-exported unchanged so callers keep `std`'s
//! recovery idioms (e.g. taking the unsent value back out of a
//! [`SendError`]). One addition: [`Sender::send_best_effort`], the
//! sanctioned fire-and-forget send for shutdown and fault-injection
//! paths where a gone receiver is an expected state, not an error to
//! handle (the `channel-protocol` lint rule flags bare discarded
//! `send`s; this names the intent instead of suppressing the finding).

use parking_lot::schedule;
use std::sync::mpsc;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};

/// The asynchronous (unbounded) sending half — [`mpsc::Sender`] with a
/// schedule yield point on every operation.
#[derive(Debug)]
pub struct Sender<T>(mpsc::Sender<T>);

/// The bounded sending half — [`mpsc::SyncSender`] with a schedule
/// yield point on every operation. A `send` on a full channel blocks.
#[derive(Debug)]
pub struct SyncSender<T>(mpsc::SyncSender<T>);

/// The receiving half — [`mpsc::Receiver`] with a schedule yield point
/// on every operation.
#[derive(Debug)]
pub struct Receiver<T>(mpsc::Receiver<T>);

/// Create an unbounded schedule-aware channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

/// Create a bounded schedule-aware channel: sends block once `bound`
/// values are buffered (`bound == 1` is the fleet's one-shot reply
/// shape).
pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(bound);
    (SyncSender(tx), Receiver(rx))
}

impl<T> Sender<T> {
    /// Send a value; fails iff the receiver is gone, returning it.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        schedule::yield_point("chan.send");
        self.0.send(value)
    }

    /// Fire-and-forget send for teardown paths: returns whether the
    /// value was accepted. A `false` means the receiver is already gone
    /// — on a shutdown or deliberate-crash path that is the expected
    /// outcome, not a fault, so there is no `Result` to propagate.
    pub fn send_best_effort(&self, value: T) -> bool {
        schedule::yield_point("chan.send");
        self.0.send(value).is_ok()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        Sender(self.0.clone())
    }
}

impl<T> SyncSender<T> {
    /// Send a value, blocking while the channel is full; fails iff the
    /// receiver is gone, returning the value.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        schedule::yield_point("chan.send_bounded");
        self.0.send(value)
    }

    /// Send without blocking: fails if the channel is full or the
    /// receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        schedule::yield_point("chan.try_send");
        self.0.try_send(value)
    }
}

impl<T> Clone for SyncSender<T> {
    fn clone(&self) -> SyncSender<T> {
        SyncSender(self.0.clone())
    }
}

impl<T> Receiver<T> {
    /// Receive a value, blocking; fails iff every sender is gone and
    /// the buffer is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        schedule::yield_point("chan.recv");
        self.0.recv()
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        schedule::yield_point("chan.try_recv");
        self.0.try_recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_round_trip_and_disconnect() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_error_returns_the_value() {
        let (tx, rx) = channel();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert!(!tx.send_best_effort(8), "gone receiver is a clean false");
    }

    #[test]
    fn sync_channel_bounds_and_replies() {
        let (tx, rx) = sync_channel(1);
        tx.send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        assert_eq!(rx.recv(), Ok(1));
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn operations_are_visible_to_the_schedule_controller() {
        let guard = parking_lot::schedule::begin(11, 16);
        let (tx, rx) = channel();
        tx.send(5).unwrap();
        let _ = rx.recv();
        let trace = guard.finish();
        let sites: Vec<&str> = trace.iter().map(|s| s.site).collect();
        assert!(sites.contains(&"chan.send"), "{sites:?}");
        assert!(sites.contains(&"chan.recv"), "{sites:?}");
    }
}
