// taint-unchecked-flow negative fixture: every flow here is cut by a
// bounds check, a clamp, or a checked conversion — the rule must stay
// silent.

pub struct Reader;

impl Reader {
    fn read_u8(&mut self) -> u8 {
        0
    }
}

// Comparison against the slice length sanitizes the index.
pub fn checked_index(r: &mut Reader, table: &[u32]) -> u32 {
    let i = r.read_u8() as usize;
    if i < table.len() {
        table[i]
    } else {
        0
    }
}

// `.min(…)` caps the capacity before it reaches the allocator.
pub fn clamped_capacity(r: &mut Reader) -> Vec<u8> {
    let n = (r.read_u8() as usize).min(4096);
    Vec::with_capacity(n)
}

// A checked conversion is a sanitizing boundary.
pub fn converted(r: &mut Reader, vals: &[u32]) -> u32 {
    let want = r.read_u8();
    let i = usize::try_from(want).unwrap_or(0).min(vals.len() - 1);
    vals[i]
}

// No taint at all: a constant index is none of this rule's business.
pub fn constant_bound(table: &[u32]) -> u32 {
    let i = 3;
    table[i]
}

// `contains` / membership checks also clear the flow.
pub fn membership(r: &mut Reader, seen: &std::collections::BTreeSet<usize>, t: &[u32]) -> u32 {
    let i = r.read_u8() as usize;
    if seen.contains(&i) {
        t[i]
    } else {
        0
    }
}
