//! Re-export of the shared JSON module.
//!
//! The hand-rolled parser used for the committed robustness-floor files
//! now lives in `vdsms-json`, shared with the `vdsms-lint` report
//! emitters and summary cache so the reader and writer formats cannot
//! drift. This shim keeps the `vdsms_workload::json::Json` path stable.

pub use vdsms_json::Json;

#[cfg(test)]
mod tests {
    use super::Json;

    // The shared crate carries the parser's own tests; this one pins the
    // exact shape the committed BENCH_robustness.json relies on through
    // the re-exported path.
    #[test]
    fn floor_file_shape_parses_through_the_shim() {
        let doc = r#"{
          "profiles": {
            "smoke": {
              "seed": 7,
              "floors": [
                {"attack": "speed-up", "strength": "medium", "detector": "seq",
                 "min_recall": 0.66, "min_precision": 0.9}
              ]
            }
          }
        }"#;
        let v = match Json::parse(doc) {
            Ok(v) => v,
            Err(e) => panic!("parse failed: {e}"),
        };
        let floors = v
            .get("profiles")
            .and_then(|p| p.get("smoke"))
            .and_then(|s| s.get("floors"))
            .and_then(Json::as_arr);
        let Some([first, ..]) = floors else { panic!("missing floors") };
        assert_eq!(first.get("attack").and_then(Json::as_str), Some("speed-up"));
        assert_eq!(first.get("min_recall").and_then(Json::as_f64), Some(0.66));
    }
}
