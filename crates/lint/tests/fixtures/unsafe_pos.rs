// Fixture: undocumented unsafe. Expected findings: unsafe-audit x1.
fn read_raw(p: *const u8) -> u8 {
    unsafe { p.read() }
}
