//! Workload sizing and encoding parameters.

use vdsms_codec::EncoderConfig;
use vdsms_video::Fps;

/// Full description of a synthetic evaluation workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Master seed; every clip, edit, and insertion position derives from
    /// it.
    pub seed: u64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Stream frame rate. The default uses 10 fps with a GOP of 5 — the
    /// same **2 key frames per second** as the paper's NTSC 29.97 fps with
    /// a typical GOP of 15, at a third of the pixel-generation cost. All
    /// window sizes are expressed in seconds and converted via the
    /// key-frame rate, so this substitution does not change the engine's
    /// workload shape.
    pub fps: Fps,
    /// GOP length (key-frame period) of the stream encoder.
    pub gop: u32,
    /// Number of short videos in the library (the paper's 200). All of
    /// them become continuous queries; the first [`WorkloadSpec::inserted`]
    /// are planted into the stream.
    pub num_clips: usize,
    /// Minimum short-video duration in seconds (paper: 30).
    pub clip_min_s: f64,
    /// Maximum short-video duration in seconds (paper: 300).
    pub clip_max_s: f64,
    /// Number of library clips actually inserted into the stream.
    pub inserted: usize,
    /// Total duration of base-film background in the stream, in seconds.
    pub base_seconds: f64,
    /// Number of base films the background alternates between (paper: 5).
    pub base_films: u32,
    /// Encoder quality of the stream and of the original (query) clips.
    pub quality: u8,
    /// Encoder quality used for the VS2 re-compression step.
    pub vs2_quality: u8,
    /// Segments per clip for the VS2 re-ordering edit.
    pub reorder_segments: usize,
    /// Size of the shared visual-motif pool, or `None` for fully unique
    /// scenes. Real broadcast content reuses visual statistics (studio
    /// sets, pitches, faces), which is what makes distinct videos collide
    /// in fingerprint space; the pool reproduces that pressure. See
    /// `vdsms_video::source::MotifPool`.
    pub motif_pool: Option<u32>,
}

impl Default for WorkloadSpec {
    fn default() -> WorkloadSpec {
        // A CI-scale workload: ~45 minutes of stream, 60 clips of 10-40 s.
        WorkloadSpec {
            seed: 2008,
            width: 176,
            height: 120,
            fps: Fps::integer(10),
            gop: 5,
            num_clips: 60,
            clip_min_s: 10.0,
            clip_max_s: 40.0,
            inserted: 30,
            base_seconds: 1200.0,
            base_films: 5,
            quality: 80,
            vs2_quality: 70,
            reorder_segments: 5,
            motif_pool: Some(12),
        }
    }
}

impl WorkloadSpec {
    /// A quick spec for tests: ~3 minutes of stream, 8 clips.
    pub fn tiny(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            num_clips: 8,
            clip_min_s: 8.0,
            clip_max_s: 16.0,
            inserted: 4,
            base_seconds: 120.0,
            ..Default::default()
        }
    }

    /// The paper's proportions: 200 clips of 30–300 s inserted into five
    /// films, ~12 hours total. Expect hours of generation time.
    pub fn paper_scale(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            seed,
            num_clips: 200,
            clip_min_s: 30.0,
            clip_max_s: 300.0,
            inserted: 200,
            base_seconds: 10_000.0,
            ..Default::default()
        }
    }

    /// Key frames per second of the stream.
    pub fn keyframe_rate(&self) -> f64 {
        self.fps.as_f64() / f64::from(self.gop)
    }

    /// Convert a window size in seconds (the paper's `w`) to key frames.
    pub fn window_keyframes(&self, w_seconds: f64) -> usize {
        (w_seconds * self.keyframe_rate()).round().max(1.0) as usize
    }

    /// Convert a window size in seconds to stream frames (for the
    /// position-tolerance scoring rule).
    pub fn window_frames(&self, w_seconds: f64) -> u64 {
        (w_seconds * self.fps.as_f64()).round().max(1.0) as u64
    }

    /// The shared motif pool for this workload's sources (derived from
    /// the master seed), or `None`.
    pub fn motifs(&self) -> Option<vdsms_video::source::MotifPool> {
        self.motif_pool.map(|count| vdsms_video::source::MotifPool {
            seed: self.seed ^ 0x0f1f_5eed,
            count,
        })
    }

    /// Stream encoder configuration.
    pub fn encoder_config(&self) -> EncoderConfig {
        EncoderConfig { gop: self.gop, quality: self.quality, motion_search: true }
    }

    /// Validate ranges.
    ///
    /// # Panics
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.num_clips >= 1, "need at least one clip");
        assert!(self.inserted <= self.num_clips, "cannot insert more clips than exist");
        assert!(self.clip_min_s > 0.0 && self.clip_max_s >= self.clip_min_s);
        assert!(self.base_seconds > 0.0);
        assert!(self.base_films >= 1);
        assert!((1..=100).contains(&self.quality));
        assert!((1..=100).contains(&self.vs2_quality));
        assert!(self.reorder_segments >= 1);
        assert!(self.gop >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_keyframe_rate_matches_paper() {
        let s = WorkloadSpec::default();
        assert_eq!(s.keyframe_rate(), 2.0); // ≈ NTSC 29.97 / GOP 15
        s.validate();
    }

    #[test]
    fn window_conversions() {
        let s = WorkloadSpec::default();
        assert_eq!(s.window_keyframes(5.0), 10);
        assert_eq!(s.window_frames(5.0), 50);
        assert_eq!(s.window_keyframes(20.0), 40);
    }

    #[test]
    fn tiny_and_paper_scale_validate() {
        WorkloadSpec::tiny(1).validate();
        WorkloadSpec::paper_scale(1).validate();
    }

    #[test]
    #[should_panic(expected = "cannot insert more")]
    fn inserted_bound_checked() {
        let mut s = WorkloadSpec::default();
        s.inserted = s.num_clips + 1;
        s.validate();
    }
}
