//! The gate itself, exercised both ways: the real workspace must be
//! violation-free under `lint.toml` (what `ci.sh` enforces), and seeded
//! violations — one per rule — must turn the report non-clean with a
//! precise `file:line:col` (so the CI step demonstrably fails, at the
//! right place, when someone reintroduces a forbidden pattern).

use std::path::{Path, PathBuf};
use vdsms_lint::config::KNOWN_KEYS;
use vdsms_lint::{
    find_workspace_root, lint_workspace_cached, lint_workspace_with_default_config, load_config,
    Report,
};

fn workspace_root() -> PathBuf {
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(&start).expect("crates/lint lives inside the workspace")
}

#[test]
fn real_workspace_is_violation_free() {
    let report = lint_workspace_with_default_config(&workspace_root()).expect("lint run");
    assert!(
        report.is_clean(),
        "the workspace must pass its own gate:\n{}",
        report.render()
    );
    // Sanity: the run actually covered the workspace, it didn't silently
    // scan an empty directory.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
    assert!(
        report.suppressed >= 40,
        "the justified hot-path allows (scratch warm-up, detection events, \
         per-batch staging) should be counted, got {}",
        report.suppressed
    );
}

/// Build a minimal fake workspace in `dir`: a `lint.toml` enabling exactly
/// `rules` (everything else off), a root package, and one source file with
/// the violations seeded in.
fn seed_workspace(dir: &Path, rules: &[&str], source: &str) {
    std::fs::create_dir_all(dir.join("src")).unwrap();
    let mut toml = String::from("[default]\n");
    for key in KNOWN_KEYS {
        if *key == "unsafe-allowed" {
            continue;
        }
        toml.push_str(&format!("{key} = {}\n", rules.contains(key)));
    }
    std::fs::write(dir.join("lint.toml"), toml).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"seeded\"\n").unwrap();
    std::fs::write(dir.join("src/lib.rs"), source).unwrap();
}

/// Lint a seeded one-file workspace and clean up after.
fn lint_seeded(tag: &str, rules: &[&str], source: &str) -> Report {
    let dir = std::env::temp_dir().join(format!("vdsms-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    seed_workspace(&dir, rules, source);
    let report = lint_workspace_with_default_config(&dir).expect("lint run");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[test]
fn seeded_panic_violation_fails_the_gate() {
    // A clean file passes…
    let clean = lint_seeded(
        "panic-clean",
        &["no-panic-hot-path"],
        "// vdsms-lint: entry\npub fn ok(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    assert!(clean.is_clean(), "{}", clean.render());

    // …and reintroducing a hot-path unwrap turns the report non-clean,
    // which is exactly the condition ci.sh's exit code keys off.
    let dirty = lint_seeded(
        "panic-dirty",
        &["no-panic-hot-path"],
        "// vdsms-lint: entry\npub fn bad(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    assert!(!dirty.is_clean());
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-panic-hot-path");
    assert_eq!(d.file, "src/lib.rs", "workspace-relative path");
    assert_eq!((d.line, d.col), (3, 7), "points at the `unwrap` call");
    assert!(d.message.contains("`bad`"), "names the hot entry: {}", d.message);

    // JSON output is machine-checkable: it names the rule and the file.
    let json = dirty.to_json();
    assert!(json.contains("\"no-panic-hot-path\""), "{json}");
    assert!(json.contains("src/lib.rs"), "{json}");
}

#[test]
fn seeded_alloc_violation_names_the_witness_chain() {
    let dirty = lint_seeded(
        "alloc",
        &["no-alloc-hot-path"],
        "// vdsms-lint: entry\n\
         pub fn ingest(state: &mut Vec<u64>, id: u64) {\n\
         \x20   store(state, id);\n\
         }\n\
         \n\
         fn store(state: &mut Vec<u64>, id: u64) {\n\
         \x20   state.push(id);\n\
         }\n\
         \n\
         fn cold(state: &mut Vec<u64>, id: u64) {\n\
         \x20   state.push(id);\n\
         }\n",
    );
    // `cold` has the same push but no path from an entry — exactly one
    // finding, at the reachable site.
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-alloc-hot-path");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 7, 11));
    assert!(
        d.message.contains("ingest → store"),
        "message prints the interprocedural chain: {}",
        d.message
    );
}

#[test]
fn seeded_lock_cycle_reports_both_witness_chains() {
    let dirty = lint_seeded(
        "lock-order",
        &["lock-order"],
        "pub fn publish(s: &Shared) {\n\
         \x20   let sink = s.sink.lock();\n\
         \x20   let stats = s.stats.lock();\n\
         \x20   sink.merge_into(stats);\n\
         }\n\
         \n\
         pub fn snapshot(s: &Shared) {\n\
         \x20   let stats = s.stats.lock();\n\
         \x20   let sink = s.sink.lock();\n\
         \x20   stats.copy_from(sink);\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "one finding per cycle: {:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "lock-order");
    assert_eq!(d.file, "src/lib.rs");
    assert!(d.message.contains("`publish`"), "first witness: {}", d.message);
    assert!(d.message.contains("`snapshot`"), "counter-witness: {}", d.message);
    assert!(
        d.message.contains("src/lib.rs:"),
        "counter-witness carries file:line:col: {}",
        d.message
    );
}

#[test]
fn seeded_unchecked_arith_violation_points_at_the_operator() {
    let dirty = lint_seeded(
        "arith",
        &["no-unchecked-arith"],
        "pub fn decode(r: &mut Reader) -> u32 {\n\
         \x20   let len = r.get_u8();\n\
         \x20   len + 1\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-unchecked-arith");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 3, 9));
    assert!(d.message.contains("`decode`"), "names the function: {}", d.message);
}

#[test]
fn seeded_float_ordering_violation_fails_the_gate() {
    let dirty = lint_seeded(
        "float",
        &["float-determinism"],
        "pub fn better(a: f64, b: f64) -> bool {\n\
         \x20   a.partial_cmp(&b).is_some()\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "float-determinism");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 2, 7));
}

#[test]
fn seeded_taint_flow_reports_the_witness_chain() {
    // Interprocedural: the length is read from the wire in one function
    // and reaches a capacity sink in its caller.
    let dirty = lint_seeded(
        "taint",
        &["taint-unchecked-flow"],
        "fn read_len(feed: &mut Feed) -> usize {\n\
         \x20   feed.read_u32() as usize\n\
         }\n\
         \n\
         pub fn sized_table(feed: &mut Feed, out: &mut Vec<u64>) {\n\
         \x20   let n = read_len(feed);\n\
         \x20   out.reserve(n);\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "taint-unchecked-flow");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 7, 9));
    assert!(
        d.message.contains("sized_table → read_len"),
        "witness call chain: {}",
        d.message
    );
    assert!(
        d.message.contains("the return of `read_len`"),
        "names the tainted producer: {}",
        d.message
    );

    // The same flow with a clamp between is clean.
    let clean = lint_seeded(
        "taint-clean",
        &["taint-unchecked-flow"],
        "fn read_len(feed: &mut Feed) -> usize {\n\
         \x20   feed.read_u32() as usize\n\
         }\n\
         \n\
         pub fn sized_table(feed: &mut Feed, out: &mut Vec<u64>) {\n\
         \x20   let n = read_len(feed).min(4096);\n\
         \x20   out.reserve(n);\n\
         }\n",
    );
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn seeded_stalled_loop_fails_the_gate_with_its_chain() {
    let dirty = lint_seeded(
        "loop-progress",
        &["loop-progress"],
        "// vdsms-lint: entry\n\
         pub fn resync(feed: &mut Feed) {\n\
         \x20   while feed.damaged() {\n\
         \x20       feed.probe();\n\
         \x20   }\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "loop-progress");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 3, 5));
    assert!(d.message.contains("hot path `resync`"), "names the chain: {}", d.message);

    // Advancing a cursor in the loop body satisfies the rule.
    let clean = lint_seeded(
        "loop-progress-clean",
        &["loop-progress"],
        "// vdsms-lint: entry\n\
         pub fn resync(feed: &mut Feed) {\n\
         \x20   let mut at = 0;\n\
         \x20   while feed.damaged() {\n\
         \x20       at += 1;\n\
         \x20   }\n\
         }\n",
    );
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn seeded_swallowed_error_names_the_failing_callee() {
    let dirty = lint_seeded(
        "swallow",
        &["no-swallowed-error"],
        "fn persist(id: u64) -> Result<(), String> {\n\
         \x20   Err(format!(\"{id}\"))\n\
         }\n\
         \n\
         pub fn shutdown() {\n\
         \x20   let _ = persist(7);\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-swallowed-error");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 6, 13));
    assert!(d.message.contains("`persist`"), "names the callee: {}", d.message);
    assert!(d.message.contains("`shutdown`"), "names the discarding fn: {}", d.message);
}

#[test]
fn seeded_spawn_capture_violation_prints_the_witness() {
    let dirty = lint_seeded(
        "shared-state",
        &["shared-state-discipline"],
        "pub fn worker() {\n\
         \x20   let hits = Arc::new(RefCell::new(0u64));\n\
         \x20   let snd = Arc::clone(&hits);\n\
         \x20   thread::spawn(move || {\n\
         \x20       snd.borrow_mut();\n\
         \x20   });\n\
         \x20   hits.borrow();\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "shared-state-discipline");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 4, 5), "points at the spawn");
    assert!(d.message.contains("`snd`"), "names the capture: {}", d.message);
    assert!(d.message.contains("Arc<RefCell/Cell<…>>"), "names the kind: {}", d.message);
    assert!(d.message.contains("created at line 3"), "creation witness: {}", d.message);
    assert!(d.message.contains("first use at line 5"), "use witness: {}", d.message);

    // The synchronized shape is clean.
    let clean = lint_seeded(
        "shared-state-clean",
        &["shared-state-discipline"],
        "pub fn worker() {\n\
         \x20   let hits = Arc::new(Mutex::new(0u64));\n\
         \x20   let snd = Arc::clone(&hits);\n\
         \x20   thread::spawn(move || {\n\
         \x20       snd.lock();\n\
         \x20   });\n\
         \x20   hits.lock();\n\
         }\n",
    );
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn seeded_guard_across_blocking_reports_the_transitive_chain() {
    let dirty = lint_seeded(
        "guard-blocking",
        &["guard-across-blocking"],
        "fn wait_ack(rx: &Receiver<u64>) -> u64 {\n\
         \x20   rx.recv().unwrap()\n\
         }\n\
         \n\
         pub fn install(m: &Mutex<u64>, rx: &Receiver<u64>) -> u64 {\n\
         \x20   let g = m.lock();\n\
         \x20   let v = wait_ack(rx);\n\
         \x20   drop(g);\n\
         \x20   v\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "guard-across-blocking");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 7, 13), "points at the call");
    assert!(d.message.contains("`m`"), "names the held lock: {}", d.message);
    assert!(
        d.message.contains("witness: `install → wait_ack`"),
        "prints the blocking chain: {}",
        d.message
    );
    assert!(d.message.contains("`.recv()`"), "names the blocking op: {}", d.message);

    // Dropping the guard before the blocking call is clean.
    let clean = lint_seeded(
        "guard-blocking-clean",
        &["guard-across-blocking"],
        "fn wait_ack(rx: &Receiver<u64>) -> u64 {\n\
         \x20   rx.recv().unwrap()\n\
         }\n\
         \n\
         pub fn install(m: &Mutex<u64>, rx: &Receiver<u64>) -> u64 {\n\
         \x20   let g = m.lock();\n\
         \x20   drop(g);\n\
         \x20   wait_ack(rx)\n\
         }\n",
    );
    assert!(clean.is_clean(), "{}", clean.render());
}

#[test]
fn seeded_channel_protocol_violation_points_at_the_second_send() {
    let dirty = lint_seeded(
        "channel-protocol",
        &["channel-protocol"],
        "pub fn reply_twice() {\n\
         \x20   let (tx, rx) = mpsc::sync_channel(1);\n\
         \x20   let _ = tx.send(1);\n\
         \x20   let _ = tx.send(2);\n\
         \x20   let _ = rx.recv();\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "channel-protocol");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 4, 16), "the second send");
    assert!(d.message.contains("one-shot reply channel"), "{}", d.message);
    assert!(d.message.contains("`reply_twice`"), "names the function: {}", d.message);

    // One send per one-shot reply is the protocol.
    let clean = lint_seeded(
        "channel-protocol-clean",
        &["channel-protocol"],
        "pub fn reply_once() {\n\
         \x20   let (tx, rx) = mpsc::sync_channel(1);\n\
         \x20   let _ = tx.send(1);\n\
         \x20   let _ = rx.recv();\n\
         }\n",
    );
    assert!(clean.is_clean(), "{}", clean.render());
}

/// One violation of each flow rule, in one file, with a lock cycle across
/// two functions — the golden input for the JSON snapshot below.
const GOLDEN_SRC: &str = "// vdsms-lint: entry\n\
pub fn ingest(feed: &mut Feed, out: &mut Vec<u64>) {\n\
\x20   let raw = feed.get_u8();\n\
\x20   let scaled = raw * 2;\n\
\x20   out.push(u64::from(scaled));\n\
\x20   let sink = feed.sink.lock();\n\
\x20   let stats = feed.stats.lock();\n\
\x20   sink.record(stats.count().unwrap());\n\
}\n\
\n\
pub fn drain(feed: &mut Feed) {\n\
\x20   let stats = feed.stats.lock();\n\
\x20   let sink = feed.sink.lock();\n\
\x20   let _ = sink.score().partial_cmp(&stats.score());\n\
}\n";

const GOLDEN_RULES: [&str; 5] = [
    "no-panic-hot-path",
    "no-alloc-hot-path",
    "lock-order",
    "no-unchecked-arith",
    "float-determinism",
];

/// Satellite guarantee for CI consumers: `--json` output is byte-stable.
/// The snapshot lives in `tests/golden/seeded_report.json`; regenerate it
/// with `BLESS=1 cargo test -p vdsms-lint json_report` after an
/// intentional format change.
#[test]
fn json_report_matches_the_golden_snapshot_byte_for_byte() {
    let first = lint_seeded("golden-a", &GOLDEN_RULES, GOLDEN_SRC);
    let second = lint_seeded("golden-b", &GOLDEN_RULES, GOLDEN_SRC);
    assert_eq!(first.diagnostics.len(), 5, "one finding per rule:\n{}", first.render());
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "two runs over the same input must serialize identically"
    );

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seeded_report.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, first.to_json()).expect("write golden snapshot");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden snapshot missing — run with BLESS=1 to create it");
    assert_eq!(
        first.to_json(),
        golden,
        "JSON output drifted from the golden snapshot; if intentional, \
         regenerate with BLESS=1"
    );
}

/// Same contract for `--format sarif`: the SARIF document for the seeded
/// report is byte-stable. Regenerate `tests/golden/seeded_report.sarif`
/// with `BLESS=1 cargo test -p vdsms-lint sarif_report`.
#[test]
fn sarif_report_matches_the_golden_snapshot_byte_for_byte() {
    let report = lint_seeded("sarif-golden", &GOLDEN_RULES, GOLDEN_SRC);
    let sarif = vdsms_lint::sarif::to_sarif(&report);

    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seeded_report.sarif");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, &sarif).expect("write golden snapshot");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden snapshot missing — run with BLESS=1 to create it");
    assert_eq!(
        sarif, golden,
        "SARIF output drifted from the golden snapshot; if intentional, \
         regenerate with BLESS=1"
    );
}

/// The incremental-cache contract, end to end on a seeded workspace:
/// a warm run re-parses nothing and its report is byte-identical to the
/// cold run's; touching one file re-parses exactly that file and the
/// diagnostics update accordingly.
#[test]
fn cached_runs_are_byte_identical_and_reparse_only_touched_files() {
    let dir = std::env::temp_dir().join(format!("vdsms-lint-cache-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    seed_workspace(&dir, &GOLDEN_RULES, GOLDEN_SRC);
    // A second file so "only the touched file re-parses" is observable.
    std::fs::write(dir.join("src/extra.rs"), "pub fn quiet() {}\n").unwrap();
    let config = load_config(&dir).expect("seeded config parses");

    let (cold, s_cold) = lint_workspace_cached(&dir, &config).expect("cold run");
    assert_eq!((s_cold.reused, s_cold.parsed), (0, 2), "cold run parses everything");

    let (warm, s_warm) = lint_workspace_cached(&dir, &config).expect("warm run");
    assert_eq!((s_warm.reused, s_warm.parsed), (2, 0), "warm run reuses everything");
    assert_eq!(cold.to_json(), warm.to_json(), "warm output must be byte-identical");
    assert_eq!(cold.render(), warm.render());

    // Touch the quiet file: introduce a violation; exactly one re-parse.
    std::fs::write(
        dir.join("src/extra.rs"),
        "pub fn noisy(a: f64, b: f64) -> bool {\n    a.partial_cmp(&b).is_some()\n}\n",
    )
    .unwrap();
    let (touched, s_touched) = lint_workspace_cached(&dir, &config).expect("touched run");
    assert_eq!((s_touched.reused, s_touched.parsed), (1, 1), "one file re-parsed");
    assert_eq!(
        touched.diagnostics.len(),
        cold.diagnostics.len() + 1,
        "the new violation is picked up through the cache:\n{}",
        touched.render()
    );
    // And the cached run still matches a from-scratch run byte for byte.
    let fresh = lint_workspace_with_default_config(&dir).expect("uncached run");
    assert_eq!(touched.to_json(), fresh.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}
