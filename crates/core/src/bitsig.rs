//! Bit-vector signatures (paper Definition 3, Lemmas 1 and 2).
//!
//! For each of the `K` hash functions, the relation between a candidate
//! sketch value and a query sketch value is one of `>`, `=`, `<`, encoded
//! in two bits:
//!
//! | relation | first bit (`A`) | second bit (`B`) |
//! |----------|-----------------|------------------|
//! | `>`      | 0               | 0                |
//! | `=`      | 0               | 1                |
//! | `<`      | 1               | 1                |
//!
//! (In the paper's 1-based bit numbering, `A` bits sit at odd positions and
//! `B` bits at even positions, so Lemma 1's "`n_1` ones at odd positions"
//! is our `A`-bit count and "`n_0` zeros at even positions" is the count of
//! clear `B` bits.)
//!
//! The point of the encoding: combining two candidate sequences takes the
//! element-wise *minimum* of their sketches (Property 1), and under this
//! encoding `min` of relations is exactly bitwise OR —
//! `min(>,=)==` ⇔ `00|01=01`, `min(=,<)=<` ⇔ `01|11=11`, and so on — so no
//! information about the relation to the query is ever lost (the encoding
//! is exact, not approximate).
//!
//! Lemma 1 recovers the similarity: `sim = n_eq / K = 1 − (n_gt + n_lt)/K`.
//! Lemma 2 gives the pruning rule: once `n_lt > K(1−δ)` the candidate can
//! never match the query again, because extensions only make sketch values
//! smaller.

use vdsms_sketch::Sketch;

/// Mask selecting the `A` (first-of-pair) bits of each 2-bit relation.
const MASK_A: u64 = 0x5555_5555_5555_5555;

/// A packed 2K-bit relation signature between one candidate sequence and
/// one query. (`Default` yields a detached zero-`K` signature whose only
/// purpose is buffer pooling — call [`BitSig::reset_all_greater`] before
/// use.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSig {
    /// Packed relation pairs; pair `r` occupies bits `2r` (A) and `2r+1`
    /// (B) of word `r / 32`.
    words: Vec<u64>,
    /// Number of hash functions `K`.
    k: usize,
}

impl BitSig {
    /// An all-`>` signature (the relation of the empty candidate, whose
    /// sketch values are `u64::MAX`... i.e. conceptually above any query
    /// value). Mostly useful as an OR identity in tests.
    pub fn all_greater(k: usize) -> BitSig {
        assert!(k >= 1);
        // vdsms-lint: allow(no-alloc-hot-path) reason="one signature per probe element, created only when a window shares a min-hash with a query (relation events, not steady state)"
        BitSig { words: vec![0; k.div_ceil(32)], k }
    }

    /// Reset to the all-`>` signature for `k` functions, reusing the
    /// existing word buffer. After the first call with a given `k` this
    /// touches no allocator — the zero-alloc primitive behind the index
    /// probe's signature pool.
    pub fn reset_all_greater(&mut self, k: usize) {
        assert!(k >= 1);
        self.k = k;
        let words = k.div_ceil(32);
        if self.words.len() == words {
            self.words.fill(0);
        } else {
            self.words.clear();
            // vdsms-lint: allow(no-alloc-hot-path) reason="warm-up only: resizes once per K change, then the branch above reuses the buffer"
            self.words.resize(words, 0);
        }
    }

    /// Encode the relation between a candidate sketch and a query sketch
    /// (Definition 3). This is the only place sketch *values* are read;
    /// afterwards everything is bit operations.
    ///
    /// # Panics
    /// Panics if the sketches have different `K`.
    pub fn encode(candidate: &Sketch, query: &Sketch) -> BitSig {
        // vdsms-lint: allow(no-alloc-hot-path) reason="one signature per window×related-query relation event; the Bit representation's inherent cost, never hit by unrelated windows"
        let mut sig = BitSig::default();
        sig.encode_into(candidate, query);
        sig
    }

    /// [`Self::encode`] into this signature's pooled word buffer:
    /// allocation-free once the buffer matches `K`. Each output word is
    /// built whole from its 32 relation pairs with the branch-free pair
    /// encoding (`A = c < q`, `B = c ≤ q`), then stored once — no
    /// per-relation read–modify–write.
    ///
    /// # Panics
    /// Panics if the sketches have different `K`.
    // vdsms-lint: entry
    pub fn encode_into(&mut self, candidate: &Sketch, query: &Sketch) {
        assert_eq!(candidate.k(), query.k(), "sketch K mismatch");
        self.encode_counts_from_mins(candidate.mins(), query.mins());
    }

    /// [`Self::encode_into`] from raw min-value slices, returning
    /// `(n_lt, n_eq)` of the fresh signature in the same pass — each
    /// word is built whole from its 32 relation pairs and popcounted
    /// while still in a register. This is the index probe's phase-2
    /// kernel: a related query's contiguous sketch column goes straight
    /// to a counted signature in one traversal.
    ///
    /// Pairs beyond `K` in the last word stay `>` (all-zero), so no tail
    /// mask is needed for the counts.
    ///
    /// # Panics
    /// Panics if the slices have different lengths or are empty.
    // vdsms-lint: entry
    pub fn encode_counts_from_mins(&mut self, candidate: &[u64], query: &[u64]) -> (usize, usize) {
        assert_eq!(candidate.len(), query.len(), "sketch K mismatch");
        self.reset_all_greater(candidate.len());
        let mut lt = 0u32;
        let mut eq = 0u32;
        let chunks = candidate.chunks(32).zip(query.chunks(32));
        for (w, (cc, qc)) in self.words.iter_mut().zip(chunks) {
            let mut word = 0u64;
            for (r, (&c, &q)) in cc.iter().zip(qc).enumerate() {
                let pair = u64::from(c < q) | (u64::from(c <= q) << 1);
                word |= pair << (2 * r);
            }
            *w = word;
            lt += (word & MASK_A).count_ones();
            eq += (!word & (word >> 1) & MASK_A).count_ones();
        }
        (lt as usize, eq as usize)
    }

    /// Number of hash functions `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Combine with the signature of an adjacent candidate sequence
    /// (relative to the *same* query): bitwise OR, equivalent to the `min`
    /// of the underlying sketches (Property 1 + Definition 3).
    ///
    /// # Panics
    /// Panics if `K` differs.
    #[inline]
    pub fn or_with(&mut self, other: &BitSig) {
        assert_eq!(self.k, other.k, "bit signature K mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The valid-pair mask of the final word: all ones when `K` fills it,
    /// otherwise the low `2(K mod 32)` bits. Hoisted out of the word
    /// loops so the per-word kernel is branch-free.
    #[inline]
    fn tail_mask(&self) -> u64 {
        if self.k.is_multiple_of(32) {
            u64::MAX
        } else {
            (1u64 << (2 * (self.k % 32))) - 1
        }
    }

    /// Number of `<` relations (`n_1` of Lemma 1: candidate min-hash value
    /// smaller than the query's).
    #[inline]
    pub fn count_less(&self) -> usize {
        self.words.iter().map(|&w| (w & MASK_A).count_ones() as usize).sum()
    }

    /// Number of `=` relations (`K − n_0 − n_1` of Lemma 1).
    #[inline]
    pub fn count_equal(&self) -> usize {
        self.counts().1
    }

    /// `(n_lt, n_eq)` in one pass over the words: two AND/popcount lanes
    /// per word, with the partial-last-word mask applied once outside
    /// the loop. Everything Lemma 1 and Lemma 2 need, at the cost of a
    /// single traversal.
    #[inline]
    // vdsms-lint: entry
    pub fn counts(&self) -> (usize, usize) {
        let Some((&last, body)) = self.words.split_last() else { return (0, 0) };
        let mut lt = 0u32;
        let mut eq = 0u32;
        for &w in body {
            lt += (w & MASK_A).count_ones();
            eq += (!w & (w >> 1) & MASK_A).count_ones();
        }
        lt += (last & MASK_A).count_ones();
        eq += (!last & (last >> 1) & MASK_A & self.tail_mask()).count_ones();
        (lt as usize, eq as usize)
    }

    /// Fused [`Self::or_with`] + [`Self::counts`]: merge an adjacent
    /// candidate's signature and report `(n_lt, n_eq)` of the result in
    /// the same single pass, so the extend path of the Bit
    /// representation reads every word once instead of three times.
    ///
    /// # Panics
    /// Panics if `K` differs.
    #[inline]
    // vdsms-lint: entry
    pub fn or_with_counts(&mut self, other: &BitSig) -> (usize, usize) {
        assert_eq!(self.k, other.k, "bit signature K mismatch");
        let tail = self.tail_mask();
        let (Some((last, body)), Some((&olast, obody))) =
            (self.words.split_last_mut(), other.words.split_last())
        else {
            return (0, 0);
        };
        let mut lt = 0u32;
        let mut eq = 0u32;
        for (a, &b) in body.iter_mut().zip(obody) {
            let w = *a | b;
            *a = w;
            lt += (w & MASK_A).count_ones();
            eq += (!w & (w >> 1) & MASK_A).count_ones();
        }
        let w = *last | olast;
        *last = w;
        lt += (w & MASK_A).count_ones();
        eq += (!w & (w >> 1) & MASK_A & tail).count_ones();
        (lt as usize, eq as usize)
    }

    /// Estimated similarity to the query (Lemma 1): `n_eq / K`.
    #[inline]
    pub fn similarity(&self) -> f64 {
        self.similarity_from_count(self.count_equal())
    }

    /// [`Self::similarity`] from an `n_eq` already produced by
    /// [`Self::counts`] / [`Self::or_with_counts`] — no re-traversal.
    #[inline]
    pub fn similarity_from_count(&self, n_eq: usize) -> f64 {
        n_eq as f64 / self.k as f64
    }

    /// Lemma 2 pruning test: `true` when `n_lt > K(1−δ)`, i.e. no extension
    /// of this candidate can ever reach similarity `δ` against this query.
    #[inline]
    pub fn violates_lemma2(&self, delta: f64) -> bool {
        self.lemma2_from_count(self.count_less(), delta)
    }

    /// [`Self::violates_lemma2`] from an `n_lt` already produced by
    /// [`Self::counts`] / [`Self::or_with_counts`] — no re-traversal.
    #[inline]
    pub fn lemma2_from_count(&self, n_less: usize, delta: f64) -> bool {
        n_less as f64 > self.k as f64 * (1.0 - delta)
    }

    /// Heap bytes used by this signature (2K bits, as the paper counts).
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Set the relation of pair `r` directly (used by the index probe,
    /// which discovers relations row by row). Branch-free: the pair is
    /// computed as `A = c < q`, `B = c ≤ q` — exactly the Definition 3
    /// encoding — with no comparison match.
    #[inline]
    pub fn set_relation(&mut self, r: usize, candidate_value: u64, query_value: u64) {
        debug_assert!(r < self.k);
        let pair = u64::from(candidate_value < query_value)
            | (u64::from(candidate_value <= query_value) << 1);
        let shift = 2 * (r % 32);
        let word = &mut self.words[r / 32];
        *word = (*word & !(0b11 << shift)) | (pair << shift);
    }

    /// OR a whole relation word into word `w` of the signature. This is
    /// the index probe's batch flush: the probe accumulates up to 32
    /// row relations in a register and lands them with one lane OR
    /// instead of 32 read–modify–writes. OR-ing is exact because a
    /// pair's bits only ever *gain* ones under min-combination
    /// (Definition 3's encoding is monotone), and a pair never written
    /// is `>` (00), the OR identity.
    #[inline]
    // vdsms-lint: entry
    pub fn or_word(&mut self, w: usize, word: u64) {
        self.words[w] |= word;
    }

    /// The branch-free relation pair (`A = c < q` at bit 0, `B = c ≤ q`
    /// at bit 1) — the 2-bit unit [`Self::or_word`] batches.
    #[inline]
    pub fn relation_pair(candidate_value: u64, query_value: u64) -> u64 {
        u64::from(candidate_value < query_value) | (u64::from(candidate_value <= query_value) << 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_sketch::MinHashFamily;

    fn sk(family: &MinHashFamily, ids: std::ops::Range<u64>) -> Sketch {
        Sketch::from_ids(family, ids)
    }

    #[test]
    fn encode_matches_direct_sketch_comparison_exactly() {
        // Definition 3 is lossless: similarity from the bit signature must
        // equal the sketch-level estimate bit for bit.
        let fam = MinHashFamily::new(100, 1);
        let q = sk(&fam, 0..50);
        let c = sk(&fam, 25..75);
        let sig = BitSig::encode(&c, &q);
        assert_eq!(sig.count_equal(), c.equal_count(&q));
        assert!((sig.similarity() - c.estimate_similarity(&q)).abs() < 1e-12);
    }

    #[test]
    fn identical_sketches_are_all_equal() {
        let fam = MinHashFamily::new(64, 2);
        let q = sk(&fam, 0..30);
        let sig = BitSig::encode(&q.clone(), &q);
        assert_eq!(sig.count_equal(), 64);
        assert_eq!(sig.count_less(), 0);
        assert_eq!(sig.similarity(), 1.0);
    }

    #[test]
    fn or_equals_encode_of_combined_sketch() {
        // The heart of Section V-A: OR of two signatures == signature of
        // the combined (element-min) sketch. Exact equality, all K.
        for k in [7usize, 32, 33, 100, 800] {
            let fam = MinHashFamily::new(k, 3);
            let q = sk(&fam, 0..40);
            let a = sk(&fam, 10..30);
            let b = sk(&fam, 35..60);
            let mut ored = BitSig::encode(&a, &q);
            ored.or_with(&BitSig::encode(&b, &q));
            let direct = BitSig::encode(&a.combined(&b), &q);
            assert_eq!(ored, direct, "OR-combine diverged at K={k}");
        }
    }

    #[test]
    fn count_equal_respects_partial_last_word() {
        // K=33 leaves 31 unused pairs in word 1; they must not be counted.
        let fam = MinHashFamily::new(33, 5);
        let q = sk(&fam, 0..10);
        let sig = BitSig::encode(&q.clone(), &q);
        assert_eq!(sig.count_equal(), 33);
    }

    #[test]
    fn lemma2_threshold_boundary() {
        // Build a signature with exactly n_lt "<" relations and check the
        // strict inequality of Lemma 2.
        let k = 10;
        let delta = 0.7; // K(1-δ) = 3
        let mut sig = BitSig::all_greater(k);
        for r in 0..3 {
            sig.set_relation(r, 50, 100); // "<"
        }
        assert!(!sig.violates_lemma2(delta), "n_lt = 3 = K(1-δ) must NOT prune");
        sig.set_relation(3, 50, 100);
        assert!(sig.violates_lemma2(delta), "n_lt = 4 > 3 must prune");
    }

    #[test]
    fn lemma2_is_monotone_under_or() {
        // Once violated, OR-ing further signatures can never un-violate:
        // "<" pairs (11) are absorbing under OR.
        let fam = MinHashFamily::new(50, 7);
        let q = sk(&fam, 1000..1100);
        let far = sk(&fam, 0..200); // lots of smaller hash values
        let mut sig = BitSig::encode(&far, &q);
        let was = sig.count_less();
        sig.or_with(&BitSig::encode(&sk(&fam, 500..600), &q));
        assert!(sig.count_less() >= was, "n_lt must be monotone under OR");
    }

    #[test]
    fn set_relation_matches_encode() {
        let fam = MinHashFamily::new(40, 9);
        let q = sk(&fam, 0..25);
        let c = sk(&fam, 5..45);
        let direct = BitSig::encode(&c, &q);
        let mut manual = BitSig::all_greater(40);
        for r in 0..40 {
            manual.set_relation(r, c.mins()[r], q.mins()[r]);
        }
        assert_eq!(manual, direct);
    }

    #[test]
    fn all_greater_is_or_identity() {
        let fam = MinHashFamily::new(16, 11);
        let q = sk(&fam, 0..8);
        let c = sk(&fam, 2..12);
        let sig = BitSig::encode(&c, &q);
        let mut ident = BitSig::all_greater(16);
        ident.or_with(&sig);
        assert_eq!(ident, sig);
    }

    #[test]
    fn heap_bytes_is_2k_bits_rounded_to_words() {
        assert_eq!(BitSig::all_greater(800).heap_bytes(), 800 / 32 * 8); // 200 bytes
        assert_eq!(BitSig::all_greater(33).heap_bytes(), 16);
    }

    #[test]
    fn counts_are_consistent() {
        let fam = MinHashFamily::new(333, 13);
        let q = sk(&fam, 0..100);
        let c = sk(&fam, 50..160);
        let sig = BitSig::encode(&c, &q);
        let n_lt = sig.count_less();
        let n_eq = sig.count_equal();
        // Count ">" directly from the sketches.
        let n_gt = c.mins().iter().zip(q.mins()).filter(|(a, b)| a > b).count();
        assert_eq!(n_lt + n_eq + n_gt, 333);
    }
}
