//! Continuous query sequences and the query set.

use vdsms_sketch::{MinHashFamily, Sketch};

/// Identifier of a subscribed query.
pub type QueryId = u32;

/// One continuous query: a video sequence to monitor for, sketched
/// offline.
#[derive(Debug, Clone)]
pub struct Query {
    /// Query id (unique within a [`QuerySet`]).
    pub id: QueryId,
    /// Query length in key frames (the paper's `L`, used for the λL
    /// expiry bound).
    pub keyframes: usize,
    /// The query's K-min-hash sketch.
    pub sketch: Sketch,
}

impl Query {
    /// Sketch a query from its key-frame cell ids.
    ///
    /// # Panics
    /// Panics if `cell_ids` is empty.
    pub fn from_cell_ids(id: QueryId, family: &MinHashFamily, cell_ids: &[u64]) -> Query {
        assert!(!cell_ids.is_empty(), "query must contain at least one key frame");
        Query {
            id,
            keyframes: cell_ids.len(),
            sketch: Sketch::from_ids(family, cell_ids.iter().copied()),
        }
    }
}

/// The set of subscribed queries, indexable by id.
#[derive(Debug, Clone, Default)]
pub struct QuerySet {
    queries: Vec<Query>,
}

impl QuerySet {
    /// An empty set.
    pub fn new() -> QuerySet {
        QuerySet { queries: Vec::new() }
    }

    /// Build from a list of queries.
    ///
    /// # Panics
    /// Panics on duplicate ids or inconsistent sketch `K`.
    pub fn from_queries(queries: Vec<Query>) -> QuerySet {
        let mut set = QuerySet::new();
        for q in queries {
            set.insert(q);
        }
        set
    }

    /// Add a query (online subscription).
    ///
    /// # Panics
    /// Panics if the id is already present or `K` differs from existing
    /// queries.
    pub fn insert(&mut self, query: Query) {
        assert!(self.get(query.id).is_none(), "duplicate query id {}", query.id);
        if let Some(first) = self.queries.first() {
            assert_eq!(first.sketch.k(), query.sketch.k(), "query sketch K mismatch");
        }
        self.queries.push(query);
    }

    /// Remove a query by id (online unsubscription). Returns the removed
    /// query, or `None` if absent.
    pub fn remove(&mut self, id: QueryId) -> Option<Query> {
        let pos = self.queries.iter().position(|q| q.id == id)?;
        Some(self.queries.remove(pos))
    }

    /// Look up a query by id.
    pub fn get(&self, id: QueryId) -> Option<&Query> {
        self.queries.iter().find(|q| q.id == id)
    }

    /// All queries.
    pub fn iter(&self) -> impl Iterator<Item = &Query> {
        self.queries.iter()
    }

    /// Number of queries `m`.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The common sketch `K`, or `None` when empty.
    pub fn k(&self) -> Option<usize> {
        self.queries.first().map(|q| q.sketch.k())
    }

    /// The maximum query length in key frames (the paper's global `L`).
    pub fn max_keyframes(&self) -> usize {
        self.queries.iter().map(|q| q.keyframes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> MinHashFamily {
        MinHashFamily::new(32, 1)
    }

    #[test]
    fn from_cell_ids_records_length() {
        let q = Query::from_cell_ids(7, &family(), &[1, 2, 3, 2, 1]);
        assert_eq!(q.id, 7);
        assert_eq!(q.keyframes, 5);
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let f = family();
        let mut set = QuerySet::new();
        set.insert(Query::from_cell_ids(1, &f, &[1, 2]));
        set.insert(Query::from_cell_ids(2, &f, &[3, 4, 5]));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(2).unwrap().keyframes, 3);
        assert_eq!(set.max_keyframes(), 3);
        let removed = set.remove(1).unwrap();
        assert_eq!(removed.id, 1);
        assert!(set.get(1).is_none());
        assert!(set.remove(1).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate query id")]
    fn duplicate_id_rejected() {
        let f = family();
        let mut set = QuerySet::new();
        set.insert(Query::from_cell_ids(1, &f, &[1]));
        set.insert(Query::from_cell_ids(1, &f, &[2]));
    }

    #[test]
    #[should_panic(expected = "K mismatch")]
    fn k_mismatch_rejected() {
        let mut set = QuerySet::new();
        set.insert(Query::from_cell_ids(1, &MinHashFamily::new(8, 0), &[1]));
        set.insert(Query::from_cell_ids(2, &MinHashFamily::new(16, 0), &[2]));
    }

    #[test]
    fn empty_set_properties() {
        let set = QuerySet::new();
        assert!(set.is_empty());
        assert_eq!(set.k(), None);
        assert_eq!(set.max_keyframes(), 0);
    }
}
