//! Grid–pyramid feature-space partition (paper Section III-A, Fig. 1).
//!
//! The `d`-dimensional unit cube is split into `u^d` grid cells; each grid
//! cell is split into `2d` pyramid cells by the Berchtold pyramid technique
//! applied locally (apex at the cell centre). A feature's single-value
//! fingerprint is `id = 2d · O_g + O_p` where `O_g` is the mixed-radix grid
//! order and `O_p ∈ [0, 2d)` the pyramid order.

use crate::CellId;

/// Min–max normalize a feature vector to `[0, 1]` (paper Eq. 1).
///
/// If all components are equal the vector is mapped to all-0.5 (any
/// constant is equivalent after normalization; 0.5 keeps the point in the
/// middle of the space rather than on a partition boundary).
pub fn normalize(values: &[f32]) -> Vec<f32> {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    let range = max - min;
    // NaN-safe: a non-positive or NaN range means no usable spread.
    if range <= 0.0 || range.is_nan() {
        return vec![0.5; values.len()];
    }
    values.iter().map(|&v| (v - min) / range).collect()
}

/// In-place, allocation-free variant of [`normalize`]; bit-identical
/// output (same reduction order, same `(v − min) / range` mapping).
pub fn normalize_in_place(values: &mut [f32]) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in values.iter() {
        min = min.min(v);
        max = max.max(v);
    }
    let range = max - min;
    // NaN-safe: a non-positive or NaN range means no usable spread.
    if range <= 0.0 || range.is_nan() {
        for v in values.iter_mut() {
            *v = 0.5;
        }
        return;
    }
    for v in values.iter_mut() {
        *v = (*v - min) / range;
    }
}

/// The grid–pyramid partitioner for a fixed `(d, u)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPyramid {
    d: usize,
    u: u32,
}

impl GridPyramid {
    /// Create a partitioner for `d` dimensions and `u` grid slices per
    /// dimension.
    ///
    /// # Panics
    /// Panics if `d == 0`, `u == 0`, or the total cell count `2·d·u^d`
    /// overflows `u64`.
    pub fn new(d: usize, u: u32) -> GridPyramid {
        assert!(d >= 1, "d must be >= 1");
        assert!(u >= 1, "u must be >= 1");
        // On u128 overflow, saturate past the u64 bound so the assert
        // below reports the failure (`assert!` is the sanctioned
        // construction-time check under the panic-freedom lint).
        let cells = (u as u128)
            .checked_pow(d as u32)
            .and_then(|g| g.checked_mul(2 * d as u128))
            .unwrap_or(u128::MAX);
        assert!(cells <= u64::MAX as u128, "cell count exceeds u64");
        GridPyramid { d, u }
    }

    /// Number of dimensions.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Grid slices per dimension.
    pub fn u(&self) -> u32 {
        self.u
    }

    /// Total number of cells, `2·d·u^d`.
    pub fn num_cells(&self) -> u64 {
        2 * self.d as u64 * (self.u as u64).pow(self.d as u32)
    }

    /// Grid coordinate of a component value in `[0, 1]` (values at 1.0 are
    /// clamped into the last slice).
    fn grid_coord(&self, v: f32) -> u32 {
        let g = (v.clamp(0.0, 1.0) * self.u as f32) as u32;
        g.min(self.u - 1)
    }

    /// Mixed-radix grid order `O_g ∈ [0, u^d)` of a feature vector.
    ///
    /// # Panics
    /// Panics if `f.len() != d`.
    pub fn grid_order(&self, f: &[f32]) -> u64 {
        assert_eq!(f.len(), self.d, "feature dimensionality mismatch");
        let mut id: u64 = 0;
        for &v in f {
            id = id * u64::from(self.u) + u64::from(self.grid_coord(v));
        }
        id
    }

    /// Pyramid order `O_p ∈ [0, 2d)` of a feature vector *within its grid
    /// cell*: `j_max = argmax_j |V_j − C_j|` (ties broken toward the lowest
    /// `j`), `O_p = j_max` if `V_{j_max} < C_{j_max}` else `j_max + d`,
    /// where `C` is the grid-cell centre.
    pub fn pyramid_order(&self, f: &[f32]) -> u64 {
        assert_eq!(f.len(), self.d, "feature dimensionality mismatch");
        let mut j_max = 0usize;
        let mut best = f32::NEG_INFINITY;
        let mut below = false;
        for (j, &v) in f.iter().enumerate() {
            let centre = (self.grid_coord(v) as f32 + 0.5) / self.u as f32;
            let dist = (v - centre).abs();
            if dist > best {
                best = dist;
                j_max = j;
                below = v < centre;
            }
        }
        if below {
            j_max as u64
        } else {
            j_max as u64 + self.d as u64
        }
    }

    /// The paper's combined cell id, `2d · O_g + O_p`.
    pub fn cell_id(&self, f: &[f32]) -> CellId {
        2 * self.d as u64 * self.grid_order(f) + self.pyramid_order(f)
    }

    /// Grid-only id (ablation: the paper argues pure grid partitioning
    /// yields more false negatives under coefficient jitter).
    pub fn grid_only_id(&self, f: &[f32]) -> CellId {
        self.grid_order(f)
    }

    /// Pyramid-only id over the whole space (ablation: only `2d` cells, so
    /// far too many false positives).
    pub fn pyramid_only_id(&self, f: &[f32]) -> CellId {
        assert_eq!(f.len(), self.d, "feature dimensionality mismatch");
        let mut j_max = 0usize;
        let mut best = f32::NEG_INFINITY;
        let mut below = false;
        for (j, &v) in f.iter().enumerate() {
            let dist = (v - 0.5).abs();
            if dist > best {
                best = dist;
                j_max = j;
                below = v < 0.5;
            }
        }
        if below {
            j_max as u64
        } else {
            j_max as u64 + self.d as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_maps_to_unit_range() {
        let n = normalize(&[10.0, 20.0, 15.0, 30.0]);
        assert_eq!(n[0], 0.0);
        assert_eq!(n[3], 1.0);
        assert!((n[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normalize_is_invariant_to_gain_and_offset() {
        let a = normalize(&[10.0, 20.0, 15.0, 30.0]);
        let b = normalize(&[10.0 * 1.4 + 7.0, 20.0 * 1.4 + 7.0, 15.0 * 1.4 + 7.0, 30.0 * 1.4 + 7.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5, "normalization must cancel affine edits");
        }
    }

    #[test]
    fn normalize_constant_vector_is_neutral() {
        assert_eq!(normalize(&[3.0, 3.0, 3.0]), vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn cell_count_matches_formula() {
        let p = GridPyramid::new(5, 4);
        assert_eq!(p.num_cells(), 2 * 5 * 4u64.pow(5));
    }

    #[test]
    fn cell_ids_are_in_range_and_cover_grid_and_pyramid() {
        let p = GridPyramid::new(3, 4);
        let n = p.num_cells();
        let mut seen = std::collections::HashSet::new();
        // Scan a lattice of points; ids must be in range.
        let steps = 17;
        for i in 0..steps {
            for j in 0..steps {
                for k in 0..steps {
                    let f = [
                        i as f32 / (steps - 1) as f32,
                        j as f32 / (steps - 1) as f32,
                        k as f32 / (steps - 1) as f32,
                    ];
                    let id = p.cell_id(&f);
                    assert!(id < n, "cell id {id} out of range {n}");
                    seen.insert(id);
                }
            }
        }
        // A dense scan should touch a decent fraction of the cells.
        assert!(seen.len() as u64 > n / 4, "only {} of {} cells hit", seen.len(), n);
    }

    #[test]
    fn id_decomposes_into_grid_and_pyramid_parts() {
        let p = GridPyramid::new(5, 4);
        let f = [0.1f32, 0.9, 0.4, 0.6, 0.3];
        let id = p.cell_id(&f);
        assert_eq!(id / (2 * 5), p.grid_order(&f));
        assert_eq!(id % (2 * 5), p.pyramid_order(&f));
    }

    #[test]
    fn pyramid_order_identifies_dominant_dimension() {
        let p = GridPyramid::new(3, 1); // single grid cell, centre (0.5,0.5,0.5)
        // Dimension 1 deviates the most, below the centre -> O_p = 1.
        assert_eq!(p.pyramid_order(&[0.45, 0.1, 0.55]), 1);
        // Dimension 1 deviates the most, above the centre -> O_p = 1 + d = 4.
        assert_eq!(p.pyramid_order(&[0.45, 0.9, 0.55]), 4);
    }

    #[test]
    fn pyramid_is_robust_to_small_jitter_in_nondominant_dims() {
        // The paper's robustness argument: jitter that does not change the
        // argmax dimension does not change the pyramid order.
        let p = GridPyramid::new(5, 1);
        let base = [0.5f32, 0.95, 0.5, 0.5, 0.5];
        let jittered = [0.53f32, 0.95, 0.46, 0.52, 0.49];
        assert_eq!(p.pyramid_order(&base), p.pyramid_order(&jittered));
    }

    #[test]
    fn grid_partition_is_sensitive_where_pyramid_is_not() {
        // A point near a grid boundary flips its grid cell under tiny
        // jitter — the false-negative source the pyramid mitigates.
        let p = GridPyramid::new(2, 4);
        let a = [0.2499f32, 0.9];
        let b = [0.2501f32, 0.9];
        assert_ne!(p.grid_order(&a), p.grid_order(&b));
    }

    #[test]
    fn boundary_values_are_clamped() {
        let p = GridPyramid::new(2, 4);
        let id = p.cell_id(&[1.0, 0.0]);
        assert!(id < p.num_cells());
        let id2 = p.cell_id(&[1.5, -0.5]); // out-of-range input clamps
        assert!(id2 < p.num_cells());
    }

    #[test]
    fn distinct_regions_get_distinct_ids() {
        let p = GridPyramid::new(5, 4);
        let a = p.cell_id(&[0.1, 0.1, 0.1, 0.1, 0.1]);
        let b = p.cell_id(&[0.9, 0.9, 0.9, 0.9, 0.9]);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_panics() {
        let p = GridPyramid::new(3, 4);
        let _ = p.cell_id(&[0.5, 0.5]);
    }

    #[test]
    fn supported_parameter_ranges_construct() {
        // The paper sweeps u in [2,7] and d in [3,7] (Table II).
        for d in 3..=7 {
            for u in 2..=7 {
                let p = GridPyramid::new(d, u);
                assert!(p.num_cells() > 0);
            }
        }
    }
}
