//! Bitstream container format.
//!
//! ```text
//! stream   := magic("VDSM") version(u8=2) header frame*
//! header   := width(varint) height(varint) fps_num(varint) fps_den(varint)
//!             gop(varint)
//! frame    := type(u8: 0=I, 1=P) quality(u8) payload_len(u32le) payload
//! payload  := block*          -- blocks in raster order, DC DPCM chained
//! block    := [mv_x(svarint) mv_y(svarint)]  -- P-frames only
//!             dc_delta(svarint) ac_tokens... eob
//! ```
//!
//! The fixed-width `payload_len` prefix is what lets the partial decoder
//! skip a P-frame in O(1) without parsing its entropy data.

use crate::bitio::{ByteReader, ByteWriter};
use crate::{CodecError, Result};
use vdsms_video::Fps;

/// Magic bytes opening every stream.
pub const MAGIC: &[u8; 4] = b"VDSM";
/// Current format version.
pub const VERSION: u8 = 2;

/// Frame kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra-coded key frame: every block coded independently of other
    /// frames. These are the paper's "key (or I) frames".
    Intra,
    /// Predicted frame: blocks code the difference from the previous
    /// reconstructed frame.
    Predicted,
}

impl FrameType {
    /// Wire value.
    pub fn to_byte(self) -> u8 {
        match self {
            FrameType::Intra => 0,
            FrameType::Predicted => 1,
        }
    }

    /// Parse a wire value.
    pub fn from_byte(b: u8) -> Result<FrameType> {
        match b {
            0 => Ok(FrameType::Intra),
            1 => Ok(FrameType::Predicted),
            _ => Err(CodecError::InvalidField("frame type")),
        }
    }
}

/// Per-stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frame rate.
    pub fps: Fps,
    /// GOP length: an I-frame every `gop` frames (`gop = 1` ⇒ all-intra).
    pub gop: u32,
}

impl StreamHeader {
    /// Serialize the magic, version and header fields.
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_bytes(MAGIC);
        w.put_u8(VERSION);
        w.put_varint(u64::from(self.width));
        w.put_varint(u64::from(self.height));
        w.put_varint(u64::from(self.fps.num));
        w.put_varint(u64::from(self.fps.den));
        w.put_varint(u64::from(self.gop));
    }

    /// Parse the magic, version and header fields.
    pub fn read(r: &mut ByteReader<'_>) -> Result<StreamHeader> {
        let magic = r.get_bytes(4)?;
        if magic != MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.get_u8()?;
        if version != VERSION {
            return Err(CodecError::InvalidField("version"));
        }
        let width = read_u32_field(r, "width")?;
        let height = read_u32_field(r, "height")?;
        let fps_num = read_u32_field(r, "fps_num")?;
        let fps_den = read_u32_field(r, "fps_den")?;
        let gop = read_u32_field(r, "gop")?;
        if width == 0 || height == 0 {
            return Err(CodecError::InvalidField("dimensions"));
        }
        if fps_num == 0 || fps_den == 0 {
            return Err(CodecError::InvalidField("fps"));
        }
        if gop == 0 {
            return Err(CodecError::InvalidField("gop"));
        }
        Ok(StreamHeader { width, height, fps: Fps { num: fps_num, den: fps_den }, gop })
    }
}

fn read_u32_field(r: &mut ByteReader<'_>, name: &'static str) -> Result<u32> {
    u32::try_from(r.get_varint()?).map_err(|_| CodecError::InvalidField(name))
}

/// Per-frame record header (everything before the payload bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRecord {
    /// Frame kind.
    pub frame_type: FrameType,
    /// Quality the frame was quantized at.
    pub quality: u8,
    /// Payload byte length.
    pub payload_len: u32,
}

impl FrameRecord {
    /// Parse a frame record header.
    pub fn read(r: &mut ByteReader<'_>) -> Result<FrameRecord> {
        let frame_type = FrameType::from_byte(r.get_u8()?)?;
        let quality = r.get_u8()?;
        if !(1..=100).contains(&quality) {
            return Err(CodecError::InvalidField("quality"));
        }
        let payload_len = r.get_u32_le()?;
        Ok(FrameRecord { frame_type, quality, payload_len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trip() {
        let h = StreamHeader { width: 352, height: 240, fps: Fps::NTSC, gop: 15 };
        let mut w = ByteWriter::new();
        h.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(StreamHeader::read(&mut r).unwrap(), h);
        assert!(r.is_at_end());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut r = ByteReader::new(b"XXXX\x01");
        assert_eq!(StreamHeader::read(&mut r), Err(CodecError::BadMagic));
    }

    #[test]
    fn zero_gop_rejected() {
        let h = StreamHeader { width: 8, height: 8, fps: Fps::PAL, gop: 15 };
        let mut w = ByteWriter::new();
        h.write(&mut w);
        let mut bytes = w.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 0; // gop varint = 0
        let mut r = ByteReader::new(&bytes);
        assert_eq!(StreamHeader::read(&mut r), Err(CodecError::InvalidField("gop")));
    }

    #[test]
    fn frame_type_wire_round_trip() {
        for t in [FrameType::Intra, FrameType::Predicted] {
            assert_eq!(FrameType::from_byte(t.to_byte()).unwrap(), t);
        }
        assert!(FrameType::from_byte(9).is_err());
    }
}
