//! Per-basic-window state shared by the candidate stores.

use crate::bitsig::BitSig;
use crate::query::{QueryId, QuerySet};
use crate::stats::Stats;
use vdsms_sketch::Sketch;

/// A completed basic window: `w` key frames sketched as a set of cell ids.
#[derive(Debug, Clone)]
pub struct Window {
    /// Zero-based window index within the stream.
    pub index: u64,
    /// Stream frame index of the window's first key frame.
    pub start_frame: u64,
    /// Stream frame index of the window's last key frame (inclusive).
    pub end_frame: u64,
    /// K-min-hash sketch of the window's cell-id set.
    pub sketch: Sketch,
}

/// The window's relations to the query set: the related-query list `R_L`
/// (from the index probe, or all queries for the NoIndex variants) plus a
/// lazy cache of bit signatures.
///
/// Signatures for queries *not* surfaced by the probe are computed on
/// demand (an `O(K)` encode) — this happens when an old candidate tracks a
/// query that the newest window shares no min-hash values with, and its
/// cost is exactly what Lemma-2 pruning keeps rare.
#[derive(Debug)]
pub struct WindowRelations {
    /// Related queries as `(id, keyframes)`.
    related: Vec<(QueryId, usize)>,
    /// Signature cache, sorted by query id (binary-searched; the related
    /// set is small — `R_L` in the paper's notation).
    sigs: Vec<(QueryId, BitSig)>,
}

impl Default for WindowRelations {
    fn default() -> Self {
        WindowRelations::new()
    }
}

impl WindowRelations {
    /// An empty relation set, ready to be `reset_*` per window. The
    /// detector keeps one and refills it each basic window so the
    /// steady-state loop never rebuilds these containers from scratch.
    pub fn new() -> WindowRelations {
        WindowRelations { related: Vec::new(), sigs: Vec::new() }
    }

    /// Hand this window's dead signature buffers back to the probe's pool
    /// before the next `reset_*` (which would otherwise drop them — and
    /// their heap words — on the floor).
    pub fn recycle_sigs_into(&mut self, scratch: &mut crate::hq::ProbeScratch) {
        for (_, sig) in self.sigs.drain(..) {
            scratch.recycle_sig(sig);
        }
    }

    /// Build from a probe result (signatures already known).
    pub fn from_probe(hits: Vec<crate::hq::ProbeHit>) -> WindowRelations {
        let mut rel = WindowRelations::new();
        let mut hits = hits;
        rel.reset_from_probe(&mut hits);
        rel
    }

    /// Build for the NoIndex variants: every query is related; signatures
    /// are encoded lazily as the stores touch them.
    pub fn all_queries(queries: &QuerySet) -> WindowRelations {
        let mut rel = WindowRelations::new();
        rel.reset_all_queries(queries);
        rel
    }

    /// Refill from a probe result, draining `hits` and reusing this
    /// relation set's buffers.
    pub fn reset_from_probe(&mut self, hits: &mut Vec<crate::hq::ProbeHit>) {
        self.related.clear();
        self.sigs.clear();
        for h in hits.drain(..) {
            // vdsms-lint: allow(no-alloc-hot-path) reason="capacity reused across windows; grows only while the probe-hit high-water mark rises"
            self.related.push((h.query_id, h.keyframes));
            // vdsms-lint: allow(no-alloc-hot-path) reason="capacity reused across windows; grows only while the probe-hit high-water mark rises"
            self.sigs.push((h.query_id, h.sig));
        }
        self.sigs.sort_unstable_by_key(|(id, _)| *id);
    }

    /// Refill with every subscribed query (NoIndex variants), reusing
    /// this relation set's buffers.
    pub fn reset_all_queries(&mut self, queries: &QuerySet) {
        self.related.clear();
        self.sigs.clear();
        for q in queries.iter() {
            // vdsms-lint: allow(no-alloc-hot-path) reason="capacity reused across windows; bounded by the subscribed-query count"
            self.related.push((q.id, q.keyframes));
        }
    }

    /// The related-query list for this window.
    pub fn related(&self) -> &[(QueryId, usize)] {
        &self.related
    }

    /// Number of related queries.
    pub fn related_len(&self) -> usize {
        self.related.len()
    }

    /// The `i`-th related query as `(id, keyframes)`. Indexed access lets
    /// the stores iterate relations while calling `sig_for` (which needs
    /// `&mut self`) without copying the list out first.
    ///
    /// # Panics
    /// Panics if `i >= related_len()`.
    pub fn related_at(&self, i: usize) -> (QueryId, usize) {
        self.related[i]
    }

    /// The window's bit signature relative to query `qid`, encoding it on
    /// demand if the probe did not produce it. Returns `None` if the query
    /// has been unsubscribed.
    pub fn sig_for(
        &mut self,
        qid: QueryId,
        window_sketch: &Sketch,
        queries: &QuerySet,
        stats: &mut Stats,
    ) -> Option<&BitSig> {
        match self.sigs.binary_search_by_key(&qid, |(id, _)| *id) {
            Ok(i) => Some(&self.sigs[i].1),
            Err(i) => {
                let q = queries.get(qid)?;
                stats.sig_encodes += 1;
                // vdsms-lint: allow(no-alloc-hot-path) reason="one cached signature per window×related-query relation event — the Bit representation's inherent cost"
                self.sigs.insert(i, (qid, BitSig::encode(window_sketch, &q.sketch)));
                Some(&self.sigs[i].1)
            }
        }
    }
}

/// Relation counts between two raw sketches: `(n_equal, n_less)` where
/// `n_less` counts positions with `a < b`. This is the Sketch
/// representation's comparison primitive (`C_comp`), also used for its
/// Lemma-2 pruning.
pub fn sketch_relations(a: &Sketch, b: &Sketch) -> (usize, usize) {
    assert_eq!(a.k(), b.k(), "sketch K mismatch");
    // Branch-free: each lane contributes 0/1 to both counters, so the
    // loop has no data-dependent branches and vectorizes.
    let mut n_eq = 0usize;
    let mut n_less = 0usize;
    for (&x, &y) in a.mins().iter().zip(b.mins()) {
        n_eq += usize::from(x == y);
        n_less += usize::from(x < y);
    }
    (n_eq, n_less)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use vdsms_sketch::MinHashFamily;

    #[test]
    fn sketch_relations_counts_match_bitsig() {
        let f = MinHashFamily::new(100, 1);
        let a = Sketch::from_ids(&f, 0..50u64);
        let b = Sketch::from_ids(&f, 25..80u64);
        let (n_eq, n_less) = sketch_relations(&a, &b);
        let sig = BitSig::encode(&a, &b);
        assert_eq!(n_eq, sig.count_equal());
        assert_eq!(n_less, sig.count_less());
    }

    #[test]
    fn sig_for_encodes_on_demand_and_caches() {
        let f = MinHashFamily::new(32, 2);
        let queries = QuerySet::from_queries(vec![Query::from_cell_ids(9, &f, &[1, 2, 3])]);
        let w = Sketch::from_ids(&f, 1..4u64);
        let mut rel = WindowRelations::all_queries(&queries);
        let mut stats = Stats::default();
        let sig1 = rel.sig_for(9, &w, &queries, &mut stats).unwrap().clone();
        assert_eq!(stats.sig_encodes, 1);
        let sig2 = rel.sig_for(9, &w, &queries, &mut stats).unwrap().clone();
        assert_eq!(stats.sig_encodes, 1, "second access must hit the cache");
        assert_eq!(sig1, sig2);
        assert_eq!(sig1.similarity(), 1.0);
    }

    #[test]
    fn sig_for_unknown_query_is_none() {
        let f = MinHashFamily::new(32, 2);
        let queries = QuerySet::new();
        let w = Sketch::from_ids(&f, 1..4u64);
        let mut rel = WindowRelations::all_queries(&queries);
        let mut stats = Stats::default();
        assert!(rel.sig_for(42, &w, &queries, &mut stats).is_none());
    }
}
