// guard-across-blocking negative fixture: guards dropped before
// blocking, blocking without guards, and blocking look-alikes that do
// not park the thread. Must be silent.

use std::sync::mpsc::{self, Receiver};
use std::sync::Mutex;

fn tally(v: u64) -> u64 {
    v + 1
}

// Guard explicitly dropped before the blocking receive.
pub fn drop_then_recv(m: &Mutex<u64>, rx: &Receiver<u64>) -> u64 {
    let g = m.lock();
    drop(g);
    rx.recv().unwrap()
}

// Blocking with no guard held at all.
pub fn plain_recv(rx: &Receiver<u64>) -> u64 {
    rx.recv().unwrap()
}

// `slice::join(separator)` takes an argument — not a thread join.
pub fn join_names(m: &Mutex<u64>, names: &[String]) -> String {
    let g = m.lock();
    let s = names.join(", ");
    drop(g);
    s
}

// An unbounded send never blocks, guard or not.
pub fn unbounded_send_under_lock(m: &Mutex<u64>) {
    let (tx, rx) = mpsc::channel();
    let g = m.lock();
    tx.send(1).unwrap();
    drop(g);
    rx.recv().unwrap();
}

// A call to a non-blocking callee with a guard held is fine.
pub fn call_under_lock(m: &Mutex<u64>) -> u64 {
    let g = m.lock();
    let v = tally(2);
    drop(g);
    v
}
