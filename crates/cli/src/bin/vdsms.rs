//! The `vdsms` command-line tool. See `vdsms-cli`'s crate docs; run
//! `vdsms help` for usage.

use std::process::exit;
use vdsms_cli::{
    eval_attacks, generate, inspect, lint, monitor_streams_opts, sketch, EvalAttacksOpts,
    GenerateOpts, MonitorOpts,
};
use vdsms_core::DetectorConfig;
use vdsms_features::FeatureConfig;
use vdsms_workload::FaultSpec;

const USAGE: &str = "\
vdsms — continuous content-based video copy detection

USAGE:
  vdsms generate [--seed N] [--seconds S] [--width W] [--height H]
                 [--fps F] [--gop G] [--quality Q] [--motifs SEED:COUNT]
                 --out FILE
      Generate a synthetic test video bitstream.

  vdsms inspect FILE
      Print bitstream metadata (resolution, rate, GOP, key frames).

  vdsms sketch [--k K] [--hash-seed S] FILE... --out FILE
      Fingerprint and min-hash query videos into a catalogue file.
      Query ids are assigned 0, 1, ... in argument order.

  vdsms monitor --queries FILE [--k K] [--hash-seed S] [--delta D]
                [--window-keyframes W] [--shards N] [--recover]
                [--inject-faults SPEC] STREAM_FILE...
      Detect copies of catalogued queries in one or more concurrent
      stream bitstreams. --shards N > 1 monitors on N worker threads
      (identical detections, stream files are hash-sharded onto workers).
      A stream that fails to open or dies mid-monitoring is reported on
      stderr and skipped; the others keep being monitored (exit code 1
      if any stream failed). --recover resynchronizes past mid-record
      corruption instead of failing the stream. --inject-faults damages
      each stream with seeded faults first (a robustness test harness),
      e.g. SPEC = seed=7,flip=0.02,drop=0.01,delete=0.005,insert=0.005,
      truncate=0.001.

  vdsms eval-attacks [--seed N] [--profile smoke|quick|default]
                     [--attacks LIST] [--detectors LIST] [--json]
                     [--out FILE] [--check FLOORS.json]
      Run the seeded attack × detector robustness matrix: compose one
      evaluation stream per attack (speed change, frame drops,
      clip-in-clip, crop, re-encode chain, ...), sweep the detector
      variants over it, and report recall/precision per cell. LIST is
      comma-separated: attacks as kind or kind:strength (e.g.
      speed-up:heavy,crop), detectors from seq,geo,seq-noindex,
      geo-noindex. --check compares every cell against the committed
      floors and exits 1 on any regression. Deterministic per --seed.

  vdsms lint [--json] [--root DIR]
      Run the workspace static-analysis gate (panic-freedom,
      determinism, lock discipline; configured in lint.toml).
      Exits 1 if violations are found.

Sketching and monitoring must use the same --k and --hash-seed.
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    exit(2);
}

fn take_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i).unwrap_or_else(|| fail(&format!("{flag} needs a value"))).as_str()
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| fail(&format!("invalid value for {flag}: {s}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { fail("no subcommand") };
    match cmd.as_str() {
        "generate" => cmd_generate(&args[1..]),
        "inspect" => cmd_inspect(&args[1..]),
        "sketch" => cmd_sketch(&args[1..]),
        "monitor" => cmd_monitor(&args[1..]),
        "eval-attacks" => cmd_eval_attacks(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "help" | "--help" | "-h" => println!("{USAGE}"),
        other => fail(&format!("unknown subcommand {other}")),
    }
}

fn cmd_generate(args: &[String]) {
    let mut opts = GenerateOpts::default();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => opts.seed = parse(take_value(args, &mut i, "--seed"), "--seed"),
            "--seconds" => opts.seconds = parse(take_value(args, &mut i, "--seconds"), "--seconds"),
            "--width" => opts.width = parse(take_value(args, &mut i, "--width"), "--width"),
            "--height" => opts.height = parse(take_value(args, &mut i, "--height"), "--height"),
            "--fps" => opts.fps = parse(take_value(args, &mut i, "--fps"), "--fps"),
            "--gop" => opts.gop = parse(take_value(args, &mut i, "--gop"), "--gop"),
            "--quality" => opts.quality = parse(take_value(args, &mut i, "--quality"), "--quality"),
            "--motifs" => {
                let v = take_value(args, &mut i, "--motifs");
                let (seed, count) =
                    v.split_once(':').unwrap_or_else(|| fail("--motifs wants SEED:COUNT"));
                opts.motifs = Some((parse(seed, "--motifs"), parse(count, "--motifs")));
            }
            "--out" => out = Some(take_value(args, &mut i, "--out").to_string()),
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let Some(out) = out else { fail("generate needs --out FILE") };
    match generate(&opts) {
        Ok(bytes) => {
            std::fs::write(&out, &bytes).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
            eprintln!("wrote {} bytes to {out}", bytes.len());
        }
        Err(e) => fail(&e.message),
    }
}

fn cmd_inspect(args: &[String]) {
    let Some(path) = args.first() else { fail("inspect needs a FILE") };
    let bytes = std::fs::read(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    match inspect(&bytes) {
        Ok(report) => print!("{report}"),
        Err(e) => fail(&e.message),
    }
}

fn detector_flags(
    args: &[String],
    i: &mut usize,
    cfg: &mut DetectorConfig,
) -> bool {
    match args[*i].as_str() {
        "--k" => cfg.k = parse(take_value(args, i, "--k"), "--k"),
        "--hash-seed" => cfg.hash_seed = parse(take_value(args, i, "--hash-seed"), "--hash-seed"),
        "--delta" => cfg.delta = parse(take_value(args, i, "--delta"), "--delta"),
        "--window-keyframes" => {
            cfg.window_keyframes =
                parse(take_value(args, i, "--window-keyframes"), "--window-keyframes")
        }
        "--shards" => {
            cfg.shards = parse(take_value(args, i, "--shards"), "--shards");
            if cfg.shards == 0 {
                fail("--shards must be >= 1");
            }
        }
        _ => return false,
    }
    true
}

fn cmd_sketch(args: &[String]) {
    let mut cfg = DetectorConfig::default();
    let mut files: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if detector_flags(args, &mut i, &mut cfg) {
        } else if args[i] == "--out" {
            out = Some(take_value(args, &mut i, "--out").to_string());
        } else if args[i].starts_with('-') {
            fail(&format!("unknown flag {}", args[i]));
        } else {
            files.push(args[i].clone());
        }
        i += 1;
    }
    let Some(out) = out else { fail("sketch needs --out FILE") };
    if files.is_empty() {
        fail("sketch needs at least one query FILE");
    }
    let inputs: Vec<(u32, Vec<u8>)> = files
        .iter()
        .enumerate()
        .map(|(id, path)| {
            let bytes =
                std::fs::read(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
            (id as u32, bytes)
        })
        .collect();
    match sketch(&inputs, &cfg, &FeatureConfig::default()) {
        Ok(bytes) => {
            std::fs::write(&out, &bytes).unwrap_or_else(|e| fail(&format!("write {out}: {e}")));
            eprintln!("sketched {} queries into {out} ({} bytes)", inputs.len(), bytes.len());
        }
        Err(e) => fail(&e.message),
    }
}

fn cmd_monitor(args: &[String]) {
    let mut cfg = DetectorConfig::default();
    let mut opts = MonitorOpts::default();
    let mut queries: Option<String> = None;
    let mut streams: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if detector_flags(args, &mut i, &mut cfg) {
        } else if args[i] == "--queries" {
            queries = Some(take_value(args, &mut i, "--queries").to_string());
        } else if args[i] == "--recover" {
            opts.recover = true;
        } else if args[i] == "--inject-faults" {
            let spec = take_value(args, &mut i, "--inject-faults");
            opts.faults =
                Some(FaultSpec::parse(spec).unwrap_or_else(|e| fail(&format!("--inject-faults: {e}"))));
        } else if args[i].starts_with('-') {
            fail(&format!("unknown flag {}", args[i]));
        } else {
            streams.push(args[i].clone());
        }
        i += 1;
    }
    let Some(queries) = queries else { fail("monitor needs --queries FILE") };
    if streams.is_empty() {
        fail("monitor needs at least one STREAM_FILE");
    }
    let qbytes =
        std::fs::read(&queries).unwrap_or_else(|e| fail(&format!("read {queries}: {e}")));
    // A stream file that cannot be read is a failed stream, not a fatal
    // error — it is reported alongside mid-stream failures below. An
    // empty byte buffer has no valid header, so the library rejects it
    // per stream with the right bookkeeping.
    let sbytes: Vec<Vec<u8>> = streams
        .iter()
        .map(|path| {
            std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("warning: read {path}: {e}");
                Vec::new()
            })
        })
        .collect();
    let slices: Vec<&[u8]> = sbytes.iter().map(Vec::as_slice).collect();
    match monitor_streams_opts(&slices, &qbytes, &cfg, &FeatureConfig::default(), &opts) {
        Ok(outcome) => {
            if outcome.hits.is_empty() {
                println!("no copies detected");
            }
            for h in &outcome.hits {
                println!(
                    "stream {}\tquery {}\tframes {}..{}\tsimilarity {:.3}",
                    streams[h.stream_id as usize],
                    h.query_id,
                    h.start_frame,
                    h.end_frame,
                    h.similarity
                );
            }
            for r in &outcome.reports {
                let path = &streams[r.stream_id as usize];
                if let Some(err) = &r.error {
                    eprintln!("stream {path}: FAILED — {err}");
                } else if !r.health.is_clean() || r.faulted_records > 0 {
                    eprintln!(
                        "stream {path}: degraded — {} frame(s) dropped, {} byte(s) skipped, {} resync(s), {} record(s) fault-injected",
                        r.health.frames_dropped,
                        r.health.bytes_skipped,
                        r.health.resyncs,
                        r.faulted_records,
                    );
                }
            }
            let failed = outcome.failed();
            if failed > 0 {
                eprintln!("{failed} of {} stream(s) failed", streams.len());
                exit(1);
            }
        }
        Err(e) => fail(&e.message),
    }
}

fn cmd_eval_attacks(args: &[String]) {
    let mut opts = EvalAttacksOpts::default();
    let mut out: Option<String> = None;
    let mut i = 0;
    let split = |v: &str| -> Vec<String> {
        v.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect()
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => opts.seed = parse(take_value(args, &mut i, "--seed"), "--seed"),
            "--profile" => opts.profile = take_value(args, &mut i, "--profile").to_string(),
            "--attacks" => opts.attacks = Some(split(take_value(args, &mut i, "--attacks"))),
            "--detectors" => {
                opts.detectors = Some(split(take_value(args, &mut i, "--detectors")))
            }
            "--json" => opts.json = true,
            "--out" => out = Some(take_value(args, &mut i, "--out").to_string()),
            "--check" => {
                let path = take_value(args, &mut i, "--check");
                let floors = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
                opts.check = Some(floors);
            }
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    match eval_attacks(&opts) {
        Ok(outcome) => {
            if let Some(path) = out {
                std::fs::write(&path, outcome.report.to_json())
                    .unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
                eprintln!("wrote matrix report to {path}");
            }
            print!("{}", outcome.output);
            if !outcome.failures.is_empty() {
                eprintln!("floor check FAILED:");
                for f in &outcome.failures {
                    eprintln!("  {f}");
                }
                exit(1);
            } else if opts.check.is_some() {
                eprintln!("floor check passed");
            }
        }
        Err(e) => fail(&e.message),
    }
}

fn cmd_lint(args: &[String]) {
    let mut json = false;
    let mut root: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--root" => root = Some(take_value(args, &mut i, "--root").to_string()),
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    match lint(root.as_deref().map(std::path::Path::new), json) {
        Ok(outcome) => {
            print!("{}", outcome.output);
            if !outcome.clean {
                exit(1);
            }
        }
        Err(e) => fail(&e.message),
    }
}
