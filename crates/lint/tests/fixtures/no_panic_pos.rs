// Fixture: hot-path panics. Expected findings: no-panic-hot-path x4
// (unwrap, expect, panic!, index-clone), each naming the entry chain.
// vdsms-lint: entry
fn lookup(m: &Table, key: u32) -> Entry {
    let first = m.get(key).unwrap();
    let second = m.get(key + 1).expect("present");
    if first != second {
        panic!("table corrupted");
    }
    m.rows[0].clone()
}
