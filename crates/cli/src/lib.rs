//! # vdsms-cli — command-line tools for the copy-detection system
//!
//! One binary, four subcommands, mirroring a real deployment's workflow:
//!
//! ```text
//! vdsms generate --seed 7 --seconds 30 --out clip.vdsm      # synthetic test video
//! vdsms inspect clip.vdsm                                   # bitstream metadata
//! vdsms sketch --id 1 clip.vdsm [...] --out catalogue.vdsq  # offline query sketching
//! vdsms monitor --queries catalogue.vdsq stream.vdsm        # detect copies
//! vdsms lint [--json]                                       # static-analysis gate
//! ```
//!
//! The command implementations live here (library functions returning
//! `Result`) so they are unit-testable; `src/bin/vdsms.rs` is a thin
//! argument-parsing shell.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use vdsms_codec::bitio::ByteReader;
use vdsms_codec::{DcFrame, Encoder, EncoderConfig, IngestHealth, PartialDecoder, StreamHeader};
use vdsms_core::{
    load_queries, save_queries, AnyFleet, Detector, DetectorConfig, Query, QuerySet, StreamId,
};
use vdsms_features::{FeatureConfig, FeatureExtractor, FingerprintStream};
use vdsms_video::source::{ClipGenerator, MotifPool, SourceSpec};
use vdsms_video::Fps;
use vdsms_workload::{inject_faults, FaultSpec};

/// CLI errors: message plus a process exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
}

impl CliError {
    fn new(message: impl Into<String>) -> CliError {
        CliError { message: message.into() }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<vdsms_codec::CodecError> for CliError {
    fn from(e: vdsms_codec::CodecError) -> CliError {
        CliError::new(format!("codec error: {e}"))
    }
}

impl From<vdsms_core::PersistError> for CliError {
    fn from(e: vdsms_core::PersistError) -> CliError {
        CliError::new(format!("query file error: {e}"))
    }
}

impl From<vdsms_core::FleetError> for CliError {
    fn from(e: vdsms_core::FleetError) -> CliError {
        CliError::new(format!("fleet error: {e}"))
    }
}

/// Result alias for CLI operations.
pub type Result<T> = std::result::Result<T, CliError>;

/// Options for `vdsms generate`.
#[derive(Debug, Clone)]
pub struct GenerateOpts {
    /// Source seed.
    pub seed: u64,
    /// Duration in seconds.
    pub seconds: f64,
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Frames per second.
    pub fps: u32,
    /// Encoder GOP.
    pub gop: u32,
    /// Encoder quality.
    pub quality: u8,
    /// Optional motif pool `seed:count` for content that shares visual
    /// statistics with other generated clips.
    pub motifs: Option<(u64, u32)>,
}

impl Default for GenerateOpts {
    fn default() -> GenerateOpts {
        GenerateOpts {
            seed: 1,
            seconds: 30.0,
            width: 176,
            height: 120,
            fps: 10,
            gop: 5,
            quality: 80,
            motifs: None,
        }
    }
}

/// Generate a synthetic clip and encode it; returns the bitstream.
pub fn generate(opts: &GenerateOpts) -> Result<Vec<u8>> {
    if opts.seconds <= 0.0 {
        return Err(CliError::new("--seconds must be positive"));
    }
    if !(1..=100).contains(&opts.quality) {
        return Err(CliError::new("--quality must be in 1..=100"));
    }
    let spec = SourceSpec {
        width: opts.width,
        height: opts.height,
        fps: Fps::integer(opts.fps),
        seed: opts.seed,
        min_scene_s: 2.0,
        max_scene_s: 6.0,
        motifs: opts.motifs.map(|(seed, count)| MotifPool { seed, count }),
    };
    let clip = ClipGenerator::new(spec).clip(opts.seconds);
    Ok(Encoder::encode_clip(&clip, EncoderConfig { gop: opts.gop, quality: opts.quality, motion_search: true }))
}

/// Inspect a bitstream: header fields plus key-frame statistics. Returns
/// a printable report.
pub fn inspect(bytes: &[u8]) -> Result<String> {
    let mut decoder = PartialDecoder::new(bytes)?;
    let header: StreamHeader = *decoder.header();
    let mut key_frames = 0u64;
    let mut last_index = 0u64;
    let mut frame = DcFrame::empty();
    while decoder.next_dc_frame_into(&mut frame)? {
        key_frames += 1;
        last_index = frame.frame_index;
    }
    let total_frames = last_index + 1; // last key frame is within the last GOP
    let mut out = String::new();
    let _ = writeln!(out, "container:   VDSM v2");
    let _ = writeln!(out, "resolution:  {}x{}", header.width, header.height);
    let _ = writeln!(
        out,
        "frame rate:  {}/{} ({:.2} fps)",
        header.fps.num,
        header.fps.den,
        header.fps.as_f64()
    );
    let _ = writeln!(out, "gop:         {} (≈{:.2} key frames/s)", header.gop, header.fps.as_f64() / f64::from(header.gop));
    let _ = writeln!(out, "key frames:  {key_frames}");
    let _ = writeln!(out, "frames:      >= {total_frames}");
    let _ = writeln!(
        out,
        "duration:    ≈{:.1} s",
        header.fps.seconds_of(total_frames as usize)
    );
    let _ = writeln!(out, "size:        {} bytes", bytes.len());
    Ok(out)
}

/// Sketch one or more query bitstreams into a persistable query set.
/// `inputs` pairs each query id with its bitstream.
pub fn sketch(
    inputs: &[(u32, Vec<u8>)],
    detector: &DetectorConfig,
    features: &FeatureConfig,
) -> Result<Vec<u8>> {
    if inputs.is_empty() {
        return Err(CliError::new("no query bitstreams given"));
    }
    let family = Detector::family_for(detector);
    let extractor = FeatureExtractor::new(*features);
    let mut set = QuerySet::new();
    for (id, bytes) in inputs {
        if set.get(*id).is_some() {
            return Err(CliError::new(format!("duplicate query id {id}")));
        }
        let mut ingest = FingerprintStream::new(bytes, extractor.clone())?;
        let mut cells = Vec::new();
        while let Some((_, cell)) = ingest.next_fingerprint()? {
            cells.push(cell);
        }
        if cells.is_empty() {
            return Err(CliError::new(format!("query {id} has no key frames")));
        }
        set.insert(Query::from_cell_ids(*id, &family, &cells));
    }
    Ok(save_queries(&set))
}

/// One detection line of `monitor`'s report.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorHit {
    /// Which stream matched (index of the stream file in argument order).
    pub stream_id: StreamId,
    /// Matched query.
    pub query_id: u32,
    /// First stream frame of the candidate.
    pub start_frame: u64,
    /// Last stream frame (detection position).
    pub end_frame: u64,
    /// Estimated similarity.
    pub similarity: f64,
}

/// Monitor one stream bitstream against a persisted query set.
pub fn monitor(
    stream: &[u8],
    query_file: &[u8],
    detector: &DetectorConfig,
    features: &FeatureConfig,
) -> Result<Vec<MonitorHit>> {
    monitor_streams(&[stream], query_file, detector, features)
}

/// Robustness options for [`monitor_streams_opts`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorOpts {
    /// Open every stream in corruption-recovery mode: mid-record damage
    /// is resynchronized past and accounted per stream instead of ending
    /// that stream with an error.
    pub recover: bool,
    /// Mutate each stream with seeded faults before monitoring (the
    /// `--inject-faults` harness). Stream `i` is damaged under seed
    /// `spec.seed` xor-mixed with `i`, so concurrent streams are not
    /// damaged at identical positions.
    pub faults: Option<FaultSpec>,
}

/// Per-stream outcome of a resilient monitoring run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Index of the stream file in argument order.
    pub stream_id: StreamId,
    /// Why this stream stopped being monitored, if it failed (unopenable
    /// file, or mid-stream corruption in strict mode). `None` means the
    /// stream was monitored to its end.
    pub error: Option<String>,
    /// Decoder degradation counters for this stream (all zero in strict
    /// mode and on clean streams).
    pub health: IngestHealth,
    /// Records damaged by `--inject-faults`, when fault injection ran.
    pub faulted_records: u64,
}

impl StreamReport {
    /// Whether this stream was monitored end-to-end without error.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// What [`monitor_streams_opts`] produced: every detection from every
/// stream that stayed monitorable, plus one report per input stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorOutcome {
    /// All detections, sorted by (stream, end frame, query, start frame).
    pub hits: Vec<MonitorHit>,
    /// One entry per input stream, in argument order.
    pub reports: Vec<StreamReport>,
}

impl MonitorOutcome {
    /// Number of streams that failed (reported an error).
    pub fn failed(&self) -> usize {
        self.reports.iter().filter(|r| !r.ok()).count()
    }
}

/// Monitor any number of concurrent stream bitstreams against a persisted
/// query set. Stream `i` of `streams` reports as `stream_id == i`.
///
/// The fleet is serial or sharded according to `detector.shards` (the
/// CLI's `--shards` flag); the detections are identical either way. Key
/// frames are interleaved round-robin across streams, emulating live
/// concurrent broadcasts, and fed in batches of one key frame per stream.
///
/// Errs only when no stream could be monitored at all (or the query file
/// itself is bad); partial failures are tolerated — see
/// [`monitor_streams_opts`] for the per-stream reports.
pub fn monitor_streams(
    streams: &[&[u8]],
    query_file: &[u8],
    detector: &DetectorConfig,
    features: &FeatureConfig,
) -> Result<Vec<MonitorHit>> {
    let outcome = monitor_streams_opts(streams, query_file, detector, features, &MonitorOpts::default())?;
    Ok(outcome.hits)
}

/// [`monitor_streams`] with per-stream fault tolerance: a stream that
/// fails to open (bad header) or errors mid-stream is reported and
/// dropped from the rotation while every other stream keeps being
/// monitored. With [`MonitorOpts::recover`], mid-stream corruption is
/// skipped instead of failing the stream at all.
///
/// Only whole-run problems are `Err`: a bad query file, no streams, or
/// every single stream unopenable.
pub fn monitor_streams_opts(
    streams: &[&[u8]],
    query_file: &[u8],
    detector: &DetectorConfig,
    features: &FeatureConfig,
    opts: &MonitorOpts,
) -> Result<MonitorOutcome> {
    let queries = load_queries(query_file, detector.k)?;
    if queries.is_empty() {
        return Err(CliError::new("query file contains no queries"));
    }
    if streams.is_empty() {
        return Err(CliError::new("no stream bitstreams given"));
    }
    let extractor = FeatureExtractor::new(*features);
    let mut fleet = AnyFleet::new(*detector);
    for query in queries.iter() {
        fleet.subscribe(query.clone())?;
    }

    // Fault injection (test harness): damage each parseable stream under
    // a stream-specific seed. Unparseable inputs pass through untouched —
    // they fail at open below and are reported like any other bad file.
    let injected: Vec<Option<vdsms_workload::FaultReport>> = streams
        .iter()
        .enumerate()
        .map(|(i, bytes)| {
            let spec = opts.faults.as_ref()?;
            let mut r = ByteReader::new(bytes);
            StreamHeader::read(&mut r).ok()?;
            let per_stream =
                spec.with_seed(spec.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            Some(inject_faults(bytes, &per_stream))
        })
        .collect();

    let mut reports: Vec<StreamReport> = (0..streams.len())
        .map(|i| StreamReport {
            stream_id: i as StreamId,
            error: None,
            health: IngestHealth::default(),
            faulted_records: injected[i].as_ref().map_or(0, |r| r.records_faulted),
        })
        .collect();

    // One fused ingestion front-end per stream: key frames are decoded
    // and fingerprinted lazily, straight from the bitstream bytes, as
    // each round-robin round pulls them — no per-stream fingerprint
    // buffering, no per-keyframe allocation. A stream that fails to open
    // leaves a `None` slot and an error in its report.
    let mut ingests: Vec<Option<FingerprintStream<'_>>> = Vec::with_capacity(streams.len());
    for (i, bytes) in streams.iter().enumerate() {
        let effective: &[u8] = injected[i].as_ref().map_or(bytes, |r| &r.bytes);
        match FingerprintStream::new_with_recovery(effective, extractor.clone(), opts.recover) {
            Ok(ingest) => {
                fleet.add_stream(i as StreamId)?;
                ingests.push(Some(ingest));
            }
            Err(e) => {
                reports[i].error = Some(format!("cannot open stream: {e}"));
                ingests.push(None);
            }
        }
    }
    if ingests.iter().all(Option::is_none) {
        return Err(CliError::new(format!(
            "none of the {} stream(s) could be opened (first error: {})",
            streams.len(),
            reports[0].error.as_deref().unwrap_or("unknown")
        )));
    }

    let mut hits = Vec::new();
    let push = |dets: Vec<vdsms_core::StreamDetection>, hits: &mut Vec<MonitorHit>| {
        for d in dets {
            hits.push(MonitorHit {
                stream_id: d.stream_id,
                query_id: d.detection.query_id,
                start_frame: d.detection.start_frame,
                end_frame: d.detection.end_frame,
                similarity: d.detection.similarity,
            });
        }
    };
    // Interleave the key frames round-robin (one per stream per batch),
    // emulating live concurrent broadcasts; streams that end early simply
    // drop out of later batches, exactly as in the buffered formulation.
    // A stream that errors mid-pull is reported and dropped from the
    // rotation; the others are unaffected.
    let mut batch = Vec::with_capacity(streams.len());
    loop {
        batch.clear();
        for (i, slot) in ingests.iter_mut().enumerate() {
            let Some(ingest) = slot else { continue };
            match ingest.next_fingerprint() {
                Ok(Some((frame_index, cell))) => {
                    batch.push((i as StreamId, frame_index, cell));
                }
                Ok(None) => {}
                Err(e) => {
                    reports[i].error = Some(format!("stream failed mid-monitoring: {e}"));
                    reports[i].health = ingest.health();
                    *slot = None;
                }
            }
        }
        if batch.is_empty() {
            break;
        }
        push(fleet.push_batch(&batch)?, &mut hits);
    }
    push(fleet.finish_all()?, &mut hits);
    for (i, slot) in ingests.iter().enumerate() {
        if let Some(ingest) = slot {
            reports[i].health = ingest.health();
        }
    }
    hits.sort_by(|a, b| {
        (a.stream_id, a.end_frame, a.query_id, a.start_frame).cmp(&(
            b.stream_id,
            b.end_frame,
            b.query_id,
            b.start_frame,
        ))
    });
    Ok(MonitorOutcome { hits, reports })
}

/// Options for `vdsms eval-attacks`.
#[derive(Debug, Clone)]
pub struct EvalAttacksOpts {
    /// Master seed of the evaluation (workload and attack randomness).
    pub seed: u64,
    /// Named profile: `smoke`, `quick`, or `default`.
    pub profile: String,
    /// Attack list override (`kind` or `kind:strength` names); `None`
    /// keeps the profile's grid.
    pub attacks: Option<Vec<String>>,
    /// Detector variant name override; `None` keeps the profile's set.
    pub detectors: Option<Vec<String>>,
    /// Emit the machine-readable JSON report instead of the text table.
    pub json: bool,
    /// Contents of a committed floor file (`BENCH_robustness.json`) to
    /// check the measured matrix against.
    pub check: Option<String>,
}

impl Default for EvalAttacksOpts {
    fn default() -> EvalAttacksOpts {
        EvalAttacksOpts {
            seed: 1,
            profile: "smoke".to_string(),
            attacks: None,
            detectors: None,
            json: false,
            check: None,
        }
    }
}

/// Result of `vdsms eval-attacks`: the report, its rendering, and any
/// floor violations (non-empty drives exit code 1).
#[derive(Debug)]
pub struct EvalAttacksOutcome {
    /// The full measured matrix.
    pub report: vdsms_workload::AttackMatrixReport,
    /// Rendered report (text table or JSON per [`EvalAttacksOpts::json`]).
    pub output: String,
    /// Floor-check violations (empty when no `--check` file was given or
    /// every cell held its floor).
    pub failures: Vec<String>,
}

/// Run the seeded attack × detector robustness matrix (`vdsms
/// eval-attacks`): compose one attacked stream per attack spec, sweep the
/// selected detector variants over each, and score against the remapped
/// ground truth. Deterministic per `(seed, profile, overrides)`.
pub fn eval_attacks(opts: &EvalAttacksOpts) -> Result<EvalAttacksOutcome> {
    use vdsms_workload::{check_floors, evaluate_matrix, AttackSpec, MatrixConfig};

    let mut config = MatrixConfig::profile(&opts.profile, opts.seed).ok_or_else(|| {
        CliError::new(format!(
            "unknown profile '{}' (smoke|quick|default)",
            opts.profile
        ))
    })?;
    if let Some(names) = &opts.attacks {
        let mut attacks = Vec::with_capacity(names.len());
        for name in names {
            attacks.push(AttackSpec::parse(name, opts.seed).map_err(CliError::new)?);
        }
        if attacks.is_empty() {
            return Err(CliError::new("--attacks list is empty"));
        }
        config.attacks = attacks;
    }
    if let Some(names) = &opts.detectors {
        let mut detectors = Vec::with_capacity(names.len());
        for name in names {
            detectors.push(vdsms_core::DetectorVariant::parse(name).ok_or_else(|| {
                CliError::new(format!(
                    "unknown detector '{name}' (seq|geo|seq-noindex|geo-noindex)"
                ))
            })?);
        }
        if detectors.is_empty() {
            return Err(CliError::new("--detectors list is empty"));
        }
        config.detectors = detectors;
    }

    let report = evaluate_matrix(&config);
    let output = if opts.json { report.to_json() } else { render_matrix(&report) };
    let failures = match &opts.check {
        Some(floors) => check_floors(&report, floors).map_err(CliError::new)?,
        None => Vec::new(),
    };
    Ok(EvalAttacksOutcome { report, output, failures })
}

/// The human-readable matrix table.
fn render_matrix(report: &vdsms_workload::AttackMatrixReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "attack matrix — profile {}, seed {}, w {:.1}s, δ {:.2}, K {}",
        report.profile, report.seed, report.w_seconds, report.delta, report.k
    );
    let _ = writeln!(
        out,
        "{:<16} {:<8} {:<12} {:>9} {:>9} {:>7}",
        "attack", "strength", "detector", "precision", "recall", "found"
    );
    for c in &report.cells {
        let _ = writeln!(
            out,
            "{:<16} {:<8} {:<12} {:>9.3} {:>9.3} {:>4}/{}",
            c.attack, c.strength, c.detector, c.precision, c.recall, c.found, c.planted
        );
    }
    out
}

/// Result of `vdsms lint`: the rendered report and whether the gate
/// passed (drives the process exit code).
#[derive(Debug)]
pub struct LintOutcome {
    /// Human-readable or JSON report, ready to print.
    pub output: String,
    /// True when no violations were found.
    pub clean: bool,
}

/// Run the workspace static-analysis gate (`vdsms-lint` as a subcommand).
///
/// `root` defaults to the nearest ancestor of the current directory that
/// contains `lint.toml`; `json` selects the machine-readable report.
pub fn lint(root: Option<&std::path::Path>, json: bool) -> Result<LintOutcome> {
    let root = match root {
        Some(r) => r.to_path_buf(),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| CliError::new(format!("cannot read current directory: {e}")))?;
            vdsms_lint::find_workspace_root(&cwd).ok_or_else(|| {
                CliError::new(format!("no lint.toml found between {} and /", cwd.display()))
            })?
        }
    };
    let report = vdsms_lint::lint_workspace_with_default_config(&root)
        .map_err(|e| CliError::new(format!("lint: {e}")))?;
    Ok(LintOutcome {
        output: if json { report.to_json() } else { report.render() },
        clean: report.is_clean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(seed: u64, seconds: f64) -> GenerateOpts {
        GenerateOpts { seed, seconds, ..Default::default() }
    }

    fn detector() -> DetectorConfig {
        DetectorConfig { window_keyframes: 6, ..Default::default() }
    }

    #[test]
    fn generate_inspect_round_trip() {
        let bytes = generate(&opts(3, 10.0)).unwrap();
        let report = inspect(&bytes).unwrap();
        assert!(report.contains("176x120"), "{report}");
        assert!(report.contains("key frames:  20"), "{report}");
        assert!(report.contains("10/1"), "{report}");
    }

    #[test]
    fn generate_rejects_bad_options() {
        assert!(generate(&GenerateOpts { seconds: 0.0, ..Default::default() }).is_err());
        assert!(generate(&GenerateOpts { quality: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn sketch_then_monitor_finds_planted_query() {
        let fc = FeatureConfig::default();
        let det = detector();
        // Queries 1 and 2.
        let q1 = generate(&opts(100, 12.0)).unwrap();
        let q2 = generate(&opts(200, 12.0)).unwrap();
        let catalogue = sketch(&[(1, q1), (2, q2)], &det, &fc).unwrap();

        // A stream containing query 2's content (same seed ⇒ same frames).
        let background = generate(&opts(900, 20.0)).unwrap();
        let _ = background; // stream is built from pixel frames below
        let spec = SourceSpec {
            width: 176,
            height: 120,
            fps: Fps::integer(10),
            seed: 900,
            min_scene_s: 2.0,
            max_scene_s: 6.0,
            motifs: None,
        };
        let mut stream_clip = ClipGenerator::new(spec.clone()).clip(20.0);
        stream_clip.append(ClipGenerator::new(SourceSpec { seed: 200, ..spec }).clip(12.0));
        let stream = Encoder::encode_clip(&stream_clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });

        let hits = monitor(&stream, &catalogue, &det, &fc).unwrap();
        assert!(hits.iter().any(|h| h.query_id == 2), "{hits:?}");
        assert!(hits.iter().all(|h| h.query_id != 1), "query 1 not in the stream");
    }

    #[test]
    fn sketch_rejects_duplicates_and_empty() {
        let fc = FeatureConfig::default();
        let det = detector();
        let q = generate(&opts(1, 8.0)).unwrap();
        assert!(sketch(&[], &det, &fc).is_err());
        assert!(sketch(&[(1, q.clone()), (1, q)], &det, &fc).is_err());
    }

    #[test]
    fn sharded_monitor_matches_serial() {
        let fc = FeatureConfig::default();
        let det = detector();
        let q = generate(&opts(300, 10.0)).unwrap();
        let catalogue = sketch(&[(1, q)], &det, &fc).unwrap();

        let spec = SourceSpec {
            width: 176,
            height: 120,
            fps: Fps::integer(10),
            seed: 0, // overridden per stream
            min_scene_s: 2.0,
            max_scene_s: 6.0,
            motifs: None,
        };
        // Three concurrent streams; only stream 1 carries the query.
        let make = |seed: u64, plant: bool| {
            let mut clip =
                ClipGenerator::new(SourceSpec { seed, ..spec.clone() }).clip(15.0);
            if plant {
                clip.append(
                    ClipGenerator::new(SourceSpec { seed: 300, ..spec.clone() }).clip(10.0),
                );
            }
            Encoder::encode_clip(
                &clip,
                EncoderConfig { gop: 5, quality: 80, motion_search: true },
            )
        };
        let streams = [make(901, false), make(902, true), make(903, false)];
        let slices: Vec<&[u8]> = streams.iter().map(Vec::as_slice).collect();

        let serial = monitor_streams(&slices, &catalogue, &det, &fc).unwrap();
        assert!(serial.iter().any(|h| h.stream_id == 1 && h.query_id == 1), "{serial:?}");
        for shards in [2, 4] {
            let sharded = monitor_streams(
                &slices,
                &catalogue,
                &DetectorConfig { shards, ..det },
                &fc,
            )
            .unwrap();
            assert_eq!(sharded, serial, "shards={shards}");
        }
    }

    #[test]
    fn monitor_skips_failed_streams_and_keeps_monitoring_the_rest() {
        let fc = FeatureConfig::default();
        let det = detector();
        let q = generate(&opts(300, 10.0)).unwrap();
        let catalogue = sketch(&[(1, q)], &det, &fc).unwrap();

        let spec = SourceSpec {
            width: 176,
            height: 120,
            fps: Fps::integer(10),
            seed: 0,
            min_scene_s: 2.0,
            max_scene_s: 6.0,
            motifs: None,
        };
        let mut clip = ClipGenerator::new(SourceSpec { seed: 910, ..spec.clone() }).clip(15.0);
        clip.append(ClipGenerator::new(SourceSpec { seed: 300, ..spec }).clip(10.0));
        let good =
            Encoder::encode_clip(&clip, EncoderConfig { gop: 5, quality: 80, motion_search: true });
        let truncated = &good[..good.len() - good.len() / 4];

        // Stream 0 opens fine but dies mid-monitoring (strict mode),
        // stream 1 is unopenable, stream 2 carries the planted query.
        let streams: [&[u8]; 3] = [truncated, b"not a stream", &good];
        let out = monitor_streams_opts(&streams, &catalogue, &det, &fc, &MonitorOpts::default())
            .unwrap();
        assert_eq!(out.failed(), 2, "{:?}", out.reports);
        assert!(out.reports[0].error.as_deref().unwrap().contains("mid-monitoring"));
        assert!(out.reports[1].error.as_deref().unwrap().contains("cannot open"));
        assert!(out.reports[2].ok());
        assert!(
            out.hits.iter().any(|h| h.stream_id == 2 && h.query_id == 1),
            "surviving stream must still detect: {:?}",
            out.hits
        );

        // In recovery mode the truncated stream no longer fails — it is
        // merely degraded — and it still detects the query it carries
        // (the damage is past the planted segment's windows or not).
        let recovered = monitor_streams_opts(
            &streams,
            &catalogue,
            &det,
            &fc,
            &MonitorOpts { recover: true, faults: None },
        )
        .unwrap();
        assert_eq!(recovered.failed(), 1, "{:?}", recovered.reports);
        assert!(recovered.reports[0].ok());
        assert!(!recovered.reports[0].health.is_clean());
    }

    #[test]
    fn monitor_fault_injection_is_deterministic_and_recoverable() {
        let fc = FeatureConfig::default();
        let det = detector();
        let q = generate(&opts(300, 10.0)).unwrap();
        let catalogue = sketch(&[(1, q)], &det, &fc).unwrap();
        let stream = generate(&opts(920, 20.0)).unwrap();
        let streams: [&[u8]; 1] = [&stream];

        let o = MonitorOpts {
            recover: true,
            faults: Some(vdsms_workload::FaultSpec {
                seed: 9,
                flip_rate: 0.2,
                ..Default::default()
            }),
        };
        let a = monitor_streams_opts(&streams, &catalogue, &det, &fc, &o).unwrap();
        let b = monitor_streams_opts(&streams, &catalogue, &det, &fc, &o).unwrap();
        assert_eq!(a, b, "same fault seed must give an identical run");
        assert!(a.reports[0].faulted_records >= 1, "{:?}", a.reports);
        assert!(a.reports[0].ok(), "recovery keeps a flipped stream monitorable");
    }

    #[test]
    fn eval_attacks_rejects_bad_selections() {
        // The matrix itself is covered by vdsms-workload's tests; here we
        // verify the CLI-level validation (cheap, no evaluation runs).
        let bad_profile =
            EvalAttacksOpts { profile: "bogus".to_string(), ..Default::default() };
        assert!(eval_attacks(&bad_profile).unwrap_err().message.contains("unknown profile"));
        let bad_attack = EvalAttacksOpts {
            attacks: Some(vec!["not-an-attack".to_string()]),
            ..Default::default()
        };
        assert!(eval_attacks(&bad_attack).unwrap_err().message.contains("unknown attack"));
        let bad_detector = EvalAttacksOpts {
            detectors: Some(vec!["seq".to_string(), "bogus".to_string()]),
            ..Default::default()
        };
        assert!(eval_attacks(&bad_detector).unwrap_err().message.contains("unknown detector"));
        let empty = EvalAttacksOpts { attacks: Some(Vec::new()), ..Default::default() };
        assert!(eval_attacks(&empty).unwrap_err().message.contains("empty"));
    }

    #[test]
    fn monitor_rejects_garbage_inputs() {
        let fc = FeatureConfig::default();
        let det = detector();
        let q = generate(&opts(1, 8.0)).unwrap();
        let catalogue = sketch(&[(1, q)], &det, &fc).unwrap();
        assert!(monitor(b"not a stream", &catalogue, &det, &fc).is_err());
        let stream = generate(&opts(2, 8.0)).unwrap();
        assert!(monitor(&stream, b"not queries", &det, &fc).is_err());
    }
}
