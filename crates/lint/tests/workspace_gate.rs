//! The gate itself, exercised both ways: the real workspace must be
//! violation-free under `lint.toml` (what `ci.sh` enforces), and seeded
//! violations — one per rule — must turn the report non-clean with a
//! precise `file:line:col` (so the CI step demonstrably fails, at the
//! right place, when someone reintroduces a forbidden pattern).

use std::path::{Path, PathBuf};
use vdsms_lint::config::KNOWN_KEYS;
use vdsms_lint::{find_workspace_root, lint_workspace_with_default_config, Report};

fn workspace_root() -> PathBuf {
    let start = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    find_workspace_root(&start).expect("crates/lint lives inside the workspace")
}

#[test]
fn real_workspace_is_violation_free() {
    let report = lint_workspace_with_default_config(&workspace_root()).expect("lint run");
    assert!(
        report.is_clean(),
        "the workspace must pass its own gate:\n{}",
        report.render()
    );
    // Sanity: the run actually covered the workspace, it didn't silently
    // scan an empty directory.
    assert!(report.files_scanned > 50, "only {} files scanned", report.files_scanned);
    assert!(
        report.suppressed >= 40,
        "the justified hot-path allows (scratch warm-up, detection events, \
         per-batch staging) should be counted, got {}",
        report.suppressed
    );
}

/// Build a minimal fake workspace in `dir`: a `lint.toml` enabling exactly
/// `rules` (everything else off), a root package, and one source file with
/// the violations seeded in.
fn seed_workspace(dir: &Path, rules: &[&str], source: &str) {
    std::fs::create_dir_all(dir.join("src")).unwrap();
    let mut toml = String::from("[default]\n");
    for key in KNOWN_KEYS {
        if *key == "unsafe-allowed" {
            continue;
        }
        toml.push_str(&format!("{key} = {}\n", rules.contains(key)));
    }
    std::fs::write(dir.join("lint.toml"), toml).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"seeded\"\n").unwrap();
    std::fs::write(dir.join("src/lib.rs"), source).unwrap();
}

/// Lint a seeded one-file workspace and clean up after.
fn lint_seeded(tag: &str, rules: &[&str], source: &str) -> Report {
    let dir = std::env::temp_dir().join(format!("vdsms-lint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    seed_workspace(&dir, rules, source);
    let report = lint_workspace_with_default_config(&dir).expect("lint run");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

#[test]
fn seeded_panic_violation_fails_the_gate() {
    // A clean file passes…
    let clean = lint_seeded(
        "panic-clean",
        &["no-panic-hot-path"],
        "// vdsms-lint: entry\npub fn ok(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    assert!(clean.is_clean(), "{}", clean.render());

    // …and reintroducing a hot-path unwrap turns the report non-clean,
    // which is exactly the condition ci.sh's exit code keys off.
    let dirty = lint_seeded(
        "panic-dirty",
        &["no-panic-hot-path"],
        "// vdsms-lint: entry\npub fn bad(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    assert!(!dirty.is_clean());
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-panic-hot-path");
    assert_eq!(d.file, "src/lib.rs", "workspace-relative path");
    assert_eq!((d.line, d.col), (3, 7), "points at the `unwrap` call");
    assert!(d.message.contains("`bad`"), "names the hot entry: {}", d.message);

    // JSON output is machine-checkable: it names the rule and the file.
    let json = dirty.to_json();
    assert!(json.contains("\"no-panic-hot-path\""), "{json}");
    assert!(json.contains("src/lib.rs"), "{json}");
}

#[test]
fn seeded_alloc_violation_names_the_witness_chain() {
    let dirty = lint_seeded(
        "alloc",
        &["no-alloc-hot-path"],
        "// vdsms-lint: entry\n\
         pub fn ingest(state: &mut Vec<u64>, id: u64) {\n\
         \x20   store(state, id);\n\
         }\n\
         \n\
         fn store(state: &mut Vec<u64>, id: u64) {\n\
         \x20   state.push(id);\n\
         }\n\
         \n\
         fn cold(state: &mut Vec<u64>, id: u64) {\n\
         \x20   state.push(id);\n\
         }\n",
    );
    // `cold` has the same push but no path from an entry — exactly one
    // finding, at the reachable site.
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-alloc-hot-path");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 7, 11));
    assert!(
        d.message.contains("ingest → store"),
        "message prints the interprocedural chain: {}",
        d.message
    );
}

#[test]
fn seeded_lock_cycle_reports_both_witness_chains() {
    let dirty = lint_seeded(
        "lock-order",
        &["lock-order"],
        "pub fn publish(s: &Shared) {\n\
         \x20   let sink = s.sink.lock();\n\
         \x20   let stats = s.stats.lock();\n\
         \x20   sink.merge_into(stats);\n\
         }\n\
         \n\
         pub fn snapshot(s: &Shared) {\n\
         \x20   let stats = s.stats.lock();\n\
         \x20   let sink = s.sink.lock();\n\
         \x20   stats.copy_from(sink);\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "one finding per cycle: {:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "lock-order");
    assert_eq!(d.file, "src/lib.rs");
    assert!(d.message.contains("`publish`"), "first witness: {}", d.message);
    assert!(d.message.contains("`snapshot`"), "counter-witness: {}", d.message);
    assert!(
        d.message.contains("src/lib.rs:"),
        "counter-witness carries file:line:col: {}",
        d.message
    );
}

#[test]
fn seeded_unchecked_arith_violation_points_at_the_operator() {
    let dirty = lint_seeded(
        "arith",
        &["no-unchecked-arith"],
        "pub fn decode(r: &mut Reader) -> u32 {\n\
         \x20   let len = r.get_u8();\n\
         \x20   len + 1\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "no-unchecked-arith");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 3, 9));
    assert!(d.message.contains("`decode`"), "names the function: {}", d.message);
}

#[test]
fn seeded_float_ordering_violation_fails_the_gate() {
    let dirty = lint_seeded(
        "float",
        &["float-determinism"],
        "pub fn better(a: f64, b: f64) -> bool {\n\
         \x20   a.partial_cmp(&b).is_some()\n\
         }\n",
    );
    assert_eq!(dirty.diagnostics.len(), 1, "{:#?}", dirty.diagnostics);
    let d = &dirty.diagnostics[0];
    assert_eq!(d.rule, "float-determinism");
    assert_eq!((d.file.as_str(), d.line, d.col), ("src/lib.rs", 2, 7));
}

/// One violation of each flow rule, in one file, with a lock cycle across
/// two functions — the golden input for the JSON snapshot below.
const GOLDEN_SRC: &str = "// vdsms-lint: entry\n\
pub fn ingest(feed: &mut Feed, out: &mut Vec<u64>) {\n\
\x20   let raw = feed.get_u8();\n\
\x20   let scaled = raw * 2;\n\
\x20   out.push(u64::from(scaled));\n\
\x20   let sink = feed.sink.lock();\n\
\x20   let stats = feed.stats.lock();\n\
\x20   sink.record(stats.count().unwrap());\n\
}\n\
\n\
pub fn drain(feed: &mut Feed) {\n\
\x20   let stats = feed.stats.lock();\n\
\x20   let sink = feed.sink.lock();\n\
\x20   let _ = sink.score().partial_cmp(&stats.score());\n\
}\n";

const GOLDEN_RULES: [&str; 5] = [
    "no-panic-hot-path",
    "no-alloc-hot-path",
    "lock-order",
    "no-unchecked-arith",
    "float-determinism",
];

/// Satellite guarantee for CI consumers: `--json` output is byte-stable.
/// The snapshot lives in `tests/golden/seeded_report.json`; regenerate it
/// with `BLESS=1 cargo test -p vdsms-lint json_report` after an
/// intentional format change.
#[test]
fn json_report_matches_the_golden_snapshot_byte_for_byte() {
    let first = lint_seeded("golden-a", &GOLDEN_RULES, GOLDEN_SRC);
    let second = lint_seeded("golden-b", &GOLDEN_RULES, GOLDEN_SRC);
    assert_eq!(first.diagnostics.len(), 5, "one finding per rule:\n{}", first.render());
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "two runs over the same input must serialize identically"
    );

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seeded_report.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&golden_path, first.to_json()).expect("write golden snapshot");
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("golden snapshot missing — run with BLESS=1 to create it");
    assert_eq!(
        first.to_json(),
        golden,
        "JSON output drifted from the golden snapshot; if intentional, \
         regenerate with BLESS=1"
    );
}
