//! Sharded multi-stream monitoring: the paper's Table II setting (one
//! node monitoring ~1000 queries over live streams in real time) scaled
//! across cores.
//!
//! A [`ParallelFleet`] runs `N` worker threads. Streams are hash-sharded
//! onto workers, so each stream's key frames are processed by exactly one
//! thread, in order — detection per stream is bit-identical to the serial
//! [`Fleet`]. The query catalogue and HQ index are immutable
//! [`Arc`]-shared snapshots (see [`crate::fleet`]); a subscription change
//! publishes a new snapshot to every shard over its command channel and
//! waits for all shards to acknowledge — a **quiesce barrier**. Because
//! each shard applies commands in FIFO order and the barrier completes
//! only after every shard has drained everything sent before it,
//! query-set changes are linearizable with respect to batches: every key
//! frame pushed before `subscribe` returns is evaluated against the old
//! catalogue, every one pushed after against the new one, on every shard.
//!
//! Two ingestion modes:
//! - [`ParallelFleet::push_batch`] — synchronous: returns the batch's
//!   detections, shards working concurrently within the call.
//! - [`ParallelFleet::push_batch_async`] — pipelined: returns
//!   immediately; detections accumulate in a sink drained by
//!   [`ParallelFleet::take_detections`] after a [`ParallelFleet::quiesce`]
//!   (or any other barrier-forming call). This is the throughput mode the
//!   `fleet_parallel` benchmark measures.

use crate::config::DetectorConfig;
use crate::engine::Detector;
use crate::error::FleetError;
use crate::fleet::{CatalogueSnapshot, Fleet, StreamDetection, StreamId};
use crate::hq::HqIndex;
use crate::query::{Query, QueryId, QuerySet};
use crate::stats::Stats;
use crate::sync::{channel, sync_channel, Receiver, SendError, Sender, SyncSender};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Commands processed by each shard worker, in FIFO order.
enum Cmd {
    /// Start monitoring a stream (the coordinator has already validated
    /// uniqueness).
    AddStream(StreamId),
    /// Stop monitoring a stream; reply with its final stats.
    RemoveStream(StreamId, SyncSender<Option<Stats>>),
    /// Install a new catalogue snapshot on every detector of this shard,
    /// then acknowledge (the quiesce barrier).
    Install(Arc<QuerySet>, Option<Arc<HqIndex>>, SyncSender<()>),
    /// Process the shard's slice of a batch and reply with detections.
    BatchSync(Vec<(StreamId, u64, u64)>, SyncSender<Vec<StreamDetection>>),
    /// Process the shard's slice of a batch; detections go to the sink.
    BatchAsync(Vec<(StreamId, u64, u64)>),
    /// Flush every stream's partial window and reply with detections.
    FinishAll(SyncSender<Vec<StreamDetection>>),
    /// Acknowledge once everything queued before this command is done.
    Quiesce(SyncSender<()>),
    /// Test hook: panic inside the worker, exercising the supervision
    /// path ([`ParallelFleet::inject_shard_panic`]).
    Crash,
}

/// Per-shard state owned by the worker thread. Stream maps are
/// `BTreeMap`s so whole-shard walks (`FinishAll`, stats publication) run
/// in stream-id order, independent of insertion history.
struct ShardState {
    cfg: DetectorConfig,
    streams: BTreeMap<StreamId, Detector>,
    queries: Arc<QuerySet>,
    index: Option<Arc<HqIndex>>,
    /// Detections produced by `BatchAsync`, drained by the coordinator.
    sink: Arc<Mutex<Vec<StreamDetection>>>,
    /// Published per-stream stats, readable by the coordinator without a
    /// command round-trip.
    stats: Arc<RwLock<BTreeMap<StreamId, Stats>>>,
}

impl ShardState {
    fn run(mut self, rx: Receiver<Cmd>) {
        while let Ok(cmd) = rx.recv() {
            match cmd {
                Cmd::AddStream(stream_id) => {
                    let det = Detector::with_shared(
                        self.cfg,
                        Arc::clone(&self.queries),
                        self.index.clone(),
                    );
                    self.stats.write().insert(stream_id, *det.stats());
                    self.streams.insert(stream_id, det);
                }
                Cmd::RemoveStream(stream_id, reply) => {
                    let stats = self.streams.remove(&stream_id).map(|d| *d.stats());
                    self.stats.write().remove(&stream_id);
                    if reply.send(stats).is_err() {
                        return; // controller dropped the reply: fleet is shutting down
                    }
                }
                Cmd::Install(queries, index, ack) => {
                    for det in self.streams.values_mut() {
                        det.install_catalogue(Arc::clone(&queries), index.clone());
                    }
                    self.queries = queries;
                    self.index = index;
                    if ack.send(()).is_err() {
                        return;
                    }
                }
                Cmd::BatchSync(items, reply) => {
                    let dets = self.process(&items);
                    if reply.send(dets).is_err() {
                        return;
                    }
                }
                Cmd::BatchAsync(items) => {
                    let dets = self.process(&items);
                    if !dets.is_empty() {
                        self.sink.lock().extend(dets);
                    }
                }
                Cmd::FinishAll(reply) => {
                    let mut out = Vec::new();
                    for (&stream_id, det) in &mut self.streams {
                        out.extend(
                            det.finish()
                                .into_iter()
                                .map(|detection| StreamDetection { stream_id, detection }),
                        );
                    }
                    self.publish_stats();
                    if reply.send(out).is_err() {
                        return;
                    }
                }
                Cmd::Quiesce(ack) => {
                    if ack.send(()).is_err() {
                        return;
                    }
                }
                Cmd::Crash => {
                    // vdsms-lint: allow(no-panic-hot-path) reason="deliberate crash point: Cmd::Crash exists so shard-supervision tests can exercise panic recovery"
                    panic!("injected shard crash");
                }
            }
        }
    }

    // vdsms-lint: entry
    fn process(&mut self, items: &[(StreamId, u64, u64)]) -> Vec<StreamDetection> {
        let mut out = Vec::new();
        for &(stream_id, frame_index, cell_id) in items {
            // The coordinator validates stream ids before dispatch
            // (`partition_batch`), so an unknown id here is a routing bug;
            // skip the frame rather than kill the worker thread.
            let Some(det) = self.streams.get_mut(&stream_id) else {
                debug_assert!(false, "stream {stream_id} not routed to this shard");
                continue;
            };
            // vdsms-lint: allow(no-alloc-hot-path) reason="detection events only; extending from an empty iterator does not allocate"
            out.extend(
                det.push_keyframe(frame_index, cell_id)
                    .into_iter()
                    .map(|detection| StreamDetection { stream_id, detection }),
            );
        }
        self.publish_stats();
        out
    }

    fn publish_stats(&self) {
        let mut slot = self.stats.write();
        for (&stream_id, det) in &self.streams {
            // vdsms-lint: allow(no-alloc-hot-path) reason="Stats is Copy; the map's key set is fixed after AddStream, so steady-state inserts overwrite in place"
            slot.insert(stream_id, *det.stats());
        }
    }
}

/// Handle to one shard: its command channel and thread.
struct Shard {
    tx: Sender<Cmd>,
    sink: Arc<Mutex<Vec<StreamDetection>>>,
    stats: Arc<RwLock<BTreeMap<StreamId, Stats>>>,
    /// Set by the worker body when it dies to a caught panic; read at
    /// `Drop` to report unrestarted failures.
    failed: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// A sharded, multi-threaded fleet: the drop-in parallel counterpart of
/// [`Fleet`]. See the module docs for the concurrency protocol.
///
/// ## Supervision
///
/// Worker bodies run under [`catch_unwind`]. If a worker panics, the next
/// fleet call touching its shard observes the closed channel and
/// restarts the shard instead of returning [`FleetError::ShardDied`]: a
/// fresh worker is spawned on the current catalogue snapshot, the
/// shard's streams are re-added, and each stream's **current partial
/// window** is replayed from a coordinator-side journal (bounded by
/// `window_keyframes` frames per stream, so a replay can never complete
/// a window and never duplicates a detection). What cannot be recovered
/// — cross-window candidate state and frames in flight at the moment of
/// the crash — is surfaced through [`Stats::shard_restarts`] and
/// [`Stats::frames_lost`] (an upper bound). [`FleetError::ShardDied`] is
/// now reserved for the unrecoverable case: the *restart itself* failed.
pub struct ParallelFleet {
    cfg: DetectorConfig,
    catalogue: CatalogueSnapshot,
    shards: Vec<Shard>,
    /// Which shard owns each monitored stream.
    stream_shard: BTreeMap<StreamId, usize>,
    /// Scratch: per-shard slices of the batch being partitioned.
    partition: Vec<Vec<(StreamId, u64, u64)>>,
    /// Per-stream journal of the current partial window's frames,
    /// replayed into a restarted shard to re-arm its window state. Length
    /// stays `< cfg.window_keyframes`: it is cleared whenever a window
    /// completes, so completed windows are never re-processed.
    journal: BTreeMap<StreamId, Vec<(u64, u64)>>,
    /// Frames dispatched to each shard since its last synchronous
    /// acknowledgment — the upper bound on loss if it crashes now.
    in_flight: Vec<u64>,
    /// Restart accounting ([`Stats::shard_restarts`] /
    /// [`Stats::frames_lost`]), merged into [`Self::total_stats`].
    supervisor: Stats,
    /// Last published per-stream stats of dead workers, merged into
    /// [`Self::stats`] / [`Self::total_stats`] so counters stay monotone
    /// across a restart.
    carry: BTreeMap<StreamId, Stats>,
    /// Test hook ([`Self::dangerously_skip_install_acks`]): when set,
    /// catalogue broadcasts skip the quiesce barrier's acknowledgment
    /// wait — the deliberately re-introducible ordering bug the
    /// schedule-exploration harness must catch.
    skip_install_acks: bool,
    /// Acknowledgment receivers parked by a skipped barrier. Held (not
    /// dropped) so the workers' `ack.send(())` still succeeds — the hook
    /// must remove only the *wait*, not kill the workers.
    parked_acks: Vec<Receiver<()>>,
}

/// SplitMix64 finalizer used for stream→shard assignment. Mixing avoids
/// pathological placements when stream ids are sequential multiples of
/// the shard count.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Spawn one shard worker on the given shared handles. The worker body
/// runs under [`catch_unwind`]: a panic marks `failed`, closes the
/// command channel and returns — the coordinator notices on its next
/// command and restarts the shard.
fn spawn_worker(
    cfg: DetectorConfig,
    shard_index: usize,
    catalogue: &CatalogueSnapshot,
    sink: &Arc<Mutex<Vec<StreamDetection>>>,
    stats: &Arc<RwLock<BTreeMap<StreamId, Stats>>>,
) -> std::io::Result<(Sender<Cmd>, Arc<AtomicBool>, JoinHandle<()>)> {
    let state = ShardState {
        cfg,
        streams: BTreeMap::new(),
        queries: Arc::clone(&catalogue.queries),
        index: catalogue.index.clone(),
        sink: Arc::clone(sink),
        stats: Arc::clone(stats),
    };
    let (tx, rx) = channel();
    let failed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&failed);
    let handle = std::thread::Builder::new()
        // vdsms-lint: allow(no-alloc-hot-path) reason="cold shard-spawn path: construction or post-crash restart, never the per-frame path"
        .name(format!("vdsms-fleet-shard-{shard_index}"))
        .spawn(move || {
            if catch_unwind(AssertUnwindSafe(move || state.run(rx))).is_err() {
                flag.store(true, Ordering::SeqCst);
            }
        })?;
    Ok((tx, failed, handle))
}

impl ParallelFleet {
    /// Create an empty fleet with `shards` worker threads.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `shards == 0`.
    pub fn new(cfg: DetectorConfig, shards: usize) -> ParallelFleet {
        cfg.validate();
        assert!(shards >= 1, "need at least one shard");
        let catalogue = CatalogueSnapshot::empty(&cfg);
        let shards: Vec<Shard> = (0..shards)
            .map(|i| {
                let sink = Arc::new(Mutex::new(Vec::new()));
                let stats = Arc::new(RwLock::new(BTreeMap::new()));
                let (tx, failed, handle) = spawn_worker(cfg, i, &catalogue, &sink, &stats)
                    // vdsms-lint: allow(no-panic-hot-path) reason="construction-time spawn failure is unrecoverable resource exhaustion, not a streaming-path fault"
                    .expect("spawn fleet shard worker");
                Shard { tx, sink, stats, failed, handle: Some(handle) }
            })
            .collect();
        ParallelFleet {
            partition: vec![Vec::new(); shards.len()],
            in_flight: vec![0; shards.len()],
            cfg,
            catalogue,
            shards,
            stream_shard: BTreeMap::new(),
            journal: BTreeMap::new(),
            supervisor: Stats::default(),
            carry: BTreeMap::new(),
            skip_install_acks: false,
            parked_acks: Vec::new(),
        }
    }

    /// The configuration every stream's detector uses.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of monitored streams.
    pub fn stream_count(&self) -> usize {
        self.stream_shard.len()
    }

    /// Number of subscribed queries.
    pub fn query_count(&self) -> usize {
        self.catalogue.queries.len()
    }

    fn shard_of(&self, stream_id: StreamId) -> usize {
        (mix64(u64::from(stream_id)) % self.shards.len() as u64) as usize
    }

    /// Send a command, restarting the shard once if its worker has died.
    /// [`SendError`] returns the unsent command, so the
    /// re-dispatch after the restart is lossless; every command is safe
    /// to re-send because the restart's journal replay re-arms only the
    /// current partial window, which never includes frames from a
    /// not-yet-journaled batch (batches are journaled *after* dispatch).
    fn send_supervised(&mut self, shard: usize, cmd: Cmd) -> Result<(), FleetError> {
        match self.shards[shard].tx.send(cmd) {
            Ok(()) => Ok(()),
            Err(SendError(cmd)) => {
                self.restart_shard(shard)?;
                self.shards[shard].tx.send(cmd).map_err(|_| FleetError::ShardDied { shard })
            }
        }
    }

    /// Join a dead worker, absorb its last published stats, spawn a
    /// fresh one on the same sink/stats handles, re-add its streams and
    /// replay their journaled partial windows. Cold path: runs only
    /// after a worker death, never per frame.
    fn restart_shard(&mut self, shard: usize) -> Result<(), FleetError> {
        if let Some(handle) = self.shards[shard].handle.take() {
            // The worker body catches unwinds, so the join itself never
            // fails; the death was already recorded in `failed`.
            let _ = handle.join();
        }
        // Keep the dead worker's last published per-stream counters so
        // `stats`/`total_stats` stay monotone across the restart. (The
        // handful of frames between the last publication and the crash
        // are part of the `frames_lost` bound below.)
        {
            let published = self.shards[shard].stats.read();
            for (&stream_id, s) in published.iter() {
                self.carry.entry(stream_id).or_default().merge(s);
            }
        }
        self.shards[shard].stats.write().clear();
        self.supervisor.shard_restarts += 1;
        self.supervisor.frames_lost += self.in_flight[shard];
        self.in_flight[shard] = 0;
        let (tx, failed, handle) = spawn_worker(
            self.cfg,
            shard,
            &self.catalogue,
            &self.shards[shard].sink,
            &self.shards[shard].stats,
        )
        .map_err(|_| FleetError::ShardDied { shard })?;
        self.shards[shard].tx = tx;
        self.shards[shard].failed = failed;
        self.shards[shard].handle = Some(handle);
        // Re-add the shard's streams, then replay every journaled
        // current-window prefix in one batch so window phase matches the
        // frames the fleet has accepted so far.
        let mut replay: Vec<(StreamId, u64, u64)> = Vec::new();
        for (&stream_id, &owner) in &self.stream_shard {
            if owner != shard {
                continue;
            }
            self.shards[shard]
                .tx
                .send(Cmd::AddStream(stream_id))
                .map_err(|_| FleetError::ShardDied { shard })?;
            if let Some(frames) = self.journal.get(&stream_id) {
                for &(frame_index, cell_id) in frames {
                    // vdsms-lint: allow(no-alloc-hot-path) reason="cold shard-recovery path, runs only after a worker death"
                    replay.push((stream_id, frame_index, cell_id));
                }
            }
        }
        if !replay.is_empty() {
            let (reply, rx) = sync_channel(1);
            self.shards[shard]
                .tx
                .send(Cmd::BatchSync(replay, reply))
                .map_err(|_| FleetError::ShardDied { shard })?;
            // Each stream replays strictly fewer frames than one window,
            // so the replay cannot complete a window or emit detections.
            let dets = rx.recv().map_err(|_| FleetError::ShardDied { shard })?;
            debug_assert!(dets.is_empty(), "journal replay must not complete a window");
        }
        Ok(())
    }

    /// Record a dispatched batch slice in the per-stream journal. Each
    /// journal holds exactly the current partial window's frames: it is
    /// cleared when the accepted-frame count crosses a window boundary,
    /// so a restart replay can re-arm window state but never re-complete
    /// a window.
    fn journal_slice(&mut self, items: &[(StreamId, u64, u64)]) {
        let w = self.cfg.window_keyframes;
        for &(stream_id, frame_index, cell_id) in items {
            let Some(j) = self.journal.get_mut(&stream_id) else { continue };
            // vdsms-lint: allow(no-alloc-hot-path) reason="capacity-stable: bounded by window_keyframes, and clear() retains the capacity"
            j.push((frame_index, cell_id));
            if j.len() >= w {
                j.clear();
            }
        }
    }

    /// Drop any half-built partition scratch after a failed dispatch so
    /// the next call starts from the empty-scratch invariant.
    fn clear_partition(&mut self) {
        for slice in &mut self.partition {
            slice.clear();
        }
    }

    /// Start monitoring a new stream; it immediately watches every
    /// subscribed query.
    ///
    /// # Errors
    /// [`FleetError::StreamAlreadyMonitored`] if the id is already in
    /// use; [`FleetError::ShardDied`] if the owning worker is gone and
    /// could not be restarted.
    pub fn add_stream(&mut self, stream_id: StreamId) -> Result<(), FleetError> {
        if self.stream_shard.contains_key(&stream_id) {
            return Err(FleetError::StreamAlreadyMonitored(stream_id));
        }
        let shard = self.shard_of(stream_id);
        self.send_supervised(shard, Cmd::AddStream(stream_id))?;
        self.stream_shard.insert(stream_id, shard);
        self.journal.insert(stream_id, Vec::new());
        Ok(())
    }

    /// Stop monitoring a stream; returns its final statistics, or
    /// `Ok(None)` if the id was not monitored. If the owning worker died,
    /// the shard is restarted (re-adding the stream from its journal) and
    /// the removal retried, so the returned stats still reflect every
    /// counter published before the crash.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if the owning worker is gone and could
    /// not be restarted.
    pub fn remove_stream(&mut self, stream_id: StreamId) -> Result<Option<Stats>, FleetError> {
        let Some(&shard) = self.stream_shard.get(&stream_id) else {
            return Ok(None);
        };
        let mut stats = None;
        for _attempt in 0..2 {
            let (reply, rx) = sync_channel(1);
            self.send_supervised(shard, Cmd::RemoveStream(stream_id, reply))?;
            match rx.recv() {
                Ok(s) => {
                    self.in_flight[shard] = 0;
                    stats = s;
                    break;
                }
                Err(_) => self.restart_shard(shard)?,
            }
        }
        self.stream_shard.remove(&stream_id);
        self.journal.remove(&stream_id);
        let carried = self.carry.remove(&stream_id);
        Ok(match (stats, carried) {
            (Some(mut s), Some(c)) => {
                s.merge(&c);
                Some(s)
            }
            (s @ Some(_), None) => s,
            (None, c) => c,
        })
    }

    /// Subscribe a query on every stream (and for all future streams).
    /// Returns after every shard has installed the new catalogue — the
    /// quiesce barrier described in the module docs.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a worker is gone.
    ///
    /// # Panics
    /// Panics on duplicate query id or sketch `K` mismatch.
    pub fn subscribe(&mut self, query: Query) -> Result<(), FleetError> {
        self.catalogue = self.catalogue.with_subscribed(query);
        self.broadcast_catalogue()
    }

    /// Unsubscribe a query everywhere (with the same barrier as
    /// [`ParallelFleet::subscribe`]). Returns `Ok(false)` if it was not
    /// subscribed.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a worker is gone.
    pub fn unsubscribe(&mut self, id: QueryId) -> Result<bool, FleetError> {
        let Some(next) = self.catalogue.with_unsubscribed(id) else {
            return Ok(false);
        };
        self.catalogue = next;
        self.broadcast_catalogue()?;
        Ok(true)
    }

    fn broadcast_catalogue(&mut self) -> Result<(), FleetError> {
        let mut acks: Vec<Receiver<()>> = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (ack, rx) = sync_channel(1);
            self.send_supervised(
                shard,
                Cmd::Install(
                    Arc::clone(&self.catalogue.queries),
                    self.catalogue.index.clone(),
                    ack,
                ),
            )?;
            acks.push(rx);
        }
        if self.skip_install_acks {
            // Deliberately broken barrier (test hook): return before the
            // shards have drained the work queued ahead of the install.
            // Parking the receivers keeps the workers' acks deliverable.
            self.parked_acks.append(&mut acks);
            return Ok(());
        }
        for (shard, rx) in acks.iter().enumerate() {
            match rx.recv() {
                Ok(()) => self.in_flight[shard] = 0,
                // A restarted worker is spawned on `self.catalogue`,
                // which already holds the new snapshot — the install is
                // satisfied by construction.
                Err(_) => self.restart_shard(shard)?,
            }
        }
        Ok(())
    }

    /// Feed one key frame of one stream (synchronous).
    ///
    /// # Errors
    /// [`FleetError::StreamNotMonitored`] if the stream id is unknown;
    /// [`FleetError::ShardDied`] if the owning worker is gone.
    pub fn push_keyframe(
        &mut self,
        stream_id: StreamId,
        frame_index: u64,
        cell_id: u64,
    ) -> Result<Vec<StreamDetection>, FleetError> {
        self.push_batch(&[(stream_id, frame_index, cell_id)])
    }

    /// Feed a batch of key frames spanning any number of streams.
    /// Partitioned by shard; shards work concurrently; returns once every
    /// involved shard finished, with all detections the batch triggered.
    ///
    /// Ordering within one stream is preserved. Detections are grouped by
    /// shard, not globally ordered across streams.
    ///
    /// # Errors
    /// [`FleetError::StreamNotMonitored`] if any referenced stream id is
    /// unknown (the whole batch is rejected before any dispatch);
    /// [`FleetError::ShardDied`] if a worker is gone and could not be
    /// restarted. A worker dying *mid-batch* is not an error: the shard
    /// is restarted (journal replay re-arms the current window), its
    /// slice's detections are lost, and the loss is recorded in
    /// [`Stats::frames_lost`].
    pub fn push_batch(
        &mut self,
        batch: &[(StreamId, u64, u64)],
    ) -> Result<Vec<StreamDetection>, FleetError> {
        let involved = self.partition_batch(batch)?;
        let mut replies: Vec<(usize, Receiver<Vec<StreamDetection>>)> =
            // vdsms-lint: allow(no-alloc-hot-path) reason="once per batch, bounded by the shard count — amortized over every keyframe in the batch"
            Vec::with_capacity(involved.len());
        for shard in involved {
            let items = std::mem::take(&mut self.partition[shard]);
            let n = items.len() as u64;
            let (reply, rx) = sync_channel(1);
            if let Err(e) = self.send_supervised(shard, Cmd::BatchSync(items, reply)) {
                self.clear_partition();
                return Err(e);
            }
            self.in_flight[shard] += n;
            // vdsms-lint: allow(no-alloc-hot-path) reason="once per batch, bounded by the shard count — amortized over every keyframe in the batch"
            replies.push((shard, rx));
        }
        self.journal_slice(batch);
        let mut out = Vec::new();
        for (shard, rx) in replies {
            match rx.recv() {
                Ok(dets) => {
                    self.in_flight[shard] = 0;
                    // vdsms-lint: allow(no-alloc-hot-path) reason="detection events only; extending from an empty reply does not allocate"
                    out.extend(dets);
                }
                Err(_) => self.restart_shard(shard)?,
            }
        }
        Ok(out)
    }

    /// Feed a batch without waiting: the call returns as soon as every
    /// shard has the work queued. Detections accumulate in a per-shard
    /// sink; call [`ParallelFleet::quiesce`] then
    /// [`ParallelFleet::take_detections`] to collect them.
    ///
    /// # Errors
    /// [`FleetError::StreamNotMonitored`] if any referenced stream id is
    /// unknown (the whole batch is rejected before any dispatch);
    /// [`FleetError::ShardDied`] if a worker is gone and could not be
    /// restarted.
    pub fn push_batch_async(&mut self, batch: &[(StreamId, u64, u64)]) -> Result<(), FleetError> {
        let involved = self.partition_batch(batch)?;
        for shard in involved {
            let items = std::mem::take(&mut self.partition[shard]);
            let n = items.len() as u64;
            if let Err(e) = self.send_supervised(shard, Cmd::BatchAsync(items)) {
                self.clear_partition();
                return Err(e);
            }
            self.in_flight[shard] += n;
        }
        self.journal_slice(batch);
        Ok(())
    }

    /// Split `batch` into the per-shard scratch vectors, preserving
    /// per-stream order; returns the shards that received work (in
    /// first-touched order). Validates stream ids on the caller's thread
    /// so an unknown id rejects the whole batch before any dispatch.
    fn partition_batch(&mut self, batch: &[(StreamId, u64, u64)]) -> Result<Vec<usize>, FleetError> {
        let mut involved = Vec::new();
        for &(stream_id, frame_index, cell_id) in batch {
            let Some(&shard) = self.stream_shard.get(&stream_id) else {
                self.clear_partition();
                return Err(FleetError::StreamNotMonitored(stream_id));
            };
            if self.partition[shard].is_empty() {
                // vdsms-lint: allow(no-alloc-hot-path) reason="once per batch, bounded by the shard count — amortized over every keyframe in the batch"
                involved.push(shard);
            }
            // vdsms-lint: allow(no-alloc-hot-path) reason="per-batch staging vectors; moved into the shard command, so the cost is one buffer per shard per batch"
            self.partition[shard].push((stream_id, frame_index, cell_id));
        }
        Ok(involved)
    }

    /// Block until every shard has processed everything queued so far.
    /// A shard whose worker died is restarted instead (a fresh worker's
    /// queue is empty, so it is quiesced by construction); the loss is
    /// recorded in [`Stats::shard_restarts`] / [`Stats::frames_lost`].
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a worker is gone and could not be
    /// restarted.
    pub fn quiesce(&mut self) -> Result<(), FleetError> {
        let mut acks: Vec<Receiver<()>> = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (ack, rx) = sync_channel(1);
            self.send_supervised(shard, Cmd::Quiesce(ack))?;
            acks.push(rx);
        }
        for (shard, rx) in acks.iter().enumerate() {
            match rx.recv() {
                Ok(()) => self.in_flight[shard] = 0,
                Err(_) => self.restart_shard(shard)?,
            }
        }
        Ok(())
    }

    /// Drain the detections produced by [`ParallelFleet::push_batch_async`]
    /// since the last drain. Call [`ParallelFleet::quiesce`] first for a
    /// complete view of all queued work.
    pub fn take_detections(&mut self) -> Vec<StreamDetection> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.sink.lock());
        }
        out
    }

    /// Flush every stream's partial window (end of monitoring epoch).
    /// Forms a barrier: all previously queued batches complete first. If
    /// a worker died, its shard is restarted (journal replay re-arms the
    /// partial windows) and the flush re-dispatched, so the caller still
    /// gets end-of-epoch detections from the recovered state.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a worker is gone and could not be
    /// restarted.
    pub fn finish_all(&mut self) -> Result<Vec<StreamDetection>, FleetError> {
        let mut replies: Vec<Receiver<Vec<StreamDetection>>> =
            Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            let (reply, rx) = sync_channel(1);
            self.send_supervised(shard, Cmd::FinishAll(reply))?;
            replies.push(rx);
        }
        let mut out = Vec::new();
        for (shard, rx) in replies.iter().enumerate() {
            match rx.recv() {
                Ok(dets) => {
                    self.in_flight[shard] = 0;
                    out.extend(dets);
                }
                Err(_) => {
                    self.restart_shard(shard)?;
                    let (reply, retry_rx) = sync_channel(1);
                    self.send_supervised(shard, Cmd::FinishAll(reply))?;
                    out.extend(retry_rx.recv().map_err(|_| FleetError::ShardDied { shard })?);
                }
            }
        }
        // Every partial window has been flushed; nothing to replay.
        for j in self.journal.values_mut() {
            j.clear();
        }
        Ok(out)
    }

    /// Per-stream statistics (as of the last completed call; callers that
    /// used [`ParallelFleet::push_batch_async`] should
    /// [`ParallelFleet::quiesce`] first). Counters survive shard
    /// restarts: the dead worker's last published values are carried
    /// over and merged with the fresh worker's.
    pub fn stats(&self, stream_id: StreamId) -> Option<Stats> {
        let &shard = self.stream_shard.get(&stream_id)?;
        let published = self.shards[shard].stats.read().get(&stream_id).cloned();
        match (published, self.carry.get(&stream_id)) {
            (Some(mut s), Some(c)) => {
                s.merge(c);
                Some(s)
            }
            (s @ Some(_), None) => s,
            (None, Some(c)) => Some(*c),
            (None, None) => None,
        }
    }

    /// Aggregate statistics across all streams — the same counter-wise
    /// merge the serial [`Fleet::total_stats`] reports, plus the
    /// supervisor's [`Stats::shard_restarts`] / [`Stats::frames_lost`]
    /// and the carried-over counters of restarted shards.
    pub fn total_stats(&self) -> Stats {
        let mut total = self.supervisor;
        for stats in self.carry.values() {
            total.merge(stats);
        }
        for shard in &self.shards {
            for stats in shard.stats.read().values() {
                total.merge(stats);
            }
        }
        total
    }

    /// Test hook: make the worker owning `shard` panic on its next
    /// command, exercising the supervision path end to end. The next
    /// fleet call touching the shard observes the death and restarts it.
    /// A best-effort send: the shard already being dead is exactly the
    /// state this hook exists to produce.
    #[doc(hidden)]
    pub fn inject_shard_panic(&mut self, shard: usize) {
        self.shards[shard].tx.send_best_effort(Cmd::Crash);
    }

    /// Test hook: disarm (or re-arm) the catalogue broadcast's
    /// acknowledgment wait. With the wait skipped,
    /// [`ParallelFleet::subscribe`] / [`ParallelFleet::unsubscribe`]
    /// return while shards may still be processing work queued before
    /// the install — re-introducing, on demand, the barrier bug the
    /// schedule-exploration harness exists to catch: a
    /// [`ParallelFleet::take_detections`] right after the call can miss
    /// detections from frames pushed before it.
    #[doc(hidden)]
    pub fn dangerously_skip_install_acks(&mut self, skip: bool) {
        self.skip_install_acks = skip;
    }
}

/// Upper bound on the per-worker join wait at `Drop`: polls of
/// [`JoinHandle::is_finished`] a millisecond apart. A worker that has
/// not exited after ~2 s is detached instead of hanging the destructor
/// (it still terminates on its own once it observes the closed channel;
/// the `Arc`-shared sink and stats handles keep its references valid).
const DROP_JOIN_POLLS: u32 = 2000;

impl Drop for ParallelFleet {
    fn drop(&mut self) {
        // Phase 1: close every command channel, in shard-index order, so
        // each worker's `recv` loop sees disconnection. Ordering the
        // closes (rather than letting a struct-drop glue order decide)
        // makes the shutdown sequence deterministic — the schedule
        // harness replays it under many interleavings and the trace must
        // mean the same thing every run.
        for shard in &mut self.shards {
            let (tx, _) = channel();
            drop(std::mem::replace(&mut shard.tx, tx));
        }
        // Phase 2: join, again in shard-index order, with a bounded
        // wait per worker. The worker bodies catch their own panics, so
        // a finished worker always joins cleanly; a worker that died
        // without being restarted left its `failed` flag set. Record
        // failures in the log instead of panicking in Drop — the dead
        // worker's last published stats were readable until this point.
        let mut unrestarted = 0usize;
        let mut detached = 0usize;
        for shard in &mut self.shards {
            if let Some(handle) = shard.handle.take() {
                let mut polls = 0u32;
                while !handle.is_finished() && polls < DROP_JOIN_POLLS {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    polls += 1;
                }
                if handle.is_finished() {
                    let _ = handle.join();
                } else {
                    detached += 1;
                }
            }
            if shard.failed.load(Ordering::SeqCst) {
                unrestarted += 1;
            }
        }
        if (unrestarted > 0 || detached > 0) && !std::thread::panicking() {
            eprintln!(
                "vdsms: fleet shutdown: {unrestarted} worker(s) had panicked and were \
                 never restarted; {detached} worker(s) exceeded the bounded join and \
                 were detached (they exit on their own once they observe the closed \
                 command channel)"
            );
        }
    }
}

/// A fleet that is serial or sharded depending on
/// [`DetectorConfig::shards`] — the switch the CLI and the bench harness
/// use. Detection results are identical either way.
// One fleet exists per monitoring process and lives on the stack of its
// driver; the size gap between the serial and supervised-parallel
// variants (journal, carry map, supervisor stats) costs nothing at this
// cardinality, while boxing would put every fleet call behind a second
// indirection.
#[allow(clippy::large_enum_variant)]
pub enum AnyFleet {
    /// `shards == 1`: the caller-thread [`Fleet`].
    Serial(Fleet),
    /// `shards > 1`: the sharded [`ParallelFleet`].
    Parallel(ParallelFleet),
}

impl AnyFleet {
    /// Create a fleet according to `cfg.shards`.
    ///
    /// # Panics
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DetectorConfig) -> AnyFleet {
        if cfg.shards <= 1 {
            AnyFleet::Serial(Fleet::new(cfg))
        } else {
            AnyFleet::Parallel(ParallelFleet::new(cfg, cfg.shards))
        }
    }

    /// The configuration every stream's detector uses.
    pub fn config(&self) -> &DetectorConfig {
        match self {
            AnyFleet::Serial(f) => f.config(),
            AnyFleet::Parallel(f) => f.config(),
        }
    }

    /// Number of monitored streams.
    pub fn stream_count(&self) -> usize {
        match self {
            AnyFleet::Serial(f) => f.stream_count(),
            AnyFleet::Parallel(f) => f.stream_count(),
        }
    }

    /// Number of subscribed queries.
    pub fn query_count(&self) -> usize {
        match self {
            AnyFleet::Serial(f) => f.query_count(),
            AnyFleet::Parallel(f) => f.query_count(),
        }
    }

    /// Start monitoring a new stream.
    ///
    /// # Errors
    /// [`FleetError::StreamAlreadyMonitored`] if the id is already in
    /// use; [`FleetError::ShardDied`] if a parallel worker is gone.
    pub fn add_stream(&mut self, stream_id: StreamId) -> Result<(), FleetError> {
        match self {
            AnyFleet::Serial(f) => f.add_stream(stream_id),
            AnyFleet::Parallel(f) => f.add_stream(stream_id),
        }
    }

    /// Stop monitoring a stream; returns its final statistics, or
    /// `Ok(None)` if the id was not monitored.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a parallel worker is gone.
    pub fn remove_stream(&mut self, stream_id: StreamId) -> Result<Option<Stats>, FleetError> {
        match self {
            AnyFleet::Serial(f) => Ok(f.remove_stream(stream_id)),
            AnyFleet::Parallel(f) => f.remove_stream(stream_id),
        }
    }

    /// Subscribe a query on every stream.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a parallel worker is gone.
    ///
    /// # Panics
    /// Panics on duplicate query id or sketch `K` mismatch.
    pub fn subscribe(&mut self, query: Query) -> Result<(), FleetError> {
        match self {
            AnyFleet::Serial(f) => {
                f.subscribe(query);
                Ok(())
            }
            AnyFleet::Parallel(f) => f.subscribe(query),
        }
    }

    /// Unsubscribe a query everywhere. Returns `Ok(false)` if it was not
    /// subscribed.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a parallel worker is gone.
    pub fn unsubscribe(&mut self, id: QueryId) -> Result<bool, FleetError> {
        match self {
            AnyFleet::Serial(f) => Ok(f.unsubscribe(id)),
            AnyFleet::Parallel(f) => f.unsubscribe(id),
        }
    }

    /// Feed one key frame of one stream.
    ///
    /// # Errors
    /// [`FleetError::StreamNotMonitored`] if the stream id is unknown;
    /// [`FleetError::ShardDied`] if a parallel worker is gone.
    pub fn push_keyframe(
        &mut self,
        stream_id: StreamId,
        frame_index: u64,
        cell_id: u64,
    ) -> Result<Vec<StreamDetection>, FleetError> {
        match self {
            AnyFleet::Serial(f) => f.push_keyframe(stream_id, frame_index, cell_id),
            AnyFleet::Parallel(f) => f.push_keyframe(stream_id, frame_index, cell_id),
        }
    }

    /// Feed a batch of key frames spanning any number of streams.
    ///
    /// # Errors
    /// [`FleetError::StreamNotMonitored`] if any referenced stream id is
    /// unknown; [`FleetError::ShardDied`] if a parallel worker is gone.
    pub fn push_batch(
        &mut self,
        batch: &[(StreamId, u64, u64)],
    ) -> Result<Vec<StreamDetection>, FleetError> {
        match self {
            AnyFleet::Serial(f) => f.push_batch(batch),
            AnyFleet::Parallel(f) => f.push_batch(batch),
        }
    }

    /// Flush every stream's partial window.
    ///
    /// # Errors
    /// [`FleetError::ShardDied`] if a parallel worker is gone.
    pub fn finish_all(&mut self) -> Result<Vec<StreamDetection>, FleetError> {
        match self {
            AnyFleet::Serial(f) => Ok(f.finish_all()),
            AnyFleet::Parallel(f) => f.finish_all(),
        }
    }

    /// Per-stream statistics (owned; the parallel fleet's live elsewhere).
    pub fn stats(&self, stream_id: StreamId) -> Option<Stats> {
        match self {
            AnyFleet::Serial(f) => f.stats(stream_id).cloned(),
            AnyFleet::Parallel(f) => f.stats(stream_id),
        }
    }

    /// Aggregate statistics across all streams.
    pub fn total_stats(&self) -> Stats {
        match self {
            AnyFleet::Serial(f) => f.total_stats(),
            AnyFleet::Parallel(f) => f.total_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_sketch::MinHashFamily;

    const K: usize = 64;

    fn cfg() -> DetectorConfig {
        DetectorConfig { k: K, window_keyframes: 4, ..Default::default() }
    }

    fn family() -> MinHashFamily {
        MinHashFamily::new(K, crate::config::DEFAULT_HASH_SEED)
    }

    fn query(id: QueryId, base: u64) -> Query {
        let ids: Vec<u64> = (base..base + 24).collect();
        Query::from_cell_ids(id, &family(), &ids)
    }

    /// Interleaved multi-stream batch: stream `s` airs `copy_base(s)`
    /// content at frames 30..54.
    fn workload(streams: &[StreamId]) -> Vec<(StreamId, u64, u64)> {
        let mut batch = Vec::new();
        for i in 0..80u64 {
            for &s in streams {
                let id = if (30..54).contains(&i) {
                    1000 * u64::from(s) + (i - 30) % 24
                } else {
                    900_000 + u64::from(s) * 1000 + i
                };
                batch.push((s, i, id));
            }
        }
        batch
    }

    fn sorted_key(
        mut dets: Vec<StreamDetection>,
    ) -> Vec<(StreamId, u32, u64, u64)> {
        dets.sort_by_key(|d| {
            (d.stream_id, d.detection.query_id, d.detection.start_frame, d.detection.end_frame)
        });
        dets.iter()
            .map(|d| {
                (d.stream_id, d.detection.query_id, d.detection.start_frame, d.detection.end_frame)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_on_a_small_workload() {
        let streams: Vec<StreamId> = (0..6).collect();
        let batch = workload(&streams);

        let run_serial = || {
            let mut fleet = Fleet::new(cfg());
            for &s in &streams {
                fleet.add_stream(s).unwrap();
                fleet.subscribe(query(s, 1000 * u64::from(s)));
            }
            let mut dets = fleet.push_batch(&batch).unwrap();
            dets.extend(fleet.finish_all());
            (sorted_key(dets), fleet.total_stats())
        };
        let (serial_dets, serial_stats) = run_serial();
        assert!(!serial_dets.is_empty(), "workload must produce detections");

        for shards in [1, 2, 4] {
            let mut fleet = ParallelFleet::new(cfg(), shards);
            for &s in &streams {
                fleet.add_stream(s).unwrap();
                fleet.subscribe(query(s, 1000 * u64::from(s))).unwrap();
            }
            let mut dets = fleet.push_batch(&batch).unwrap();
            dets.extend(fleet.finish_all().unwrap());
            assert_eq!(sorted_key(dets), serial_dets, "shards={shards}");
            assert_eq!(fleet.total_stats(), serial_stats, "shards={shards}");
        }
    }

    #[test]
    fn async_mode_with_quiesce_matches_sync() {
        let streams: Vec<StreamId> = (0..5).collect();
        let batch = workload(&streams);

        let mut sync_fleet = ParallelFleet::new(cfg(), 3);
        let mut async_fleet = ParallelFleet::new(cfg(), 3);
        for fleet in [&mut sync_fleet, &mut async_fleet] {
            for &s in &streams {
                fleet.add_stream(s).unwrap();
            }
            fleet.subscribe(query(9, 2000)).unwrap();
        }
        let mut want = sync_fleet.push_batch(&batch).unwrap();
        want.extend(sync_fleet.finish_all().unwrap());

        for chunk in batch.chunks(37) {
            async_fleet.push_batch_async(chunk).unwrap();
        }
        async_fleet.quiesce().unwrap();
        let mut got = async_fleet.take_detections();
        got.extend(async_fleet.finish_all().unwrap());
        assert_eq!(sorted_key(got), sorted_key(want));
    }

    #[test]
    fn subscribe_forms_a_barrier_between_batches() {
        let mut fleet = ParallelFleet::new(cfg(), 4);
        for s in 0..8 {
            fleet.add_stream(s).unwrap();
        }
        let batch = workload(&(0..8).collect::<Vec<_>>());
        // Queue work async, then subscribe: the barrier must order the
        // subscription after all queued frames on every shard.
        fleet.push_batch_async(&batch).unwrap();
        fleet.subscribe(query(1, 1000)).unwrap();
        let pre = fleet.take_detections();
        assert!(
            pre.iter().all(|d| d.detection.query_id != 1),
            "no frame queued before subscribe may match the new query"
        );
        // A second airing after the subscription is detected.
        let mut dets = Vec::new();
        for i in 80..140u64 {
            let id = if (90..114).contains(&i) { 1000 + (i - 90) % 24 } else { 700_000 + i };
            dets.extend(fleet.push_batch(&[(1, i, id)]).unwrap());
        }
        dets.extend(fleet.finish_all().unwrap());
        assert!(dets.iter().any(|d| d.detection.query_id == 1 && d.stream_id == 1), "{dets:?}");
    }

    #[test]
    fn streams_and_stats_lifecycle() {
        let mut fleet = ParallelFleet::new(cfg(), 2);
        fleet.subscribe(query(1, 1000)).unwrap();
        fleet.add_stream(10).unwrap();
        fleet.add_stream(20).unwrap();
        assert_eq!(fleet.stream_count(), 2);
        assert_eq!(fleet.query_count(), 1);
        assert_eq!(fleet.shard_count(), 2);

        let batch: Vec<(StreamId, u64, u64)> =
            (0..40u64).map(|i| (10, i, 555_000 + i)).collect();
        fleet.push_batch(&batch).unwrap();
        assert_eq!(fleet.stats(10).unwrap().windows, 10);
        assert_eq!(fleet.stats(20).unwrap().windows, 0);
        assert!(fleet.stats(99).is_none());

        let final_stats = fleet.remove_stream(10).unwrap().unwrap();
        assert_eq!(final_stats.windows, 10);
        assert!(fleet.remove_stream(10).unwrap().is_none());
        assert_eq!(fleet.stream_count(), 1);
        assert!(fleet.stats(10).is_none());
        assert!(!fleet.unsubscribe(42).unwrap());
        assert!(fleet.unsubscribe(1).unwrap());
        assert_eq!(fleet.query_count(), 0);
    }

    #[test]
    fn duplicate_stream_rejected() {
        let mut fleet = ParallelFleet::new(cfg(), 2);
        fleet.add_stream(1).unwrap();
        assert_eq!(fleet.add_stream(1), Err(FleetError::StreamAlreadyMonitored(1)));
    }

    #[test]
    fn unknown_stream_rejected_on_callers_thread() {
        let mut fleet = ParallelFleet::new(cfg(), 2);
        assert_eq!(
            fleet.push_batch(&[(3, 0, 0)]),
            Err(FleetError::StreamNotMonitored(3))
        );
        // A rejected batch must not leave stale scratch behind: a valid
        // follow-up batch sees only its own frames.
        fleet.add_stream(1).unwrap();
        assert_eq!(
            fleet.push_batch_async(&[(1, 0, 0), (3, 1, 1)]),
            Err(FleetError::StreamNotMonitored(3))
        );
        // 3 fresh frames alone complete no window (w = 4); a leaked
        // frame from the rejected batch would complete one.
        fleet.push_batch(&[(1, 0, 100), (1, 1, 101), (1, 2, 102)]).unwrap();
        assert_eq!(fleet.stats(1).unwrap().windows, 0);
    }

    #[test]
    fn shard_panic_is_supervised_and_restarted() {
        let mut fleet = ParallelFleet::new(cfg(), 2);
        fleet.subscribe(query(1, 1000)).unwrap();
        for s in 0..6 {
            fleet.add_stream(s).unwrap();
        }
        // Two frames per stream so every detector holds partial-window
        // state the journal must re-arm.
        let batch: Vec<(StreamId, u64, u64)> =
            (0..2u64).flat_map(|i| (0..6u32).map(move |s| (s, i, 900_000 + i))).collect();
        fleet.push_batch(&batch).unwrap();

        fleet.inject_shard_panic(0);
        fleet.quiesce().unwrap(); // observes the death and restarts shard 0
        let total = fleet.total_stats();
        assert_eq!(total.shard_restarts, 1, "{total:?}");
        assert!(total.frames_lost <= batch.len() as u64, "{total:?}");

        // The fleet keeps working: stream 1 airs query 1 after the
        // restart and is detected, wherever it is sharded.
        let mut dets = Vec::new();
        for i in 2..62u64 {
            let id = if (20..44).contains(&i) { 1000 + (i - 20) % 24 } else { 800_000 + i };
            dets.extend(fleet.push_batch(&[(1, i, id)]).unwrap());
        }
        dets.extend(fleet.finish_all().unwrap());
        assert!(dets.iter().any(|d| d.detection.query_id == 1 && d.stream_id == 1), "{dets:?}");
        // Per-stream stats stay queryable for every stream, and window
        // counts stay monotone through the carried-over counters.
        for s in 0..6 {
            assert!(fleet.stats(s).is_some(), "stream {s}");
        }
        assert!(fleet.stats(1).unwrap().windows >= 15, "{:?}", fleet.stats(1));
    }

    #[test]
    fn crash_mid_async_batch_accounts_bounded_loss() {
        let mut fleet = ParallelFleet::new(cfg(), 2);
        for s in 0..4 {
            fleet.add_stream(s).unwrap();
        }
        fleet.inject_shard_panic(0);
        fleet.inject_shard_panic(1);
        let batch: Vec<(StreamId, u64, u64)> =
            (0..3u64).flat_map(|i| (0..4u32).map(move |s| (s, i, 1_000 + i))).collect();
        // Depending on timing the sends land before or after the worker
        // processes the crash command; both paths must recover without
        // surfacing an error.
        fleet.push_batch_async(&batch).unwrap();
        fleet.quiesce().unwrap();
        let total = fleet.total_stats();
        assert_eq!(total.shard_restarts, 2, "{total:?}");
        assert!(total.frames_lost <= batch.len() as u64, "{total:?}");
        // Still alive: synchronous pushes succeed on both shards.
        for s in 0..4 {
            fleet.push_batch(&[(s, 3, 5)]).unwrap();
        }
        assert_eq!(fleet.total_stats().shard_restarts, 2);
    }

    #[test]
    fn remove_stream_after_crash_returns_carried_stats() {
        let mut fleet = ParallelFleet::new(cfg(), 2);
        fleet.add_stream(10).unwrap();
        fleet.add_stream(20).unwrap();
        let batch: Vec<(StreamId, u64, u64)> =
            (0..8u64).map(|i| (10, i, 555_000 + i)).collect();
        fleet.push_batch(&batch).unwrap(); // 2 completed windows (w = 4)
        let shard = fleet.shard_of(10);
        fleet.inject_shard_panic(shard);
        let final_stats = fleet.remove_stream(10).unwrap().unwrap();
        assert_eq!(final_stats.windows, 2, "{final_stats:?}");
        assert_eq!(fleet.total_stats().shard_restarts, 1);
        assert!(fleet.stats(10).is_none());
    }

    #[test]
    fn dropping_a_fleet_with_dead_workers_does_not_panic() {
        let mut fleet = ParallelFleet::new(cfg(), 2);
        fleet.add_stream(1).unwrap();
        fleet.inject_shard_panic(0);
        fleet.inject_shard_panic(1);
        // Give the workers a moment to process the crash commands so the
        // drop below joins already-dead threads at least some of the time.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(fleet); // must log, not panic (the old Drop panicked here)
    }

    #[test]
    fn any_fleet_switches_on_config() {
        let serial = AnyFleet::new(DetectorConfig { k: K, shards: 1, ..Default::default() });
        assert!(matches!(serial, AnyFleet::Serial(_)));
        let parallel = AnyFleet::new(DetectorConfig { k: K, shards: 4, ..Default::default() });
        assert!(matches!(parallel, AnyFleet::Parallel(_)));

        let mut fleet = AnyFleet::new(DetectorConfig {
            k: K,
            window_keyframes: 4,
            shards: 2,
            ..Default::default()
        });
        fleet.subscribe(query(3, 3000)).unwrap();
        fleet.add_stream(1).unwrap();
        assert_eq!(fleet.query_count(), 1);
        assert_eq!(fleet.stream_count(), 1);
        let mut dets = Vec::new();
        for i in 0..60u64 {
            let id = if (20..44).contains(&i) { 3000 + (i - 20) % 24 } else { 800_000 + i };
            dets.extend(fleet.push_keyframe(1, i, id).unwrap());
        }
        dets.extend(fleet.finish_all().unwrap());
        assert!(dets.iter().any(|d| d.detection.query_id == 3), "{dets:?}");
        assert!(fleet.stats(1).unwrap().windows >= 15);
        assert!(fleet.total_stats().detections >= 1);
        assert!(fleet.remove_stream(1).unwrap().is_some());
    }
}
