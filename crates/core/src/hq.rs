//! The Hash–Query (HQ) index (paper Section V-C, Figs. 4–5).
//!
//! Query sketches are stored column-per-query in a `K × m` array `HQ`,
//! where row `i` holds every query's `i`-th min-hash value as a triple
//! `⟨value, up, down⟩`, sorted by `value`. `up`/`down` link a query's
//! triples across adjacent rows (row 0's `up` points at the query's
//! metadata — id and length). Probing a basic-window sketch walks the rows
//! once, binary-searching each row for the window's hash value, so only
//! *related* queries (those sharing at least one min-hash value with the
//! window) are ever compared — and their 2K-bit signatures are produced as
//! a by-product, with Lemma-2 pruning applied mid-probe.

use crate::bitsig::BitSig;
use crate::query::{Query, QueryId, QuerySet};
use vdsms_sketch::Sketch;

/// Sentinel for "no link" (last row's `down`).
const NO_LINK: u32 = u32::MAX;

/// One cell of the index: a query's hash value on this row plus links to
/// the same query's cells on the adjacent rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Triple {
    /// The min-hash value.
    value: u64,
    /// Position of this query's triple on row `i−1`; on row 0, the slot in
    /// the metadata table instead.
    up: u32,
    /// Position of this query's triple on row `i+1`; `NO_LINK` on the last
    /// row.
    down: u32,
}

/// Per-query metadata stored at the column entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueryMeta {
    id: QueryId,
    keyframes: u32,
}

/// A query found related to a probed window, with its complete bit
/// signature.
#[derive(Debug, Clone)]
pub struct ProbeHit {
    /// The related query's id.
    pub query_id: QueryId,
    /// The related query's length in key frames.
    pub keyframes: usize,
    /// Bit signature of the window relative to this query (Definition 3).
    pub sig: BitSig,
}

/// Result of probing one window sketch.
#[derive(Debug, Clone, Default)]
pub struct ProbeResult {
    /// Related, un-pruned queries with their signatures.
    pub hits: Vec<ProbeHit>,
    /// Number of row search operations performed (for the cost
    /// experiments).
    pub row_searches: u64,
}

/// One in-flight element of the probe's related-query list `R_L`.
#[derive(Debug)]
struct Ele {
    slot: u32,
    lp: u32,
    sig: BitSig,
    n_less: usize,
}

/// Retired signature buffers kept per scratch, capped so a burst of
/// related windows cannot pin unbounded memory.
const SIG_POOL_CAP: usize = 64;

/// Reusable working state for [`HqIndex::probe_into`]. Keep one per
/// detector and pass it to every probe; its buffers stabilize at the
/// probe's high-water marks so steady-state probes are allocation-free.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    elements: Vec<Ele>,
    claimed: Vec<u32>,
    sig_pool: Vec<BitSig>,
}

impl ProbeScratch {
    /// Return a dead signature's word buffer for reuse by future probes
    /// (the caller is done with a [`ProbeHit`]'s signature).
    pub fn recycle_sig(&mut self, sig: BitSig) {
        if self.sig_pool.len() < SIG_POOL_CAP {
            // vdsms-lint: allow(no-alloc-hot-path) reason="pool Vec is capped at SIG_POOL_CAP; reaches its high-water mark during warm-up"
            self.sig_pool.push(sig);
        }
    }
}

/// The Hash–Query index.
#[derive(Debug, Clone)]
pub struct HqIndex {
    k: usize,
    rows: Vec<Vec<Triple>>,
    meta: Vec<QueryMeta>,
}

impl HqIndex {
    /// Build the index from a query set (the paper's offline
    /// `BuildIndex(QS)`).
    ///
    /// # Panics
    /// Panics if any query's sketch `K` differs from `k`.
    pub fn build(k: usize, queries: &QuerySet) -> HqIndex {
        let mut index = HqIndex { k, rows: vec![Vec::new(); k], meta: Vec::new() };
        for q in queries.iter() {
            index.insert(q);
        }
        index
    }

    /// An empty index for sketches of `k` hash functions.
    pub fn empty(k: usize) -> HqIndex {
        assert!(k >= 1);
        HqIndex { k, rows: vec![Vec::new(); k], meta: Vec::new() }
    }

    /// Number of hash functions `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of indexed queries `m`.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether no query is indexed.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Subscribe a query online: insert its `K` hash values into the
    /// sorted rows and relink neighbours whose positions shift.
    ///
    /// # Panics
    /// Panics if the query's sketch `K` differs, or its id is already
    /// present.
    pub fn insert(&mut self, q: &Query) {
        assert_eq!(q.sketch.k(), self.k, "query sketch K mismatch");
        assert!(
            self.meta.iter().all(|mq| mq.id != q.id),
            "query id {} already indexed",
            q.id
        );
        let slot = self.meta.len() as u32;
        self.meta.push(QueryMeta { id: q.id, keyframes: q.keyframes as u32 });

        // Insertion position per row, computed against the pre-insert rows.
        let pos: Vec<u32> = (0..self.k)
            .map(|i| {
                let v = q.sketch.mins()[i];
                self.rows[i].partition_point(|t| t.value < v) as u32
            })
            .collect();

        // Re-link existing triples whose neighbours shift right.
        for i in 0..self.k {
            let down_shift_at = if i + 1 < self.k { pos[i + 1] } else { NO_LINK };
            let up_shift_at = if i > 0 { pos[i - 1] } else { NO_LINK };
            for t in &mut self.rows[i] {
                if i + 1 < self.k && t.down != NO_LINK && t.down >= down_shift_at {
                    t.down += 1;
                }
                if i > 0 && t.up >= up_shift_at {
                    t.up += 1;
                }
            }
        }

        // Insert the new triples.
        for i in 0..self.k {
            let up = if i == 0 { slot } else { pos[i - 1] };
            let down = if i + 1 < self.k { pos[i + 1] } else { NO_LINK };
            self.rows[i].insert(pos[i] as usize, Triple { value: q.sketch.mins()[i], up, down });
        }
    }

    /// Unsubscribe a query online. Returns `false` if the id is not
    /// indexed.
    pub fn remove(&mut self, id: QueryId) -> bool {
        let Some(slot) = self.meta.iter().position(|mq| mq.id == id) else {
            return false;
        };
        // Find the query's position on row 0 (the triple whose `up` is the
        // meta slot), then follow the down links.
        let mut pos = vec![0u32; self.k];
        pos[0] = match self.rows[0].iter().position(|t| t.up == slot as u32) {
            Some(j) => j as u32,
            None => unreachable!("meta slot without a row-0 triple"),
        };
        for i in 1..self.k {
            pos[i] = self.rows[i - 1][pos[i - 1] as usize].down;
        }

        // Remove the triples and re-link neighbours whose positions shift.
        for i in 0..self.k {
            self.rows[i].remove(pos[i] as usize);
            let down_shift_at = if i + 1 < self.k { pos[i + 1] } else { NO_LINK };
            let up_shift_at = if i > 0 { pos[i - 1] } else { NO_LINK };
            for t in &mut self.rows[i] {
                if i + 1 < self.k && t.down != NO_LINK && t.down > down_shift_at {
                    t.down -= 1;
                }
                if i > 0 && t.up > up_shift_at {
                    t.up -= 1;
                }
            }
        }

        // Compact the metadata table: move the last slot into the hole and
        // re-point the moved query's row-0 triple.
        let last = self.meta.len() - 1;
        self.meta.swap_remove(slot);
        if slot != last {
            for t in &mut self.rows[0] {
                if t.up == last as u32 {
                    t.up = slot as u32;
                    break;
                }
            }
        }
        true
    }

    /// Probe a basic-window sketch (the paper's `ProbeIndex`, Fig. 5):
    /// returns every query that shares at least one min-hash value with
    /// the window and survives mid-probe Lemma-2 pruning, together with
    /// its complete bit signature.
    ///
    /// Allocates fresh result buffers; the streaming detector uses
    /// [`HqIndex::probe_into`] with reusable scratch instead.
    pub fn probe(&self, sk: &Sketch, delta: f64) -> ProbeResult {
        let mut scratch = ProbeScratch::default();
        let mut hits = Vec::new();
        let row_searches = self.probe_into(sk, delta, &mut scratch, &mut hits);
        ProbeResult { hits, row_searches }
    }

    /// [`HqIndex::probe`] with caller-owned buffers: `hits` is cleared and
    /// refilled, `scratch` holds the probe's working state. After a
    /// warm-up period the steady-state probe of an unrelated window
    /// touches no allocator — the buffers' high-water marks are bounded
    /// by the related-query count. Returns the row-search count.
    pub fn probe_into(
        &self,
        sk: &Sketch,
        delta: f64,
        scratch: &mut ProbeScratch,
        hits: &mut Vec<ProbeHit>,
    ) -> u64 {
        assert_eq!(sk.k(), self.k, "window sketch K mismatch");
        let prune_above = (self.k as f64 * (1.0 - delta)).floor() as usize;

        let ProbeScratch { elements: r_l, claimed, sig_pool } = scratch;
        r_l.clear();
        hits.clear();
        let mut row_searches = 0u64;

        for i in 0..self.k {
            let ski = sk.mins()[i];
            let row = &self.rows[i];

            // (1) Bit-signature setting + (3) pruning for existing
            // elements.
            claimed.clear();
            r_l.retain_mut(|ele| {
                let j = if i == 0 {
                    unreachable!("elements are only created during search")
                } else {
                    self.rows[i - 1][ele.lp as usize].down
                };
                ele.lp = j;
                let qv = row[j as usize].value;
                ele.sig.set_relation(i, ski, qv);
                if ski < qv {
                    ele.n_less += 1;
                    if ele.n_less > prune_above {
                        if sig_pool.len() < SIG_POOL_CAP {
                            // vdsms-lint: allow(no-alloc-hot-path) reason="pool Vec is capped at SIG_POOL_CAP; reaches its high-water mark during warm-up"
                            sig_pool.push(std::mem::take(&mut ele.sig));
                        }
                        return false;
                    }
                }
                // vdsms-lint: allow(no-alloc-hot-path) reason="scratch Vec reused across probes; bounded by the row occupancy"
                claimed.push(j);
                true
            });

            // (2) Relevant-query search: every position on row i whose
            // value equals sk[i] and is not already tracked starts a new
            // element.
            row_searches += 1;
            let lo = row.partition_point(|t| t.value < ski);
            let hi = row.partition_point(|t| t.value <= ski);
            for j in lo..hi {
                let j = j as u32;
                if claimed.contains(&j) {
                    continue;
                }
                // Walk up to row 0, filling relation pairs i-1..0 and
                // resolving the query slot. The signature's word buffer
                // comes from the pool; steady-state probes touch no
                // allocator.
                let mut sig = sig_pool.pop().unwrap_or_default();
                sig.reset_all_greater(self.k);
                sig.set_relation(i, ski, row[j as usize].value); // "="
                let mut n_less = 0usize;
                let mut p = j;
                let mut pruned = false;
                for r in (0..i).rev() {
                    p = self.rows[r + 1][p as usize].up;
                    let qv = self.rows[r][p as usize].value;
                    sig.set_relation(r, sk.mins()[r], qv);
                    if sk.mins()[r] < qv {
                        n_less += 1;
                        if n_less > prune_above {
                            pruned = true;
                            break;
                        }
                    }
                }
                if pruned {
                    if sig_pool.len() < SIG_POOL_CAP {
                        // vdsms-lint: allow(no-alloc-hot-path) reason="pool Vec is capped at SIG_POOL_CAP; reaches its high-water mark during warm-up"
                        sig_pool.push(sig);
                    }
                    continue;
                }
                let slot = if i == 0 { row[j as usize].up } else { self.rows[0][p as usize].up };
                // vdsms-lint: allow(no-alloc-hot-path) reason="scratch Vec reused across probes; grows only while the element high-water mark rises"
                r_l.push(Ele { slot, lp: j, sig, n_less });
                // vdsms-lint: allow(no-alloc-hot-path) reason="scratch Vec reused across probes; bounded by the row occupancy"
                claimed.push(j);
            }
        }

        for e in r_l.drain(..) {
            let m = self.meta[e.slot as usize];
            // vdsms-lint: allow(no-alloc-hot-path) reason="caller-owned Vec reused across probes; non-empty only for windows related to a query"
            hits.push(ProbeHit { query_id: m.id, keyframes: m.keyframes as usize, sig: e.sig });
        }
        row_searches
    }

    /// Reference probe: brute-force over all queries. Used by tests and by
    /// the `NoIndex` engine variants (where its cost is the point of the
    /// comparison).
    pub fn probe_bruteforce(&self, sk: &Sketch, delta: f64, queries: &QuerySet) -> Vec<ProbeHit> {
        queries
            .iter()
            .filter_map(|q| {
                let sig = BitSig::encode(sk, &q.sketch);
                if sig.count_equal() == 0 || sig.violates_lemma2(delta) {
                    None
                } else {
                    Some(ProbeHit { query_id: q.id, keyframes: q.keyframes, sig })
                }
            })
            .collect()
    }

    /// Estimated heap size of the index in bytes (the paper notes the
    /// index is a fixed `m × K` triples).
    pub fn heap_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.len() * std::mem::size_of::<Triple>()).sum::<usize>()
            + self.meta.len() * std::mem::size_of::<QueryMeta>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdsms_sketch::MinHashFamily;

    const K: usize = 64;

    fn family() -> MinHashFamily {
        MinHashFamily::new(K, 77)
    }

    fn query(f: &MinHashFamily, id: QueryId, base: u64, n: u64) -> Query {
        Query::from_cell_ids(id, f, &(base..base + n).collect::<Vec<_>>())
    }

    fn query_set(f: &MinHashFamily, m: u32) -> QuerySet {
        QuerySet::from_queries(
            (0..m).map(|i| query(f, i, u64::from(i) * 1000, 40)).collect(),
        )
    }

    /// Links invariant: following down from row 0 visits one triple per
    /// row, all belonging to the same query; up links invert down links.
    fn check_integrity(ix: &HqIndex) {
        let m = ix.meta.len();
        for row in &ix.rows {
            assert_eq!(row.len(), m, "every row must hold one triple per query");
            // Sortedness.
            for w in row.windows(2) {
                assert!(w[0].value <= w[1].value, "row not sorted");
            }
        }
        for j0 in 0..m {
            let slot = ix.rows[0][j0].up as usize;
            assert!(slot < m, "row-0 up must be a meta slot");
            let mut p = j0 as u32;
            for i in 0..ix.k - 1 {
                let down = ix.rows[i][p as usize].down;
                assert_ne!(down, NO_LINK, "down link missing before last row");
                assert_eq!(
                    ix.rows[i + 1][down as usize].up,
                    p,
                    "up link must invert down link at row {i}"
                );
                p = down;
            }
            assert_eq!(ix.rows[ix.k - 1][p as usize].down, NO_LINK);
        }
        // Meta slots are referenced exactly once from row 0.
        let mut seen = vec![false; m];
        for t in &ix.rows[0] {
            assert!(!seen[t.up as usize], "duplicate meta reference");
            seen[t.up as usize] = true;
        }
    }

    #[test]
    fn build_produces_consistent_links() {
        let f = family();
        let qs = query_set(&f, 20);
        let ix = HqIndex::build(K, &qs);
        assert_eq!(ix.len(), 20);
        check_integrity(&ix);
    }

    #[test]
    fn probe_matches_bruteforce() {
        let f = family();
        let qs = query_set(&f, 30);
        let ix = HqIndex::build(K, &qs);
        // Probe with a sketch overlapping query 7's ids — and also some
        // unrelated ids.
        for (base, n) in [(7000u64, 40u64), (7010, 60), (123_456, 20), (0, 10)] {
            let sk = Sketch::from_ids(&f, base..base + n);
            for delta in [0.5, 0.7, 0.9] {
                let mut got: Vec<QueryId> =
                    ix.probe(&sk, delta).hits.into_iter().map(|h| h.query_id).collect();
                let mut want: Vec<QueryId> = ix
                    .probe_bruteforce(&sk, delta, &qs)
                    .into_iter()
                    .map(|h| h.query_id)
                    .collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "probe mismatch at base={base} n={n} δ={delta}");
            }
        }
    }

    #[test]
    fn probe_signatures_match_direct_encoding() {
        let f = family();
        let qs = query_set(&f, 10);
        let ix = HqIndex::build(K, &qs);
        let sk = Sketch::from_ids(&f, 3000..3040); // strongly related to query 3
        let res = ix.probe(&sk, 0.5);
        assert!(!res.hits.is_empty());
        for hit in &res.hits {
            let q = qs.get(hit.query_id).unwrap();
            let direct = BitSig::encode(&sk, &q.sketch);
            assert_eq!(hit.sig, direct, "probe signature differs for query {}", hit.query_id);
        }
    }

    #[test]
    fn probe_finds_exact_match_with_full_similarity() {
        let f = family();
        let qs = query_set(&f, 10);
        let ix = HqIndex::build(K, &qs);
        let sk = qs.get(4).unwrap().sketch.clone();
        let res = ix.probe(&sk, 0.7);
        let hit = res.hits.iter().find(|h| h.query_id == 4).expect("query 4 must be hit");
        assert_eq!(hit.sig.similarity(), 1.0);
        assert_eq!(hit.keyframes, 40);
    }

    #[test]
    fn unrelated_probe_returns_nothing() {
        let f = family();
        let qs = query_set(&f, 10);
        let ix = HqIndex::build(K, &qs);
        let sk = Sketch::from_ids(&f, 900_000..900_050);
        // All-unrelated: either empty or only low-similarity flukes that
        // brute force agrees on.
        let got = ix.probe(&sk, 0.7).hits.len();
        let want = ix.probe_bruteforce(&sk, 0.7, &qs).len();
        assert_eq!(got, want);
    }

    #[test]
    fn online_insert_matches_fresh_build() {
        let f = family();
        let mut ix = HqIndex::empty(K);
        let mut qs = QuerySet::new();
        for i in 0..15u32 {
            let q = query(&f, i, u64::from(i) * 777, 25);
            qs.insert(q.clone());
            ix.insert(&q);
            check_integrity(&ix);
        }
        let fresh = HqIndex::build(K, &qs);
        let sk = Sketch::from_ids(&f, 3885..3920); // overlaps query 5
        let mut a: Vec<QueryId> = ix.probe(&sk, 0.6).hits.into_iter().map(|h| h.query_id).collect();
        let mut b: Vec<QueryId> =
            fresh.probe(&sk, 0.6).hits.into_iter().map(|h| h.query_id).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn online_remove_keeps_integrity_and_results() {
        let f = family();
        let qs = query_set(&f, 12);
        let mut ix = HqIndex::build(K, &qs);
        assert!(ix.remove(5));
        assert!(!ix.remove(5), "double remove must return false");
        check_integrity(&ix);
        let sk = Sketch::from_ids(&f, 5000..5040); // query 5's content
        let hits = ix.probe(&sk, 0.7).hits;
        assert!(hits.iter().all(|h| h.query_id != 5), "removed query must not be hit");

        // Remove more, including the slot-compaction path.
        assert!(ix.remove(11));
        assert!(ix.remove(0));
        check_integrity(&ix);
        assert_eq!(ix.len(), 9);

        // Remaining queries still probe correctly.
        let sk3 = Sketch::from_ids(&f, 3000..3040);
        assert!(ix.probe(&sk3, 0.7).hits.iter().any(|h| h.query_id == 3));
    }

    #[test]
    fn remove_then_insert_round_trips() {
        let f = family();
        let qs = query_set(&f, 8);
        let mut ix = HqIndex::build(K, &qs);
        let q3 = qs.get(3).unwrap().clone();
        ix.remove(3);
        ix.insert(&q3);
        check_integrity(&ix);
        let sk = Sketch::from_ids(&f, 3000..3040);
        assert!(ix.probe(&sk, 0.7).hits.iter().any(|h| h.query_id == 3));
    }

    #[test]
    fn duplicate_hash_values_across_queries_are_handled() {
        // Force two queries with identical content (identical sketches) —
        // every row has duplicate values.
        let f = family();
        let mut qs = QuerySet::new();
        qs.insert(query(&f, 1, 500, 30));
        qs.insert(query(&f, 2, 500, 30)); // same cell ids
        qs.insert(query(&f, 3, 9999, 30));
        let ix = HqIndex::build(K, &qs);
        check_integrity(&ix);
        let sk = Sketch::from_ids(&f, 500..530);
        let mut hits: Vec<QueryId> =
            ix.probe(&sk, 0.7).hits.into_iter().map(|h| h.query_id).collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2], "both duplicate queries must be found exactly once");
    }

    #[test]
    fn heap_bytes_scales_with_m_times_k() {
        let f = family();
        let ix = HqIndex::build(K, &query_set(&f, 10));
        let expected = 10 * K * std::mem::size_of::<Triple>();
        assert!(ix.heap_bytes() >= expected);
    }
}
